"""Cluster HTTP round trips: parity, maintenance, failover, recovery."""

import numpy as np
import pytest

from repro.cluster import LocalCluster
from repro.core.metric import normalize_rows
from repro.core.out_of_core import LakeSearcher, PartitionedPexeso
from repro.core.persistence import load_partitioned, save_partitioned
from repro.serve.client import ServeError


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(11)
    return [
        normalize_rows(rng.normal(size=(int(rng.integers(4, 12)), 6)))
        for _ in range(18)
    ]


@pytest.fixture(scope="module")
def lake_dir(columns, tmp_path_factory):
    directory = tmp_path_factory.mktemp("cluster") / "lake"
    lake = PartitionedPexeso(n_pivots=2, levels=3, n_partitions=4).fit(columns)
    save_partitioned(lake, directory)
    return directory


@pytest.fixture()
def cluster(lake_dir):
    with LocalCluster(
        lake_dir,
        n_workers=2,
        replication=2,
        mode="thread",
        worker_kwargs=dict(exact_counts=True, window_ms=None, cache_size=0),
    ) as running:
        yield running


@pytest.fixture()
def reference(lake_dir):
    return LakeSearcher(load_partitioned(lake_dir))


class TestRoundTrips:
    def test_healthz_and_cluster_state(self, cluster):
        reply = cluster.client.healthz()
        assert reply["ok"] is True
        assert reply["workers"] == ["up", "up"]
        assert reply["generation"] == [0, 0]
        state = cluster.client.cluster()
        assert state["serviceable"] is True
        assert state["replication"] == 2
        assert len(state["parts"]) >= 1

    def test_search_parity_with_single_node(self, cluster, reference, columns):
        query = columns[3][:5]
        want = reference.search(query, 0.6, 0.3, exact_counts=True)
        reply = cluster.client.search(vectors=query, tau=0.6, joinability=0.3)
        got = [
            (h["column_id"], h["match_count"], h["joinability"])
            for h in reply["hits"]
        ]
        assert got == [
            (h.column_id, h.match_count, h.joinability) for h in want.joinable
        ]
        assert reply["generation"] == [0, 0]

    def test_ann_knob_scatters_to_workers(self, cluster, reference, columns):
        """The ef_search knob crosses the coordinator: hits stay a subset
        of the exact answer with bit-identical counts, and a beam
        covering the lake reproduces the exact answer bit for bit."""
        query = columns[3][:5]
        want = [
            (h.column_id, h.match_count, h.joinability)
            for h in reference.search(query, 0.6, 0.3, exact_counts=True).joinable
        ]
        restricted = cluster.client.search(
            vectors=query, tau=0.6, joinability=0.3, ef_search=2
        )
        got = [
            (h["column_id"], h["match_count"], h["joinability"])
            for h in restricted["hits"]
        ]
        assert set(got) <= set(want)
        assert restricted["ef_search"] == 2
        full = cluster.client.search(
            vectors=query, tau=0.6, joinability=0.3, ef_search=10**6
        )
        assert [
            (h["column_id"], h["match_count"], h["joinability"])
            for h in full["hits"]
        ] == want

    def test_ann_knob_validated_at_the_front_door(self, cluster, columns):
        with pytest.raises(ServeError) as excinfo:
            cluster.client.search(
                vectors=columns[0][:4], tau=0.6, joinability=0.3, ef_search=0
            )
        assert excinfo.value.status == 400

    def test_topk_parity_with_single_node(self, cluster, reference, columns):
        query = columns[0][:6]
        want = reference.topk(query, 0.7, 4)
        reply = cluster.client.topk(vectors=query, tau=0.7, k=4)
        assert [
            (h["column_id"], h["match_count"], h["joinability"])
            for h in reply["hits"]
        ] == want.hits

    def test_metrics_exposition(self, cluster, columns):
        cluster.client.search(vectors=columns[1][:4], tau=0.6, joinability=0.3)
        metrics = cluster.client.metrics()
        assert "pexeso_serve_cluster_requests" in metrics
        assert "pexeso_serve_cluster_workers_up 2" in metrics
        assert "pexeso_serve_cluster_serviceable 1" in metrics

    def test_column_probe(self, cluster):
        reply = cluster.client._request("GET", "/columns/0")
        assert reply == {"column_id": 0, "live": True,
                         "partition": reply["partition"]}
        assert cluster.client._request("GET", "/columns/9999")["live"] is False


class TestRoutedMaintenance:
    def test_add_write_through_and_delete(self, cluster):
        rng = np.random.default_rng(3)
        newcol = normalize_rows(rng.normal(size=(6, 6)))
        added = cluster.client.add_column(vectors=newcol, table="live", column="k")
        # write-through: every replica applied the add -> both generations bump
        assert added["generation"] == [1, 1]
        found = cluster.client.search(vectors=newcol[:3], tau=1e-6, joinability=1.0)
        assert added["column_id"] in [h["column_id"] for h in found["hits"]]

        removed = cluster.client.delete_column(added["column_id"])
        assert removed["generation"] == [2, 2]
        gone = cluster.client.search(vectors=newcol[:3], tau=1e-6, joinability=1.0)
        assert added["column_id"] not in [h["column_id"] for h in gone["hits"]]
        with pytest.raises(ServeError) as err:
            cluster.client.delete_column(added["column_id"])
        assert err.value.status == 404

    def test_coordinator_rejects_worker_level_placement(self, cluster):
        """Explicit partition/column_id are write-through fields between
        coordinator and worker; a client sending them to the coordinator
        gets a 400 (silently ignoring them would make the client's
        idempotent-retry marking unsafe)."""
        rng = np.random.default_rng(13)
        vec = normalize_rows(rng.normal(size=(4, 6)))
        with pytest.raises(ServeError) as err:
            cluster.client.add_column(vectors=vec, partition=0, column_id=99)
        assert err.value.status == 400

    def test_ids_allocated_centrally_and_never_reused(self, cluster, columns):
        rng = np.random.default_rng(4)
        first = cluster.client.add_column(
            vectors=normalize_rows(rng.normal(size=(4, 6))))
        cluster.client.delete_column(first["column_id"])
        second = cluster.client.add_column(
            vectors=normalize_rows(rng.normal(size=(4, 6))))
        assert second["column_id"] == first["column_id"] + 1


class TestFailover:
    def test_search_survives_worker_crash(self, cluster, reference, columns):
        query = columns[3][:5]
        want = [
            (h.column_id, h.match_count, h.joinability)
            for h in reference.search(query, 0.6, 0.3, exact_counts=True).joinable
        ]
        cluster.kill_worker(0)
        # the dead worker is discovered mid-request and failed over
        reply = cluster.client.search(vectors=query, tau=0.6, joinability=0.3)
        assert [
            (h["column_id"], h["match_count"], h["joinability"])
            for h in reply["hits"]
        ] == want
        state = cluster.client.cluster()
        assert state["workers"][0]["status"] == "down"
        assert state["serviceable"] is True  # replicas cover every partition
        assert state["failovers"] >= 1
        # top-k too
        tk = cluster.client.topk(vectors=query, tau=0.7, k=3)
        want_tk = reference.topk(query, 0.7, 3)
        assert [
            (h["column_id"], h["match_count"]) for h in tk["hits"]
        ] == [(c, n) for c, n, _ in want_tk.hits]

    def test_mutations_survive_worker_crash(self, cluster):
        rng = np.random.default_rng(5)
        newcol = normalize_rows(rng.normal(size=(5, 6)))
        cluster.kill_worker(1)
        added = cluster.client.add_column(vectors=newcol)
        # only the surviving replica applied it
        found = cluster.client.search(vectors=newcol[:3], tau=1e-6, joinability=1.0)
        assert added["column_id"] in [h["column_id"] for h in found["hits"]]

    def test_unserviceable_when_all_replicas_down(self, lake_dir, columns):
        with LocalCluster(
            lake_dir, n_workers=2, replication=1, mode="thread",
            worker_kwargs=dict(window_ms=None, cache_size=0),
        ) as cluster:
            cluster.kill_worker(0)
            cluster.kill_worker(1)
            with pytest.raises(ServeError) as err:
                cluster.client.search(
                    vectors=columns[0][:4], tau=0.6, joinability=0.3
                )
            assert err.value.status == 503


class TestRecovery:
    def test_rejoining_worker_is_replayed_missed_mutations(self, lake_dir):
        """A worker that restarts reloads the saved lake and must be
        brought level with every routed mutation it missed."""
        rng = np.random.default_rng(6)
        with LocalCluster(
            lake_dir, n_workers=2, replication=2, mode="thread",
            worker_kwargs=dict(window_ms=None, cache_size=0),
        ) as cluster:
            newcol = normalize_rows(rng.normal(size=(6, 6)))
            added = cluster.client.add_column(vectors=newcol)
            cluster.kill_worker(0)
            # a second mutation lands while worker 0 is dead
            other = normalize_rows(rng.normal(size=(5, 6)))
            added2 = cluster.client.add_column(vectors=other)

            # restart worker 0 in-process: fresh subset load + re-register
            from repro.cluster.worker import start_worker

            server, slot, thread = start_worker(
                lake_dir, cluster.url, window_ms=None, cache_size=0
            )
            try:
                state = cluster.client.cluster()
                assert state["workers"][slot]["status"] == "up"
                # the replay restored both adds on the rejoined worker:
                # route a restricted probe straight at it
                from repro.serve.client import ServeClient

                direct = ServeClient(server.url)
                probe = direct.search(
                    vectors=newcol[:3], tau=1e-6, joinability=1.0
                )
                assert added["column_id"] in [
                    h["column_id"] for h in probe["hits"]
                ]
                probe2 = direct.search(
                    vectors=other[:3], tau=1e-6, joinability=1.0
                )
                assert added2["column_id"] in [
                    h["column_id"] for h in probe2["hits"]
                ]
            finally:
                server.close(drain_seconds=0.0)
                thread.join(timeout=5.0)


class TestCoordinatorRestart:
    def test_resize_keeps_ids_and_tombstones(self, columns, tmp_path):
        """Restarting with a different worker count must never reuse IDs
        or forget tombstones recorded only in cluster.json."""
        from repro.cluster.coordinator import ClusterCoordinator

        lake_dir = tmp_path / "lake"
        lake = PartitionedPexeso(n_pivots=2, levels=3, n_partitions=3).fit(columns)
        save_partitioned(lake, lake_dir)
        rng = np.random.default_rng(12)
        with LocalCluster(
            lake_dir, n_workers=2, replication=1, mode="thread",
            worker_kwargs=dict(window_ms=None, cache_size=0),
        ) as cluster:
            added = cluster.client.add_column(
                vectors=normalize_rows(rng.normal(size=(5, 6))))
            cluster.client.delete_column(0)
        # "restart" with a different topology: 3 slots instead of 2
        coordinator = ClusterCoordinator(lake_dir, n_workers=3, replication=2)
        assert coordinator._next_column_id == added["column_id"] + 1
        assert not coordinator.has_column(0)  # tombstone survived
        assert coordinator.has_column(added["column_id"])  # routing survived
        assert coordinator.shard_map.n_workers == 3  # topology replanned


class TestRemoteDiscovery:
    def test_from_cluster_matches_local_discovery(self, lake_dir, columns):
        from repro.embedding.hashing import HashingNGramEmbedder
        from repro.lake.discovery import JoinableTableSearch
        from repro.lake.table import Column, Table

        embedder = HashingNGramEmbedder(dim=6, seed=0)
        with LocalCluster(
            lake_dir, n_workers=2, replication=1, mode="thread",
            worker_kwargs=dict(window_ms=None, cache_size=0),
        ) as cluster:
            search = JoinableTableSearch.from_cluster(
                embedder, cluster.url, preprocess=False
            )
            # the saved lake has no catalog.json -> synthesized refs
            assert len(search.refs) == len(columns)
            query = Table(
                "q",
                [Column("key", [f"value_{i}" for i in range(8)])],
                key_column="key",
            )
            hits = search.search(query, "key", tau_fraction=0.2,
                                 joinability=0.1, with_mappings=False)
            assert isinstance(hits, list)
            with pytest.raises(ValueError, match="with_mappings=False"):
                search.search(query, "key", with_mappings=True)

    def test_from_cluster_after_delete_keeps_high_ids_resolvable(
        self, lake_dir, columns
    ):
        """IDs are never reused, so a facade built after a delete must
        still resolve live IDs above the live *count*."""
        from repro.embedding.hashing import HashingNGramEmbedder
        from repro.lake.discovery import JoinableTableSearch
        from repro.lake.table import Column, Table

        embedder = HashingNGramEmbedder(dim=6, seed=0)
        rng = np.random.default_rng(14)
        with LocalCluster(
            lake_dir, n_workers=2, replication=1, mode="thread",
            worker_kwargs=dict(window_ms=None, cache_size=0),
        ) as cluster:
            added = cluster.client.add_column(
                vectors=normalize_rows(rng.normal(size=(5, 6))))
            cluster.client.delete_column(2)
            search = JoinableTableSearch.from_cluster(
                embedder, cluster.url, preprocess=False
            )
            # the live-added id (== len(columns)) must have a slot
            assert len(search.refs) > added["column_id"]
            query = Table(
                "q", [Column("key", ["v"] * 6)], key_column="key"
            )
            hits = search.search(query, "key", tau_fraction=0.3,
                                 joinability=0.1, with_mappings=False)
            assert isinstance(hits, list)  # no IndexError on high IDs

    def test_remote_searcher_parity(self, lake_dir, columns, reference):
        from repro.cluster.remote import RemoteLakeSearcher

        with LocalCluster(
            lake_dir, n_workers=2, replication=1, mode="thread",
            worker_kwargs=dict(exact_counts=True, window_ms=None, cache_size=0),
        ) as cluster:
            remote = RemoteLakeSearcher(cluster.url)
            query = columns[2][:5]
            want = reference.search(query, 0.6, 0.3, exact_counts=True)
            got = remote.search(query, 0.6, 0.3)
            assert [(h.column_id, h.match_count, h.joinability)
                    for h in got.joinable] == \
                [(h.column_id, h.match_count, h.joinability)
                 for h in want.joinable]
            assert remote.topk(query, 0.7, 3).hits == \
                reference.topk(query, 0.7, 3).hits
            assert remote.n_columns == len(columns)
            assert remote.has_column(0) is True
