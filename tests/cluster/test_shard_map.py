"""Unit tests for the shard map: assignment, lifecycle, routing, persistence."""

import pytest

from repro.cluster.shard_map import ClusterUnavailable, ShardMap


class TestAssignment:
    def test_round_robin_with_replication(self):
        shard_map = ShardMap(parts=[0, 1, 2, 3], n_workers=2, replication=2)
        # rank r lives on slots (r + j) % 2 for j in {0, 1} -> both slots
        assert shard_map.owners == {0: [0, 1], 1: [1, 0], 2: [0, 1], 3: [1, 0]}
        assert shard_map.workers[0].parts == [0, 1, 2, 3]
        assert shard_map.workers[1].parts == [0, 1, 2, 3]

    def test_replication_clamped_to_worker_count(self):
        shard_map = ShardMap(parts=[0, 1], n_workers=2, replication=5)
        assert shard_map.replication == 2

    def test_single_replica_partitions_are_disjoint(self):
        shard_map = ShardMap(parts=[0, 1, 2, 3, 4, 5], n_workers=3, replication=1)
        hosted = [set(w.parts) for w in shard_map.workers]
        assert hosted[0] | hosted[1] | hosted[2] == {0, 1, 2, 3, 4, 5}
        assert not (hosted[0] & hosted[1])
        assert not (hosted[1] & hosted[2])

    def test_non_contiguous_partition_ids(self):
        # empty partitions never reach the map; ids may have gaps
        shard_map = ShardMap(parts=[0, 2, 5], n_workers=2, replication=1)
        assert sorted(shard_map.owners) == [0, 2, 5]

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardMap(parts=[], n_workers=2)
        with pytest.raises(ValueError):
            ShardMap(parts=[0], n_workers=0)
        with pytest.raises(ValueError):
            ShardMap(parts=[0], n_workers=1, replication=0)


class TestLifecycle:
    def test_registration_claims_slots_in_order(self):
        shard_map = ShardMap(parts=[0, 1], n_workers=2)
        assert shard_map.register().slot == 0
        assert shard_map.register().slot == 1
        with pytest.raises(ClusterUnavailable):
            shard_map.register()

    def test_reregistration_by_url_reclaims_slot(self):
        shard_map = ShardMap(parts=[0, 1], n_workers=2)
        shard_map.register("http://a")
        shard_map.register("http://b")
        shard_map.mark_down(0)
        again = shard_map.register("http://a")
        assert again.slot == 0
        assert again.status == "joining"

    def test_stale_joining_slot_reclaimable_after_grace(self):
        """A registrant that dies between register and ready must not
        wedge its slot forever."""
        shard_map = ShardMap(parts=[0, 1], n_workers=1, join_grace_seconds=0.0)
        shard_map.register()  # claimant never reports ready
        again = shard_map.register()  # grace 0: immediately reclaimable
        assert again.slot == 0
        assert again.status == "joining"

    def test_fresh_joining_slot_not_stolen(self):
        shard_map = ShardMap(parts=[0], n_workers=1, join_grace_seconds=60.0)
        shard_map.register()
        with pytest.raises(ClusterUnavailable):
            shard_map.register()

    def test_serviceable_requires_every_partition_live(self):
        shard_map = ShardMap(parts=[0, 1], n_workers=2, replication=1)
        assert not shard_map.is_serviceable()
        shard_map.register("http://a")
        shard_map.mark_ready(0, "http://a")
        assert not shard_map.is_serviceable()  # partition 1 has no worker
        shard_map.register("http://b")
        shard_map.mark_ready(1, "http://b")
        assert shard_map.is_serviceable()
        shard_map.mark_down(1)
        assert not shard_map.is_serviceable()


class TestRouting:
    def make_live(self, parts, n_workers, replication):
        shard_map = ShardMap(parts, n_workers, replication)
        for slot in range(n_workers):
            shard_map.register(f"http://w{slot}")
            shard_map.mark_ready(slot, f"http://w{slot}")
        return shard_map

    def test_each_partition_routed_exactly_once(self):
        shard_map = self.make_live([0, 1, 2, 3], 2, 2)
        plan = shard_map.route()
        routed = [p for parts in plan.values() for p in parts]
        assert sorted(routed) == [0, 1, 2, 3]

    def test_primary_preferred(self):
        shard_map = self.make_live([0, 1], 2, 2)
        plan = shard_map.route()
        # primaries: partition rank 0 -> slot 0, rank 1 -> slot 1
        assert plan == {0: [0], 1: [1]}

    def test_failover_to_replica(self):
        shard_map = self.make_live([0, 1], 2, 2)
        shard_map.mark_down(0)
        plan = shard_map.route()
        assert plan == {1: [0, 1]}

    def test_unavailable_when_all_replicas_down(self):
        shard_map = self.make_live([0, 1], 2, 1)
        shard_map.mark_down(0)
        with pytest.raises(ClusterUnavailable):
            shard_map.route()
        # the other partition alone still routes
        assert shard_map.route([1]) == {1: [1]}

    def test_route_subset(self):
        shard_map = self.make_live([0, 1, 2, 3], 2, 1)
        plan = shard_map.route([1, 3])
        routed = sorted(p for parts in plan.values() for p in parts)
        assert routed == [1, 3]


class TestPersistence:
    def test_round_trip(self, tmp_path):
        shard_map = ShardMap([0, 1, 2], n_workers=2, replication=2)
        shard_map.register("http://a")
        shard_map.mark_ready(0, "http://a")
        path = tmp_path / "cluster.json"
        shard_map.save(path)
        loaded = ShardMap.load(path)
        assert loaded.owners == shard_map.owners
        assert loaded.workers[0].url == "http://a"
        # restored liveness is never trusted: claimed workers come back
        # "down" and must re-prove themselves via a health check
        assert loaded.workers[0].status == "down"
        assert loaded.workers[1].status == "empty"

    def test_format_version_checked(self, tmp_path):
        with pytest.raises(ValueError, match="cluster format"):
            ShardMap.from_dict({"format_version": 99})
