"""Shard-subset loading and parts-restricted search (the worker's substrate)."""

import json

import numpy as np
import pytest

from repro.core.metric import normalize_rows
from repro.core.out_of_core import LakeSearcher, PartitionedPexeso
from repro.core.persistence import load_any, load_partitioned, save_partitioned


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(7)
    return [
        normalize_rows(rng.normal(size=(int(rng.integers(4, 12)), 6)))
        for _ in range(20)
    ]


@pytest.fixture(scope="module")
def saved_lake(columns, tmp_path_factory):
    directory = tmp_path_factory.mktemp("lake") / "saved"
    lake = PartitionedPexeso(n_pivots=2, levels=3, n_partitions=4).fit(columns)
    save_partitioned(lake, directory)
    return directory


class TestSubsetLoading:
    def test_hosts_only_requested_parts(self, saved_lake):
        lake = load_partitioned(saved_lake, parts=[0, 2])
        assert lake.hosted_parts == {0, 2}
        assert sorted(p for p, _ in lake._shards()) == [0, 2]
        # hosted shards are eagerly resident; nothing stays spilled
        assert sorted(lake._resident) == [0, 2]
        assert lake._spilled == {}

    def test_n_columns_counts_hosted_only(self, saved_lake, columns):
        full = load_partitioned(saved_lake)
        subset = load_partitioned(saved_lake, parts=[1])
        assert full.n_columns == len(columns)
        assert subset.n_columns == len(full.partition_columns[1])
        assert 0 < subset.n_columns < len(columns)

    def test_unknown_part_rejected(self, saved_lake):
        with pytest.raises(KeyError, match="not in the saved lake"):
            load_partitioned(saved_lake, parts=[0, 9])

    def test_load_any_dispatch(self, saved_lake):
        lake = load_any(saved_lake, parts=[0])
        assert lake.hosted_parts == {0}

    def test_load_any_single_index_rejects_parts(self, columns, tmp_path):
        from repro.core.index import PexesoIndex
        from repro.core.persistence import save_index

        save_index(PexesoIndex.build(columns[:4], n_pivots=2, levels=3),
                   tmp_path / "single")
        with pytest.raises(ValueError, match="partitioned layout"):
            load_any(tmp_path / "single", parts=[0])


class TestRestrictedSearch:
    def test_union_of_subsets_equals_full_search(self, saved_lake, columns):
        """Two disjoint workers' results merge to the full lake's result."""
        full = load_partitioned(saved_lake)
        w0 = load_partitioned(saved_lake, parts=[0, 1])
        w1 = load_partitioned(saved_lake, parts=[2, 3])
        query = columns[3][:5]
        want = full.search(query, 0.6, 0.3, exact_counts=True)
        got = sorted(
            [
                (h.column_id, h.match_count, h.joinability)
                for lake in (w0, w1)
                for h in lake.search(query, 0.6, 0.3, exact_counts=True).joinable
            ]
        )
        assert got == [
            (h.column_id, h.match_count, h.joinability) for h in want.joinable
        ]

    def test_parts_argument_filters_within_host(self, saved_lake, columns):
        full = load_partitioned(saved_lake)
        query = columns[5][:5]
        only2 = full.search(query, 0.6, 0.3, exact_counts=True, parts=[2])
        part2_ids = {c for c in full.partition_columns[2] if c >= 0}
        assert all(h.column_id in part2_ids for h in only2.joinable)

    def test_parts_outside_host_rejected(self, saved_lake, columns):
        w0 = load_partitioned(saved_lake, parts=[0, 1])
        with pytest.raises(KeyError, match="not hosted here"):
            w0.search(columns[0][:4], 0.6, 0.3, parts=[2])

    def test_topk_theta_floor_is_sound(self, saved_lake, columns):
        """Any externally seeded theta <= true k-th best leaves top-k intact."""
        full = load_partitioned(saved_lake)
        query = columns[2][:6]
        want = full.topk(query, 0.7, 3)
        floor = want.hits[-1][1] if len(want.hits) == 3 else 0
        again = full.topk(query, 0.7, 3, theta=floor)
        assert again.hits == want.hits

    def test_single_index_rejects_parts(self, columns):
        from repro.core.index import PexesoIndex

        searcher = LakeSearcher(PexesoIndex.build(columns[:5], n_pivots=2, levels=3))
        with pytest.raises(ValueError, match="partitioned backend"):
            searcher.search(columns[0][:4], 0.5, 0.3, parts=[0])


class TestRestrictedMaintenance:
    def test_explicit_placement_and_id(self, saved_lake):
        lake = load_partitioned(saved_lake, parts=[1, 3])
        rng = np.random.default_rng(0)
        newcol = normalize_rows(rng.normal(size=(6, 6)))
        gid = lake.add_column(newcol, part=3, column_id=50)
        assert gid == 50
        assert lake.partition_columns[3][-1] == 50
        found = lake.search(newcol[:3], 1e-6, 1.0, exact_counts=True, parts=[3])
        assert 50 in [h.column_id for h in found.joinable]
        # auto-allocation continues past the explicit id
        assert lake.add_column(newcol) == 51

    def test_replicated_write_is_idempotent(self, saved_lake):
        """Redelivering the same (partition, id, vectors) — a transport
        retry after a lost reply — must be a no-op, not an error."""
        lake = load_partitioned(saved_lake, parts=[0, 1])
        rng = np.random.default_rng(8)
        vec = normalize_rows(rng.normal(size=(5, 6)))
        gid = lake.add_column(vec, part=1, column_id=60)
        before = lake.n_columns
        assert lake.add_column(vec, part=1, column_id=60) == gid
        assert lake.n_columns == before  # no duplicate column
        # same id with *different* content or partition is still an error
        other = normalize_rows(rng.normal(size=(5, 6)))
        with pytest.raises(ValueError, match="already in use"):
            lake.add_column(other, part=1, column_id=60)
        with pytest.raises(ValueError, match="already in use"):
            lake.add_column(vec, part=0, column_id=60)

    def test_explicit_id_collision_rejected(self, saved_lake):
        lake = load_partitioned(saved_lake, parts=[0])
        existing = next(c for c in lake.partition_columns[0] if c >= 0)
        rng = np.random.default_rng(1)
        vec = normalize_rows(rng.normal(size=(4, 6)))
        before = list(lake.partition_columns[0])
        with pytest.raises(ValueError, match="already in use"):
            lake.add_column(vec, part=0, column_id=existing)
        # a rejected explicit id must leave the shard untouched
        assert lake.partition_columns[0] == before

    def test_unhosted_partition_rejected(self, saved_lake):
        lake = load_partitioned(saved_lake, parts=[0])
        rng = np.random.default_rng(2)
        vec = normalize_rows(rng.normal(size=(4, 6)))
        with pytest.raises(KeyError, match="not hosted"):
            lake.add_column(vec, part=2)

    def test_delete_restricted_to_hosted(self, saved_lake):
        lake = load_partitioned(saved_lake, parts=[0])
        foreign = next(
            c for c in lake.partition_columns[1] if c >= 0
        )
        with pytest.raises(KeyError):
            lake.delete_column(foreign)
        own = next(c for c in lake.partition_columns[0] if c >= 0)
        lake.delete_column(own)
        assert not lake.has_column(own)

    def test_mutations_never_touch_shared_manifest(self, saved_lake):
        """A worker's adds/deletes must not rewrite partitioned.json."""
        manifest_path = saved_lake / "partitioned.json"
        before = manifest_path.read_text()
        lake = load_partitioned(saved_lake, parts=[0, 1])
        rng = np.random.default_rng(3)
        gid = lake.add_column(normalize_rows(rng.normal(size=(5, 6))), part=0,
                              column_id=70)
        lake.delete_column(gid)
        assert manifest_path.read_text() == before
        # and the partition archives are untouched too (workers mutate
        # their resident copy only; durability is the coordinator's job)
        assert json.loads(before) == json.loads(manifest_path.read_text())
