"""Resilience layer: deadlines, breakers, hedged reads, worker flapping."""

import time

import numpy as np
import pytest

from repro.cluster import LocalCluster
from repro.cluster.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    LatencyTracker,
    ResilienceConfig,
)
from repro.core.metric import normalize_rows
from repro.core.out_of_core import LakeSearcher, PartitionedPexeso
from repro.core.persistence import load_partitioned, save_partitioned
from repro.serve.client import ServeError
from repro.serve.faults import FaultInjector


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(23)
    return [
        normalize_rows(rng.normal(size=(int(rng.integers(4, 12)), 6)))
        for _ in range(18)
    ]


@pytest.fixture(scope="module")
def lake_dir(columns, tmp_path_factory):
    directory = tmp_path_factory.mktemp("resilience") / "lake"
    lake = PartitionedPexeso(n_pivots=2, levels=3, n_partitions=4).fit(columns)
    save_partitioned(lake, directory)
    return directory


@pytest.fixture()
def reference(lake_dir):
    return LakeSearcher(load_partitioned(lake_dir))


def parity(reply_hits, want):
    got = [
        (h["column_id"], h["match_count"], h["joinability"])
        for h in reply_hits
    ]
    return got == [
        (h.column_id, h.match_count, h.joinability) for h in want.joinable
    ]


class TestDeadline:
    def test_remaining_counts_down_and_expires(self):
        deadline = Deadline.from_ms(50.0)
        assert 0.0 < deadline.remaining() <= 0.05
        assert not deadline.expired()
        deadline.check("warmup")  # must not raise while live
        time.sleep(0.06)
        assert deadline.expired()
        assert deadline.remaining_ms() < 0
        with pytest.raises(DeadlineExceeded) as err:
            deadline.check("scatter wave")
        assert "scatter wave" in str(err.value)

    def test_zero_budget_is_born_expired(self):
        assert Deadline.from_ms(0.0).expired()


class TestLatencyTracker:
    def test_default_until_first_sample(self):
        tracker = LatencyTracker(default=0.07)
        assert tracker.quantile(0.95) == 0.07
        tracker.record(0.2)
        assert tracker.quantile(0.95) == 0.2

    def test_nearest_rank_quantile_and_window(self):
        tracker = LatencyTracker(window=100)
        for ms in range(1, 101):
            tracker.record(ms / 1000.0)
        # nearest-rank: the ceil(q*n)-th smallest sample (1-based)
        assert tracker.quantile(0.95) == pytest.approx(0.095)
        assert tracker.quantile(0.5) == pytest.approx(0.050)
        # the window slides: 100 huge samples push the old ones out
        for _ in range(100):
            tracker.record(5.0)
        assert tracker.quantile(0.5) == 5.0
        assert tracker.count == 200

    def test_nearest_rank_exact_multiple_off_by_one(self):
        # Regression: int(q*n) picked the 20th smallest (the max) for
        # p95 of 20 samples; nearest-rank is the ceil(0.95*20) = 19th.
        tracker = LatencyTracker(window=20)
        for v in range(1, 21):
            tracker.record(float(v))
        assert tracker.quantile(0.95) == 19.0
        assert tracker.quantile(1.0) == 20.0
        assert tracker.quantile(0.05) == 1.0


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_threshold_gates_opening(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        assert breaker.record_failure() == BREAKER_CLOSED
        assert breaker.record_failure() == BREAKER_OPEN
        assert breaker.transitions["opened"] == 1

    def test_probe_granted_once_per_cooldown_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(cooldown=1.0, clock=clock)
        breaker.record_failure()
        assert not breaker.should_probe(), "cooldown not yet elapsed"
        clock.advance(1.0)
        assert breaker.should_probe()
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.should_probe(), "one probe per window"
        # the grant itself times out: a lost prober can't wedge the slot
        clock.advance(1.0)
        assert breaker.should_probe()

    def test_failed_probe_doubles_the_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(cooldown=1.0, max_cooldown=3.0, clock=clock)
        breaker.record_failure()
        assert breaker.current_cooldown() == 1.0
        clock.advance(1.0)
        assert breaker.should_probe()
        breaker.record_failure()  # probe failed -> open harder
        assert breaker.state == BREAKER_OPEN
        assert breaker.current_cooldown() == 2.0
        clock.advance(1.0)
        assert not breaker.should_probe(), "backoff doubled"
        clock.advance(1.0)
        assert breaker.should_probe()
        breaker.record_failure()
        assert breaker.current_cooldown() == 3.0, "capped at max_cooldown"

    def test_success_closes_and_resets_backoff(self):
        clock = FakeClock()
        breaker = CircuitBreaker(cooldown=1.0, clock=clock)
        for _ in range(3):  # rack up consecutive opens
            breaker.record_failure()
            clock.advance(breaker.current_cooldown())
            breaker.should_probe()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.current_cooldown() == 1.0
        assert breaker.transitions["closed"] == 1

    def test_trip_forces_open_and_closed_never_probes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=5, clock=clock)
        assert not breaker.should_probe()
        breaker.trip()
        assert breaker.state == BREAKER_OPEN
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestHedgedReads:
    def test_hedge_beats_a_slow_worker_with_exact_results(
        self, lake_dir, reference, columns
    ):
        """Worker 0 is scripted slow; the hedge fires to its replica and
        the first (exact) answer wins well before the primary returns."""
        slow = FaultInjector(seed=3)
        slow.script("delay", path="/search", delay=0.4)
        with LocalCluster(
            lake_dir,
            n_workers=2,
            replication=2,
            mode="thread",
            worker_kwargs=dict(exact_counts=True, window_ms=None, cache_size=0),
            worker_fault_injectors=[slow, None],
            coordinator_kwargs=dict(
                resilience=ResilienceConfig(
                    hedge_default_delay=0.05, hedge_delay_max=0.05
                ),
            ),
        ) as cluster:
            query = columns[3][:5]
            want = reference.search(query, 0.6, 0.3, exact_counts=True)
            started = time.monotonic()
            reply = cluster.client.search(
                vectors=query, tau=0.6, joinability=0.3
            )
            elapsed = time.monotonic() - started
            assert parity(reply["hits"], want)
            coordinator = cluster.coordinator
            assert coordinator._hedges_fired >= 1
            assert coordinator._hedges_won >= 1
            assert elapsed < 0.4, "the hedged answer must not wait out the primary"
            described = coordinator.describe()["resilience"]
            assert described["hedges_fired"] >= 1
            assert described["hedges_won"] >= 1
            metrics = coordinator.metrics_text()
            assert "pexeso_serve_cluster_hedges_fired" in metrics
            assert "pexeso_serve_cluster_hedges_won" in metrics

    def test_hedging_off_is_respected(self, lake_dir, reference, columns):
        slow = FaultInjector(seed=3)
        slow.script("delay", path="/search", delay=0.2)
        with LocalCluster(
            lake_dir,
            n_workers=2,
            replication=2,
            mode="thread",
            worker_kwargs=dict(exact_counts=True, window_ms=None, cache_size=0),
            worker_fault_injectors=[slow, None],
            coordinator_kwargs=dict(
                resilience=ResilienceConfig(hedge=False),
            ),
        ) as cluster:
            query = columns[3][:5]
            want = reference.search(query, 0.6, 0.3, exact_counts=True)
            reply = cluster.client.search(
                vectors=query, tau=0.6, joinability=0.3
            )
            assert parity(reply["hits"], want)
            assert cluster.coordinator._hedges_fired == 0


class TestDeadlinePropagation:
    def test_expired_budget_rejected_at_the_front_door(
        self, lake_dir, columns
    ):
        with LocalCluster(
            lake_dir,
            n_workers=2,
            replication=2,
            mode="thread",
            worker_kwargs=dict(exact_counts=True, window_ms=None, cache_size=0),
        ) as cluster:
            with pytest.raises(ServeError) as err:
                cluster.client.search(
                    vectors=columns[0][:4], tau=0.6, joinability=0.3,
                    deadline_ms=0.0,
                )
            assert err.value.status == 504

    def test_budget_expiring_mid_request_counts_a_violation(
        self, lake_dir, columns
    ):
        """A budget that survives the front door but dies before the
        scatter is refused by the coordinator's own deadline check."""
        with LocalCluster(
            lake_dir,
            n_workers=2,
            replication=2,
            mode="thread",
            worker_kwargs=dict(exact_counts=True, window_ms=None, cache_size=0),
        ) as cluster:
            coordinator = cluster.coordinator
            dead = Deadline.from_ms(0.0)
            with pytest.raises(DeadlineExceeded):
                coordinator.search(columns[0][:4], 0.6, 0.3, deadline=dead)
            assert coordinator._deadline_violations == 1
            assert (
                "pexeso_serve_cluster_deadline_violations 1"
                in coordinator.metrics_text()
            )

    def test_generous_budget_answers_exactly(
        self, lake_dir, reference, columns
    ):
        with LocalCluster(
            lake_dir,
            n_workers=2,
            replication=2,
            mode="thread",
            worker_kwargs=dict(exact_counts=True, window_ms=None, cache_size=0),
        ) as cluster:
            query = columns[5][:5]
            want = reference.search(query, 0.6, 0.3, exact_counts=True)
            reply = cluster.client.search(
                vectors=query, tau=0.6, joinability=0.3, deadline_ms=30_000.0,
            )
            assert parity(reply["hits"], want)
            assert cluster.coordinator._deadline_violations == 0

    def test_default_deadline_applies_when_none_sent(self, lake_dir, columns):
        with LocalCluster(
            lake_dir,
            n_workers=2,
            replication=2,
            mode="thread",
            worker_kwargs=dict(exact_counts=True, window_ms=None, cache_size=0),
            coordinator_kwargs=dict(
                resilience=ResilienceConfig(default_deadline_ms=0.0),
            ),
        ) as cluster:
            with pytest.raises(DeadlineExceeded):
                cluster.coordinator.search(columns[0][:4], 0.6, 0.3)


class TestWorkerFlapping:
    def test_demote_probe_repromote_cycles_converge(
        self, lake_dir, reference, columns
    ):
        """Repeated flaps: scripted transport drops demote worker 0, the
        half-open probe replays what it missed and re-promotes it, and
        generation vectors never regress across the whole sequence."""
        coord_faults = FaultInjector(seed=9)
        with LocalCluster(
            lake_dir,
            n_workers=2,
            replication=2,
            mode="thread",
            worker_kwargs=dict(exact_counts=True, window_ms=None, cache_size=0),
            coordinator_kwargs=dict(
                fault_injector=coord_faults,
                retries=0,
                resilience=ResilienceConfig(breaker_cooldown=0.01),
            ),
        ) as cluster:
            coordinator = cluster.coordinator
            worker0_url = coordinator.shard_map.worker(0).url
            rng = np.random.default_rng(41)
            previous = coordinator.generation_vector()

            for cycle in range(3):
                # one transport drop on the next call to worker 0
                rule = coord_faults.script(
                    "drop", target=worker0_url, times=1
                )
                query = columns[cycle][:4]
                want = reference.search(query, 0.6, 0.3, exact_counts=True)
                reply = cluster.client.search(
                    vectors=query, tau=0.6, joinability=0.3
                )
                assert parity(reply["hits"], want), (
                    "failover answer must stay exact"
                )
                coord_faults.unscript(rule)
                assert coordinator.shard_map.statuses()[0] == "down"
                assert coordinator._breakers[0].state != BREAKER_CLOSED
                metrics = coordinator.metrics_text()
                assert 'pexeso_serve_cluster_worker_up{slot="0"} 0' in metrics
                assert 'pexeso_serve_cluster_breaker_open{slot="0"} 1' in metrics

                # mutate while down: worker 0 must catch up via replay
                newcol = normalize_rows(rng.normal(size=(5, 6)))
                gid, generations = coordinator.add_column(newcol)
                assert all(
                    g >= p for g, p in zip(generations, previous)
                ), "generation vector must never regress"
                previous = generations

                # breaker cooldown elapses -> the half-open probe replays
                # the missed mutation and re-promotes
                time.sleep(0.02)
                probed = coordinator.probe_half_open()
                assert probed == [0]
                assert coordinator.shard_map.statuses() == ["up", "up"]
                assert coordinator._breakers[0].state == BREAKER_CLOSED
                current = coordinator.generation_vector()
                assert all(g >= p for g, p in zip(current, previous))
                previous = current

                # the rejoined replica answers the added column exactly
                found = cluster.client.search(
                    vectors=newcol[:3], tau=1e-6, joinability=1.0
                )
                assert gid in [h["column_id"] for h in found["hits"]]

            described = coordinator.describe()["resilience"]
            assert described["worker_failovers"][0] == 3
            assert described["breakers"] == [BREAKER_CLOSED, BREAKER_CLOSED]
            assert coordinator._breakers[0].transitions["closed"] == 3

    def test_probe_backs_off_while_the_worker_stays_dead(
        self, lake_dir, columns
    ):
        with LocalCluster(
            lake_dir,
            n_workers=2,
            replication=2,
            mode="thread",
            worker_kwargs=dict(exact_counts=True, window_ms=None, cache_size=0),
            coordinator_kwargs=dict(
                retries=0,
                resilience=ResilienceConfig(
                    breaker_cooldown=0.05, breaker_max_cooldown=10.0
                ),
            ),
        ) as cluster:
            coordinator = cluster.coordinator
            cluster.kill_worker(0)
            reply = cluster.client.search(
                vectors=columns[0][:4], tau=0.6, joinability=0.3
            )
            assert reply["hits"] is not None  # failover served it
            assert coordinator.shard_map.statuses()[0] == "down"

            assert coordinator.probe_half_open() == [], "cooldown gates probes"
            time.sleep(0.06)
            assert coordinator.probe_half_open() == [0]
            # the probe failed against a dead socket: cooldown doubled
            assert coordinator._breakers[0].current_cooldown() >= 0.1
            time.sleep(0.06)
            assert coordinator.probe_half_open() == [], "backoff after failure"
            assert coordinator.shard_map.statuses()[0] == "down"


class TestClusterAdmission:
    def test_search_sheds_while_lifecycle_stays_open(self, lake_dir, columns):
        with LocalCluster(
            lake_dir,
            n_workers=2,
            replication=2,
            mode="thread",
            worker_kwargs=dict(exact_counts=True, window_ms=None, cache_size=0),
            server_kwargs=dict(max_concurrent=1),
        ) as cluster:
            server = cluster.coordinator_server
            assert server.admission.try_acquire()  # saturate the gate
            try:
                with pytest.raises(ServeError) as err:
                    cluster.client.search(
                        vectors=columns[0][:4], tau=0.6, joinability=0.3
                    )
                assert err.value.status == 429
                assert err.value.retry_after is not None
                # lifecycle and mutation traffic is never shed
                assert cluster.client.healthz()["ok"] is True
                assert cluster.client.cluster()["serviceable"] is True
                newcol = normalize_rows(
                    np.random.default_rng(2).normal(size=(4, 6))
                )
                added = cluster.client.add_column(vectors=newcol)
                assert added["column_id"] >= 0
                metrics = cluster.client.metrics()
                assert "pexeso_serve_admission_shed 1.0" in metrics
            finally:
                server.admission.release()
            reply = cluster.client.search(
                vectors=columns[0][:4], tau=0.6, joinability=0.3
            )
            assert reply["hits"] is not None
