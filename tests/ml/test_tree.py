"""Tests for CART decision trees."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


def _blobs(seed=0, n=60):
    rng = np.random.default_rng(seed)
    x0 = rng.normal(loc=-2, size=(n, 2))
    x1 = rng.normal(loc=+2, size=(n, 2))
    features = np.vstack([x0, x1])
    labels = np.array([0] * n + [1] * n)
    return features, labels


class TestClassifier:
    def test_separable_data_perfect(self):
        features, labels = _blobs()
        tree = DecisionTreeClassifier(max_depth=4).fit(features, labels)
        assert (tree.predict(features) == labels).mean() > 0.95

    def test_predict_proba_sums_to_one(self):
        features, labels = _blobs()
        tree = DecisionTreeClassifier(max_depth=3).fit(features, labels)
        proba = tree.predict_proba(features[:10])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_single_class(self):
        features = np.random.default_rng(1).normal(size=(20, 3))
        labels = np.zeros(20, dtype=int)
        tree = DecisionTreeClassifier().fit(features, labels)
        assert (tree.predict(features) == 0).all()

    def test_string_labels(self):
        features, labels = _blobs()
        names = np.array(["cat", "dog"])[labels]
        tree = DecisionTreeClassifier(max_depth=4).fit(features, names)
        assert set(tree.predict(features)) <= {"cat", "dog"}

    def test_max_depth_one_is_stump(self):
        features, labels = _blobs()
        tree = DecisionTreeClassifier(max_depth=1).fit(features, labels)
        # a stump has at most 2 distinct predictions
        assert len(set(tree.predict(features).tolist())) <= 2

    def test_feature_importances_normalised(self):
        features, labels = _blobs()
        tree = DecisionTreeClassifier(max_depth=4).fit(features, labels)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_informative_feature_ranked_higher(self):
        rng = np.random.default_rng(2)
        signal = rng.normal(size=100)
        noise = rng.normal(size=100)
        features = np.column_stack([signal, noise])
        labels = (signal > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=3).fit(features, labels)
        assert tree.feature_importances_[0] > tree.feature_importances_[1]

    def test_zero_samples_raise(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((5, 2)), np.zeros(4))

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)

    def test_constant_features_fall_back_to_leaf(self):
        features = np.ones((10, 2))
        labels = np.array([0, 1] * 5)
        tree = DecisionTreeClassifier().fit(features, labels)
        assert tree.predict(features).shape == (10,)


class TestRegressor:
    def test_step_function_learned(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, size=(200, 1))
        y = np.where(x[:, 0] > 0, 5.0, -5.0)
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        predictions = tree.predict(x)
        assert np.abs(predictions - y).mean() < 0.5

    def test_linear_trend_approximated(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(0, 1, size=(300, 1))
        y = 3.0 * x[:, 0]
        tree = DecisionTreeRegressor(max_depth=6).fit(x, y)
        mse = float(np.mean((tree.predict(x) - y) ** 2))
        assert mse < 0.05

    def test_constant_target(self):
        x = np.random.default_rng(5).normal(size=(20, 2))
        y = np.full(20, 7.0)
        tree = DecisionTreeRegressor().fit(x, y)
        np.testing.assert_allclose(tree.predict(x), 7.0)

    def test_min_samples_leaf_respected(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(20, 1))
        y = rng.normal(size=20)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=10).fit(x, y)
        # at most 2 leaves possible with 20 samples and min leaf 10
        assert len(set(tree.predict(x).tolist())) <= 2

    def test_importances_exist(self):
        x, y = _blobs()
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y.astype(float))
        assert tree.feature_importances_.shape == (2,)
