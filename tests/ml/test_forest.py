"""Tests for random forests."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor


def _blobs(seed=0, n=50):
    rng = np.random.default_rng(seed)
    x0 = rng.normal(loc=-2, size=(n, 3))
    x1 = rng.normal(loc=+2, size=(n, 3))
    return np.vstack([x0, x1]), np.array([0] * n + [1] * n)


class TestClassifier:
    def test_separable_accuracy(self):
        features, labels = _blobs()
        forest = RandomForestClassifier(n_estimators=10, seed=1).fit(features, labels)
        assert (forest.predict(features) == labels).mean() > 0.95

    def test_proba_shape_and_sum(self):
        features, labels = _blobs()
        forest = RandomForestClassifier(n_estimators=5).fit(features, labels)
        proba = forest.predict_proba(features[:7])
        assert proba.shape == (7, 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_deterministic_given_seed(self):
        features, labels = _blobs()
        a = RandomForestClassifier(n_estimators=5, seed=3).fit(features, labels)
        b = RandomForestClassifier(n_estimators=5, seed=3).fit(features, labels)
        np.testing.assert_array_equal(a.predict(features), b.predict(features))

    def test_importances_averaged(self):
        features, labels = _blobs()
        forest = RandomForestClassifier(n_estimators=5).fit(features, labels)
        assert forest.feature_importances_.shape == (3,)
        assert forest.feature_importances_.sum() == pytest.approx(1.0, abs=0.2)

    def test_invalid_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_no_bootstrap(self):
        features, labels = _blobs()
        forest = RandomForestClassifier(n_estimators=3, bootstrap=False).fit(
            features, labels
        )
        assert (forest.predict(features) == labels).mean() > 0.9

    def test_multiclass(self):
        rng = np.random.default_rng(7)
        features = np.vstack([
            rng.normal(loc=c * 3, size=(30, 2)) for c in range(3)
        ])
        labels = np.repeat(np.arange(3), 30)
        forest = RandomForestClassifier(n_estimators=10).fit(features, labels)
        assert (forest.predict(features) == labels).mean() > 0.9


class TestRegressor:
    def test_step_function(self):
        rng = np.random.default_rng(8)
        x = rng.uniform(-1, 1, size=(200, 1))
        y = np.where(x[:, 0] > 0, 5.0, -5.0)
        forest = RandomForestRegressor(n_estimators=10).fit(x, y)
        assert np.abs(forest.predict(x) - y).mean() < 1.0

    def test_prediction_shape(self):
        x, y = _blobs()
        forest = RandomForestRegressor(n_estimators=3).fit(x, y.astype(float))
        assert forest.predict(x[:9]).shape == (9,)

    def test_averaging_smooths_variance(self):
        """A forest's training error should not exceed a single deep tree's
        test-style variance blow-up — predictions stay within label range."""
        rng = np.random.default_rng(9)
        x = rng.uniform(0, 1, size=(100, 1))
        y = np.sin(x[:, 0] * 6)
        forest = RandomForestRegressor(n_estimators=15).fit(x, y)
        predictions = forest.predict(x)
        assert predictions.min() >= y.min() - 0.2
        assert predictions.max() <= y.max() + 0.2
