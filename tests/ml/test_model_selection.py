"""Tests for k-fold cross-validation."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy
from repro.ml.model_selection import KFold, cross_val_score
from repro.ml.tree import DecisionTreeClassifier


class TestKFold:
    def test_folds_partition_samples(self):
        folds = list(KFold(n_splits=4, seed=0).split(22))
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(22))

    def test_train_test_disjoint(self):
        for train, test in KFold(n_splits=3, seed=1).split(20):
            assert not set(train) & set(test)
            assert len(train) + len(test) == 20

    def test_shuffling_depends_on_seed(self):
        a = [test.tolist() for _, test in KFold(4, seed=0).split(20)]
        b = [test.tolist() for _, test in KFold(4, seed=1).split(20)]
        assert a != b

    def test_deterministic_per_seed(self):
        a = [test.tolist() for _, test in KFold(4, seed=2).split(20)]
        b = [test.tolist() for _, test in KFold(4, seed=2).split(20)]
        assert a == b

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(3))

    def test_invalid_splits(self):
        with pytest.raises(ValueError):
            KFold(1)


class TestCrossValScore:
    def test_separable_data_high_score(self):
        rng = np.random.default_rng(0)
        features = np.vstack([
            rng.normal(loc=-3, size=(40, 2)), rng.normal(loc=3, size=(40, 2))
        ])
        labels = np.array([0] * 40 + [1] * 40)
        mean, std = cross_val_score(
            lambda: DecisionTreeClassifier(max_depth=3),
            features,
            labels,
            accuracy,
            n_splits=4,
        )
        assert mean > 0.9
        assert std >= 0.0

    def test_random_labels_near_chance(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(80, 3))
        labels = rng.integers(0, 2, size=80)
        mean, _ = cross_val_score(
            lambda: DecisionTreeClassifier(max_depth=2),
            features,
            labels,
            accuracy,
            n_splits=4,
        )
        assert 0.2 < mean < 0.8
