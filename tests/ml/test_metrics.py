"""Tests for ML metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    macro_f1,
    mean_squared_error,
    micro_f1,
)


class TestConfusionMatrix:
    def test_perfect(self):
        classes, matrix = confusion_matrix([0, 1, 1], [0, 1, 1])
        assert matrix.tolist() == [[1, 0], [0, 2]]

    def test_off_diagonal(self):
        _, matrix = confusion_matrix([0, 0, 1], [1, 0, 1])
        assert matrix[0, 1] == 1

    def test_unseen_predicted_class(self):
        classes, matrix = confusion_matrix([0, 0], [0, 2])
        assert list(classes) == [0, 2]
        assert matrix.shape == (2, 2)


class TestAccuracyAndF1:
    def test_accuracy(self):
        assert accuracy([1, 2, 3, 4], [1, 2, 0, 4]) == pytest.approx(0.75)

    def test_micro_f1_equals_accuracy_single_label(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 4, size=100)
        y_pred = rng.integers(0, 4, size=100)
        assert micro_f1(y_true, y_pred) == pytest.approx(accuracy(y_true, y_pred))

    def test_micro_f1_perfect(self):
        assert micro_f1([0, 1, 2], [0, 1, 2]) == 1.0

    def test_micro_f1_all_wrong(self):
        assert micro_f1([0, 0], [1, 1]) == 0.0

    def test_macro_f1_penalises_minority_errors(self):
        y_true = [0] * 90 + [1] * 10
        y_pred = [0] * 100  # never predicts the minority class
        assert macro_f1(y_true, y_pred) < micro_f1(y_true, y_pred)

    def test_macro_f1_perfect(self):
        assert macro_f1([0, 1, 0, 1], [0, 1, 0, 1]) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy([], [])


class TestMse:
    def test_known_value(self):
        assert mean_squared_error([1.0, 2.0], [2.0, 4.0]) == pytest.approx(2.5)

    def test_zero_on_perfect(self):
        assert mean_squared_error([1.5, 2.5], [1.5, 2.5]) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])
