"""Tests for the data-enrichment pipeline (Table V machinery)."""

import numpy as np
import pytest

from repro.core.metric import EuclideanMetric
from repro.core.thresholds import distance_threshold
from repro.lake.datagen import DataLakeGenerator
from repro.ml.enrichment import (
    ExactMatcher,
    SemanticMatcher,
    SimilarityMatcher,
    enrich_features,
    evaluate_task,
    pexeso_joinable_tables,
)
from repro.text.edit_distance import edit_similarity


@pytest.fixture(scope="module")
def task():
    gen = DataLakeGenerator(seed=7, n_entities=80, n_classes=4)
    return gen, gen.make_ml_task("classification", n_rows=80, n_lake_tables=16,
                                 rows_range=(15, 30))


class TestMatchers:
    def test_exact_matcher(self):
        matcher = ExactMatcher()
        out = matcher.match_column(["a", "b", "z"], ["b", "a", "a"])
        assert out == [1, 0, None]

    def test_similarity_matcher_threshold(self):
        matcher = SimilarityMatcher(edit_similarity, theta=0.8)
        out = matcher.match_column(["mario"], ["maria", "zzzzz"])
        assert out == [0]
        strict = SimilarityMatcher(edit_similarity, theta=0.99)
        assert strict.match_column(["mario"], ["maria", "zzzzz"]) == [None]

    def test_semantic_matcher_uses_entities(self, task):
        gen, _ = task
        entity = gen.entities[0]
        tau = distance_threshold(0.06, EuclideanMetric(), gen.dim)
        matcher = SemanticMatcher(gen.embedder, tau)
        synonym = entity.variants["synonym"][0]
        out = matcher.match_column([entity.canonical], [synonym, "unrelated junk"])
        assert out == [0]

    def test_semantic_matcher_empty_target(self, task):
        gen, _ = task
        matcher = SemanticMatcher(gen.embedder, 0.1)
        assert matcher.match_column(["x", "y"], []) == [None, None]


class TestEnrichFeatures:
    def test_no_tables_gives_base_features(self, task):
        _, ml_task = task
        result = enrich_features(ml_task, [], ExactMatcher())
        assert result.features.shape == (80, 2)  # base_0, base_1
        assert result.match_fraction == 0.0
        assert result.n_joined_tables == 0

    def test_joining_adds_features(self, task):
        gen, ml_task = task
        tables = sorted(ml_task.lake.true_joinable_tables(ml_task.query_entities, 0.1))
        tau = distance_threshold(0.06, EuclideanMetric(), gen.dim)
        result = enrich_features(ml_task, tables, SemanticMatcher(gen.embedder, tau))
        assert result.features.shape[1] > 2
        assert result.match_fraction > 0.0
        assert result.n_joined_tables > 0

    def test_no_nans_after_imputation(self, task):
        gen, ml_task = task
        tables = list(range(ml_task.lake.n_tables))
        tau = distance_threshold(0.06, EuclideanMetric(), gen.dim)
        result = enrich_features(ml_task, tables, SemanticMatcher(gen.embedder, tau))
        assert not np.isnan(result.features).any()

    def test_semantic_matches_more_than_exact(self, task):
        gen, ml_task = task
        tables = list(range(ml_task.lake.n_tables))
        tau = distance_threshold(0.06, EuclideanMetric(), gen.dim)
        semantic = enrich_features(ml_task, tables, SemanticMatcher(gen.embedder, tau))
        exact = enrich_features(ml_task, tables, ExactMatcher())
        assert semantic.match_fraction > exact.match_fraction

    def test_min_column_size_filters(self, task):
        gen, ml_task = task
        tables = list(range(ml_task.lake.n_tables))
        result = enrich_features(
            ml_task, tables, ExactMatcher(), min_column_size=10_000
        )
        assert result.n_joined_tables == 0


class TestPexesoJoinableTables:
    """Batch-engine joinable-table selection for the enrichment pipeline."""

    def test_matches_naive_selection(self, task):
        from repro.baselines.exact_naive import naive_search

        gen, ml_task = task
        tau = distance_threshold(0.06, EuclideanMetric(), gen.dim)
        vector_columns = ml_task.lake.vector_columns()
        query = gen.embedder.embed_column(
            ml_task.query_table.column(ml_task.key_column).values
        )
        got = pexeso_joinable_tables(vector_columns, [query], tau, 0.1)
        want = naive_search(vector_columns, query, tau, 0.1).column_ids
        assert got == [want]

    def test_batches_several_tasks_at_once(self, task):
        gen, ml_task = task
        tau = distance_threshold(0.06, EuclideanMetric(), gen.dim)
        vector_columns = ml_task.lake.vector_columns()
        query = gen.embedder.embed_column(
            ml_task.query_table.column(ml_task.key_column).values
        )
        got = pexeso_joinable_tables(
            vector_columns, [query, query, query], tau, 0.1, max_workers=2
        )
        assert got[0] == got[1] == got[2]

    def test_partitioned_selection_matches_single_index(self, task):
        gen, ml_task = task
        tau = distance_threshold(0.06, EuclideanMetric(), gen.dim)
        vector_columns = ml_task.lake.vector_columns()
        query = gen.embedder.embed_column(
            ml_task.query_table.column(ml_task.key_column).values
        )
        want = pexeso_joinable_tables(vector_columns, [query], tau, 0.1)
        got = pexeso_joinable_tables(
            vector_columns, [query], tau, 0.1,
            n_partitions=3, max_workers=2,
        )
        assert got == want

    def test_selected_tables_feed_enrichment(self, task):
        gen, ml_task = task
        tau = distance_threshold(0.06, EuclideanMetric(), gen.dim)
        vector_columns = ml_task.lake.vector_columns()
        query = gen.embedder.embed_column(
            ml_task.query_table.column(ml_task.key_column).values
        )
        tables = pexeso_joinable_tables(vector_columns, [query], tau, 0.1)[0]
        result = enrich_features(
            ml_task, tables, SemanticMatcher(gen.embedder, tau)
        )
        assert result.n_joined_tables > 0
        assert result.features.shape[0] == ml_task.query_table.n_rows

    def test_empty_query_batch(self, task):
        gen, ml_task = task
        assert pexeso_joinable_tables(ml_task.lake.vector_columns(), [], 0.1, 0.1) == []


class TestEvaluateTask:
    def test_enrichment_improves_classification(self, task):
        gen, ml_task = task
        tau = distance_threshold(0.06, EuclideanMetric(), gen.dim)
        tables = sorted(ml_task.lake.true_joinable_tables(ml_task.query_entities, 0.1))

        base = enrich_features(ml_task, [], ExactMatcher())
        base_score, _ = evaluate_task(ml_task, base, n_estimators=8)

        enriched = enrich_features(ml_task, tables, SemanticMatcher(gen.embedder, tau))
        enriched_score, _ = evaluate_task(ml_task, enriched, n_estimators=8)
        assert enriched_score > base_score

    def test_regression_task_runs(self):
        gen = DataLakeGenerator(seed=8, n_entities=60)
        ml_task = gen.make_ml_task("regression", n_rows=60, n_lake_tables=10,
                                   rows_range=(15, 30))
        tau = distance_threshold(0.06, EuclideanMetric(), gen.dim)
        tables = sorted(ml_task.lake.true_joinable_tables(ml_task.query_entities, 0.1))
        enriched = enrich_features(ml_task, tables, SemanticMatcher(gen.embedder, tau))
        mse, std = evaluate_task(ml_task, enriched, n_estimators=8)
        assert mse >= 0.0

    def test_rfe_path(self, task):
        gen, ml_task = task
        tau = distance_threshold(0.06, EuclideanMetric(), gen.dim)
        tables = sorted(ml_task.lake.true_joinable_tables(ml_task.query_entities, 0.1))
        enriched = enrich_features(ml_task, tables, SemanticMatcher(gen.embedder, tau))
        score, _ = evaluate_task(ml_task, enriched, n_estimators=8, rfe_target=3)
        assert 0.0 <= score <= 1.0
