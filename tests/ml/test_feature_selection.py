"""Tests for recursive feature elimination."""

import numpy as np
import pytest

from repro.ml.feature_selection import recursive_feature_elimination
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier


def _signal_plus_noise(seed=0, n=120, n_noise=6):
    rng = np.random.default_rng(seed)
    signal = rng.normal(size=(n, 2))
    labels = ((signal[:, 0] + signal[:, 1]) > 0).astype(int)
    noise = rng.normal(size=(n, n_noise))
    return np.hstack([signal, noise]), labels


class TestRfe:
    def test_keeps_signal_features(self):
        features, labels = _signal_plus_noise()
        selected = recursive_feature_elimination(
            lambda: RandomForestClassifier(n_estimators=10, max_depth=4),
            features,
            labels,
            n_features_to_select=2,
        )
        assert set(selected.tolist()) == {0, 1}

    def test_selected_count(self):
        features, labels = _signal_plus_noise()
        selected = recursive_feature_elimination(
            lambda: DecisionTreeClassifier(max_depth=4),
            features,
            labels,
            n_features_to_select=3,
        )
        assert selected.shape == (3,)

    def test_sorted_indices(self):
        features, labels = _signal_plus_noise()
        selected = recursive_feature_elimination(
            lambda: DecisionTreeClassifier(max_depth=4), features, labels, 4
        )
        assert selected.tolist() == sorted(selected.tolist())

    def test_select_all_is_identity(self):
        features, labels = _signal_plus_noise()
        selected = recursive_feature_elimination(
            lambda: DecisionTreeClassifier(max_depth=3),
            features,
            labels,
            features.shape[1],
        )
        assert selected.tolist() == list(range(features.shape[1]))

    @pytest.mark.parametrize("bad", [0, 99])
    def test_invalid_target(self, bad):
        features, labels = _signal_plus_noise()
        with pytest.raises(ValueError):
            recursive_feature_elimination(
                lambda: DecisionTreeClassifier(), features, labels, bad
            )
