"""Randomised exactness property: BatchSearch == exhaustive naive scan.

The batch engine inherits PEXESO's exactness guarantee: on *any* data the
joinable sets must equal the naive oracle's (``baselines/exact_naive``),
for every query of the batch. These tests exercise seeded synthetic data
lakes from :mod:`repro.lake.datagen` — realistic surface-form noise,
confusable siblings, clustered embeddings — plus raw random instances,
with randomised index shapes, thresholds and batch compositions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact_naive import naive_search
from repro.core.engine import BatchSearch
from repro.core.index import PexesoIndex
from repro.core.metric import normalize_rows
from repro.core.thresholds import distance_threshold
from repro.lake.datagen import DataLakeGenerator


def _lake_setup(seed: int):
    """A generated lake, its index and a mixed batch of query columns."""
    rng = np.random.default_rng(seed)
    gen = DataLakeGenerator(
        seed=seed, dim=int(rng.integers(8, 24)), n_entities=int(rng.integers(30, 70))
    )
    lake = gen.generate_lake(
        n_tables=int(rng.integers(8, 18)), rows_range=(5, 16)
    )
    vector_columns = lake.vector_columns()
    index = PexesoIndex.build(
        vector_columns,
        n_pivots=int(rng.integers(2, 5)),
        levels=int(rng.integers(2, 4)),
    )
    queries = []
    for i in range(int(rng.integers(3, 7))):
        table, _ = gen.generate_query_table(
            n_rows=int(rng.integers(4, 15)), domain=i % 3, name=f"q{i}"
        )
        queries.append(gen.embedder.embed_column(table.column("key").values))
    tau = distance_threshold(float(rng.uniform(0.03, 0.15)), index.metric, gen.dim)
    joinability = float(rng.uniform(0.1, 0.8))
    return vector_columns, index, queries, tau, joinability


@pytest.mark.parametrize("seed", range(8))
def test_batch_equals_naive_on_generated_lakes(seed):
    vector_columns, index, queries, tau, joinability = _lake_setup(seed)
    batch = BatchSearch(index).search_many(queries, tau, joinability)
    for query, got in zip(queries, batch.results):
        want = naive_search(vector_columns, query, tau, joinability)
        assert got.column_ids == want.column_ids


@pytest.mark.parametrize("seed", range(4))
def test_batch_exact_counts_equal_naive_counts(seed):
    vector_columns, index, queries, tau, joinability = _lake_setup(seed + 100)
    batch = BatchSearch(index, exact_counts=True).search_many(
        queries, tau, joinability
    )
    for query, got in zip(queries, batch.results):
        want = naive_search(vector_columns, query, tau, joinability)
        assert {h.column_id: h.match_count for h in got.joinable} == {
            h.column_id: h.match_count for h in want.joinable
        }


@pytest.mark.parametrize("seed", range(4))
def test_batch_with_per_query_thresholds_equals_naive(seed):
    vector_columns, index, queries, tau, _ = _lake_setup(seed + 200)
    rng = np.random.default_rng(seed)
    taus = [
        distance_threshold(float(rng.uniform(0.03, 0.2)), index.metric, index.dim)
        for _ in queries
    ]
    joins = [float(rng.uniform(0.1, 0.9)) for _ in queries]
    batch = BatchSearch(index, max_workers=4).search_many(queries, taus, joins)
    for query, t, j, got in zip(queries, taus, joins, batch.results):
        want = naive_search(vector_columns, query, t, j)
        assert got.column_ids == want.column_ids


@st.composite
def raw_instances(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    n_columns = draw(st.integers(2, 10))
    dim = draw(st.integers(2, 8))
    n_queries = draw(st.integers(1, 5))
    tau = draw(st.floats(0.01, 1.8))
    joinability = draw(st.floats(0.05, 1.0))
    n_pivots = draw(st.integers(1, min(5, dim)))
    levels = draw(st.integers(1, 4))
    row_block = draw(st.integers(1, 40))
    rng = np.random.default_rng(seed)
    columns = [
        normalize_rows(rng.normal(size=(int(rng.integers(1, 12)), dim)))
        for _ in range(n_columns)
    ]
    queries = [
        normalize_rows(rng.normal(size=(int(rng.integers(1, 9)), dim)))
        for _ in range(n_queries)
    ]
    return columns, queries, tau, joinability, n_pivots, levels, row_block


@settings(max_examples=25, deadline=None)
@given(instance=raw_instances())
def test_batch_equals_naive_on_random_instances(instance):
    columns, queries, tau, joinability, n_pivots, levels, row_block = instance
    index = PexesoIndex.build(columns, n_pivots=n_pivots, levels=levels)
    batch = BatchSearch(index, row_block_size=row_block).search_many(
        queries, tau, joinability
    )
    for query, got in zip(queries, batch.results):
        want = naive_search(columns, query, tau, joinability)
        assert got.column_ids == want.column_ids
