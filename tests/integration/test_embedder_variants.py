"""Integration: the framework treats embedders as plug-ins (§II-A).

The same discovery pipeline must work with every embedder implementation,
and with the caching wrapper, producing identical results for identical
embedding functions.
"""

import pytest

from repro.embedding.cache import CachingEmbedder
from repro.embedding.hashing import HashingNGramEmbedder
from repro.embedding.vocab import VocabularyEmbedder
from repro.lake.datagen import DataLakeGenerator
from repro.lake.discovery import JoinableTableSearch


@pytest.fixture(scope="module")
def lake():
    gen = DataLakeGenerator(seed=23, n_entities=40, dim=16)
    return gen, gen.generate_lake(
        n_tables=12, rows_range=(8, 14),
        distractor_fraction=0.0, noise_row_fraction=0.0,
    )


class TestPluggableEmbedders:
    def test_caching_wrapper_identical_results(self, lake):
        gen, generated = lake
        query, _ = gen.generate_query_table(n_rows=10, domain=0)

        plain = JoinableTableSearch(
            HashingNGramEmbedder(dim=32, seed=7), n_pivots=3, levels=3,
            preprocess=False,
        ).index_tables(generated.tables)
        cached = JoinableTableSearch(
            CachingEmbedder(HashingNGramEmbedder(dim=32, seed=7)),
            n_pivots=3, levels=3, preprocess=False,
        ).index_tables(generated.tables)

        hits_plain = plain.search(query, tau_fraction=0.15, joinability=0.3,
                                  with_mappings=False)
        hits_cached = cached.search(query, tau_fraction=0.15, joinability=0.3,
                                    with_mappings=False)
        assert {h.ref for h in hits_plain} == {h.ref for h in hits_cached}

    def test_cache_actually_hits_on_repeated_values(self, lake):
        gen, generated = lake
        cached = CachingEmbedder(HashingNGramEmbedder(dim=32, seed=7))
        search = JoinableTableSearch(cached, n_pivots=3, levels=3,
                                     preprocess=False)
        search.index_tables(generated.tables)
        assert cached.hits > 0  # entity surfaces repeat across tables

    def test_vocabulary_embedder_with_synonyms(self, lake):
        """A vocabulary embedder with synonym groups joins across synonyms."""
        gen, generated = lake
        embedder = VocabularyEmbedder(dim=32, seed=3, synonym_noise=0.01)
        # teach the vocabulary that each entity's canonical and synonym
        # variants mean the same thing (as GloVe would have learned)
        for entity in gen.entities:
            words = set()
            for surface in [entity.canonical, *entity.variants["synonym"]]:
                words.update(surface.lower().split())
            embedder.add_synonym_group(words)

        search = JoinableTableSearch(embedder, n_pivots=3, levels=3,
                                     preprocess=False)
        search.index_tables(generated.tables)
        query, q_entities = gen.generate_query_table(
            n_rows=10, domain=0, kind_weights={"synonym": 1.0}
        )
        hits = search.search(query, tau_fraction=0.1, joinability=0.2,
                             with_mappings=False)
        truth = generated.true_joinable_tables(q_entities, 0.2)
        got = {int(h.ref.table_name.split("_")[1]) for h in hits}
        # synonym-only queries are recoverable through the synonym groups
        assert got & truth
