"""End-to-end integration: CSV lake on disk -> discovery -> enrichment."""

import numpy as np
import pytest

from repro.core.metric import EuclideanMetric
from repro.core.thresholds import distance_threshold
from repro.embedding.hashing import HashingNGramEmbedder
from repro.lake.csv_loader import dump_csv, load_csv
from repro.lake.datagen import DataLakeGenerator
from repro.lake.discovery import JoinableTableSearch
from repro.lake.repository import TableRepository
from repro.ml.enrichment import SemanticMatcher, enrich_features, evaluate_task


@pytest.fixture(scope="module")
def gen():
    return DataLakeGenerator(seed=42, n_entities=80, dim=24)


@pytest.fixture(scope="module")
def lake(gen):
    return gen.generate_lake(n_tables=25, rows_range=(10, 20))


class TestCsvRoundtripDiscovery:
    def test_lake_via_disk(self, gen, lake, tmp_path_factory):
        """Dump the lake to CSVs, reload through the repository, search."""
        tmp = tmp_path_factory.mktemp("lake")
        for table in lake.tables:
            dump_csv(table, tmp / f"{table.name}.csv")
        repo = TableRepository(preprocess=False)
        assert repo.load_directory(tmp) == 25

        search = JoinableTableSearch(gen.embedder, n_pivots=3, levels=3, preprocess=False)
        search.index_tables([load_csv(tmp / f"{t.name}.csv", key_column="key")
                             for t in lake.tables])
        query, q_entities = gen.generate_query_table(n_rows=15, domain=0)
        hits = search.search(query, tau_fraction=0.06, joinability=0.4)
        got = {h.ref.table_name for h in hits}
        truth = {f"table_{i}" for i in lake.true_joinable_tables(q_entities, 0.4)}
        assert got == truth


class TestHashingEmbedderEndToEnd:
    def test_misspelling_robust_discovery(self):
        """With the fastText-style embedder (no oracle), a lake keyed by
        misspelled variants is still discoverable at a loose tau."""
        embedder = HashingNGramEmbedder(dim=48, seed=3)
        gen = DataLakeGenerator(seed=9, n_entities=40, dim=24)
        lake = gen.generate_lake(
            n_tables=12,
            rows_range=(8, 14),
            kind_weights={"exact": 0.5, "misspell": 0.5, "abbrev": 0.0, "synonym": 0.0},
            distractor_fraction=0.0,
            noise_row_fraction=0.0,
        )
        search = JoinableTableSearch(embedder, n_pivots=3, levels=3, preprocess=False)
        search.index_tables(lake.tables)
        query, q_entities = gen.generate_query_table(
            n_rows=12, domain=0, kind_weights={"exact": 1.0}
        )
        strict_hits = search.search(query, tau_fraction=0.02, joinability=0.3,
                                    with_mappings=False)
        loose_hits = search.search(query, tau_fraction=0.25, joinability=0.3,
                                   with_mappings=False)
        # loosening tau lets the subword embedder absorb misspellings
        assert len(loose_hits) >= len(strict_hits)


class TestFullMlPipeline:
    def test_task_end_to_end(self, gen):
        task = gen.make_ml_task("classification", n_rows=60, n_lake_tables=12,
                                rows_range=(15, 30))
        tau = distance_threshold(0.06, EuclideanMetric(), gen.dim)
        matcher = SemanticMatcher(gen.embedder, tau)

        # discover joinable tables with PEXESO over the lake's key columns
        search = JoinableTableSearch(gen.embedder, n_pivots=3, levels=3,
                                     preprocess=False)
        search.index_tables(task.lake.tables)
        hits = search.search(task.query_table, query_column="key",
                             tau_fraction=0.06, joinability=0.1,
                             with_mappings=False)
        table_ids = [int(h.ref.table_name.split("_")[1]) for h in hits]

        enriched = enrich_features(task, table_ids, matcher)
        base = enrich_features(task, [], matcher)
        enriched_score, _ = evaluate_task(task, enriched, n_estimators=8)
        base_score, _ = evaluate_task(task, base, n_estimators=8)
        assert enriched_score > base_score
