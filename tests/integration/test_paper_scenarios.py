"""Narrative tests reproducing the paper's worked examples."""

import numpy as np
import pytest

from repro.core.metric import EuclideanMetric
from repro.core.thresholds import distance_threshold
from repro.embedding.semantic import SyntheticSemanticEmbedder
from repro.lake.discovery import JoinableTableSearch
from repro.lake.table import Column, Table


class TestTableIExample:
    """The paper's Table I: 'Population' joins 'Median household income'
    even though two of the four race names use different terminology."""

    @pytest.fixture()
    def embedder(self):
        emb = SyntheticSemanticEmbedder(dim=32, noise_scale=0.01, seed=0)
        pairs = {
            "race:white": ["White"],
            "race:black": ["Black"],
            "race:native": ["American Indian/Alaska Native", "Mainland Indigenous"],
            "race:pacific": ["Hawaiian/Guamanian/Samoan", "Pacific Islander"],
        }
        for entity, surfaces in pairs.items():
            for surface in surfaces:
                emb.register_surface_form(surface, entity)
        return emb

    @pytest.fixture()
    def tables(self):
        population = Table(
            "population",
            [
                Column("Race", [
                    "White", "Black",
                    "American Indian/Alaska Native",
                    "Hawaiian/Guamanian/Samoan",
                    "White",  # padding to pass the 5-row corpus filter
                ]),
                Column("Population", [
                    "234,370,202", "40,610,815", "2,632,102", "570,116",
                    "234,370,202",
                ]),
            ],
            key_column="Race",
        )
        income = Table(
            "median_income",
            [
                Column("Col 1", [
                    "White", "Black", "Mainland Indigenous", "Pacific Islander",
                    "Black",
                ]),
                Column("Col 2", ["65,902", "41,511", "44,772", "61,911", "41,511"]),
            ],
            key_column="Col 1",
        )
        return population, income

    def test_semantic_join_finds_income_table(self, embedder, tables):
        population, income = tables
        search = JoinableTableSearch(embedder, n_pivots=2, levels=2,
                                     preprocess=False)
        search.index_tables([income])
        hits = search.search(population, tau_fraction=0.06, joinability=0.8)
        assert [h.ref.table_name for h in hits] == ["median_income"]
        # every query record maps to its semantically-equal counterpart
        mapping = dict(hits[0].record_mapping)
        q_values = population.column("Race").values
        t_values = income.column("Col 1").values
        for qi, ti in mapping.items():
            assert embedder.entity_of(q_values[qi]) == embedder.entity_of(t_values[ti])

    def test_equi_join_misses_the_renamed_races(self, tables):
        """The motivating failure: exact matching finds only White/Black."""
        from repro.baselines.string_joins import equi_join_search

        population, income = tables
        result = equi_join_search(
            [income.column("Col 1").values],
            population.column("Race").values,
            joinability=0.8,
        )
        assert result.column_ids == []  # only 3/5 records equi-match


class TestFigure1Workflow:
    """Fig. 1's offline conversions: dates and abbreviations reach the
    embedder in full form, so differently-formatted dates join."""

    def test_date_formats_join(self):
        from repro.embedding.hashing import HashingNGramEmbedder

        lake_table = Table(
            "events",
            [Column("when", [
                "March 8 1998", "November 21 1998", "July 4 2001",
                "January 1 2002", "June 15 2003",
            ])],
            key_column="when",
        )
        query = Table(
            "my_events",
            [Column("date", [
                "1998-03-08", "11/21/1998", "Jul 4, 2001",
                "1/1/2002", "15 Jun 2003",
            ])],
            key_column="date",
        )
        search = JoinableTableSearch(
            HashingNGramEmbedder(dim=48, seed=2), n_pivots=2, levels=2,
            preprocess=True,
        )
        search.index_tables([lake_table])
        hits = search.search(query, tau_fraction=0.02, joinability=1.0)
        assert [h.ref.table_name for h in hits] == ["events"]
