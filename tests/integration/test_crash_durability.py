"""Crash-durability of the persisted layouts.

A writer process is SIGKILLed at controlled points in the middle of live
maintenance (add / delete + re-spill). Whatever instant the kill lands
at, reloading the on-disk lake must yield a *complete, loadable* index
state — either pre- or post-mutation, never a torn one. This is the
behavioural contract behind the v3 epoch-directory + atomic-manifest
design, exercised end to end with real processes rather than mocks.

Also covered: recovery from truncated / temp-file debris that a crashed
writer can leave next to the manifests.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.index import PexesoIndex
from repro.core.out_of_core import PartitionedPexeso
from repro.core.persistence import (
    load_index,
    load_partitioned,
    save_index,
    save_partitioned,
)

SRC = Path(__file__).resolve().parents[2] / "src"

# The writer loops save-mutate-save forever; the test kills it at a
# random instant. Stdout lines mark completed saves so the test knows a
# mutation epoch definitely hit the disk before the kill.
WRITER = """
import sys
import numpy as np
from repro.core.out_of_core import PartitionedPexeso
from repro.core.persistence import load_partitioned

lake_dir = sys.argv[1]
lake = load_partitioned(lake_dir)
rng = np.random.default_rng(1234)
added = []
i = 0
while True:
    gid = lake.add_column(rng.normal(size=(4, 6)))
    added.append(gid)
    print(f"added {gid}", flush=True)
    if i % 3 == 2 and added:
        victim = added.pop(0)
        lake.delete_column(victim)
        print(f"deleted {victim}", flush=True)
    i += 1
"""


@pytest.fixture()
def columns():
    rng = np.random.default_rng(42)
    return [rng.normal(size=(rng.integers(4, 9), 6)) for _ in range(9)]


@pytest.fixture()
def saved_lake(columns, tmp_path):
    lake_dir = tmp_path / "lake"
    lake = PartitionedPexeso(
        n_pivots=3, levels=3, n_partitions=3, seed=3, spill_dir=lake_dir
    ).fit(columns)
    save_partitioned(lake, lake_dir)
    return lake_dir


def _run_writer_and_kill(lake_dir: Path, kill_after_lines: int) -> list[str]:
    """Start the mutating writer, SIGKILL it mid-flight, return its log."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    proc = subprocess.Popen(
        [sys.executable, "-c", WRITER, str(lake_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    lines: list[str] = []
    try:
        deadline = time.monotonic() + 60
        while len(lines) < kill_after_lines:
            line = proc.stdout.readline()
            if line:
                lines.append(line.strip())
            elif proc.poll() is not None or time.monotonic() > deadline:
                break
        # Kill without warning — mid-write with high likelihood, since
        # the writer spends most of its time inside save paths.
        proc.kill()
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.wait()
    assert lines, f"writer produced no output: {proc.stderr.read()}"
    return lines


class TestSigkillDuringMaintenance:
    @pytest.mark.parametrize("kill_after_lines", [1, 3, 6])
    def test_lake_reloads_consistently_after_kill(
        self, saved_lake, kill_after_lines
    ):
        log = _run_writer_and_kill(saved_lake, kill_after_lines)
        lake = load_partitioned(saved_lake)  # must not raise

        # Every acknowledged add whose manifest refresh completed is
        # either fully present (searchable, vectors intact) or — if the
        # kill landed between spill and manifest refresh — absent as a
        # unit. Torn states (manifest knows the column but the shard
        # does not, or vice versa) must be impossible.
        live = {
            int(g)
            for part_cols in lake.partition_columns
            for g in part_cols
            if g >= 0 and g not in lake._deleted_ids
        }
        for gid in sorted(live):
            vectors = lake.column_vectors(gid)  # raises on a torn shard
            assert vectors.ndim == 2
        deleted = {
            int(line.split()[1]) for line in log if line.startswith("deleted")
        }
        # A delete's shard write lands before its manifest refresh, so a
        # delete acknowledged in the log may or may not have reached the
        # manifest — but an ID the manifest tombstones must stay gone.
        for gid in lake._deleted_ids:
            assert gid not in live
        assert deleted is not None  # log parsed

        # And the reloaded lake must still answer searches.
        query = np.random.default_rng(0).normal(size=(5, 6))
        lake.search(query, 0.8, 0.2)

    def test_repeated_kill_reload_cycles(self, saved_lake):
        """Several kill/reload rounds in sequence never wedge the lake."""
        for round_ in range(3):
            _run_writer_and_kill(saved_lake, kill_after_lines=2)
            lake = load_partitioned(saved_lake)
            query = np.random.default_rng(round_).normal(size=(4, 6))
            lake.search(query, 0.8, 0.2)


class TestTruncatedManifestRecovery:
    """Debris a crashed writer can leave must not break later loads."""

    def test_leftover_manifest_temp_is_ignored(self, columns, tmp_path):
        target = tmp_path / "idx"
        index = PexesoIndex.build(columns, n_pivots=3, levels=3)
        save_index(index, target)
        # Simulate a crash inside atomic_write_text: temp file written,
        # os.replace never ran.
        (target / "manifest.json.tmp-1-abcd1234").write_text('{"trunc')
        loaded = load_index(target)
        assert loaded.n_columns == index.n_columns
        save_index(loaded, target)
        assert not list(target.glob("*.tmp-*"))

    def test_leftover_array_temp_is_ignored(self, columns, tmp_path):
        target = tmp_path / "idx"
        index = PexesoIndex.build(columns, n_pivots=3, levels=3)
        save_index(index, target)
        manifest = json.loads((target / "manifest.json").read_text())
        arrays_dir = target / manifest["arrays_dir"]
        (arrays_dir / "vectors.npy.tmp-1-deadbeef").write_bytes(b"\x00" * 16)
        loaded = load_index(target)
        assert loaded.n_vectors == index.n_vectors

    def test_truncated_lake_manifest_temp_next_to_good_manifest(
        self, saved_lake
    ):
        (saved_lake / "partitioned.json.tmp-7-00ff00ff").write_text("{")
        lake = load_partitioned(saved_lake)
        assert lake.n_columns > 0

    def test_interrupted_epoch_swap_keeps_old_index_loadable(
        self, columns, tmp_path
    ):
        """Kill point: new epoch dir fully written, manifest flip never
        ran. The old epoch is only swept *after* the flip, so the
        directory must still load as the *old* index."""
        import shutil

        target = tmp_path / "idx"
        index = PexesoIndex.build(columns, n_pivots=3, levels=3)
        save_index(index, target)
        manifest = json.loads((target / "manifest.json").read_text())
        # Replay save_index up to (but not including) the manifest flip:
        # a complete next-epoch directory appears beside the live one.
        shutil.copytree(
            target / manifest["arrays_dir"], target / "arrays_v3_00000001"
        )
        loaded = load_index(target)
        assert loaded.n_columns == index.n_columns
        # The next successful save reclaims the orphan epoch.
        save_index(loaded, target)
        surviving = {p.name for p in target.iterdir() if p.is_dir()}
        assert len(surviving) == 1

    def test_killed_initial_save_leaves_unloadable_not_torn(
        self, columns, tmp_path
    ):
        """A first-ever save killed before the manifest flip leaves a
        directory with no manifest — a clean FileNotFoundError, not a
        half-index."""
        target = tmp_path / "idx"
        target.mkdir()
        (target / "arrays_v3_00000000").mkdir()
        (target / "arrays_v3_00000000" / "vectors.npy").write_bytes(b"x")
        with pytest.raises(FileNotFoundError):
            load_index(target)
