"""Randomized differential oracle over every search implementation.

One seeded harness generates small random lakes — varying dimensionality,
column count and length, metric, τ selectivity and T — and asserts that
every implementation of joinable-column search agrees bit for bit:

    exact_naive == pexeso_search == BatchSearch
                == PartitionedPexeso (all partitioners, in-memory + spill)

and that the merged sharded top-k equals the single-index top-k equals
the k-prefix of the exhaustively ranked columns, for several k.

A second lane replays the same seeds through a **2-worker cluster**
(in-process coordinator + workers, replication 2): scatter-gathered
hits and top-k prefixes must equal the oracle, including after routed
add/delete mutations and with one worker killed mid-run (failover to
the surviving replica).

This is the safety net behind the parallel shard engine: the sequential
scalar pipeline, the batch engine and the partitioned fan-out share no
result-assembly code, so a merge bug, an off-by-one in the global ID
remap or an unsound theta floor shows up here as a seed-reproducible
divergence. Run over >= 20 seeds in CI (see the differential-oracle
job).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact_naive import naive_search
from repro.core.engine import BatchSearch
from repro.core.index import PexesoIndex
from repro.core.metric import get_metric, normalize_rows
from repro.core.out_of_core import PartitionedPexeso
from repro.core.partition import PARTITIONERS
from repro.core.search import pexeso_search
from repro.core.topk import naive_topk, pexeso_topk

SEEDS = list(range(24))  # >= 20 seeds, per the CI contract

METRICS = ("euclidean", "manhattan", "chebyshev")


def make_scenario(seed: int):
    """One random lake + query workload; every knob varies with the seed."""
    rng = np.random.default_rng(seed)
    dim = int(rng.integers(3, 9))
    n_columns = int(rng.integers(8, 21))
    columns = [
        normalize_rows(rng.normal(size=(int(rng.integers(2, 15)), dim)))
        for _ in range(n_columns)
    ]
    metric = get_metric(METRICS[seed % len(METRICS)])

    # Pick τ from an actual distance quantile so selectivity is always
    # interesting (a τ below every distance or above all of them would
    # make the oracle vacuous).
    sample = np.concatenate(columns, axis=0)
    take = sample[rng.choice(sample.shape[0], size=min(40, sample.shape[0]), replace=False)]
    distances = metric.pairwise(take, take)
    distances = distances[distances > 0]
    tau = float(np.quantile(distances, float(rng.uniform(0.05, 0.5))))

    queries = [
        normalize_rows(rng.normal(size=(int(rng.integers(2, 12)), dim))),
        columns[int(rng.integers(0, n_columns))],  # a repository column
    ]

    # T as a fraction or an absolute count (within every query's size),
    # seed-dependent.
    min_rows = min(q.shape[0] for q in queries)
    joinability = (
        float(rng.uniform(0.1, 0.8))
        if rng.random() < 0.5
        else int(rng.integers(1, min_rows + 1))
    )
    n_partitions = int(rng.integers(1, 6))
    return columns, queries, metric, tau, joinability, n_partitions


def hit_rows(result) -> list[tuple[int, int, float]]:
    return [(h.column_id, h.match_count, h.joinability) for h in result.joinable]


@pytest.mark.parametrize("seed", SEEDS)
def test_all_implementations_agree(seed, tmp_path):
    columns, queries, metric, tau, joinability, n_partitions = make_scenario(seed)
    index = PexesoIndex.build(columns, metric=metric, n_pivots=2, levels=3)

    # -- threshold search: naive == scalar == batch (exact counts) ----------------
    naive = [
        naive_search(columns, q, tau, joinability, metric=metric) for q in queries
    ]
    scalar = [
        pexeso_search(index, q, tau, joinability, exact_counts=True) for q in queries
    ]
    batch = BatchSearch(index, exact_counts=True).search_many(
        queries, tau, joinability
    )
    for want, got_scalar, got_batch in zip(naive, scalar, batch.results):
        assert hit_rows(got_scalar) == hit_rows(want), f"scalar != naive (seed {seed})"
        assert hit_rows(got_batch) == hit_rows(want), f"batch != naive (seed {seed})"

    # Default mode (early termination allowed): the *sets* of joinable
    # columns still agree across every implementation.
    default_ids = [pexeso_search(index, q, tau, joinability).column_ids for q in queries]
    for want, got in zip(naive, default_ids):
        assert got == want.column_ids

    # -- partitioned: every partitioner, in-memory and spilled --------------------
    for partitioner in sorted(PARTITIONERS):
        for spill in (None, tmp_path / f"{partitioner}_{seed}"):
            lake = PartitionedPexeso(
                metric=metric,
                n_pivots=2,
                levels=3,
                n_partitions=n_partitions,
                partitioner=partitioner,
                spill_dir=spill,
                max_workers=2,
            ).fit(columns)
            sharded = lake.search_many(
                queries, tau, joinability, exact_counts=True
            )
            for want, got in zip(naive, sharded.results):
                assert hit_rows(got) == hit_rows(want), (
                    f"partitioned ({partitioner}, spill={spill is not None}) "
                    f"!= naive (seed {seed})"
                )

    # -- top-k: sharded theta-shared == single-index == naive prefix --------------
    lake = PartitionedPexeso(
        metric=metric, n_pivots=2, levels=3, n_partitions=n_partitions,
        max_workers=2,
    ).fit(columns)
    query = queries[0]
    full = naive_topk(columns, query, tau, len(columns), metric=metric)
    for k in (1, 3, len(columns) + 5):
        want = full[:k]
        single = pexeso_topk(index, query, tau, k)
        merged = lake.topk(query, tau, k)
        assert [(c, n) for c, n, _ in single.hits] == [
            (c, n) for c, n, _ in want
        ], f"single top-{k} != naive (seed {seed})"
        assert merged.hits == single.hits, (
            f"merged top-{k} != single-index top-{k} (seed {seed})"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_cluster_matches_oracle(seed, tmp_path):
    """The distributed lane: a 2-worker cluster replays the same seeds.

    Every scatter-gathered hit and every top-k prefix must equal the
    exhaustive oracle — through replica write-through mutations and one
    simulated worker crash (the coordinator discovers the death via a
    failed scatter and fails the partitions over to the surviving
    replica, mid-run).
    """
    from repro.cluster import LocalCluster
    from repro.core.persistence import save_partitioned

    columns, queries, metric, tau, joinability, n_partitions = make_scenario(seed)
    lake = PartitionedPexeso(
        metric=metric, n_pivots=2, levels=3, n_partitions=n_partitions,
    ).fit(columns)
    lake_dir = tmp_path / "lake"
    save_partitioned(lake, lake_dir)

    def check_search(client, repository, live_ids):
        for query in queries:
            want = naive_search(repository, query, tau, joinability, metric=metric)
            want_rows = [
                (cid, count, jn) for cid, count, jn in hit_rows(want)
                if cid in live_ids
            ]
            reply = client.search(vectors=query, tau=tau, joinability=joinability)
            got = [
                (h["column_id"], h["match_count"], h["joinability"])
                for h in reply["hits"]
            ]
            assert got == want_rows, f"cluster search != naive (seed {seed})"

    def check_topk(client, repository, live_ids):
        query = queries[0]
        ranked = [
            row for row in
            naive_topk(repository, query, tau, len(repository), metric=metric)
            if row[0] in live_ids
        ]
        for k in (1, 3):
            reply = client.topk(vectors=query, tau=tau, k=k)
            got = [(h["column_id"], h["match_count"]) for h in reply["hits"]]
            assert got == [(c, n) for c, n, _ in ranked[:k]], (
                f"cluster top-{k} != naive (seed {seed})"
            )

    # replication=2 over 2 workers: every partition lives on both, so the
    # lake stays fully serviceable with either worker dead
    with LocalCluster(
        lake_dir, n_workers=2, replication=2, mode="thread",
        worker_kwargs=dict(exact_counts=True, window_ms=None, cache_size=0),
    ) as cluster:
        client = cluster.client
        live_ids = set(range(len(columns)))
        check_search(client, columns, live_ids)
        check_topk(client, columns, live_ids)

        # -- routed mutations: one add (write-through) + one delete -----------
        rng = np.random.default_rng(1000 + seed)
        new_column = normalize_rows(
            rng.normal(size=(int(rng.integers(2, 10)), queries[0].shape[1]))
        )
        added = client.add_column(vectors=new_column)
        assert added["column_id"] == len(columns)
        victim = int(rng.integers(0, len(columns)))
        client.delete_column(victim)

        repository = columns + [new_column]  # naive ids stay positional
        live_ids = (live_ids | {added["column_id"]}) - {victim}
        check_search(client, repository, live_ids)
        check_topk(client, repository, live_ids)

        # -- failover: kill one worker mid-run, every answer stays exact ------
        cluster.kill_worker(seed % 2)
        check_search(client, repository, live_ids)
        check_topk(client, repository, live_ids)
        # the crash is observed (an explicit probe covers the case where
        # routing never touched the dead worker, e.g. a 1-partition lake)
        probed = client.health_check()
        assert probed["workers"][seed % 2] == "down"
        assert probed["serviceable"] is True  # the replica covers it all


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_cluster_matches_oracle(seed, tmp_path):
    """The chaos lane: the cluster stays *exact* under scripted faults.

    Each seed replays its scenario through a replicated 2-worker cluster
    while a deterministic fault schedule abuses both hops: worker 0's
    server randomly delays, drops and 500s search traffic, and the
    coordinator->worker transport randomly drops and black-holes calls.
    A request is allowed to *fail* (HTTP 5xx at the front door — faults
    are faults), but every answer that arrives must be bit-identical to
    the exhaustive oracle: hedged duplicates, replica failover, retries
    and half-open re-promotion may change *which* worker answers, never
    *what* it answers. Fault rules are scoped to ``/search`` / ``/topk``
    only, so the mutation write-through and recovery replay stay clean.
    """
    from repro.cluster import LocalCluster
    from repro.cluster.resilience import ResilienceConfig
    from repro.core.persistence import save_partitioned
    from repro.serve.client import ServeError
    from repro.serve.faults import FaultInjector

    columns, queries, metric, tau, joinability, n_partitions = make_scenario(seed)
    lake = PartitionedPexeso(
        metric=metric, n_pivots=2, levels=3, n_partitions=n_partitions,
    ).fit(columns)
    lake_dir = tmp_path / "lake"
    save_partitioned(lake, lake_dir)

    worker_faults = FaultInjector(seed=seed)
    worker_faults.script("delay", path="/search", probability=0.25, delay=0.03)
    worker_faults.script("error", path="/search", probability=0.15, status=500)
    worker_faults.script("drop", path="/topk", probability=0.2)
    coord_faults = FaultInjector(seed=seed + 100)
    coord_faults.script("drop", path="/search", probability=0.15)
    coord_faults.script("blackhole", path="/topk", probability=0.1, delay=0.02)

    allowed_failures = {500, 502, 503, 504}

    def chaos_search(client, repository, live_ids):
        answered = 0
        for round_ in range(3):
            for qi, query in enumerate(queries):
                want = naive_search(
                    repository, query, tau, joinability, metric=metric
                )
                want_rows = [
                    (cid, count, jn) for cid, count, jn in hit_rows(want)
                    if cid in live_ids
                ]
                deadline_ms = 30_000.0 if (round_ + qi) % 2 else None
                try:
                    reply = client.search(
                        vectors=query, tau=tau, joinability=joinability,
                        deadline_ms=deadline_ms,
                    )
                except ServeError as exc:
                    assert exc.status in allowed_failures, (
                        f"unexpected status {exc.status} (seed {seed})"
                    )
                    continue
                answered += 1
                got = [
                    (h["column_id"], h["match_count"], h["joinability"])
                    for h in reply["hits"]
                ]
                assert got == want_rows, (
                    f"chaos answer != naive (seed {seed})"
                )
        return answered

    def chaos_topk(client, repository, live_ids):
        query = queries[0]
        ranked = [
            row for row in
            naive_topk(repository, query, tau, len(repository), metric=metric)
            if row[0] in live_ids
        ]
        for k in (1, 3):
            try:
                reply = client.topk(vectors=query, tau=tau, k=k)
            except ServeError as exc:
                assert exc.status in allowed_failures
                continue
            got = [(h["column_id"], h["match_count"]) for h in reply["hits"]]
            assert got == [(c, n) for c, n, _ in ranked[:k]], (
                f"chaos top-{k} != naive (seed {seed})"
            )

    with LocalCluster(
        lake_dir, n_workers=2, replication=2, mode="thread",
        worker_kwargs=dict(exact_counts=True, window_ms=None, cache_size=0),
        worker_fault_injectors=[worker_faults, None],
        coordinator_kwargs=dict(
            retries=1,
            fault_injector=coord_faults,
            resilience=ResilienceConfig(
                hedge_default_delay=0.02, breaker_cooldown=0.05
            ),
        ),
    ) as cluster:
        client = cluster.client
        live_ids = set(range(len(columns)))
        chaos_search(client, columns, live_ids)
        chaos_topk(client, columns, live_ids)

        # routed mutations run clean (fault rules don't match /columns);
        # replicas demoted by chaos catch up through the mutation log.
        # Probe first: chaos may have demoted *both* replicas of some
        # partition, and a write needs at least one live owner.
        client.health_check()
        rng = np.random.default_rng(2000 + seed)
        new_column = normalize_rows(
            rng.normal(size=(int(rng.integers(2, 10)), queries[0].shape[1]))
        )
        added = client.add_column(vectors=new_column)
        victim = int(rng.integers(0, len(columns)))
        client.delete_column(victim)
        repository = columns + [new_column]
        live_ids = (live_ids | {added["column_id"]}) - {victim}

        chaos_search(client, repository, live_ids)
        chaos_topk(client, repository, live_ids)
        # the schedule actually exercised the cluster
        assert any(rule.matches for rule in worker_faults.rules)
        assert any(rule.matches for rule in coord_faults.rules)

        # -- recovery: faults off, probe, then strict full parity -------------
        worker_faults.clear()
        coord_faults.clear()
        probed = client.health_check()
        assert probed["serviceable"] is True
        assert probed["workers"] == ["up", "up"], (
            f"chaos demotions must heal once faults stop (seed {seed})"
        )
        for query in queries:
            want = naive_search(
                repository, query, tau, joinability, metric=metric
            )
            want_rows = [
                (cid, count, jn) for cid, count, jn in hit_rows(want)
                if cid in live_ids
            ]
            reply = client.search(
                vectors=query, tau=tau, joinability=joinability
            )
            got = [
                (h["column_id"], h["match_count"], h["joinability"])
                for h in reply["hits"]
            ]
            assert got == want_rows, f"post-chaos search != naive (seed {seed})"


@pytest.mark.parametrize("seed", SEEDS)
def test_ann_lane_matches_oracle(seed):
    """The ANN lane: the approximate tier never invents a hit.

    Every seed's scenario replays through the opt-in ANN candidate tier
    at several beam widths. The contract under test:

    * **zero false positives** — an ANN hit is always an exact hit with
      a bit-identical match count and joinability, at *every* beam
      width (candidates still pass the unchanged exact verifier);
    * **default knob recall** — at ``DEFAULT_EF_SEARCH`` the measured
      recall against the exact engine is >= 0.9 on every seed;
    * **knob -> max degenerates to exact** — ``ef_search`` at the
      column count returns the exact answer bit for bit, on both the
      single-index and the partitioned backend.
    """
    from repro.core.ann import DEFAULT_EF_SEARCH, measure_recall
    from repro.core.out_of_core import LakeSearcher

    columns, queries, metric, tau, joinability, n_partitions = make_scenario(seed)
    index = PexesoIndex.build(columns, metric=metric, n_pivots=2, levels=3)
    searcher = LakeSearcher(index)

    recalls = []
    for query in queries:
        exact_rows = hit_rows(searcher.search(query, tau, joinability))
        exact_set = set(exact_rows)
        exact_ids = [row[0] for row in exact_rows]
        for ef in (1, 2, max(1, len(columns) // 2), DEFAULT_EF_SEARCH):
            got_rows = hit_rows(
                searcher.search(query, tau, joinability, ef_search=ef)
            )
            assert set(got_rows) <= exact_set, (
                f"ANN false positive at ef={ef} (seed {seed})"
            )
            recalls.append(
                (ef, measure_recall(exact_ids, [row[0] for row in got_rows]))
            )
        full = searcher.search(
            query, tau, joinability, ef_search=len(columns)
        )
        assert hit_rows(full) == exact_rows, (
            f"ef=n_columns must be bit-for-bit exact (seed {seed})"
        )

    default_recalls = [r for ef, r in recalls if ef == DEFAULT_EF_SEARCH]
    assert min(default_recalls) >= 0.9, (
        f"default-knob recall dropped below 0.9 (seed {seed}): {recalls}"
    )

    # -- partitioned backend: the same contract through the shard engine ----
    lake = PartitionedPexeso(
        metric=metric, n_pivots=2, levels=3, n_partitions=n_partitions,
        max_workers=2,
    ).fit(columns)
    psearcher = LakeSearcher(lake)
    exact_batch = psearcher.search_many(queries, tau, joinability)
    ann_batch = psearcher.search_many(queries, tau, joinability, ef_search=2)
    full_batch = psearcher.search_many(
        queries, tau, joinability, ef_search=len(columns)
    )
    for want, got_ann, got_full in zip(
        exact_batch.results, ann_batch.results, full_batch.results
    ):
        assert set(hit_rows(got_ann)) <= set(hit_rows(want)), (
            f"partitioned ANN false positive (seed {seed})"
        )
        assert hit_rows(got_full) == hit_rows(want), (
            f"partitioned ef=n_columns != exact (seed {seed})"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_persistence_formats_and_backends_agree(seed, tmp_path):
    """The storage/kernel lane: every on-disk format and kernel backend
    replays the same seeds bit-identically.

        in-memory == v2 roundtrip == v3 eager == v3 mmap
                  == (numba kernels, when installed)

    The v3 path serves searches straight off read-only mmaps, and the
    kernel backends share no predicate code with each other — so a
    torn serialization, an mmap aliasing bug or a compiled predicate
    diverging in the last ulp all show up as a seed-reproducible
    mismatch here.
    """
    from repro.core import kernels
    from repro.core.persistence import (
        FORMAT_VERSION,
        V2_FORMAT_VERSION,
        load_index,
        save_index,
    )

    columns, queries, metric, tau, joinability, n_partitions = make_scenario(seed)
    index = PexesoIndex.build(columns, metric=metric, n_pivots=2, levels=3)
    want = [
        hit_rows(pexeso_search(index, q, tau, joinability, exact_counts=True))
        for q in queries
    ]

    lanes = {}
    save_index(index, tmp_path / "v2", fmt=V2_FORMAT_VERSION)
    lanes["v2"] = load_index(tmp_path / "v2")
    save_index(index, tmp_path / "v3", fmt=FORMAT_VERSION)
    lanes["v3-eager"] = load_index(tmp_path / "v3", mmap=False)
    lanes["v3-mmap"] = load_index(tmp_path / "v3", mmap=True)

    for lane, loaded in lanes.items():
        got = [
            hit_rows(pexeso_search(loaded, q, tau, joinability, exact_counts=True))
            for q in queries
        ]
        assert got == want, f"{lane} != in-memory (seed {seed})"

    if kernels.HAVE_NUMBA:
        with kernels.use_backend("numba"):
            got = [
                hit_rows(
                    pexeso_search(
                        lanes["v3-mmap"], q, tau, joinability, exact_counts=True
                    )
                )
                for q in queries
            ]
        assert got == want, f"numba kernels != numpy (seed {seed})"
