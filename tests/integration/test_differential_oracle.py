"""Randomized differential oracle over every search implementation.

One seeded harness generates small random lakes — varying dimensionality,
column count and length, metric, τ selectivity and T — and asserts that
every implementation of joinable-column search agrees bit for bit:

    exact_naive == pexeso_search == BatchSearch
                == PartitionedPexeso (all partitioners, in-memory + spill)

and that the merged sharded top-k equals the single-index top-k equals
the k-prefix of the exhaustively ranked columns, for several k.

This is the safety net behind the parallel shard engine: the sequential
scalar pipeline, the batch engine and the partitioned fan-out share no
result-assembly code, so a merge bug, an off-by-one in the global ID
remap or an unsound theta floor shows up here as a seed-reproducible
divergence. Run over >= 20 seeds in CI (see the differential-oracle
job).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact_naive import naive_search
from repro.core.engine import BatchSearch
from repro.core.index import PexesoIndex
from repro.core.metric import get_metric, normalize_rows
from repro.core.out_of_core import PartitionedPexeso
from repro.core.partition import PARTITIONERS
from repro.core.search import pexeso_search
from repro.core.topk import naive_topk, pexeso_topk

SEEDS = list(range(24))  # >= 20 seeds, per the CI contract

METRICS = ("euclidean", "manhattan", "chebyshev")


def make_scenario(seed: int):
    """One random lake + query workload; every knob varies with the seed."""
    rng = np.random.default_rng(seed)
    dim = int(rng.integers(3, 9))
    n_columns = int(rng.integers(8, 21))
    columns = [
        normalize_rows(rng.normal(size=(int(rng.integers(2, 15)), dim)))
        for _ in range(n_columns)
    ]
    metric = get_metric(METRICS[seed % len(METRICS)])

    # Pick τ from an actual distance quantile so selectivity is always
    # interesting (a τ below every distance or above all of them would
    # make the oracle vacuous).
    sample = np.concatenate(columns, axis=0)
    take = sample[rng.choice(sample.shape[0], size=min(40, sample.shape[0]), replace=False)]
    distances = metric.pairwise(take, take)
    distances = distances[distances > 0]
    tau = float(np.quantile(distances, float(rng.uniform(0.05, 0.5))))

    queries = [
        normalize_rows(rng.normal(size=(int(rng.integers(2, 12)), dim))),
        columns[int(rng.integers(0, n_columns))],  # a repository column
    ]

    # T as a fraction or an absolute count (within every query's size),
    # seed-dependent.
    min_rows = min(q.shape[0] for q in queries)
    joinability = (
        float(rng.uniform(0.1, 0.8))
        if rng.random() < 0.5
        else int(rng.integers(1, min_rows + 1))
    )
    n_partitions = int(rng.integers(1, 6))
    return columns, queries, metric, tau, joinability, n_partitions


def hit_rows(result) -> list[tuple[int, int, float]]:
    return [(h.column_id, h.match_count, h.joinability) for h in result.joinable]


@pytest.mark.parametrize("seed", SEEDS)
def test_all_implementations_agree(seed, tmp_path):
    columns, queries, metric, tau, joinability, n_partitions = make_scenario(seed)
    index = PexesoIndex.build(columns, metric=metric, n_pivots=2, levels=3)

    # -- threshold search: naive == scalar == batch (exact counts) ----------------
    naive = [
        naive_search(columns, q, tau, joinability, metric=metric) for q in queries
    ]
    scalar = [
        pexeso_search(index, q, tau, joinability, exact_counts=True) for q in queries
    ]
    batch = BatchSearch(index, exact_counts=True).search_many(
        queries, tau, joinability
    )
    for want, got_scalar, got_batch in zip(naive, scalar, batch.results):
        assert hit_rows(got_scalar) == hit_rows(want), f"scalar != naive (seed {seed})"
        assert hit_rows(got_batch) == hit_rows(want), f"batch != naive (seed {seed})"

    # Default mode (early termination allowed): the *sets* of joinable
    # columns still agree across every implementation.
    default_ids = [pexeso_search(index, q, tau, joinability).column_ids for q in queries]
    for want, got in zip(naive, default_ids):
        assert got == want.column_ids

    # -- partitioned: every partitioner, in-memory and spilled --------------------
    for partitioner in sorted(PARTITIONERS):
        for spill in (None, tmp_path / f"{partitioner}_{seed}"):
            lake = PartitionedPexeso(
                metric=metric,
                n_pivots=2,
                levels=3,
                n_partitions=n_partitions,
                partitioner=partitioner,
                spill_dir=spill,
                max_workers=2,
            ).fit(columns)
            sharded = lake.search_many(
                queries, tau, joinability, exact_counts=True
            )
            for want, got in zip(naive, sharded.results):
                assert hit_rows(got) == hit_rows(want), (
                    f"partitioned ({partitioner}, spill={spill is not None}) "
                    f"!= naive (seed {seed})"
                )

    # -- top-k: sharded theta-shared == single-index == naive prefix --------------
    lake = PartitionedPexeso(
        metric=metric, n_pivots=2, levels=3, n_partitions=n_partitions,
        max_workers=2,
    ).fit(columns)
    query = queries[0]
    full = naive_topk(columns, query, tau, len(columns), metric=metric)
    for k in (1, 3, len(columns) + 5):
        want = full[:k]
        single = pexeso_topk(index, query, tau, k)
        merged = lake.topk(query, tau, k)
        assert [(c, n) for c, n, _ in single.hits] == [
            (c, n) for c, n, _ in want
        ], f"single top-{k} != naive (seed {seed})"
        assert merged.hits == single.hits, (
            f"merged top-{k} != single-index top-{k} (seed {seed})"
        )
