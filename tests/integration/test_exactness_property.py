"""Property-based exactness: PEXESO == naive oracle on random instances.

This is the single most important invariant in the repository: the paper's
algorithm is exact, so for *any* data, query, thresholds, pivot count and
grid depth, the result set must equal the exhaustive scan's.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact_naive import naive_search
from repro.baselines.pexeso_h import pexeso_h_search
from repro.core.index import PexesoIndex
from repro.core.metric import ManhattanMetric, normalize_rows
from repro.core.search import AblationFlags, pexeso_search


@st.composite
def instances(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    n_columns = draw(st.integers(2, 12))
    dim = draw(st.integers(2, 10))
    n_query = draw(st.integers(1, 10))
    tau = draw(st.floats(0.01, 2.0))
    joinability = draw(st.floats(0.05, 1.0))
    n_pivots = draw(st.integers(1, min(6, dim)))
    levels = draw(st.integers(1, 5))
    rng = np.random.default_rng(seed)
    columns = [
        normalize_rows(rng.normal(size=(int(rng.integers(1, 15)), dim)))
        for _ in range(n_columns)
    ]
    query = normalize_rows(rng.normal(size=(n_query, dim)))
    return columns, query, tau, joinability, n_pivots, levels


@settings(max_examples=40, deadline=None)
@given(instance=instances())
def test_pexeso_equals_naive(instance):
    columns, query, tau, joinability, n_pivots, levels = instance
    index = PexesoIndex.build(columns, n_pivots=n_pivots, levels=levels)
    got = pexeso_search(index, query, tau, joinability).column_ids
    want = naive_search(columns, query, tau, joinability).column_ids
    assert got == want


@settings(max_examples=20, deadline=None)
@given(instance=instances(), flag_bits=st.integers(0, 127))
def test_any_ablation_combination_is_exact(instance, flag_bits):
    columns, query, tau, joinability, n_pivots, levels = instance
    flags = AblationFlags(
        lemma1=bool(flag_bits & 1),
        lemma2=bool(flag_bits & 2),
        lemma34=bool(flag_bits & 4),
        lemma56=bool(flag_bits & 8),
        lemma7=bool(flag_bits & 16),
        quick_browsing=bool(flag_bits & 32),
        early_accept=bool(flag_bits & 64),
    )
    index = PexesoIndex.build(columns, n_pivots=n_pivots, levels=levels)
    got = pexeso_search(index, query, tau, joinability, flags=flags).column_ids
    want = naive_search(columns, query, tau, joinability).column_ids
    assert got == want


@settings(max_examples=20, deadline=None)
@given(instance=instances())
def test_pexeso_h_equals_naive(instance):
    columns, query, tau, joinability, n_pivots, levels = instance
    index = PexesoIndex.build(columns, n_pivots=n_pivots, levels=levels)
    got = pexeso_h_search(index, query, tau, joinability).column_ids
    want = naive_search(columns, query, tau, joinability).column_ids
    assert got == want


@settings(max_examples=15, deadline=None)
@given(instance=instances())
def test_exact_counts_equal_naive_counts(instance):
    columns, query, tau, joinability, n_pivots, levels = instance
    index = PexesoIndex.build(columns, n_pivots=n_pivots, levels=levels)
    got = pexeso_search(index, query, tau, joinability, exact_counts=True)
    want = naive_search(columns, query, tau, joinability)
    assert {h.column_id: h.match_count for h in got.joinable} == {
        h.column_id: h.match_count for h in want.joinable
    }


@settings(max_examples=15, deadline=None)
@given(instance=instances())
def test_manhattan_metric_is_exact_too(instance):
    """Pivot filtering must be sound for any true metric, not just L2."""
    columns, query, tau, joinability, n_pivots, levels = instance
    metric = ManhattanMetric()
    index = PexesoIndex.build(
        columns, metric=metric, n_pivots=n_pivots, levels=levels
    )
    got = pexeso_search(index, query, tau, joinability).column_ids
    want = naive_search(columns, query, tau, joinability, metric=metric).column_ids
    assert got == want


@settings(max_examples=15, deadline=None)
@given(instance=instances(), n_append=st.integers(1, 4))
def test_exactness_survives_append_delete(instance, n_append):
    columns, query, tau, joinability, n_pivots, levels = instance
    split = max(1, len(columns) - n_append)
    index = PexesoIndex.build(columns[:split], n_pivots=n_pivots, levels=levels)
    for col in columns[split:]:
        index.add_column(col)
    index.delete_column(0)
    got = pexeso_search(index, query, tau, joinability).column_ids
    want = [
        cid
        for cid in naive_search(columns, query, tau, joinability).column_ids
        if cid != 0
    ]
    assert got == want
