"""Tests for set/TF-IDF/fuzzy similarities."""

import pytest

from repro.text.similarity import (
    TfidfVectorizer,
    cosine_similarity,
    fuzzy_token_similarity,
    jaccard_similarity,
)


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity("mario party", "mario party") == 1.0

    def test_token_order_invariant(self):
        assert jaccard_similarity("mario party", "party mario") == 1.0

    def test_half_overlap(self):
        assert jaccard_similarity("a b", "b c") == pytest.approx(1 / 3)

    def test_disjoint(self):
        assert jaccard_similarity("aa bb", "cc dd") == 0.0

    def test_both_empty(self):
        assert jaccard_similarity("", "") == 1.0

    def test_one_empty(self):
        assert jaccard_similarity("abc", "") == 0.0

    def test_symmetry(self):
        assert jaccard_similarity("x y z", "y z w") == jaccard_similarity(
            "y z w", "x y z"
        )


class TestFuzzy:
    def test_exact_tokens(self):
        assert fuzzy_token_similarity("mario party", "mario party") == 1.0

    def test_typo_tolerated(self):
        assert fuzzy_token_similarity("mario party", "mario partu", delta=0.75) == 1.0

    def test_typo_rejected_with_strict_delta(self):
        sim = fuzzy_token_similarity("mario party", "mario partu", delta=0.99)
        assert sim == pytest.approx(1 / 3)

    def test_greedy_one_to_one(self):
        # one 'aa' in the query cannot match both 'aa' tokens in the target
        sim = fuzzy_token_similarity("aa", "aa aa")
        assert sim == pytest.approx(0.5)

    def test_empty_cases(self):
        assert fuzzy_token_similarity("", "") == 1.0
        assert fuzzy_token_similarity("a", "") == 0.0

    def test_range(self):
        assert 0.0 <= fuzzy_token_similarity("abc def", "abd xyz") <= 1.0


class TestTfidf:
    @pytest.fixture()
    def vectorizer(self):
        corpus = [
            "mario party nintendo",
            "zelda quest nintendo",
            "halo combat xbox",
            "mario kart nintendo",
        ]
        return TfidfVectorizer().fit(corpus)

    def test_vector_normalised(self, vectorizer):
        vec = vectorizer.vector("mario party")
        assert sum(w * w for w in vec.values()) == pytest.approx(1.0)

    def test_rare_terms_weigh_more(self, vectorizer):
        vec = vectorizer.vector("party nintendo")
        assert vec["party"] > vec["nintendo"]  # 'nintendo' is common

    def test_empty_vector(self, vectorizer):
        assert vectorizer.vector("") == {}

    def test_cosine_identical(self, vectorizer):
        v = vectorizer.vector("mario party")
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_cosine_disjoint(self, vectorizer):
        a = vectorizer.vector("mario")
        b = vectorizer.vector("halo")
        assert cosine_similarity(a, b) == 0.0

    def test_cosine_symmetry(self, vectorizer):
        a = vectorizer.vector("mario party")
        b = vectorizer.vector("mario kart")
        assert cosine_similarity(a, b) == pytest.approx(cosine_similarity(b, a))

    def test_unknown_terms_get_default_idf(self, vectorizer):
        vec = vectorizer.vector("qwertyuiop")
        assert set(vec) == {"qwertyuiop"}
