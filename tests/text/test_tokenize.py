"""Tests for tokenisation helpers."""

import pytest

from repro.text.tokenize import char_ngrams, word_tokens


class TestWordTokens:
    def test_basic(self):
        assert word_tokens("Mario Party") == ["mario", "party"]

    def test_punctuation_split(self):
        assert word_tokens("American Indian/Alaska Native") == [
            "american", "indian", "alaska", "native",
        ]

    def test_numbers_kept(self):
        assert word_tokens("Route 66") == ["route", "66"]

    def test_empty(self):
        assert word_tokens("") == []
        assert word_tokens("!!!") == []

    def test_mixed_alphanumerics(self):
        assert word_tokens("ab12cd") == ["ab12cd"]


class TestCharNgrams:
    def test_padding_brackets(self):
        grams = char_ngrams("ab", 3, 3)
        assert grams == ["<ab", "ab>"]

    def test_range(self):
        grams = char_ngrams("abc", 3, 4)
        assert "<ab" in grams
        assert "<abc" in grams
        assert all(3 <= len(g) <= 4 for g in grams)

    def test_short_string_whole_token(self):
        assert char_ngrams("a", 5, 6) == ["<a>"]

    def test_no_padding(self):
        assert char_ngrams("abcd", 3, 3, pad=False) == ["abc", "bcd"]

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            char_ngrams("abc", 0, 2)
        with pytest.raises(ValueError):
            char_ngrams("abc", 4, 2)

    def test_overlap_property(self):
        """Near-identical words share most n-grams (the fastText property)."""
        a = set(char_ngrams("mississippi", 3, 4))
        b = set(char_ngrams("missisippi", 3, 4))
        c = set(char_ngrams("constantinople", 3, 4))
        jac_ab = len(a & b) / len(a | b)
        jac_ac = len(a & c) / len(a | c)
        assert jac_ab > jac_ac
