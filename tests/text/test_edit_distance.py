"""Tests for Levenshtein edit distance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.edit_distance import edit_distance, edit_similarity

words = st.text(alphabet="abcdef", max_size=12)


class TestKnownValues:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("", "", 0),
            ("", "abc", 3),
            ("abc", "", 3),
            ("same", "same", 0),
            ("a", "b", 1),
            ("abc", "acb", 2),  # plain Levenshtein (no transposition op)
            ("saturday", "sunday", 3),
        ],
    )
    def test_pairs(self, a, b, expected):
        assert edit_distance(a, b) == expected


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(a=words, b=words)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @settings(max_examples=60, deadline=None)
    @given(a=words, b=words, c=words)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @settings(max_examples=40, deadline=None)
    @given(a=words)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @settings(max_examples=40, deadline=None)
    @given(a=words, b=words)
    def test_bounds(self, a, b):
        d = edit_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @settings(max_examples=40, deadline=None)
    @given(a=words, ch=st.sampled_from("abcdef"))
    def test_single_insertion_costs_one(self, a, ch):
        assert edit_distance(a, a + ch) == 1


class TestEditSimilarity:
    def test_identical(self):
        assert edit_similarity("abc", "abc") == 1.0

    def test_empty_pair(self):
        assert edit_similarity("", "") == 1.0

    def test_disjoint(self):
        assert edit_similarity("aaa", "bbb") == 0.0

    def test_range(self):
        assert 0.0 <= edit_similarity("mario", "maria") <= 1.0

    def test_typo_scores_high(self):
        assert edit_similarity("mississippi", "missisippi") > 0.9
