"""Tests for the caching embedder wrapper."""

import numpy as np
import pytest

from repro.embedding.cache import CachingEmbedder
from repro.embedding.hashing import HashingNGramEmbedder


class TestCache:
    def test_hit_returns_same_vector(self):
        cache = CachingEmbedder(HashingNGramEmbedder(dim=16))
        v1 = cache.embed("mario")
        v2 = cache.embed("mario")
        np.testing.assert_array_equal(v1, v2)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_results_match_inner(self):
        inner = HashingNGramEmbedder(dim=16)
        cache = CachingEmbedder(HashingNGramEmbedder(dim=16))
        np.testing.assert_array_equal(cache.embed("zelda"), inner.embed("zelda"))

    def test_eviction_keeps_capacity_bounded(self):
        cache = CachingEmbedder(HashingNGramEmbedder(dim=8), max_entries=10)
        for i in range(50):
            cache.embed(f"word{i}")
        assert len(cache) <= 10

    def test_eviction_preserves_correctness(self):
        inner = HashingNGramEmbedder(dim=8)
        cache = CachingEmbedder(HashingNGramEmbedder(dim=8), max_entries=4)
        for i in range(20):
            cache.embed(f"w{i}")
        np.testing.assert_array_equal(cache.embed("w0"), inner.embed("w0"))

    def test_embed_column_uses_cache(self):
        cache = CachingEmbedder(HashingNGramEmbedder(dim=8))
        cache.embed_column(["a", "a", "b"])
        assert cache.hits == 1
        assert cache.misses == 2

    def test_dim_delegates(self):
        cache = CachingEmbedder(HashingNGramEmbedder(dim=24))
        assert cache.dim == 24

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CachingEmbedder(HashingNGramEmbedder(dim=8), max_entries=1)

    def test_empty_column(self):
        cache = CachingEmbedder(HashingNGramEmbedder(dim=8))
        assert cache.embed_column([]).shape == (0, 8)
