"""Tests for the synthetic-semantic oracle embedder."""

import numpy as np
import pytest

from repro.core.metric import EuclideanMetric
from repro.embedding.semantic import SyntheticSemanticEmbedder


@pytest.fixture()
def embedder():
    emb = SyntheticSemanticEmbedder(dim=32, noise_scale=0.01, seed=0)
    emb.register_surface_form("White", "race:white")
    emb.register_surface_form("white people", "race:white")
    emb.register_surface_form("Pacific Islander", "race:pi")
    emb.register_surface_form("Hawaiian/Guamanian/Samoan", "race:pi")
    return emb


class TestRegistration:
    def test_latent_is_unit(self, embedder):
        latent = embedder.register_entity("race:white")
        assert np.linalg.norm(latent) == pytest.approx(1.0)

    def test_register_idempotent(self, embedder):
        a = embedder.register_entity("race:white")
        b = embedder.register_entity("race:white")
        np.testing.assert_array_equal(a, b)

    def test_entity_of(self, embedder):
        assert embedder.entity_of("White") == "race:white"
        assert embedder.entity_of("unknown string") is None

    def test_n_entities(self, embedder):
        assert embedder.n_entities == 2


class TestGeometry:
    def test_same_entity_surfaces_close(self, embedder):
        metric = EuclideanMetric()
        d_same = metric.distance(
            embedder.embed("Pacific Islander"),
            embedder.embed("Hawaiian/Guamanian/Samoan"),
        )
        d_diff = metric.distance(
            embedder.embed("Pacific Islander"), embedder.embed("White")
        )
        assert d_same < 0.1
        assert d_diff > 0.5

    def test_noise_scale_controls_spread(self):
        tight = SyntheticSemanticEmbedder(dim=32, noise_scale=0.001, seed=1)
        loose = SyntheticSemanticEmbedder(dim=32, noise_scale=0.1, seed=1)
        for emb in (tight, loose):
            emb.register_surface_form("a", "e")
            emb.register_surface_form("b", "e")
        metric = EuclideanMetric()
        assert metric.distance(tight.embed("a"), tight.embed("b")) < metric.distance(
            loose.embed("a"), loose.embed("b")
        )

    def test_unregistered_string_far_from_entities(self, embedder):
        metric = EuclideanMetric()
        noise = embedder.embed("complete gibberish xyzzy")
        for surface in ("White", "Pacific Islander"):
            assert metric.distance(noise, embedder.embed(surface)) > 0.5

    def test_deterministic(self, embedder):
        np.testing.assert_array_equal(
            embedder.embed("White"), embedder.embed("White")
        )

    def test_unit_norm(self, embedder):
        for s in ("White", "no such surface"):
            assert np.linalg.norm(embedder.embed(s)) == pytest.approx(1.0)

    def test_embed_column(self, embedder):
        out = embedder.embed_column(["White", "Pacific Islander"])
        assert out.shape == (2, 32)
