"""Tests for the GloVe-style vocabulary embedder."""

import numpy as np
import pytest

from repro.core.metric import EuclideanMetric
from repro.embedding.vocab import VocabularyEmbedder


class TestVocabulary:
    def test_add_word_normalised(self):
        emb = VocabularyEmbedder(dim=16)
        vec = emb.add_word("mario")
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_known_word_used(self):
        emb = VocabularyEmbedder(dim=16)
        vec = emb.add_word("mario")
        np.testing.assert_allclose(emb.embed("mario"), vec / np.linalg.norm(vec))

    def test_vocabulary_property(self):
        emb = VocabularyEmbedder(dim=8)
        emb.add_word("alpha")
        emb.add_word("beta")
        assert emb.vocabulary == {"alpha", "beta"}

    def test_synonym_group_members_close(self):
        emb = VocabularyEmbedder(dim=32, synonym_noise=0.05)
        emb.add_synonym_group(["street", "road", "avenue"])
        emb.add_word("banana")
        metric = EuclideanMetric()
        street = emb.embed("street")
        road = emb.embed("road")
        banana = emb.embed("banana")
        assert metric.distance(street, road) < metric.distance(street, banana)

    def test_synonym_group_first_registration_wins(self):
        emb = VocabularyEmbedder(dim=8)
        original = emb.add_word("street").copy()
        emb.add_synonym_group(["street", "road"])
        np.testing.assert_array_equal(emb._table["street"], original)

    def test_word_average(self):
        emb = VocabularyEmbedder(dim=8, seed=1)
        va = emb.add_word("hot")
        vb = emb.add_word("dog")
        combined = emb.embed("hot dog")
        manual = (va + vb) / 2
        manual /= np.linalg.norm(manual)
        np.testing.assert_allclose(combined, manual, atol=1e-12)

    def test_oov_falls_back_to_hashing(self):
        emb = VocabularyEmbedder(dim=16, seed=2)
        vec = emb.embed("zzyzx")
        assert np.linalg.norm(vec) == pytest.approx(1.0)
        np.testing.assert_array_equal(vec, emb.embed("zzyzx"))

    def test_empty_string(self):
        emb = VocabularyEmbedder(dim=8)
        vec = emb.embed("")
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_embed_column(self):
        emb = VocabularyEmbedder(dim=8)
        out = emb.embed_column(["a b", "c"])
        assert out.shape == (2, 8)
