"""Tests for the fastText-style hashing n-gram embedder."""

import numpy as np
import pytest

from repro.core.metric import EuclideanMetric
from repro.embedding.hashing import HashingNGramEmbedder


@pytest.fixture(scope="module")
def embedder():
    return HashingNGramEmbedder(dim=32, seed=0)


class TestBasics:
    def test_unit_norm(self, embedder):
        for text in ("hello", "hello world", "a", ""):
            assert np.linalg.norm(embedder.embed(text)) == pytest.approx(1.0)

    def test_deterministic(self, embedder):
        np.testing.assert_array_equal(embedder.embed("mario"), embedder.embed("mario"))

    def test_same_seed_same_function(self):
        a = HashingNGramEmbedder(dim=16, seed=7)
        b = HashingNGramEmbedder(dim=16, seed=7)
        np.testing.assert_array_equal(a.embed("zelda"), b.embed("zelda"))

    def test_different_seed_different_function(self):
        a = HashingNGramEmbedder(dim=16, seed=7)
        b = HashingNGramEmbedder(dim=16, seed=8)
        assert not np.allclose(a.embed("zelda"), b.embed("zelda"))

    def test_dim_property(self, embedder):
        assert embedder.dim == 32
        assert embedder.embed("x").shape == (32,)

    def test_embed_column_shape(self, embedder):
        out = embedder.embed_column(["a", "b", "c"])
        assert out.shape == (3, 32)

    def test_embed_empty_column(self, embedder):
        assert embedder.embed_column([]).shape == (0, 32)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            HashingNGramEmbedder(dim=0)

    def test_case_insensitive_tokens(self, embedder):
        np.testing.assert_allclose(
            embedder.embed("Mario Party"), embedder.embed("mario party")
        )


class TestSubwordGeometry:
    """The property PEXESO relies on: shared n-grams -> small distance."""

    def test_misspelling_closer_than_unrelated(self, embedder):
        metric = EuclideanMetric()
        base = embedder.embed("mississippi")
        typo = embedder.embed("missisippi")
        other = embedder.embed("constantinople")
        assert metric.distance(base, typo) < metric.distance(base, other)

    def test_shared_word_closer_than_disjoint(self, embedder):
        metric = EuclideanMetric()
        a = embedder.embed("mario party")
        b = embedder.embed("mario kart")
        c = embedder.embed("quantum chromodynamics")
        assert metric.distance(a, b) < metric.distance(a, c)

    def test_oov_words_embed_consistently(self, embedder):
        """Unseen pseudo-words still embed deterministically (subword power)."""
        v1 = embedder.embed("flurbendorf")
        v2 = embedder.embed("flurbendorf")
        np.testing.assert_array_equal(v1, v2)

    @pytest.mark.parametrize("pair,far", [
        (("street", "stret"), "motorway"),
        (("johnson", "jonson"), "tanaka"),
    ])
    def test_more_typo_pairs(self, embedder, pair, far):
        metric = EuclideanMetric()
        a, b = (embedder.embed(t) for t in pair)
        c = embedder.embed(far)
        assert metric.distance(a, b) < metric.distance(a, c)
