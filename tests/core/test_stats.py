"""Tests for the instrumentation containers."""

from repro.core.stats import CounterBox, IndexStats, SearchStats
from repro.obs.metrics import BoundedHistogram


class TestSearchStats:
    def test_defaults_zero(self):
        stats = SearchStats()
        assert stats.distance_computations == 0
        assert stats.total_seconds == 0.0

    def test_merge_accumulates_every_field(self):
        a = SearchStats(distance_computations=3, lemma1_filtered=2,
                        blocking_seconds=0.5)
        b = SearchStats(distance_computations=4, lemma1_filtered=1,
                        verification_seconds=0.25)
        a.merge(b)
        assert a.distance_computations == 7
        assert a.lemma1_filtered == 3
        assert a.blocking_seconds == 0.5
        assert a.verification_seconds == 0.25
        assert a.total_seconds == 0.75

    def test_merge_covers_all_declared_fields(self):
        def one_for(value):
            # a non-identity value of every field's type, so a merge
            # that skips or zeroes a field fails the assert below
            if isinstance(value, dict):
                return {"x": 1.0}
            if isinstance(value, (list, BoundedHistogram)):
                return [1]
            return 1

        a = SearchStats()
        b = SearchStats()
        for name in SearchStats.__dataclass_fields__:
            setattr(b, name, one_for(getattr(b, name)))
        a.merge(b)
        for name in SearchStats.__dataclass_fields__:
            assert getattr(a, name) == one_for(getattr(b, name)), name

    def test_serving_counters_merge(self):
        a = SearchStats(cache_hits=2, cache_misses=1,
                        coalesced_batch_sizes=[4, 8])
        b = SearchStats(cache_hits=1, cache_misses=3,
                        coalesced_batch_sizes=[16])
        a.merge(b)
        assert a.cache_hits == 3
        assert a.cache_misses == 4
        assert a.coalesced_batch_sizes == [4, 8, 16]
        assert a.coalesced_requests == 28
        assert isinstance(a.cache_hits, int)
        assert isinstance(a.cache_misses, int)
        assert all(isinstance(n, int) for n in a.coalesced_batch_sizes)


class TestIndexStats:
    def test_total_seconds(self):
        stats = IndexStats(
            pivot_selection_seconds=1.0,
            pivot_mapping_seconds=2.0,
            grid_build_seconds=3.0,
            inverted_index_seconds=4.0,
        )
        assert stats.total_seconds == 10.0


class TestCounterBox:
    def test_add_and_reset(self):
        box = CounterBox()
        box.add(5)
        box.add(2)
        assert box.count == 7
        box.reset()
        assert box.count == 0

    def test_add_coerces_to_int(self):
        box = CounterBox()
        box.add(3.0)
        assert box.count == 3
        assert isinstance(box.count, int)
