"""Tests for Algorithm 1 (blocking) and quick browsing.

The completeness invariant: every true (query vector, target vector) match
must be reachable through either a matching pair or a candidate pair —
blocking may only discard provably-nonmatching combinations.
"""

import numpy as np
import pytest

from repro.core.blocker import block, quick_browse, BlockResult
from repro.core.grid import HierarchicalGrid
from repro.core.metric import EuclideanMetric, normalize_rows
from repro.core.pivot import PivotSpace
from repro.core.stats import SearchStats


def _setup(seed=0, n_data=80, n_query=12, dim=6, n_pivots=3, levels=3):
    rng = np.random.default_rng(seed)
    data = normalize_rows(rng.normal(size=(n_data, dim)))
    queries = normalize_rows(rng.normal(size=(n_query, dim)))
    metric = EuclideanMetric()
    space = PivotSpace(data[:n_pivots], metric)
    data_mapped = space.map_vectors(data)
    query_mapped = space.map_vectors(queries)
    hg_rv = HierarchicalGrid.build(data_mapped, levels, space.extent, store_members=False)
    hg_q = HierarchicalGrid.build(query_mapped, levels, space.extent)
    leaf_of_row = dict(enumerate(hg_rv.leaf_codes_for(data_mapped).tolist()))
    return data, queries, metric, query_mapped, hg_q, hg_rv, leaf_of_row


@pytest.mark.parametrize("tau", [0.2, 0.6, 1.0, 1.5])
@pytest.mark.parametrize("quick", [True, False])
def test_blocking_is_complete(tau, quick):
    data, queries, metric, q_mapped, hg_q, hg_rv, leaf_of_row = _setup()
    result = block(hg_q, hg_rv, q_mapped, tau, use_quick_browsing=quick)
    pairwise = metric.pairwise(queries, data)
    for qi, row in zip(*np.nonzero(pairwise <= tau)):
        cell = leaf_of_row[int(row)]
        reachable = cell in result.match_pairs.get(int(qi), []) or cell in result.candidate_pairs.get(int(qi), [])
        assert reachable, f"true match (q={qi}, row={row}) unreachable"


@pytest.mark.parametrize("tau", [0.3, 0.8, 1.4])
def test_match_pairs_are_sound(tau):
    """Every vector in a matched cell must really match the query vector."""
    data, queries, metric, q_mapped, hg_q, hg_rv, leaf_of_row = _setup(seed=1)
    result = block(hg_q, hg_rv, q_mapped, tau)
    rows_in_cell = {}
    for row, cell in leaf_of_row.items():
        rows_in_cell.setdefault(cell, []).append(row)
    for qi, cells in result.match_pairs.items():
        for cell in cells:
            for row in rows_in_cell.get(cell, []):
                assert metric.distance(queries[qi], data[row]) <= tau + 1e-9


def test_no_duplicate_pairs():
    data, queries, metric, q_mapped, hg_q, hg_rv, _ = _setup(seed=2)
    result = block(hg_q, hg_rv, q_mapped, 0.8)
    for mapping in (result.match_pairs, result.candidate_pairs):
        for cells in mapping.values():
            assert len(cells) == len(set(cells))


def test_match_and_candidate_disjoint_per_query():
    data, queries, metric, q_mapped, hg_q, hg_rv, _ = _setup(seed=3)
    result = block(hg_q, hg_rv, q_mapped, 1.0)
    for qi in result.match_pairs:
        overlap = set(result.match_pairs[qi]) & set(result.candidate_pairs.get(qi, []))
        assert not overlap


def test_ablation_no_lemma34_yields_superset_of_candidates():
    data, queries, metric, q_mapped, hg_q, hg_rv, _ = _setup(seed=4)
    full = block(hg_q, hg_rv, q_mapped, 0.5)
    unfiltered = block(hg_q, hg_rv, q_mapped, 0.5, use_lemma34=False)
    assert unfiltered.n_candidate_pairs >= full.n_candidate_pairs


def test_ablation_no_lemma56_produces_no_match_pairs():
    data, queries, metric, q_mapped, hg_q, hg_rv, _ = _setup(seed=5)
    result = block(hg_q, hg_rv, q_mapped, 1.2, use_lemma56=False)
    assert result.n_match_pairs == 0


def test_stats_populated():
    data, queries, metric, q_mapped, hg_q, hg_rv, _ = _setup(seed=6)
    stats = SearchStats()
    result = block(hg_q, hg_rv, q_mapped, 0.6, stats=stats)
    assert stats.cells_visited > 0
    assert stats.blocking_seconds >= 0.0
    assert stats.candidate_pairs == result.n_candidate_pairs
    assert stats.matching_pairs == result.n_match_pairs


def test_mismatched_levels_raise():
    data, queries, metric, q_mapped, hg_q, hg_rv, _ = _setup()
    wrong = HierarchicalGrid.build(q_mapped, hg_rv.levels + 1, hg_rv.extent)
    with pytest.raises(ValueError, match="same number of levels"):
        block(wrong, hg_rv, q_mapped, 0.5)


class TestQuickBrowsing:
    def test_aligned_cells_become_candidates(self):
        data, queries, metric, q_mapped, hg_q, hg_rv, _ = _setup(seed=7)
        result = BlockResult()
        stats = SearchStats()
        aligned = quick_browse(hg_q, hg_rv, result, stats)
        assert aligned == set(hg_q.leaf_codes.tolist()) & set(hg_rv.leaf_codes.tolist())
        assert stats.quick_browse_cells == len(aligned)
        for code in aligned:
            for q in hg_q.leaf_members(code).tolist():
                assert code in result.candidate_pairs[q]

    def test_quick_browsing_does_not_change_reachable_set(self):
        data, queries, metric, q_mapped, hg_q, hg_rv, _ = _setup(seed=8)
        with_qb = block(hg_q, hg_rv, q_mapped, 0.7, use_quick_browsing=True)
        without = block(hg_q, hg_rv, q_mapped, 0.7, use_quick_browsing=False)

        def reachable(result):
            out = set()
            for qi, cells in result.match_pairs.items():
                out.update((qi, c) for c in cells)
            for qi, cells in result.candidate_pairs.items():
                out.update((qi, c) for c in cells)
            return out

        # quick browsing may convert would-be match pairs into candidates,
        # but the union of reachable (q, cell) pairs must be identical
        assert reachable(with_qb) == reachable(without)
