"""Tests for all-pairs joinable discovery."""

import numpy as np
import pytest

from repro.baselines.exact_naive import naive_search
from repro.core.allpairs import discover_joinable_pairs
from repro.core.index import PexesoIndex
from repro.core.metric import normalize_rows


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(3)
    centers = normalize_rows(rng.normal(size=(8, 6)))
    columns = []
    for _ in range(15):
        picks = rng.choice(8, size=int(rng.integers(4, 12)))
        columns.append(
            normalize_rows(centers[picks] + rng.normal(scale=0.04, size=(len(picks), 6)))
        )
    index = PexesoIndex.build(columns, n_pivots=3, levels=3)
    return columns, index


TAU = 0.2
T = 0.5


def _naive_graph(columns, include_self=False):
    edges = set()
    for qid, query in enumerate(columns):
        for hit in naive_search(columns, query, TAU, T).joinable:
            if hit.column_id == qid and not include_self:
                continue
            edges.add((qid, hit.column_id))
    return edges


class TestGraph:
    def test_matches_naive_all_pairs(self, setup):
        columns, index = setup
        graph = discover_joinable_pairs(index, TAU, T)
        got = {(e.query_column, e.target_column) for e in graph.edges}
        assert got == _naive_graph(columns)

    def test_self_edges_controlled(self, setup):
        columns, index = setup
        without = discover_joinable_pairs(index, TAU, T)
        with_self = discover_joinable_pairs(index, TAU, T, include_self=True)
        self_edges = {
            (e.query_column, e.target_column)
            for e in with_self.edges
            if e.query_column == e.target_column
        }
        assert self_edges == {(c, c) for c in range(len(columns))}
        assert not any(e.query_column == e.target_column for e in without.edges)

    def test_direction_matters(self, setup):
        """jn is asymmetric: a small column inside a big one joins fully
        one way but not necessarily the other."""
        columns, index = setup
        graph = discover_joinable_pairs(index, TAU, T)
        directed = {(e.query_column, e.target_column) for e in graph.edges}
        asymmetric = [(a, b) for a, b in directed if (b, a) not in directed]
        # with heterogeneous column sizes some asymmetry is expected
        assert isinstance(asymmetric, list)

    def test_neighbours(self, setup):
        columns, index = setup
        graph = discover_joinable_pairs(index, TAU, T)
        for edge in graph.neighbours(0):
            assert edge.query_column == 0

    def test_mutual_subset_of_undirected(self, setup):
        columns, index = setup
        graph = discover_joinable_pairs(index, TAU, T)
        assert graph.mutual_pairs() <= graph.undirected_pairs()

    def test_restricted_query_side(self, setup):
        columns, index = setup
        graph = discover_joinable_pairs(index, TAU, T, column_ids=[2, 5])
        assert {e.query_column for e in graph.edges} <= {2, 5}

    def test_unknown_column_id(self, setup):
        _, index = setup
        with pytest.raises(KeyError):
            discover_joinable_pairs(index, TAU, T, column_ids=[999])

    def test_stats_accumulated(self, setup):
        _, index = setup
        graph = discover_joinable_pairs(index, TAU, T)
        assert graph.stats.pivot_mapping_distances > 0

    def test_unbuilt_index(self):
        with pytest.raises(RuntimeError):
            discover_joinable_pairs(PexesoIndex(), TAU, T)

    def test_deleted_column_not_queried(self, setup):
        columns, _ = setup
        index = PexesoIndex.build(columns, n_pivots=3, levels=3)
        index.delete_column(4)
        graph = discover_joinable_pairs(index, TAU, T)
        assert all(e.query_column != 4 for e in graph.edges)
        assert all(e.target_column != 4 for e in graph.edges)


class TestNetworkxExport:
    def test_directed_graph_edges(self, setup):
        columns, index = setup
        graph = discover_joinable_pairs(index, TAU, T)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_edges() == len(graph.edges)
        for edge in graph.edges:
            data = nx_graph.edges[edge.query_column, edge.target_column]
            assert data["joinability"] == pytest.approx(edge.joinability)
            assert data["match_count"] == edge.match_count

    def test_undirected_collapses_mutual_edges(self, setup):
        columns, index = setup
        graph = discover_joinable_pairs(index, TAU, T)
        undirected = graph.to_networkx(directed=False)
        assert undirected.number_of_edges() == len(graph.undirected_pairs())

    def test_table_clusters_partition_connected_columns(self, setup):
        columns, index = setup
        graph = discover_joinable_pairs(index, TAU, T)
        clusters = graph.table_clusters()
        seen = set()
        for cluster in clusters:
            assert not (cluster & seen)  # disjoint
            seen |= cluster
        edge_columns = {e.query_column for e in graph.edges} | {
            e.target_column for e in graph.edges
        }
        assert seen == edge_columns
        # sorted by size, largest first
        sizes = [len(c) for c in clusters]
        assert sizes == sorted(sizes, reverse=True)
