"""Live add/delete on the partitioned lake (§III-E across shards)."""

import numpy as np
import pytest

from repro.baselines.exact_naive import naive_search
from repro.core.metric import normalize_rows
from repro.core.out_of_core import LakeSearcher, PartitionedPexeso
from repro.core.persistence import load_partitioned, save_partitioned


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(33)
    return [
        normalize_rows(rng.normal(size=(int(rng.integers(4, 14)), 6)))
        for _ in range(20)
    ]


@pytest.fixture(scope="module")
def extra():
    rng = np.random.default_rng(34)
    return [normalize_rows(rng.normal(size=(8, 6))) for _ in range(4)]


def expected_ids(columns_by_id, query, tau, joinability):
    ordered = sorted(columns_by_id)
    result = naive_search([columns_by_id[c] for c in ordered], query, tau,
                          joinability)
    return [ordered[c] for c in result.column_ids]


class TestInMemoryMaintenance:
    def test_add_column_returns_fresh_global_id(self, columns, extra):
        lake = PartitionedPexeso(n_pivots=3, levels=3, n_partitions=4).fit(columns)
        gid = lake.add_column(extra[0])
        assert gid == len(columns)
        assert lake.n_columns == len(columns) + 1
        assert lake.has_column(gid)
        # the new column is searchable with exact global-ID results
        hits = lake.search(extra[0][:5], 1e-6, 1.0).column_ids
        assert gid in hits

    def test_search_after_add_matches_oracle(self, columns, extra):
        lake = PartitionedPexeso(n_pivots=3, levels=3, n_partitions=4).fit(columns)
        lake.add_column(extra[0])
        lake.add_column(extra[1])
        live = {cid: col for cid, col in enumerate(columns)}
        live[len(columns)] = extra[0]
        live[len(columns) + 1] = extra[1]
        query = columns[7][:6]
        got = lake.search(query, 0.7, 0.3).column_ids
        assert got == expected_ids(live, query, 0.7, 0.3)

    def test_delete_column_tombstones_but_keeps_mapping(self, columns):
        lake = PartitionedPexeso(n_pivots=3, levels=3, n_partitions=4).fit(columns)
        lake.delete_column(11)
        assert not lake.has_column(11)
        assert lake.n_columns == len(columns) - 1
        with pytest.raises(KeyError):
            lake.delete_column(11)
        with pytest.raises(KeyError):
            lake.column_vectors(11)
        live = {cid: col for cid, col in enumerate(columns) if cid != 11}
        query = columns[11][:5]
        got = lake.search(query, 0.7, 0.2).column_ids
        assert got == expected_ids(live, query, 0.7, 0.2)
        # ids above the tombstone still resolve to the right columns
        assert np.array_equal(lake.column_vectors(12), columns[12])

    def test_ids_never_reused_after_delete(self, columns, extra):
        lake = PartitionedPexeso(n_pivots=3, levels=3, n_partitions=3).fit(columns)
        lake.delete_column(3)
        gid = lake.add_column(extra[0])
        assert gid == len(columns)  # not 3
        assert not lake.has_column(3)

    def test_adds_balance_across_partitions(self, columns, extra):
        lake = PartitionedPexeso(n_pivots=3, levels=3, n_partitions=4).fit(columns)
        before = [len(g) for g in lake.partition_columns]
        for column in extra:
            lake.add_column(column)
        after = [len(g) for g in lake.partition_columns]
        assert sum(after) - sum(before) == len(extra)


class TestSpilledMaintenance:
    def test_add_and_delete_on_spilled_lake(self, columns, extra, tmp_path):
        lake = PartitionedPexeso(
            n_pivots=3, levels=3, n_partitions=3, spill_dir=tmp_path
        ).fit(columns)
        gid = lake.add_column(extra[0])
        hits = lake.search(extra[0][:5], 1e-6, 1.0).column_ids
        assert gid in hits
        lake.delete_column(gid)
        hits = lake.search(extra[0][:5], 1e-6, 1.0).column_ids
        assert gid not in hits

    def test_mutations_survive_reload(self, columns, extra, tmp_path):
        lake = PartitionedPexeso(n_pivots=3, levels=3, n_partitions=3).fit(columns)
        out = save_partitioned(lake, tmp_path / "lake")
        served = load_partitioned(out)
        gid = served.add_column(extra[0])
        served.delete_column(5)

        reloaded = load_partitioned(out)
        assert reloaded.n_columns == served.n_columns
        assert reloaded.has_column(gid)
        assert not reloaded.has_column(5)
        query = extra[0][:5]
        assert reloaded.search(query, 1e-6, 1.0).column_ids == \
            served.search(query, 1e-6, 1.0).column_ids
        live = {cid: col for cid, col in enumerate(columns) if cid != 5}
        live[gid] = extra[0]
        query = columns[2][:5]
        assert reloaded.search(query, 0.7, 0.3).column_ids == \
            expected_ids(live, query, 0.7, 0.3)


class TestLakeSearcherDispatch:
    def test_single_index_backend(self, columns, extra):
        searcher = LakeSearcher.build(columns, n_pivots=3, levels=3)
        gid = searcher.add_column(extra[0])
        assert searcher.has_column(gid)
        assert gid in searcher.search(extra[0][:5], 1e-6, 1.0).column_ids
        searcher.delete_column(gid)
        assert not searcher.has_column(gid)

    def test_partitioned_backend(self, columns, extra):
        searcher = LakeSearcher.build(columns, n_pivots=3, levels=3,
                                      n_partitions=3)
        gid = searcher.add_column(extra[1])
        assert searcher.has_column(gid)
        searcher.delete_column(gid)
        assert not searcher.has_column(gid)
        assert not searcher.has_column(10**6)
