"""Validation of the cost model against measured verification work.

Eq. 1-2 exist to *rank* grid depths, not to predict absolute counts; the
test asserts rank correlation between the estimated cost and the measured
distance computations across m values.
"""

import numpy as np
import pytest

from repro.core.cost import MappedDensityModel, estimate_workload_cost
from repro.core.index import PexesoIndex
from repro.core.metric import normalize_rows
from repro.core.search import pexeso_search


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(5)
    centers = normalize_rows(rng.normal(size=(15, 10)))
    columns = []
    for _ in range(40):
        picks = rng.choice(15, size=int(rng.integers(5, 20)))
        columns.append(
            normalize_rows(centers[picks] + rng.normal(scale=0.05, size=(len(picks), 10)))
        )
    queries = [
        normalize_rows(centers[rng.choice(15, size=10)] + rng.normal(scale=0.05, size=(10, 10)))
        for _ in range(3)
    ]
    return columns, queries


def _spearman(a, b):
    ranks_a = np.argsort(np.argsort(a))
    ranks_b = np.argsort(np.argsort(b))
    return float(np.corrcoef(ranks_a, ranks_b)[0, 1])


class TestCostModelValidation:
    def test_estimated_cost_tracks_measured_work(self, setup):
        columns, queries = setup
        tau = 0.15
        probe = PexesoIndex.build(columns, n_pivots=3, levels=3)
        mapped_queries = [probe.pivot_space.map_vectors(q) for q in queries]
        workload = [(mq, tau) for mq in mapped_queries]
        density = MappedDensityModel(probe.mapped, probe.pivot_space.extent)

        estimates = []
        measured = []
        for m in (1, 2, 3, 4, 5):
            estimates.append(
                estimate_workload_cost(
                    probe.mapped, probe.pivot_space.extent, workload, m, density
                )
            )
            index = PexesoIndex.build(columns, n_pivots=3, levels=m)
            # disable early termination so the measured count is stable
            measured.append(
                sum(
                    pexeso_search(index, q, tau, 0.2, exact_counts=True)
                    .stats.distance_computations
                    for q in queries
                )
            )
        # The model need not be calibrated, but its ranking of m values
        # should broadly agree with reality (positive rank correlation).
        assert _spearman(np.asarray(estimates), np.asarray(measured)) > 0.0

    def test_estimates_positive_under_load(self, setup):
        columns, queries = setup
        probe = PexesoIndex.build(columns, n_pivots=3, levels=3)
        workload = [(probe.pivot_space.map_vectors(queries[0]), 0.4)]
        cost = estimate_workload_cost(
            probe.mapped, probe.pivot_space.extent, workload, 3
        )
        assert cost > 0.0
