"""Tests for index save/load."""

import json

import numpy as np
import pytest

from repro.core.index import PexesoIndex
from repro.core.metric import ManhattanMetric, normalize_rows
from repro.core.persistence import FORMAT_VERSION, load_index, save_index
from repro.core.search import pexeso_search


@pytest.fixture()
def built(small_columns):
    return PexesoIndex.build(small_columns, n_pivots=3, levels=3)


class TestRoundtrip:
    def test_identical_search_results(self, built, small_columns, small_query, tmp_path):
        save_index(built, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        for tau in (0.3, 0.9):
            assert (
                pexeso_search(loaded, small_query, tau, 0.3).column_ids
                == pexeso_search(built, small_query, tau, 0.3).column_ids
            )

    def test_vectors_preserved(self, built, tmp_path):
        save_index(built, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        np.testing.assert_allclose(loaded.vectors, built.vectors)
        np.testing.assert_allclose(loaded.mapped, built.mapped)

    def test_metadata_preserved(self, built, tmp_path):
        save_index(built, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        assert loaded.n_pivots == built.n_pivots
        assert loaded.levels == built.levels
        assert loaded.n_columns == built.n_columns
        assert loaded.metric.name == built.metric.name

    def test_loaded_index_supports_append(self, built, small_columns, tmp_path):
        save_index(built, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        new_id = loaded.add_column(small_columns[0][:4].copy())
        result = pexeso_search(loaded, small_columns[0][:4], 1e-6, 1.0)
        assert new_id in result.column_ids

    def test_non_default_metric(self, small_columns, small_query, tmp_path):
        index = PexesoIndex.build(
            small_columns, metric=ManhattanMetric(), n_pivots=2, levels=2
        )
        save_index(index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        assert isinstance(loaded.metric, ManhattanMetric)
        assert (
            pexeso_search(loaded, small_query, 0.5, 0.3).column_ids
            == pexeso_search(index, small_query, 0.5, 0.3).column_ids
        )


class TestMaintenanceAfterReload:
    """Save -> load -> append -> delete -> search must equal a never-persisted index."""

    def test_roundtrip_then_maintenance_matches_in_memory(
        self, small_columns, small_query, tmp_path
    ):
        kept = PexesoIndex.build(small_columns, n_pivots=3, levels=3)
        save_index(kept, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")

        extra = small_columns[1][:5].copy()
        kept_id = kept.add_column(extra)
        loaded_id = loaded.add_column(extra)
        assert kept_id == loaded_id
        kept.delete_column(0)
        loaded.delete_column(0)

        for tau in (0.2, 0.6, 1.1):
            kept_result = pexeso_search(kept, small_query, tau, 0.3, exact_counts=True)
            loaded_result = pexeso_search(loaded, small_query, tau, 0.3, exact_counts=True)
            assert kept_result.column_ids == loaded_result.column_ids
            assert [h.match_count for h in kept_result.joinable] == [
                h.match_count for h in loaded_result.joinable
            ]
        assert 0 not in pexeso_search(loaded, small_query, 1.5, 0.1).column_ids

    def test_second_roundtrip_after_maintenance(self, small_columns, small_query, tmp_path):
        index = PexesoIndex.build(small_columns, n_pivots=3, levels=3)
        save_index(index, tmp_path / "a")
        loaded = load_index(tmp_path / "a")
        loaded.add_column(small_columns[0][:6].copy())
        loaded.delete_column(1)
        save_index(loaded, tmp_path / "b")
        again = load_index(tmp_path / "b")
        for tau in (0.4, 0.9):
            assert (
                pexeso_search(again, small_query, tau, 0.3).column_ids
                == pexeso_search(loaded, small_query, tau, 0.3).column_ids
            )
        assert again.stats.n_leaf_cells == loaded.inverted.n_cells
        assert again.stats.n_postings == loaded.inverted.n_postings

    def test_delete_column_refreshes_stats(self, small_columns):
        index = PexesoIndex.build(small_columns, n_pivots=3, levels=3)
        before_cells = index.stats.n_leaf_cells
        before_postings = index.stats.n_postings
        index.delete_column(0)
        assert index.stats.n_leaf_cells == index.inverted.n_cells
        assert index.stats.n_postings == index.inverted.n_postings
        assert index.stats.n_postings < before_postings
        assert index.stats.n_leaf_cells <= before_cells


class TestValidation:
    def test_unbuilt_index_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_index(PexesoIndex(), tmp_path / "idx")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "nope")

    def test_version_mismatch(self, built, tmp_path):
        save_index(built, tmp_path / "idx")
        manifest = json.loads((tmp_path / "idx" / "manifest.json").read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        (tmp_path / "idx" / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format"):
            load_index(tmp_path / "idx")


class TestPartitionedPersistence:
    """Lake-level save/load of the sharded layout."""

    @pytest.fixture()
    def lake(self, small_columns):
        from repro.core.out_of_core import PartitionedPexeso

        return PartitionedPexeso(n_pivots=3, levels=3, n_partitions=3, seed=5).fit(
            small_columns
        )

    def test_roundtrip_identical_results(self, lake, small_query, tmp_path):
        from repro.core.persistence import load_partitioned, save_partitioned

        save_partitioned(lake, tmp_path / "lake")
        loaded = load_partitioned(tmp_path / "lake")
        assert (
            loaded.search(small_query, 0.8, 0.3).column_ids
            == lake.search(small_query, 0.8, 0.3).column_ids
        )
        assert loaded.topk(small_query, 0.8, 5).hits == lake.topk(small_query, 0.8, 5).hits
        assert loaded.n_columns == lake.n_columns
        assert loaded.partition_columns == lake.partition_columns

    def test_spilled_in_place_reuses_partitions(self, small_columns, small_query, tmp_path):
        from repro.core.out_of_core import PartitionedPexeso
        from repro.core.persistence import load_partitioned, save_partitioned

        target = tmp_path / "lake"
        lake = PartitionedPexeso(
            n_pivots=3, levels=3, n_partitions=3, seed=5, spill_dir=target
        ).fit(small_columns)
        save_partitioned(lake, target)
        loaded = load_partitioned(target)
        assert (
            loaded.search(small_query, 0.8, 0.3).column_ids
            == lake.search(small_query, 0.8, 0.3).column_ids
        )

    def test_load_any_dispatches(self, built, lake, tmp_path):
        from repro.core.out_of_core import PartitionedPexeso
        from repro.core.persistence import load_any, save_partitioned

        save_index(built, tmp_path / "single")
        save_partitioned(lake, tmp_path / "sharded")
        assert isinstance(load_any(tmp_path / "single"), PexesoIndex)
        assert isinstance(load_any(tmp_path / "sharded"), PartitionedPexeso)
        with pytest.raises(FileNotFoundError):
            load_any(tmp_path / "nothing")

    def test_unfitted_lake_rejected(self, tmp_path):
        from repro.core.out_of_core import PartitionedPexeso
        from repro.core.persistence import save_partitioned

        with pytest.raises(RuntimeError):
            save_partitioned(PartitionedPexeso(), tmp_path / "lake")

    def test_version_mismatch(self, lake, tmp_path):
        from repro.core.persistence import (
            PARTITIONED_FORMAT_VERSION,
            load_partitioned,
            save_partitioned,
        )

        save_partitioned(lake, tmp_path / "lake")
        manifest_path = tmp_path / "lake" / "partitioned.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = PARTITIONED_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format"):
            load_partitioned(tmp_path / "lake")

    def test_lazy_loading(self, lake, small_query, tmp_path):
        from repro.core.persistence import load_partitioned, save_partitioned

        save_partitioned(lake, tmp_path / "lake")
        loaded = load_partitioned(tmp_path / "lake")
        assert loaded.memory_bytes() == 0  # nothing resident until queried
        loaded.search(small_query, 0.8, 0.3)
        assert loaded.memory_bytes() > 0

    def test_resident_lake_with_unloadable_metric_rejected(
        self, small_columns, tmp_path
    ):
        from repro.core.metric import EuclideanMetric
        from repro.core.out_of_core import PartitionedPexeso
        from repro.core.persistence import save_partitioned

        class UnregisteredMetric(EuclideanMetric):
            name = "unregistered-save-test"

        lake = PartitionedPexeso(
            metric=UnregisteredMetric(), n_pivots=2, levels=2, n_partitions=2
        ).fit(small_columns)
        # Saving would write a metric name load_partitioned cannot
        # resolve; refuse rather than produce an unloadable lake.
        with pytest.raises(ValueError, match="registry name"):
            save_partitioned(lake, tmp_path / "lake")
