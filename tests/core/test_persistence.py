"""Tests for index save/load."""

import json

import numpy as np
import pytest

from repro.core.index import PexesoIndex
from repro.core.metric import ManhattanMetric, normalize_rows
from repro.core.persistence import FORMAT_VERSION, load_index, save_index
from repro.core.search import pexeso_search


@pytest.fixture()
def built(small_columns):
    return PexesoIndex.build(small_columns, n_pivots=3, levels=3)


class TestRoundtrip:
    def test_identical_search_results(self, built, small_columns, small_query, tmp_path):
        save_index(built, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        for tau in (0.3, 0.9):
            assert (
                pexeso_search(loaded, small_query, tau, 0.3).column_ids
                == pexeso_search(built, small_query, tau, 0.3).column_ids
            )

    def test_vectors_preserved(self, built, tmp_path):
        save_index(built, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        np.testing.assert_allclose(loaded.vectors, built.vectors)
        np.testing.assert_allclose(loaded.mapped, built.mapped)

    def test_metadata_preserved(self, built, tmp_path):
        save_index(built, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        assert loaded.n_pivots == built.n_pivots
        assert loaded.levels == built.levels
        assert loaded.n_columns == built.n_columns
        assert loaded.metric.name == built.metric.name

    def test_loaded_index_supports_append(self, built, small_columns, tmp_path):
        save_index(built, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        new_id = loaded.add_column(small_columns[0][:4].copy())
        result = pexeso_search(loaded, small_columns[0][:4], 1e-6, 1.0)
        assert new_id in result.column_ids

    def test_non_default_metric(self, small_columns, small_query, tmp_path):
        index = PexesoIndex.build(
            small_columns, metric=ManhattanMetric(), n_pivots=2, levels=2
        )
        save_index(index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        assert isinstance(loaded.metric, ManhattanMetric)
        assert (
            pexeso_search(loaded, small_query, 0.5, 0.3).column_ids
            == pexeso_search(index, small_query, 0.5, 0.3).column_ids
        )


class TestMaintenanceAfterReload:
    """Save -> load -> append -> delete -> search must equal a never-persisted index."""

    def test_roundtrip_then_maintenance_matches_in_memory(
        self, small_columns, small_query, tmp_path
    ):
        kept = PexesoIndex.build(small_columns, n_pivots=3, levels=3)
        save_index(kept, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")

        extra = small_columns[1][:5].copy()
        kept_id = kept.add_column(extra)
        loaded_id = loaded.add_column(extra)
        assert kept_id == loaded_id
        kept.delete_column(0)
        loaded.delete_column(0)

        for tau in (0.2, 0.6, 1.1):
            kept_result = pexeso_search(kept, small_query, tau, 0.3, exact_counts=True)
            loaded_result = pexeso_search(loaded, small_query, tau, 0.3, exact_counts=True)
            assert kept_result.column_ids == loaded_result.column_ids
            assert [h.match_count for h in kept_result.joinable] == [
                h.match_count for h in loaded_result.joinable
            ]
        assert 0 not in pexeso_search(loaded, small_query, 1.5, 0.1).column_ids

    def test_second_roundtrip_after_maintenance(self, small_columns, small_query, tmp_path):
        index = PexesoIndex.build(small_columns, n_pivots=3, levels=3)
        save_index(index, tmp_path / "a")
        loaded = load_index(tmp_path / "a")
        loaded.add_column(small_columns[0][:6].copy())
        loaded.delete_column(1)
        save_index(loaded, tmp_path / "b")
        again = load_index(tmp_path / "b")
        for tau in (0.4, 0.9):
            assert (
                pexeso_search(again, small_query, tau, 0.3).column_ids
                == pexeso_search(loaded, small_query, tau, 0.3).column_ids
            )
        assert again.stats.n_leaf_cells == loaded.inverted.n_cells
        assert again.stats.n_postings == loaded.inverted.n_postings

    def test_delete_column_refreshes_stats(self, small_columns):
        index = PexesoIndex.build(small_columns, n_pivots=3, levels=3)
        before_cells = index.stats.n_leaf_cells
        before_postings = index.stats.n_postings
        index.delete_column(0)
        assert index.stats.n_leaf_cells == index.inverted.n_cells
        assert index.stats.n_postings == index.inverted.n_postings
        assert index.stats.n_postings < before_postings
        assert index.stats.n_leaf_cells <= before_cells


class TestValidation:
    def test_unbuilt_index_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_index(PexesoIndex(), tmp_path / "idx")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "nope")

    def test_version_mismatch(self, built, tmp_path):
        save_index(built, tmp_path / "idx")
        manifest = json.loads((tmp_path / "idx" / "manifest.json").read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        (tmp_path / "idx" / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format"):
            load_index(tmp_path / "idx")


class TestPartitionedPersistence:
    """Lake-level save/load of the sharded layout."""

    @pytest.fixture()
    def lake(self, small_columns):
        from repro.core.out_of_core import PartitionedPexeso

        return PartitionedPexeso(n_pivots=3, levels=3, n_partitions=3, seed=5).fit(
            small_columns
        )

    def test_roundtrip_identical_results(self, lake, small_query, tmp_path):
        from repro.core.persistence import load_partitioned, save_partitioned

        save_partitioned(lake, tmp_path / "lake")
        loaded = load_partitioned(tmp_path / "lake")
        assert (
            loaded.search(small_query, 0.8, 0.3).column_ids
            == lake.search(small_query, 0.8, 0.3).column_ids
        )
        assert loaded.topk(small_query, 0.8, 5).hits == lake.topk(small_query, 0.8, 5).hits
        assert loaded.n_columns == lake.n_columns
        assert loaded.partition_columns == lake.partition_columns

    def test_spilled_in_place_reuses_partitions(self, small_columns, small_query, tmp_path):
        from repro.core.out_of_core import PartitionedPexeso
        from repro.core.persistence import load_partitioned, save_partitioned

        target = tmp_path / "lake"
        lake = PartitionedPexeso(
            n_pivots=3, levels=3, n_partitions=3, seed=5, spill_dir=target
        ).fit(small_columns)
        save_partitioned(lake, target)
        loaded = load_partitioned(target)
        assert (
            loaded.search(small_query, 0.8, 0.3).column_ids
            == lake.search(small_query, 0.8, 0.3).column_ids
        )

    def test_load_any_dispatches(self, built, lake, tmp_path):
        from repro.core.out_of_core import PartitionedPexeso
        from repro.core.persistence import load_any, save_partitioned

        save_index(built, tmp_path / "single")
        save_partitioned(lake, tmp_path / "sharded")
        assert isinstance(load_any(tmp_path / "single"), PexesoIndex)
        assert isinstance(load_any(tmp_path / "sharded"), PartitionedPexeso)
        with pytest.raises(FileNotFoundError):
            load_any(tmp_path / "nothing")

    def test_unfitted_lake_rejected(self, tmp_path):
        from repro.core.out_of_core import PartitionedPexeso
        from repro.core.persistence import save_partitioned

        with pytest.raises(RuntimeError):
            save_partitioned(PartitionedPexeso(), tmp_path / "lake")

    def test_version_mismatch(self, lake, tmp_path):
        from repro.core.persistence import (
            PARTITIONED_FORMAT_VERSION,
            load_partitioned,
            save_partitioned,
        )

        save_partitioned(lake, tmp_path / "lake")
        manifest_path = tmp_path / "lake" / "partitioned.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = PARTITIONED_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format"):
            load_partitioned(tmp_path / "lake")

    def test_lazy_loading(self, lake, small_query, tmp_path):
        from repro.core.persistence import load_partitioned, save_partitioned

        save_partitioned(lake, tmp_path / "lake")
        loaded = load_partitioned(tmp_path / "lake")
        assert loaded.memory_bytes() == 0  # nothing resident until queried
        loaded.search(small_query, 0.8, 0.3)
        assert loaded.memory_bytes() > 0

    def test_resident_lake_with_unloadable_metric_rejected(
        self, small_columns, tmp_path
    ):
        from repro.core.metric import EuclideanMetric
        from repro.core.out_of_core import PartitionedPexeso
        from repro.core.persistence import save_partitioned

        class UnregisteredMetric(EuclideanMetric):
            name = "unregistered-save-test"

        lake = PartitionedPexeso(
            metric=UnregisteredMetric(), n_pivots=2, levels=2, n_partitions=2
        ).fit(small_columns)
        # Saving would write a metric name load_partitioned cannot
        # resolve; refuse rather than produce an unloadable lake.
        with pytest.raises(ValueError, match="registry name"):
            save_partitioned(lake, tmp_path / "lake")


class TestV3Format:
    """The mmap-able raw-.npy layout (format version 3)."""

    def test_v3_layout_on_disk(self, built, tmp_path):
        save_index(built, tmp_path / "idx")
        manifest = json.loads((tmp_path / "idx" / "manifest.json").read_text())
        assert manifest["format_version"] == FORMAT_VERSION == 3
        arrays_dir = tmp_path / "idx" / manifest["arrays_dir"]
        assert (arrays_dir / "vectors.npy").exists()
        assert (arrays_dir / "inv_starts.npy").exists()
        assert not (tmp_path / "idx" / "index.npz").exists()

    def test_mmap_load_is_zero_copy(self, built, tmp_path):
        save_index(built, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx", mmap=True)
        assert isinstance(loaded.vectors, np.memmap)
        assert isinstance(loaded.mapped, np.memmap)
        # the one in-place-mutated array must be materialised
        assert not isinstance(loaded.inverted._starts, np.memmap)

    def test_eager_load_matches_mmap(self, built, small_query, tmp_path):
        save_index(built, tmp_path / "idx")
        eager = load_index(tmp_path / "idx", mmap=False)
        mapped = load_index(tmp_path / "idx", mmap=True)
        assert not isinstance(eager.vectors, np.memmap)
        for tau in (0.3, 0.9):
            assert (
                pexeso_search(eager, small_query, tau, 0.3).column_ids
                == pexeso_search(mapped, small_query, tau, 0.3).column_ids
            )

    def test_mmap_index_supports_maintenance(self, built, small_columns, small_query, tmp_path):
        save_index(built, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx", mmap=True)
        kept = load_index(tmp_path / "idx", mmap=False)
        extra = small_columns[1][:5].copy()
        assert loaded.add_column(extra) == kept.add_column(extra)
        loaded.delete_column(0)
        kept.delete_column(0)
        for tau in (0.2, 0.6):
            a = pexeso_search(loaded, small_query, tau, 0.3, exact_counts=True)
            b = pexeso_search(kept, small_query, tau, 0.3, exact_counts=True)
            assert a.column_ids == b.column_ids
            assert [h.match_count for h in a.joinable] == [
                h.match_count for h in b.joinable
            ]

    def test_resave_bumps_epoch_and_sweeps_old(self, built, small_columns, tmp_path):
        target = tmp_path / "idx"
        save_index(built, target)
        first = json.loads((target / "manifest.json").read_text())["arrays_dir"]
        loaded = load_index(target, mmap=True)
        loaded.add_column(small_columns[0][:4].copy())
        save_index(loaded, target)
        second = json.loads((target / "manifest.json").read_text())["arrays_dir"]
        assert second != first
        assert not (target / first).exists()
        again = load_index(target)
        assert again.n_columns == loaded.n_columns

    def test_unknown_format_rejected_on_save(self, built, tmp_path):
        with pytest.raises(ValueError, match="format"):
            save_index(built, tmp_path / "idx", fmt=99)


class TestV2Compat:
    """v2 (single .npz) directories stay loadable; v3 is the default."""

    def test_v2_save_and_load(self, built, small_query, tmp_path):
        from repro.core.persistence import V2_FORMAT_VERSION

        save_index(built, tmp_path / "idx", fmt=V2_FORMAT_VERSION)
        assert (tmp_path / "idx" / "index.npz").exists()
        manifest = json.loads((tmp_path / "idx" / "manifest.json").read_text())
        assert manifest["format_version"] == V2_FORMAT_VERSION
        loaded = load_index(tmp_path / "idx")
        for tau in (0.3, 0.9):
            assert (
                pexeso_search(loaded, small_query, tau, 0.3).column_ids
                == pexeso_search(built, small_query, tau, 0.3).column_ids
            )

    def test_migration_v2_to_v3_in_place(self, built, small_query, tmp_path):
        from repro.core.persistence import V2_FORMAT_VERSION

        target = tmp_path / "idx"
        save_index(built, target, fmt=V2_FORMAT_VERSION)
        migrated = load_index(target)
        save_index(migrated, target)  # re-save upgrades to v3
        manifest = json.loads((target / "manifest.json").read_text())
        assert manifest["format_version"] == FORMAT_VERSION
        assert not (target / "index.npz").exists()
        v3 = load_index(target, mmap=True)
        assert (
            pexeso_search(v3, small_query, 0.6, 0.3).column_ids
            == pexeso_search(built, small_query, 0.6, 0.3).column_ids
        )

    def test_partitioned_v2_lake_loads(self, small_columns, small_query, tmp_path):
        from repro.core.out_of_core import PartitionedPexeso
        from repro.core.persistence import (
            V2_FORMAT_VERSION,
            load_partitioned,
            save_partitioned,
        )

        lake = PartitionedPexeso(n_pivots=3, levels=3, n_partitions=3, seed=5).fit(
            small_columns
        )
        save_partitioned(lake, tmp_path / "lake", fmt=V2_FORMAT_VERSION)
        assert list((tmp_path / "lake").glob("partition_*/index.npz"))
        loaded = load_partitioned(tmp_path / "lake")
        assert (
            loaded.search(small_query, 0.8, 0.3).column_ids
            == lake.search(small_query, 0.8, 0.3).column_ids
        )


class TestAtomicWrites:
    """Crash-safety of manifests and array epochs."""

    def test_leftover_temp_files_ignored_and_swept(self, built, tmp_path):
        target = tmp_path / "idx"
        save_index(built, target)
        junk = target / "manifest.json.tmp-999-deadbeef"
        junk.write_text("{ truncated")
        loaded = load_index(target)  # must not trip over the leftover
        assert loaded.n_columns == built.n_columns
        save_index(loaded, target)  # next save sweeps it
        assert not junk.exists()

    def test_stale_epoch_dir_ignored_and_swept(self, built, tmp_path):
        target = tmp_path / "idx"
        save_index(built, target)
        stale = target / "arrays_v3_99999999"
        stale.mkdir()
        (stale / "vectors.npy").write_bytes(b"garbage")
        loaded = load_index(target)
        assert loaded.n_columns == built.n_columns
        save_index(loaded, target)
        assert not stale.exists()

    def test_manifest_flip_is_all_or_nothing(self, built, small_columns, tmp_path):
        """A save interrupted before the manifest flip leaves the old
        index fully loadable (simulated by writing the new epoch dir
        without touching the manifest)."""
        target = tmp_path / "idx"
        save_index(built, target)
        before = json.loads((target / "manifest.json").read_text())
        # Simulate a crash mid-save: a newer epoch dir exists but the
        # manifest still names the old one.
        orphan = target / "arrays_v3_00000042"
        orphan.mkdir()
        (orphan / "vectors.npy").write_bytes(b"partial write")
        loaded = load_index(target)
        assert loaded.n_columns == built.n_columns
        after = json.loads((target / "manifest.json").read_text())
        assert after == before

    def test_lake_manifest_refresh_is_atomic(self, small_columns, small_query, tmp_path):
        """A mutation's manifest refresh replaces partitioned.json in one
        step and leaves no temp debris behind."""
        from repro.core.atomic import is_temp_artifact
        from repro.core.out_of_core import PartitionedPexeso
        from repro.core.persistence import load_partitioned, save_partitioned

        target = tmp_path / "lake"
        lake = PartitionedPexeso(
            n_pivots=3, levels=3, n_partitions=3, seed=5, spill_dir=target
        ).fit(small_columns)
        save_partitioned(lake, target)
        lake.add_column(small_columns[0][:4].copy())
        leftovers = [p for p in target.iterdir() if is_temp_artifact(p)]
        assert leftovers == []
        reloaded = load_partitioned(target)
        assert reloaded.n_columns == lake.n_columns
