"""Tests for index save/load."""

import json

import numpy as np
import pytest

from repro.core.index import PexesoIndex
from repro.core.metric import ManhattanMetric, normalize_rows
from repro.core.persistence import FORMAT_VERSION, load_index, save_index
from repro.core.search import pexeso_search


@pytest.fixture()
def built(small_columns):
    return PexesoIndex.build(small_columns, n_pivots=3, levels=3)


class TestRoundtrip:
    def test_identical_search_results(self, built, small_columns, small_query, tmp_path):
        save_index(built, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        for tau in (0.3, 0.9):
            assert (
                pexeso_search(loaded, small_query, tau, 0.3).column_ids
                == pexeso_search(built, small_query, tau, 0.3).column_ids
            )

    def test_vectors_preserved(self, built, tmp_path):
        save_index(built, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        np.testing.assert_allclose(loaded.vectors, built.vectors)
        np.testing.assert_allclose(loaded.mapped, built.mapped)

    def test_metadata_preserved(self, built, tmp_path):
        save_index(built, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        assert loaded.n_pivots == built.n_pivots
        assert loaded.levels == built.levels
        assert loaded.n_columns == built.n_columns
        assert loaded.metric.name == built.metric.name

    def test_loaded_index_supports_append(self, built, small_columns, tmp_path):
        save_index(built, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        new_id = loaded.add_column(small_columns[0][:4].copy())
        result = pexeso_search(loaded, small_columns[0][:4], 1e-6, 1.0)
        assert new_id in result.column_ids

    def test_non_default_metric(self, small_columns, small_query, tmp_path):
        index = PexesoIndex.build(
            small_columns, metric=ManhattanMetric(), n_pivots=2, levels=2
        )
        save_index(index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        assert isinstance(loaded.metric, ManhattanMetric)
        assert (
            pexeso_search(loaded, small_query, 0.5, 0.3).column_ids
            == pexeso_search(index, small_query, 0.5, 0.3).column_ids
        )


class TestValidation:
    def test_unbuilt_index_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_index(PexesoIndex(), tmp_path / "idx")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "nope")

    def test_version_mismatch(self, built, tmp_path):
        save_index(built, tmp_path / "idx")
        manifest = json.loads((tmp_path / "idx" / "manifest.json").read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        (tmp_path / "idx" / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format"):
            load_index(tmp_path / "idx")
