"""Tests for the linearized (bit-interleaved) cell codes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cellcodes import (
    MAX_CODE_BITS,
    ancestor_codes,
    check_code_width,
    decode_cells,
    encode_cells,
    subtree_bounds,
)


@st.composite
def coord_grids(draw):
    n_dims = draw(st.integers(1, 5))
    bits = draw(st.integers(1, 8))
    n = draw(st.integers(1, 60))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    coords = rng.integers(0, 1 << bits, size=(n, n_dims), dtype=np.int64)
    return coords, n_dims, bits


class TestRoundtrip:
    @settings(max_examples=60, deadline=None)
    @given(data=coord_grids())
    def test_decode_inverts_encode(self, data):
        coords, n_dims, bits = data
        codes = encode_cells(coords, n_dims, bits)
        np.testing.assert_array_equal(decode_cells(codes, n_dims, bits), coords)

    @settings(max_examples=60, deadline=None)
    @given(data=coord_grids())
    def test_codes_distinct_iff_coords_distinct(self, data):
        coords, n_dims, bits = data
        codes = encode_cells(coords, n_dims, bits)
        n_unique_coords = len({tuple(row) for row in coords.tolist()})
        assert np.unique(codes).size == n_unique_coords


class TestAncestors:
    @settings(max_examples=60, deadline=None)
    @given(data=coord_grids(), up=st.integers(0, 3))
    def test_shift_equals_coordinate_halving(self, data, up):
        coords, n_dims, bits = data
        up = min(up, bits)
        codes = encode_cells(coords, n_dims, bits)
        parents = ancestor_codes(codes, n_dims, up)
        expected = encode_cells(coords >> up, n_dims, bits - up) if bits > up else (
            np.zeros(coords.shape[0], dtype=np.int64)
        )
        np.testing.assert_array_equal(parents, expected)

    @settings(max_examples=40, deadline=None)
    @given(data=coord_grids())
    def test_subtree_bounds_cover_descendant_codes(self, data):
        coords, n_dims, bits = data
        codes = encode_cells(coords, n_dims, bits)
        up = min(2, bits)
        for code in codes[:5].tolist():
            parent = code >> (n_dims * up)
            lo, hi = subtree_bounds(parent, n_dims, up)
            assert lo <= code < hi


class TestLimits:
    def test_width_guard(self):
        with pytest.raises(ValueError, match="int64"):
            check_code_width(8, 8)
        check_code_width(5, 12)  # 60 bits: fine

    def test_paper_defaults_fit(self):
        # OPEN: |P|=5, m=6; SWDC: |P|=3, m=4 — far below the limit
        assert 5 * 6 <= MAX_CODE_BITS
        assert 3 * 4 <= MAX_CODE_BITS

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="coords"):
            encode_cells(np.zeros((3,), dtype=np.int64), 2, 3)
