"""Property-based tests on the core data structures (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import HierarchicalGrid
from repro.core.inverted_index import InvertedIndex
from repro.core.partition import HistogramSpace, jensen_shannon_divergence


@st.composite
def mapped_points(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    n = draw(st.integers(1, 80))
    dims = draw(st.integers(1, 5))
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 2.0, size=(n, dims))


class TestGridProperties:
    @settings(max_examples=40, deadline=None)
    @given(points=mapped_points(), levels=st.integers(1, 6))
    def test_members_partition_rows(self, points, levels):
        grid = HierarchicalGrid.build(points, levels=levels, extent=2.0)
        members = sorted(
            m for cell in grid.leaf_cells.values() for m in cell.members
        )
        assert members == list(range(points.shape[0]))

    @settings(max_examples=40, deadline=None)
    @given(points=mapped_points(), levels=st.integers(1, 6))
    def test_every_leaf_reachable_from_root(self, points, levels):
        grid = HierarchicalGrid.build(points, levels=levels, extent=2.0)
        reachable = {leaf.coords for leaf in grid.subtree_leaves(grid.root)}
        assert reachable == set(grid.leaf_cells)

    @settings(max_examples=40, deadline=None)
    @given(points=mapped_points(), levels=st.integers(1, 5))
    def test_child_boxes_nest_inside_parents(self, points, levels):
        grid = HierarchicalGrid.build(points, levels=levels, extent=2.0)
        for level in range(1, levels):
            for cell in grid.iter_cells(level):
                lo, hi = grid.cell_box(cell)
                for child in cell.children:
                    c_lo, c_hi = grid.cell_box(child)
                    assert (c_lo >= lo - 1e-12).all()
                    assert (c_hi <= hi + 1e-12).all()

    @settings(max_examples=30, deadline=None)
    @given(points=mapped_points(), levels=st.integers(1, 5),
           split=st.integers(1, 79))
    def test_incremental_equals_batch(self, points, levels, split):
        split = min(split, points.shape[0])
        batch = HierarchicalGrid.build(points, levels=levels, extent=2.0)
        incremental = HierarchicalGrid(points.shape[1], levels, 2.0)
        incremental.insert(points[:split])
        if split < points.shape[0]:
            incremental.insert(points[split:])
        assert set(batch.leaf_cells) == set(incremental.leaf_cells)
        for coords, cell in batch.leaf_cells.items():
            assert sorted(cell.members) == sorted(
                incremental.leaf_cells[coords].members
            )


class TestInvertedIndexProperties:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n_columns=st.integers(1, 15))
    def test_postings_track_insertions(self, seed, n_columns):
        rng = np.random.default_rng(seed)
        index = InvertedIndex()
        truth: dict[int, dict[int, list[int]]] = {}
        row = 0
        for col in range(n_columns):
            n_vec = int(rng.integers(1, 10))
            cells = [int(rng.integers(0, 16)) for _ in range(n_vec)]
            index.add_column(col, cells, first_row=row)
            for offset, cell in enumerate(cells):
                truth.setdefault(cell, {}).setdefault(col, []).append(row + offset)
            row += n_vec
        for cell, expected in truth.items():
            got = {p.column_id: p.rows for p in index.postings(cell)}
            assert got == expected
            assert list(got) == sorted(got)  # DaaT order

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_delete_inverse_of_add(self, seed):
        rng = np.random.default_rng(seed)
        index = InvertedIndex()
        index.add_column(0, [0, 5], first_row=0)
        snapshot = {
            cell: [(p.column_id, list(p.rows)) for p in index.postings(cell)]
            for cell in list(index.cells())
        }
        cells = [int(rng.integers(0, 9)) for _ in range(int(rng.integers(1, 8)))]
        index.add_column(1, cells, first_row=100)
        index.delete_column(1)
        restored = {
            cell: [(p.column_id, list(p.rows)) for p in index.postings(cell)]
            for cell in list(index.cells())
        }
        assert restored == snapshot


class TestHistogramProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(2, 60))
    def test_histograms_are_distributions(self, seed, n):
        rng = np.random.default_rng(seed)
        sample = rng.normal(size=(max(n, 4), 6))
        space = HistogramSpace(sample)
        hist = space.histogram(sample[:n])
        assert hist.min() >= 0.0
        assert hist.sum() == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_jsd_axioms(self, seed):
        rng = np.random.default_rng(seed)
        p = rng.dirichlet(np.ones(12))
        q = rng.dirichlet(np.ones(12))
        assert jensen_shannon_divergence(p, q) >= -1e-12
        assert jensen_shannon_divergence(p, q) == pytest.approx(
            jensen_shannon_divergence(q, p)
        )
        assert jensen_shannon_divergence(p, p) == pytest.approx(0.0, abs=1e-9)
