"""Edge-case tests for the batched verifier."""

import numpy as np
import pytest

from repro.core.blocker import BlockResult
from repro.core.index import PexesoIndex
from repro.core.metric import EuclideanMetric, normalize_rows
from repro.core.stats import SearchStats
from repro.core.verifier import verify


@pytest.fixture()
def tight_cluster_index():
    """Columns so tight that Lemma 5/6 produce pure matching pairs."""
    rng = np.random.default_rng(0)
    center = normalize_rows(rng.normal(size=(1, 6)))[0]
    columns = [
        normalize_rows(center + rng.normal(scale=1e-4, size=(5, 6)))
        for _ in range(4)
    ]
    return columns, PexesoIndex.build(columns, n_pivots=2, levels=2)


class TestMatchPairsOnly:
    def test_columns_credited_without_distances(self, tight_cluster_index):
        columns, index = tight_cluster_index
        queries = columns[0][:3]
        q_mapped = index.pivot_space.map_vectors(queries)
        pairs = BlockResult()
        # hand-build pure matching pairs covering every occupied cell
        for q in range(3):
            for cell in index.inverted.cells():
                pairs.add_match(q, cell)
        stats = SearchStats()
        verdict = verify(
            pairs, index.inverted, queries, q_mapped,
            index.vectors, index.mapped, index.metric,
            tau=2.0, t_count=3, stats=stats,
        )
        assert verdict.joinable == {0, 1, 2, 3}
        assert stats.distance_computations == 0  # match pairs need no work

    def test_duplicate_match_cells_count_once(self, tight_cluster_index):
        columns, index = tight_cluster_index
        queries = columns[0][:2]
        q_mapped = index.pivot_space.map_vectors(queries)
        pairs = BlockResult()
        cell = next(iter(index.inverted.cells()))
        pairs.add_match(0, cell)
        pairs.add_match(0, cell)  # duplicate
        verdict = verify(
            pairs, index.inverted, queries, q_mapped,
            index.vectors, index.mapped, index.metric,
            tau=2.0, t_count=1, exact_counts=True, stats=SearchStats(),
        )
        for col, count in verdict.match_counts.items():
            assert count <= 1


class TestEmptyInputs:
    def test_empty_block_result(self, tight_cluster_index):
        columns, index = tight_cluster_index
        queries = columns[0][:2]
        q_mapped = index.pivot_space.map_vectors(queries)
        verdict = verify(
            BlockResult(), index.inverted, queries, q_mapped,
            index.vectors, index.mapped, index.metric,
            tau=0.5, t_count=1, stats=SearchStats(),
        )
        assert verdict.joinable == set()
        assert verdict.match_counts == {}

    def test_candidate_cells_with_no_postings(self, tight_cluster_index):
        columns, index = tight_cluster_index
        queries = columns[0][:1]
        q_mapped = index.pivot_space.map_vectors(queries)
        pairs = BlockResult()
        pairs.add_candidate(0, 10**9)  # unoccupied cell code
        verdict = verify(
            pairs, index.inverted, queries, q_mapped,
            index.vectors, index.mapped, index.metric,
            tau=0.5, t_count=1, stats=SearchStats(),
        )
        assert verdict.joinable == set()


class TestExactCountsForcesFullWork:
    def test_exact_counts_disables_lemma7_and_early_accept(self, tight_cluster_index):
        columns, index = tight_cluster_index
        queries = np.vstack([columns[0][:2], columns[1][:2]])
        q_mapped = index.pivot_space.map_vectors(queries)
        pairs = BlockResult()
        for q in range(queries.shape[0]):
            for cell in index.inverted.cells():
                pairs.add_candidate(q, cell)
        verdict = verify(
            pairs, index.inverted, queries, q_mapped,
            index.vectors, index.mapped, index.metric,
            tau=2.0, t_count=1,
            exact_counts=True, early_accept=True, use_lemma7=True,
            stats=SearchStats(),
        )
        assert verdict.exact
        # with tau=2 everything matches: counts must be the full |Q|
        for col in range(4):
            assert verdict.match_counts[col] == queries.shape[0]
