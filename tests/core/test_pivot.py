"""Tests for repro.core.pivot."""

import numpy as np
import pytest

from repro.core.metric import EuclideanMetric, normalize_rows
from repro.core.pivot import (
    PivotSpace,
    build_pivot_space,
    select_pivots_fft,
    select_pivots_pca,
    select_pivots_random,
)


@pytest.fixture(scope="module")
def vectors():
    return normalize_rows(np.random.default_rng(0).normal(size=(200, 8)))


class TestSelectors:
    @pytest.mark.parametrize(
        "selector", [select_pivots_pca, select_pivots_random, select_pivots_fft]
    )
    def test_shape(self, selector, vectors):
        pivots = selector(vectors, 4)
        assert pivots.shape == (4, 8)

    @pytest.mark.parametrize(
        "selector", [select_pivots_pca, select_pivots_random, select_pivots_fft]
    )
    def test_pivots_distinct(self, selector, vectors):
        pivots = selector(vectors, 5)
        assert len({row.tobytes() for row in pivots}) == 5

    def test_pca_deterministic(self, vectors):
        rng1 = np.random.default_rng(7)
        rng2 = np.random.default_rng(7)
        np.testing.assert_array_equal(
            select_pivots_pca(vectors, 3, rng=rng1),
            select_pivots_pca(vectors, 3, rng=rng2),
        )

    def test_pca_picks_outliers(self):
        # A dense blob plus two extreme points: the extremes must be chosen.
        rng = np.random.default_rng(1)
        blob = rng.normal(scale=0.01, size=(100, 2))
        extremes = np.array([[10.0, 0.0], [-10.0, 0.0]])
        data = np.vstack([blob, extremes])
        pivots = select_pivots_pca(data, 2)
        for extreme in extremes:
            assert any(np.allclose(extreme, p) for p in pivots)

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            select_pivots_pca(np.zeros((0, 3)), 2)
        with pytest.raises(ValueError):
            select_pivots_fft(np.zeros((0, 3)), 2)

    def test_fewer_points_than_pivots(self):
        data = np.eye(3)
        pivots = select_pivots_pca(data, 5)
        assert pivots.shape[0] <= 5

    def test_fft_spreads(self, vectors):
        """FFT pivots are pairwise farther apart than random ones on average."""
        metric = EuclideanMetric()
        fft = select_pivots_fft(vectors, 4, rng=np.random.default_rng(3))
        rnd = select_pivots_random(vectors, 4, rng=np.random.default_rng(3))

        def min_gap(pivots):
            d = metric.pairwise(pivots, pivots)
            return d[~np.eye(len(pivots), dtype=bool)].min()

        assert min_gap(fft) >= min_gap(rnd)

    def test_degenerate_duplicates(self):
        data = np.tile(np.array([[1.0, 2.0]]), (10, 1))
        pivots = select_pivots_fft(data, 3)
        assert pivots.shape == (3, 2)


class TestPivotSpace:
    def test_mapping_values_are_distances(self, vectors):
        metric = EuclideanMetric()
        space = PivotSpace(vectors[:3], metric)
        mapped = space.map_vectors(vectors[:10])
        for i in range(10):
            for j in range(3):
                assert mapped[i, j] == pytest.approx(
                    metric.distance(vectors[i], vectors[j]), abs=1e-9
                )

    def test_mapping_within_extent(self, vectors):
        space = PivotSpace(vectors[:4], EuclideanMetric())
        mapped = space.map_vectors(vectors)
        assert mapped.min() >= 0.0
        assert mapped.max() <= space.extent

    def test_pivot_maps_to_zero_coordinate(self, vectors):
        space = PivotSpace(vectors[:2], EuclideanMetric())
        mapped = space.map_vectors(vectors[:2])
        assert mapped[0, 0] == pytest.approx(0.0, abs=1e-9)
        assert mapped[1, 1] == pytest.approx(0.0, abs=1e-9)

    def test_dimension_mismatch_raises(self, vectors):
        space = PivotSpace(vectors[:2], EuclideanMetric())
        with pytest.raises(ValueError, match="dim"):
            space.map_vectors(np.zeros((3, 5)))

    def test_empty_pivots_raise(self):
        with pytest.raises(ValueError):
            PivotSpace(np.zeros((0, 4)), EuclideanMetric())

    def test_extent_default_is_metric_bound(self, vectors):
        space = PivotSpace(vectors[:2], EuclideanMetric())
        assert space.extent == 2.0

    def test_explicit_extent(self, vectors):
        space = PivotSpace(vectors[:2], EuclideanMetric(), extent=3.5)
        assert space.extent == 3.5

    def test_invalid_extent(self, vectors):
        with pytest.raises(ValueError):
            PivotSpace(vectors[:2], EuclideanMetric(), extent=0.0)

    def test_properties(self, vectors):
        space = PivotSpace(vectors[:3], EuclideanMetric())
        assert space.n_pivots == 3
        assert space.dim == 8


class TestBuildPivotSpace:
    def test_methods(self, vectors):
        for method in ("pca", "random", "fft"):
            space = build_pivot_space(vectors, 3, EuclideanMetric(), method=method)
            assert space.n_pivots == 3

    def test_unknown_method(self, vectors):
        with pytest.raises(KeyError, match="unknown pivot selector"):
            build_pivot_space(vectors, 3, EuclideanMetric(), method="magic")
