"""Tests for the cost model and optimal-m selection (§III-E)."""

import numpy as np
import pytest

from repro.core.cost import (
    MappedDensityModel,
    choose_optimal_m,
    estimate_workload_cost,
    sample_workload,
)
from repro.core.metric import EuclideanMetric, normalize_rows
from repro.core.pivot import PivotSpace


@pytest.fixture(scope="module")
def mapped_setup():
    rng = np.random.default_rng(0)
    data = normalize_rows(rng.normal(size=(400, 8)))
    space = PivotSpace(data[:3], EuclideanMetric())
    mapped = space.map_vectors(data)
    mapped_columns = [
        space.map_vectors(normalize_rows(rng.normal(size=(12, 8)))) for _ in range(10)
    ]
    return mapped, space.extent, mapped_columns


class TestDensityModel:
    def test_interval_counts_sum_to_n(self, mapped_setup):
        mapped, extent, _ = mapped_setup
        model = MappedDensityModel(mapped, extent)
        for dim in range(mapped.shape[1]):
            assert model._interval_count(dim, 0.0, extent) == pytest.approx(400)

    def test_interval_monotone_in_width(self, mapped_setup):
        mapped, extent, _ = mapped_setup
        model = MappedDensityModel(mapped, extent)
        center = float(mapped[:, 0].mean())
        narrow = model._interval_count(0, center - 0.1, center + 0.1)
        wide = model._interval_count(0, center - 0.4, center + 0.4)
        assert wide >= narrow

    def test_empty_interval(self, mapped_setup):
        mapped, extent, _ = mapped_setup
        model = MappedDensityModel(mapped, extent)
        assert model._interval_count(0, 1.0, 1.0) == 0.0
        assert model._interval_count(0, 1.5, 1.0) == 0.0

    def test_nmax_upper_bounds_true_count(self, mapped_setup):
        """Eq. 2 must over-approximate the vectors inside the SQR."""
        mapped, extent, _ = mapped_setup
        model = MappedDensityModel(mapped, extent, n_bins=256)
        levels = 4
        half_cell = extent / (1 << levels) / 2
        rng = np.random.default_rng(1)
        for _ in range(20):
            q = mapped[rng.integers(400)]
            tau = float(rng.uniform(0.05, 0.5))
            inside = (np.abs(mapped - q) <= tau).all(axis=1).sum()
            bound = model.nmax_sqr(q, tau, levels)
            # allow 1-bin interpolation slack around the boundary
            assert bound >= inside - model.n_vectors / model.n_bins - 1

    def test_nmax_decreases_with_levels(self, mapped_setup):
        mapped, extent, _ = mapped_setup
        model = MappedDensityModel(mapped, extent)
        q = mapped[0]
        coarse = model.nmax_sqr(q, 0.1, levels=1)
        fine = model.nmax_sqr(q, 0.1, levels=6)
        assert fine <= coarse

    def test_empty_model_raises(self):
        with pytest.raises(ValueError):
            MappedDensityModel(np.zeros((0, 2)), 2.0)


class TestWorkloadCost:
    def test_cost_nonnegative(self, mapped_setup):
        mapped, extent, mapped_columns = mapped_setup
        workload = [(mapped_columns[0], 0.2), (mapped_columns[1], 0.4)]
        cost = estimate_workload_cost(mapped, extent, workload, levels=3)
        assert cost >= 0.0

    def test_cost_grows_with_tau(self, mapped_setup):
        mapped, extent, mapped_columns = mapped_setup
        small = estimate_workload_cost(mapped, extent, [(mapped_columns[0], 0.05)], 3)
        large = estimate_workload_cost(mapped, extent, [(mapped_columns[0], 0.8)], 3)
        assert large >= small


class TestSampleWorkload:
    def test_sizes_and_tau_range(self, mapped_setup):
        mapped, extent, mapped_columns = mapped_setup
        workload = sample_workload(mapped_columns, extent, n_queries=5,
                                   rng=np.random.default_rng(2))
        assert len(workload) == 5
        for q_mapped, tau in workload:
            assert 0.02 * extent <= tau <= 0.10 * extent
            assert q_mapped.ndim == 2

    def test_fewer_columns_than_queries(self, mapped_setup):
        mapped, extent, mapped_columns = mapped_setup
        workload = sample_workload(mapped_columns[:2], extent, n_queries=10)
        assert len(workload) == 2


class TestChooseOptimalM:
    def test_returns_candidate(self, mapped_setup):
        mapped, extent, mapped_columns = mapped_setup
        workload = sample_workload(mapped_columns, extent, n_queries=4)
        best, costs = choose_optimal_m(mapped, extent, workload, m_candidates=range(1, 6))
        assert best in range(1, 6)
        assert set(costs) == set(range(1, 6))

    def test_best_minimises_profile(self, mapped_setup):
        mapped, extent, mapped_columns = mapped_setup
        workload = sample_workload(mapped_columns, extent, n_queries=4)
        best, costs = choose_optimal_m(mapped, extent, workload, m_candidates=range(1, 6))
        assert costs[best] == min(costs.values())
