"""Tests for the optional compiled kernel backends.

The numpy backend is always exercised; the numba backend's tests run
only when numba is installed (it is an optional dependency that must
never be required). Cross-backend parity tests assert *bit-identical*
outputs — the kernels are elementwise comparisons and integer
bookkeeping, so there is no tolerance to hide behind.
"""

import numpy as np
import pytest

from repro.core import kernels
from repro.core.filtering import lemma1_filter_mask, lemma2_match_mask

needs_numba = pytest.mark.skipif(
    not kernels.HAVE_NUMBA, reason="numba is not installed"
)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestBackendSelection:
    def test_active_backend_is_known(self):
        assert kernels.get_backend() in kernels.BACKENDS

    def test_numpy_backend_always_selectable(self):
        with kernels.use_backend("numpy"):
            assert kernels.get_backend() == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.set_backend("cuda")

    def test_numba_without_numba_raises(self):
        if kernels.HAVE_NUMBA:
            pytest.skip("numba is installed here")
        with pytest.raises(RuntimeError, match="not installed"):
            kernels.set_backend("numba")

    def test_use_backend_restores_previous(self):
        before = kernels.get_backend()
        with kernels.use_backend("numpy"):
            pass
        assert kernels.get_backend() == before

    @needs_numba
    def test_numba_selectable_when_installed(self):
        with kernels.use_backend("numba"):
            assert kernels.get_backend() == "numba"


class TestNumpyKernels:
    """The fallback path must implement the lemmas exactly."""

    def test_lemma1_matches_definition(self, rng):
        x = rng.uniform(0, 2, size=(40, 5))
        q = rng.uniform(0, 2, size=(1, 5))
        tau = 0.7
        with kernels.use_backend("numpy"):
            got = lemma1_filter_mask(x, q[0], tau)
        want = (np.abs(x - q) > tau).any(axis=1)
        np.testing.assert_array_equal(got, want)

    def test_lemma2_matches_definition_rowwise(self, rng):
        x = rng.uniform(0, 2, size=(40, 5))
        q = rng.uniform(0, 2, size=(40, 5))
        tau = 1.1
        with kernels.use_backend("numpy"):
            got = lemma2_match_mask(x, q, tau)
        want = ((x + q) <= tau).any(axis=1)
        np.testing.assert_array_equal(got, want)

    def test_leaf_masks_disjoint(self, rng):
        batch = rng.uniform(0, 2, size=(12, 4))
        t_lo = rng.uniform(0, 2, size=(9, 4))
        t_hi = t_lo + 0.25
        with kernels.use_backend("numpy"):
            matched, filtered = kernels.leaf_masks(
                batch, t_lo, t_hi, 0.6, True, True
            )
        assert matched.shape == filtered.shape == (12, 9)
        assert not (matched & filtered).any()

    def test_cell_masks_ablation_flags(self, rng):
        r_lo = rng.uniform(0, 2, size=(8, 4))
        r_hi = r_lo + 0.5
        q_lo = rng.uniform(0, 2, size=4)
        q_hi = q_lo + 0.5
        with kernels.use_backend("numpy"):
            m_off, f_off = kernels.cell_masks(
                r_lo, r_hi, q_lo, q_hi, 0.4, False, False
            )
        assert not m_off.any() and not f_off.any()

    def test_replay_column_counts_and_lemma7(self):
        cand = np.array([True, False, True, True, True])
        match = np.array([False, True, False, False, True])
        cnt, mis, joi, dead, l7, ea, cv = kernels.replay_column(
            cand, match, 0, 0, False, t_need=2, miss_bound=1,
            use_lemma7=True, early_accept=False,
        )
        # episodes: miss, match, miss -> 2 misses > bound -> dead;
        # the remaining candidates are Lemma-7 skips.
        assert dead and l7 == 2
        assert mis == 2 and cnt == 1 and not joi

    def test_replay_column_early_accept(self):
        cand = np.ones(4, dtype=bool)
        match = np.ones(4, dtype=bool)
        cnt, mis, joi, dead, l7, ea, cv = kernels.replay_column(
            cand, match, 0, 0, False, t_need=1, miss_bound=99,
            use_lemma7=True, early_accept=True,
        )
        assert joi and not dead
        # first episode confirms joinability; the rest are early accepts
        assert cv == 1 and ea == 3 and cnt == 1


@needs_numba
class TestCrossBackendParity:
    """numba and numpy kernels must agree bit for bit."""

    def _both(self, fn, *args):
        with kernels.use_backend("numpy"):
            a = fn(*args)
        with kernels.use_backend("numba"):
            b = fn(*args)
        return a, b

    def test_lemma_masks_identical(self, rng):
        x = rng.uniform(0, 2, size=(200, 6))
        q_row = rng.uniform(0, 2, size=(200, 6))
        q_one = rng.uniform(0, 2, size=(1, 6))
        for tau in (0.0, 0.4, 1.3):
            for q in (q_row, q_one):
                a, b = self._both(kernels.lemma1_pair_mask, x, q, tau)
                np.testing.assert_array_equal(a, b)
                a, b = self._both(kernels.lemma2_pair_mask, x, q, tau)
                np.testing.assert_array_equal(a, b)

    def test_leaf_and_cell_masks_identical(self, rng):
        batch = rng.uniform(0, 2, size=(25, 5))
        t_lo = rng.uniform(0, 2, size=(17, 5))
        t_hi = t_lo + rng.uniform(0.05, 0.5, size=(17, 5))
        q_lo = rng.uniform(0, 2, size=5)
        q_hi = q_lo + 0.3
        for use56 in (True, False):
            for use34 in (True, False):
                a, b = self._both(
                    kernels.leaf_masks, batch, t_lo, t_hi, 0.5, use56, use34
                )
                np.testing.assert_array_equal(a[0], b[0])
                np.testing.assert_array_equal(a[1], b[1])
                a, b = self._both(
                    kernels.cell_masks, t_lo, t_hi, q_lo, q_hi, 0.5,
                    use56, use34,
                )
                np.testing.assert_array_equal(a[0], b[0])
                np.testing.assert_array_equal(a[1], b[1])

    def test_replay_identical(self, rng):
        for trial in range(20):
            n = int(rng.integers(1, 30))
            cand = rng.random(n) < 0.6
            match = rng.random(n) < 0.5
            args = (
                cand, match, int(rng.integers(0, 3)), int(rng.integers(0, 3)),
                bool(rng.integers(0, 2)), int(rng.integers(1, 6)),
                int(rng.integers(0, 4)), bool(rng.integers(0, 2)),
                bool(rng.integers(0, 2)),
            )
            a, b = self._both(kernels.replay_column, *args)
            assert a == b

    def test_search_results_identical_across_backends(self, rng):
        from repro.core.index import PexesoIndex
        from repro.core.search import pexeso_search

        columns = [rng.normal(size=(rng.integers(4, 9), 6)) for _ in range(8)]
        query = rng.normal(size=(6, 6))
        index = PexesoIndex.build(columns, n_pivots=3, levels=3)
        for tau in (0.3, 0.8, 1.5):
            with kernels.use_backend("numpy"):
                a = pexeso_search(index, query, tau, 0.3, exact_counts=True)
            with kernels.use_backend("numba"):
                b = pexeso_search(index, query, tau, 0.3, exact_counts=True)
            assert a.column_ids == b.column_ids
            assert [h.match_count for h in a.joinable] == [
                h.match_count for h in b.joinable
            ]
