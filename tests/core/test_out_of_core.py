"""Tests for the partitioned / out-of-core search (§IV)."""

import numpy as np
import pytest

from repro.baselines.exact_naive import naive_search
from repro.core.index import PexesoIndex
from repro.core.metric import (
    METRIC_REGISTRY,
    EuclideanMetric,
    normalize_rows,
    register_metric,
)
from repro.core.out_of_core import LakeSearcher, PartitionedPexeso, ShardLRU
from repro.core.search import pexeso_search
from repro.core.topk import naive_topk, pexeso_topk


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(0)
    return [normalize_rows(rng.normal(size=(rng.integers(4, 16), 6))) for _ in range(30)]


@pytest.fixture(scope="module")
def query():
    return normalize_rows(np.random.default_rng(1).normal(size=(10, 6)))


class TestInMemoryPartitions:
    @pytest.mark.parametrize("partitioner", ["jsd", "average-kmeans", "random"])
    def test_partitioned_search_is_exact(self, columns, query, partitioner):
        lake = PartitionedPexeso(
            n_pivots=3, levels=3, n_partitions=4, partitioner=partitioner
        ).fit(columns)
        got = lake.search(query, 0.8, 0.3).column_ids
        want = naive_search(columns, query, 0.8, 0.3).column_ids
        assert got == want

    @pytest.mark.parametrize("n_partitions", [1, 2, 5, 30])
    def test_any_partition_count_is_exact(self, columns, query, n_partitions):
        lake = PartitionedPexeso(n_pivots=2, levels=2, n_partitions=n_partitions).fit(columns)
        got = lake.search(query, 0.7, 0.2).column_ids
        want = naive_search(columns, query, 0.7, 0.2).column_ids
        assert got == want

    def test_global_column_ids_preserved(self, columns, query):
        lake = PartitionedPexeso(n_pivots=3, levels=3, n_partitions=3).fit(columns)
        result = lake.search(columns[17][:4], tau=1e-6, joinability=1.0)
        assert 17 in result.column_ids

    def test_results_sorted(self, columns, query):
        lake = PartitionedPexeso(n_pivots=3, levels=3, n_partitions=3).fit(columns)
        ids = lake.search(query, 1.2, 0.2).column_ids
        assert ids == sorted(ids)

    def test_stats_merged(self, columns, query):
        lake = PartitionedPexeso(n_pivots=3, levels=3, n_partitions=3).fit(columns)
        result = lake.search(query, 0.8, 0.3)
        assert result.stats.pivot_mapping_distances > 0

    def test_labels_cover_all_columns(self, columns):
        lake = PartitionedPexeso(n_partitions=4).fit(columns)
        assert lake.labels.shape == (30,)
        assert lake.n_columns == 30
        assigned = [cid for part in lake.partition_columns for cid in part]
        assert sorted(assigned) == list(range(30))


class TestSpilledPartitions:
    def test_spill_and_search(self, columns, query, tmp_path):
        lake = PartitionedPexeso(
            n_pivots=3, levels=3, n_partitions=3, spill_dir=tmp_path
        ).fit(columns)
        # every partition should be on disk, none resident
        assert len(list(tmp_path.glob("partition_*/arrays_v3_*/vectors.npy"))) >= 1
        assert lake.memory_bytes() == 0
        got = lake.search(query, 0.8, 0.3).column_ids
        want = naive_search(columns, query, 0.8, 0.3).column_ids
        assert got == want

    def test_spilled_matches_resident(self, columns, query, tmp_path):
        resident = PartitionedPexeso(n_pivots=3, levels=3, n_partitions=3, seed=5).fit(columns)
        spilled = PartitionedPexeso(
            n_pivots=3, levels=3, n_partitions=3, seed=5, spill_dir=tmp_path
        ).fit(columns)
        assert (
            resident.search(query, 0.6, 0.3).column_ids
            == spilled.search(query, 0.6, 0.3).column_ids
        )


class TestValidation:
    def test_unknown_partitioner(self):
        with pytest.raises(KeyError):
            PartitionedPexeso(partitioner="magic")

    def test_zero_partitions(self):
        with pytest.raises(ValueError):
            PartitionedPexeso(n_partitions=0)

    def test_search_before_fit(self, query):
        with pytest.raises(RuntimeError):
            PartitionedPexeso().search(query, 0.5, 0.5)

    def test_fit_empty(self):
        with pytest.raises(ValueError):
            PartitionedPexeso().fit([])

    def test_bad_workers(self):
        with pytest.raises(ValueError):
            PartitionedPexeso(max_workers=0)
        with pytest.raises(ValueError):
            PartitionedPexeso(lru_shards=0)

    def test_topk_before_fit(self, query):
        with pytest.raises(RuntimeError):
            PartitionedPexeso().topk(query, 0.5, 3)


def _int_stats(stats) -> dict:
    """The deterministic (integer) counters of a SearchStats."""
    return {
        name: getattr(stats, name)
        for name in stats.__dataclass_fields__
        if isinstance(getattr(stats, name), int)
    }


class TestParallelShardSearch:
    def test_batch_over_shards_is_exact(self, columns, query):
        lake = PartitionedPexeso(n_pivots=3, levels=3, n_partitions=4).fit(columns)
        queries = [query, columns[3], columns[17][:5]]
        batch = lake.search_many(queries, 0.8, 0.3)
        for q, result in zip(queries, batch.results):
            want = naive_search(columns, q, 0.8, 0.3)
            assert result.column_ids == want.column_ids

    def test_empty_query_list(self, columns):
        lake = PartitionedPexeso(n_pivots=2, levels=2, n_partitions=3).fit(columns)
        batch = lake.search_many([], 0.8, 0.3)
        assert len(batch) == 0

    @pytest.mark.parametrize("spill", [False, True])
    def test_worker_count_determinism(self, columns, query, tmp_path, spill):
        """Satellite contract: same results AND identical SearchStats
        totals for max_workers in {1, 2, 4}."""
        queries = [query, columns[8], columns[21][:6]]
        outputs = []
        for workers in (1, 2, 4):
            lake = PartitionedPexeso(
                n_pivots=3,
                levels=3,
                n_partitions=4,
                seed=5,
                spill_dir=(tmp_path / f"w{workers}") if spill else None,
                max_workers=workers,
            ).fit(columns)
            batch = lake.search_many(queries, 0.8, 0.3)
            outputs.append(batch)
        rows = [
            [
                [(h.column_id, h.match_count, h.joinability) for h in r.joinable]
                for r in batch.results
            ]
            for batch in outputs
        ]
        assert rows[0] == rows[1] == rows[2]
        totals = [_int_stats(batch.stats) for batch in outputs]
        assert totals[0] == totals[1] == totals[2]

    def test_shard_load_seconds_recorded(self, columns, query, tmp_path):
        lake = PartitionedPexeso(
            n_pivots=3, levels=3, n_partitions=3, spill_dir=tmp_path
        ).fit(columns)
        result = lake.search(query, 0.8, 0.3)
        assert result.stats.shard_load_seconds > 0

    def test_from_index_preserves_global_ids(self, columns, query):
        index = PexesoIndex.build(columns, n_pivots=3, levels=3)
        index.delete_column(4)
        lake = PartitionedPexeso.from_index(index, n_partitions=4)
        got = lake.search(query, 0.9, 0.2)
        want = pexeso_search(index, query, 0.9, 0.2)
        assert got.column_ids == want.column_ids
        assert 4 not in got.column_ids


class TestPartitionedTopK:
    @pytest.mark.parametrize("k", [1, 3, 10, 50])
    @pytest.mark.parametrize("spill", [False, True])
    def test_matches_single_index(self, columns, query, tmp_path, k, spill):
        index = PexesoIndex.build(columns, n_pivots=3, levels=3)
        lake = PartitionedPexeso(
            n_pivots=3,
            levels=3,
            n_partitions=4,
            spill_dir=(tmp_path / f"k{k}") if spill else None,
        ).fit(columns)
        got = lake.topk(query, 0.8, k)
        want = pexeso_topk(index, query, 0.8, k)
        assert got.hits == want.hits
        assert got.k == want.k

    def test_matches_oracle_across_worker_counts(self, columns, query):
        want = naive_topk(columns, query, 0.9, 7)
        for workers in (1, 2, 4):
            lake = PartitionedPexeso(
                n_pivots=3, levels=3, n_partitions=5, max_workers=workers
            ).fit(columns)
            got = lake.topk(query, 0.9, 7)
            assert [(c, n) for c, n, _ in got.hits] == [(c, n) for c, n, _ in want]

    def test_theta_prunes_later_shards(self):
        # One column clones the query (count 6); every other column is a
        # single vector, so its match-count bound is 1. With one worker,
        # shards run in sequence: once the clone's shard confirms theta=6,
        # every later shard abandons its columns via the theta floor —
        # and the result must still equal the oracle.
        rng = np.random.default_rng(3)
        query = normalize_rows(rng.normal(size=(6, 6)))
        cols = [query.copy()]
        for i in range(11):
            v = query[i % 6] + 0.05 * rng.normal(size=6)
            cols.append(normalize_rows(v[None, :]))
        lake = PartitionedPexeso(
            n_pivots=2, levels=2, n_partitions=4, partitioner="random",
            seed=1, max_workers=1,
        ).fit(cols)
        got = lake.topk(query, 0.3, 1)
        want = naive_topk(cols, query, 0.3, 1)
        assert [(c, n) for c, n, _ in got.hits] == [(c, n) for c, n, _ in want]
        assert got.stats.lemma7_skips > 0

    def test_invalid_k(self, columns, query):
        lake = PartitionedPexeso(n_pivots=2, levels=2, n_partitions=2).fit(columns)
        with pytest.raises(ValueError):
            lake.topk(query, 0.5, 0)

    def test_empty_query(self, columns):
        lake = PartitionedPexeso(n_pivots=2, levels=2, n_partitions=2).fit(columns)
        with pytest.raises(ValueError):
            lake.topk(np.zeros((0, 6)), 0.5, 3)


class TestShardLRU:
    def test_capacity_bounded(self):
        loads = []

        def loader(part):
            loads.append(part)
            return part * 10

        lru = ShardLRU(loader, capacity=2)
        assert lru.get(0) == 0 and lru.get(1) == 10 and lru.get(2) == 20
        assert len(lru) == 2  # 0 evicted
        assert lru.get(0) == 0  # reloaded
        assert loads == [0, 1, 2, 0]
        assert lru.misses == 4

    def test_hits_skip_loader(self):
        loads = []
        lru = ShardLRU(lambda p: loads.append(p) or p, capacity=4)
        lru.get(1), lru.get(1), lru.get(1)
        assert loads == [1]
        assert lru.hits == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ShardLRU(lambda p: p, capacity=0)

    def test_spilled_search_bounds_residency(self, columns, query, tmp_path):
        lake = PartitionedPexeso(
            n_pivots=2,
            levels=2,
            n_partitions=5,
            spill_dir=tmp_path,
            max_workers=1,
            lru_shards=2,
        ).fit(columns)
        lake.search(query, 0.8, 0.3)
        assert lake._lru is not None
        assert len(lake._lru) <= 2
        # Memory accounting includes LRU-resident shards.
        assert lake.memory_bytes() > 0


class TestShardLRUStaleLoadRace:
    """A disk load that straddles a put() must never clobber the fresher
    index put() installed (the stale-shard race)."""

    def test_slow_load_does_not_overwrite_put(self):
        import threading

        load_started = threading.Event()
        release_load = threading.Event()

        def loader(part):
            load_started.set()
            release_load.wait(5.0)
            return "stale-from-disk"

        lru = ShardLRU(loader, capacity=4)
        got = []
        t = threading.Thread(target=lambda: got.append(lru.get(7)))
        t.start()
        assert load_started.wait(5.0)
        # Mutation path installs a fresher index while the load sleeps.
        lru.put(7, "fresh-mutated")
        release_load.set()
        t.join(5.0)
        assert got == ["fresh-mutated"]
        assert lru.get(7) == "fresh-mutated"

    def test_invalidate_mid_load_forces_reload(self):
        import threading

        versions = [0]
        load_started = threading.Event()
        release_load = threading.Event()
        first_load = [True]

        def loader(part):
            if first_load[0]:
                first_load[0] = False
                load_started.set()
                release_load.wait(5.0)
            return f"disk-v{versions[0]}"

        lru = ShardLRU(loader, capacity=4)
        got = []
        t = threading.Thread(target=lambda: got.append(lru.get(3)))
        t.start()
        assert load_started.wait(5.0)
        versions[0] = 1  # the on-disk copy moves on ...
        lru.invalidate(3)  # ... and the cache is told so
        release_load.set()
        t.join(5.0)
        # The straddling get() must retry and see the new disk state, not
        # install its pre-invalidate snapshot.
        assert got == ["disk-v1"]

    def test_stress_get_vs_mutation_put(self, columns, tmp_path):
        """Hammer get() against concurrent add_column mutations; every
        search fetched after a mutation completes must see it."""
        import threading

        lake = PartitionedPexeso(
            n_pivots=2,
            levels=2,
            n_partitions=2,
            spill_dir=tmp_path,
            max_workers=4,
            lru_shards=1,  # tiny LRU maximises reload traffic
        ).fit(columns)
        parts = [p for p, g in enumerate(lake.partition_columns) if g]
        lake._ensure_lru(4)
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                for part in parts:
                    try:
                        lake._lru.get(part)
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        added = []
        try:
            for i in range(12):
                added.append(lake.add_column(columns[0][:3].copy()))
        finally:
            stop.set()
            for t in threads:
                t.join(10.0)
        assert errors == []
        # Post-race ground truth: every added column is present in the
        # shard the LRU now serves.
        for gid in added:
            assert lake.has_column(gid)
            assert lake.column_vectors(gid).shape[0] == 3


class _UnregisteredMetric(EuclideanMetric):
    name = "unregistered-test-metric"


class TestCustomMetricSpill:
    def test_registered_custom_metric_never_pickles(self, columns, query, tmp_path):
        class RegisteredMetric(EuclideanMetric):
            name = "registered-test-metric"

        register_metric(RegisteredMetric)
        try:
            lake = PartitionedPexeso(
                metric=RegisteredMetric(),
                n_pivots=2,
                levels=2,
                n_partitions=3,
                spill_dir=tmp_path,
            ).fit(columns)
            assert list(tmp_path.glob("*.pkl")) == []
            assert len(list(tmp_path.glob("partition_*/arrays_v3_*/vectors.npy"))) >= 1
            want = naive_search(columns, query, 0.8, 0.3, metric=RegisteredMetric())
            assert lake.search(query, 0.8, 0.3).column_ids == want.column_ids
        finally:
            del METRIC_REGISTRY["registered-test-metric"]

    def test_unregistered_metric_falls_back_to_pickle_with_warning(
        self, columns, query, tmp_path
    ):
        with pytest.warns(UserWarning, match="not registered"):
            lake = PartitionedPexeso(
                metric=_UnregisteredMetric(),
                n_pivots=2,
                levels=2,
                n_partitions=3,
                spill_dir=tmp_path,
            ).fit(columns)
        assert len(list(tmp_path.glob("partition_*.pkl"))) >= 1
        want = naive_search(columns, query, 0.8, 0.3, metric=_UnregisteredMetric())
        assert lake.search(query, 0.8, 0.3).column_ids == want.column_ids


class TestLakeSearcher:
    def test_dispatch_parity(self, columns, query):
        single = LakeSearcher.build(columns, n_pivots=3, levels=3)
        sharded = LakeSearcher.build(
            columns, n_pivots=3, levels=3, n_partitions=4, max_workers=2
        )
        assert not single.is_partitioned and sharded.is_partitioned
        assert single.index is not None and sharded.index is None
        assert single.n_columns == sharded.n_columns == len(columns)
        assert (
            single.search(query, 0.8, 0.3).column_ids
            == sharded.search(query, 0.8, 0.3).column_ids
        )
        batch_a = single.search_many([query, columns[2]], 0.8, 0.3)
        batch_b = sharded.search_many([query, columns[2]], 0.8, 0.3)
        assert batch_a.column_ids == batch_b.column_ids
        assert single.topk(query, 0.8, 5).hits == sharded.topk(query, 0.8, 5).hits

    def test_spill_dir_forces_partitioned_backend(self, columns, tmp_path):
        searcher = LakeSearcher.build(
            columns, n_pivots=2, levels=2, spill_dir=tmp_path
        )
        assert searcher.is_partitioned

    def test_rejects_unbuilt_backend(self):
        with pytest.raises(RuntimeError):
            LakeSearcher(PexesoIndex())
        with pytest.raises(RuntimeError):
            LakeSearcher(PartitionedPexeso())
        with pytest.raises(TypeError):
            LakeSearcher(object())


class TestLruCapacityTracksFanOut:
    def test_wider_call_grows_default_capacity(self, columns, query, tmp_path):
        lake = PartitionedPexeso(
            n_pivots=2, levels=2, n_partitions=5, spill_dir=tmp_path,
            max_workers=1,
        ).fit(columns)
        lake.search(query, 0.8, 0.3)  # 1-wide fan-out -> capacity 1
        assert lake._lru is not None and lake._lru.capacity == 1
        lake.search(query, 0.8, 0.3, max_workers=4)
        assert lake._lru.capacity == 4  # follows the widest fan-out seen

    def test_explicit_bound_never_grows(self, columns, query, tmp_path):
        lake = PartitionedPexeso(
            n_pivots=2, levels=2, n_partitions=5, spill_dir=tmp_path,
            max_workers=1, lru_shards=2,
        ).fit(columns)
        lake.search(query, 0.8, 0.3, max_workers=4)
        assert lake._lru.capacity == 2


class TestColumnVectors:
    def test_matches_source_columns(self, columns, tmp_path):
        for spill in (None, tmp_path):
            lake = PartitionedPexeso(
                n_pivots=2, levels=2, n_partitions=4, spill_dir=spill
            ).fit(columns)
            for cid in (0, 13, 29):
                np.testing.assert_array_equal(
                    lake.column_vectors(cid), columns[cid]
                )
        with pytest.raises(KeyError):
            lake.column_vectors(999)

    def test_lake_searcher_dispatch(self, columns):
        single = LakeSearcher.build(columns, n_pivots=2, levels=2)
        sharded = LakeSearcher.build(columns, n_pivots=2, levels=2, n_partitions=3)
        np.testing.assert_array_equal(
            single.column_vectors(7), sharded.column_vectors(7)
        )
