"""Tests for the partitioned / out-of-core search (§IV)."""

import numpy as np
import pytest

from repro.baselines.exact_naive import naive_search
from repro.core.metric import normalize_rows
from repro.core.out_of_core import PartitionedPexeso


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(0)
    return [normalize_rows(rng.normal(size=(rng.integers(4, 16), 6))) for _ in range(30)]


@pytest.fixture(scope="module")
def query():
    return normalize_rows(np.random.default_rng(1).normal(size=(10, 6)))


class TestInMemoryPartitions:
    @pytest.mark.parametrize("partitioner", ["jsd", "average-kmeans", "random"])
    def test_partitioned_search_is_exact(self, columns, query, partitioner):
        lake = PartitionedPexeso(
            n_pivots=3, levels=3, n_partitions=4, partitioner=partitioner
        ).fit(columns)
        got = lake.search(query, 0.8, 0.3).column_ids
        want = naive_search(columns, query, 0.8, 0.3).column_ids
        assert got == want

    @pytest.mark.parametrize("n_partitions", [1, 2, 5, 30])
    def test_any_partition_count_is_exact(self, columns, query, n_partitions):
        lake = PartitionedPexeso(n_pivots=2, levels=2, n_partitions=n_partitions).fit(columns)
        got = lake.search(query, 0.7, 0.2).column_ids
        want = naive_search(columns, query, 0.7, 0.2).column_ids
        assert got == want

    def test_global_column_ids_preserved(self, columns, query):
        lake = PartitionedPexeso(n_pivots=3, levels=3, n_partitions=3).fit(columns)
        result = lake.search(columns[17][:4], tau=1e-6, joinability=1.0)
        assert 17 in result.column_ids

    def test_results_sorted(self, columns, query):
        lake = PartitionedPexeso(n_pivots=3, levels=3, n_partitions=3).fit(columns)
        ids = lake.search(query, 1.2, 0.2).column_ids
        assert ids == sorted(ids)

    def test_stats_merged(self, columns, query):
        lake = PartitionedPexeso(n_pivots=3, levels=3, n_partitions=3).fit(columns)
        result = lake.search(query, 0.8, 0.3)
        assert result.stats.pivot_mapping_distances > 0

    def test_labels_cover_all_columns(self, columns):
        lake = PartitionedPexeso(n_partitions=4).fit(columns)
        assert lake.labels.shape == (30,)
        assert lake.n_columns == 30
        assigned = [cid for part in lake.partition_columns for cid in part]
        assert sorted(assigned) == list(range(30))


class TestSpilledPartitions:
    def test_spill_and_search(self, columns, query, tmp_path):
        lake = PartitionedPexeso(
            n_pivots=3, levels=3, n_partitions=3, spill_dir=tmp_path
        ).fit(columns)
        # every partition should be on disk, none resident
        assert len(list(tmp_path.glob("partition_*/index.npz"))) >= 1
        assert lake.memory_bytes() == 0
        got = lake.search(query, 0.8, 0.3).column_ids
        want = naive_search(columns, query, 0.8, 0.3).column_ids
        assert got == want

    def test_spilled_matches_resident(self, columns, query, tmp_path):
        resident = PartitionedPexeso(n_pivots=3, levels=3, n_partitions=3, seed=5).fit(columns)
        spilled = PartitionedPexeso(
            n_pivots=3, levels=3, n_partitions=3, seed=5, spill_dir=tmp_path
        ).fit(columns)
        assert (
            resident.search(query, 0.6, 0.3).column_ids
            == spilled.search(query, 0.6, 0.3).column_ids
        )


class TestValidation:
    def test_unknown_partitioner(self):
        with pytest.raises(KeyError):
            PartitionedPexeso(partitioner="magic")

    def test_zero_partitions(self):
        with pytest.raises(ValueError):
            PartitionedPexeso(n_partitions=0)

    def test_search_before_fit(self, query):
        with pytest.raises(RuntimeError):
            PartitionedPexeso().search(query, 0.5, 0.5)

    def test_fit_empty(self):
        with pytest.raises(ValueError):
            PartitionedPexeso().fit([])
