"""The array-native index core must equal the preserved seed builder.

:mod:`repro.core.reference` keeps the original row-by-row grid insert and
``insort``-based postings build. These tests check, on randomised lakes,
that the CSR inverted index and code-array grid hold exactly the same
structure: same populated cells, same postings per cell (column order and
row contents), same per-level cell sets.
"""

import numpy as np
import pytest

from repro.core.cellcodes import encode_cells
from repro.core.grid import HierarchicalGrid
from repro.core.inverted_index import InvertedIndex
from repro.core.reference import build_reference_structures


def random_mapped_columns(seed, n_columns=25, n_dims=3, extent=2.0):
    rng = np.random.default_rng(seed)
    return [
        rng.uniform(0.0, extent, size=(int(rng.integers(1, 18)), n_dims))
        for _ in range(n_columns)
    ], n_dims, extent


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("levels", [1, 3, 4])
def test_csr_postings_equal_reference(seed, levels):
    mapped_columns, n_dims, extent = random_mapped_columns(seed)
    ref_grid, ref_inverted = build_reference_structures(mapped_columns, levels, extent)

    grid = HierarchicalGrid(n_dims, levels, extent, store_members=False)
    inverted = InvertedIndex()
    first_row = 0
    codes_all = []
    cols_all = []
    for column_id, mapped in enumerate(mapped_columns):
        codes = grid.insert(mapped)
        codes_all.append(codes)
        cols_all.append(np.full(codes.size, column_id, dtype=np.int64))
        first_row += mapped.shape[0]
    inverted.build_bulk(np.concatenate(codes_all), np.concatenate(cols_all))

    assert inverted.n_postings == ref_inverted.n_postings
    assert inverted.n_cells == ref_inverted.n_cells

    reference = ref_inverted.postings_by_cell()
    for coords, postings in reference.items():
        code = int(
            encode_cells(np.asarray([coords], dtype=np.int64), n_dims, levels)[0]
        )
        got = [(p.column_id, p.rows) for p in inverted.postings(code)]
        assert got == postings

    # per-level cell sets agree (codes decode to the reference coordinates)
    for level in range(1, levels + 1):
        got_coords = {tuple(c) for c in grid.level_coords(level).tolist()}
        assert got_coords == set(ref_grid.cells[level])


@pytest.mark.parametrize("seed", [3, 4])
def test_bulk_build_equals_incremental_appends(seed, levels=3):
    mapped_columns, n_dims, extent = random_mapped_columns(seed, n_columns=12)

    bulk_grid = HierarchicalGrid(n_dims, levels, extent, store_members=False)
    stacked = np.concatenate([np.atleast_2d(c) for c in mapped_columns])
    sizes = [np.atleast_2d(c).shape[0] for c in mapped_columns]
    codes = bulk_grid.insert(stacked)
    bulk = InvertedIndex()
    bulk.build_bulk(codes, np.repeat(np.arange(len(sizes), dtype=np.int64), sizes))

    inc_grid = HierarchicalGrid(n_dims, levels, extent, store_members=False)
    inc = InvertedIndex()
    first_row = 0
    for column_id, mapped in enumerate(mapped_columns):
        cells = inc_grid.insert(mapped)
        inc.add_column(column_id, cells, first_row)
        first_row += np.atleast_2d(mapped).shape[0]

    for level in range(1, levels + 1):
        np.testing.assert_array_equal(
            bulk_grid.level_codes(level), inc_grid.level_codes(level)
        )
    np.testing.assert_array_equal(bulk._codes, inc._codes)
    np.testing.assert_array_equal(bulk._cols, inc._cols)
    np.testing.assert_array_equal(bulk._starts, inc._starts)
    np.testing.assert_array_equal(bulk._rows, inc._rows)


def test_delete_column_equals_reference_delete():
    mapped_columns, n_dims, extent = random_mapped_columns(9, n_columns=10)
    levels = 3
    ref_grid, ref_inverted = build_reference_structures(mapped_columns, levels, extent)

    grid = HierarchicalGrid(n_dims, levels, extent, store_members=False)
    inverted = InvertedIndex()
    first_row = 0
    for column_id, mapped in enumerate(mapped_columns):
        cells = grid.insert(mapped)
        inverted.add_column(column_id, cells, first_row)
        first_row += mapped.shape[0]

    for victim in (3, 7):
        assert inverted.delete_column(victim) == ref_inverted.delete_column(victim)
    assert inverted.n_postings == ref_inverted.n_postings
    assert inverted.n_cells == ref_inverted.n_cells
    for coords, postings in ref_inverted.postings_by_cell().items():
        code = int(
            encode_cells(np.asarray([coords], dtype=np.int64), n_dims, levels)[0]
        )
        assert [(p.column_id, p.rows) for p in inverted.postings(code)] == postings
