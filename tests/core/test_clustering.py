"""Tests for the shared Lloyd k-means."""

import numpy as np
import pytest

from repro.core.clustering import lloyd_kmeans


class TestLloydKmeans:
    def test_separable_blobs_recovered(self):
        rng = np.random.default_rng(0)
        a = rng.normal(loc=0.0, scale=0.1, size=(30, 2))
        b = rng.normal(loc=5.0, scale=0.1, size=(30, 2))
        points = np.vstack([a, b])
        labels, centers = lloyd_kmeans(points, 2, rng=rng)
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:])) == 1
        assert labels[0] != labels[30]

    def test_labels_shape_and_range(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(50, 3))
        labels, centers = lloyd_kmeans(points, 4, rng=rng)
        assert labels.shape == (50,)
        assert centers.shape == (4, 3)
        assert set(labels) <= set(range(4))

    def test_k_clamped_to_n(self):
        points = np.eye(3)
        labels, centers = lloyd_kmeans(points, 10)
        assert centers.shape[0] == 3

    def test_k_one(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(20, 2))
        labels, centers = lloyd_kmeans(points, 1, rng=rng)
        assert (labels == 0).all()
        np.testing.assert_allclose(centers[0], points.mean(axis=0), atol=1e-9)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            lloyd_kmeans(np.zeros((0, 2)), 2)

    def test_deterministic_given_rng(self):
        points = np.random.default_rng(3).normal(size=(40, 2))
        l1, _ = lloyd_kmeans(points, 3, rng=np.random.default_rng(9))
        l2, _ = lloyd_kmeans(points, 3, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(l1, l2)

    def test_custom_distance_and_mean(self):
        """Manhattan k-means via custom callbacks still converges."""
        rng = np.random.default_rng(4)
        points = np.vstack([
            rng.normal(loc=0, scale=0.05, size=(20, 2)),
            rng.normal(loc=3, scale=0.05, size=(20, 2)),
        ])

        def l1(pts, centers):
            return np.abs(pts[:, None, :] - centers[None, :, :]).sum(axis=2)

        def median(members):
            return np.median(members, axis=0)

        labels, _ = lloyd_kmeans(points, 2, rng=rng, distance=l1, mean=median)
        assert labels[0] != labels[-1]

    def test_no_empty_clusters_on_duplicates(self):
        points = np.tile([[1.0, 1.0]], (10, 1))
        labels, centers = lloyd_kmeans(points, 3)
        assert labels.shape == (10,)
