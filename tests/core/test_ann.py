"""Unit tests for the opt-in ANN candidate tier (:mod:`repro.core.ann`).

The tier's contract has three legs, each pinned here:

* **zero false positives** — every hit of an ANN-restricted search is a
  hit of the exact search with a bit-identical match count/joinability
  (candidates still pass the unchanged exact verifier);
* **knob -> max degenerates to exact** — ``ef_search`` at or above the
  column count returns the exact engine's answer bit for bit;
* **mutations fall back to exact** — add/delete drops the graph, ANN
  requests run exact until an explicit rebuild.

Plus the v3 persistence round-trip (the graph mmap-loads with the index)
and determinism of graph construction (a cluster replica requirement).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ann import (
    DEFAULT_EF_SEARCH,
    ColumnGraph,
    candidate_lists,
    ef_from_recall_target,
    measure_recall,
    normalized_ef_search,
)
from repro.core.index import PexesoIndex
from repro.core.metric import normalize_rows
from repro.core.out_of_core import LakeSearcher, PartitionedPexeso
from repro.core.persistence import (
    FORMAT_VERSION,
    V2_FORMAT_VERSION,
    load_index,
    save_index,
)


def clustered_columns(seed: int = 0, n_columns: int = 40, dim: int = 6):
    """Unit-normalized columns with separated centers.

    The pivot space clips mapped coordinates to the metric's extent for
    unit vectors, so un-normalized data would saturate and collapse the
    graph geometry — the same reason the lake embedders normalize.
    """
    rng = np.random.default_rng(seed)
    centers = normalize_rows(rng.normal(size=(n_columns, dim)))
    return [
        normalize_rows(
            centers[i]
            + rng.normal(scale=0.05, size=(int(rng.integers(6, 16)), dim))
        )
        for i in range(n_columns)
    ]


@pytest.fixture(scope="module")
def lake():
    columns = clustered_columns()
    index = PexesoIndex.build(columns, n_pivots=2, levels=3)
    return columns, index


def make_query(columns, target: int, seed: int = 99):
    rng = np.random.default_rng(seed)
    rows = columns[target]
    return rows + rng.normal(scale=0.01, size=rows.shape)


def hit_rows(result):
    return [(h.column_id, h.match_count, h.joinability) for h in result.joinable]


class TestGraphConstruction:
    def test_build_is_deterministic(self, lake):
        _, index = lake
        a = ColumnGraph.build(index)
        b = ColumnGraph.build(index)
        np.testing.assert_array_equal(a.node_columns, b.node_columns)
        np.testing.assert_array_equal(a.neighbors, b.neighbors)
        np.testing.assert_array_equal(a.centroids, b.centroids)
        np.testing.assert_array_equal(a.box_min, b.box_min)
        np.testing.assert_array_equal(a.box_max, b.box_max)
        assert a.entry == b.entry

    def test_geometry_shapes(self, lake):
        _, index = lake
        graph = ColumnGraph.build(index)
        n = index.n_columns
        # boxes live in pivot space, centroids in the original space
        assert graph.box_min.shape == graph.box_max.shape == (n, 2)
        assert graph.centroids.shape == (n, index.vectors.shape[1])
        assert (graph.box_min <= graph.box_max).all()

    def test_unbuilt_index_rejected(self):
        with pytest.raises(RuntimeError):
            ColumnGraph.build(PexesoIndex())

    def test_degree_validated(self, lake):
        _, index = lake
        with pytest.raises(ValueError):
            ColumnGraph.build(index, m=0)

    def test_graph_is_connected(self, lake):
        """Bidirectional links to predecessors keep node 0 reachable."""
        _, index = lake
        graph = ColumnGraph.build(index)
        n = graph.n_nodes
        seen = {graph.entry}
        frontier = [graph.entry]
        while frontier:
            node = frontier.pop()
            for nb in graph.neighbors[node]:
                if nb >= 0 and int(nb) not in seen:
                    seen.add(int(nb))
                    frontier.append(int(nb))
        assert len(seen) == n


class TestCandidates:
    def test_candidates_are_a_sorted_subset(self, lake):
        columns, index = lake
        graph = ColumnGraph.build(index)
        query = make_query(columns, 7)
        mapped = index.pivot_space.map_vectors(query)
        all_ids = set(graph.node_columns.tolist())
        for ef in (1, 2, 5, 16):
            got = graph.candidates(query, mapped, ef)
            assert len(got) == min(ef, graph.n_nodes)
            assert sorted(got.tolist()) == got.tolist()
            assert set(got.tolist()) <= all_ids

    def test_beam_finds_the_target_column(self, lake):
        columns, index = lake
        graph = ColumnGraph.build(index)
        for target in (0, 7, 23, 39):
            query = make_query(columns, target)
            mapped = index.pivot_space.map_vectors(query)
            got = graph.candidates(query, mapped, 4)
            assert target in got.tolist(), f"missed column {target}"

    def test_ef_at_or_above_n_returns_every_column(self, lake):
        columns, index = lake
        graph = ColumnGraph.build(index)
        query = make_query(columns, 3)
        mapped = index.pivot_space.map_vectors(query)
        for ef in (graph.n_nodes, graph.n_nodes + 5, 10**6):
            np.testing.assert_array_equal(
                graph.candidates(query, mapped, ef), graph.node_columns
            )

    def test_ef_validated(self, lake):
        _, index = lake
        graph = ColumnGraph.build(index)
        query = np.zeros((1, graph.centroids.shape[1]))
        mapped = np.zeros((1, graph.box_min.shape[1]))
        with pytest.raises(ValueError):
            graph.candidates(query, mapped, 0)

    def test_candidate_lists_exact_passthrough(self, lake):
        columns, index = lake
        queries = [make_query(columns, 5)]
        # knob off -> None
        assert candidate_lists(index, queries, None) is None
        # beam covers the lake -> None (exact, bit for bit)
        assert candidate_lists(index, queries, len(columns)) is None
        assert candidate_lists(index, queries, 10**6) is None
        # a real beam -> one array per query
        lists = candidate_lists(index, queries, 4)
        assert len(lists) == 1
        assert lists[0].size == 4


class TestSearchIntegration:
    def test_zero_false_positives_any_ef(self, lake):
        columns, index = lake
        searcher = LakeSearcher(index)
        query = make_query(columns, 11)
        tau, joinability = 0.3, 0.5
        exact = {
            (h.column_id, h.match_count, h.joinability)
            for h in searcher.search(query, tau, joinability).joinable
        }
        for ef in (1, 2, 4, 8, 16):
            got = searcher.search(query, tau, joinability, ef_search=ef)
            assert set(hit_rows(got)) <= exact, f"false positive at ef={ef}"

    def test_knob_max_is_bit_identical_to_exact(self, lake):
        columns, index = lake
        searcher = LakeSearcher(index)
        query = make_query(columns, 11)
        exact = searcher.search(query, 0.3, 0.5)
        for ef in (len(columns), 10**6):
            got = searcher.search(query, 0.3, 0.5, ef_search=ef)
            assert hit_rows(got) == hit_rows(exact)

    def test_recall_one_on_clustered_lake_at_small_ef(self, lake):
        columns, index = lake
        searcher = LakeSearcher(index)
        for target in (2, 11, 31):
            query = make_query(columns, target)
            exact_ids = [h.column_id for h in searcher.search(query, 0.3, 0.5).joinable]
            approx_ids = [
                h.column_id
                for h in searcher.search(query, 0.3, 0.5, ef_search=8).joinable
            ]
            assert measure_recall(exact_ids, approx_ids) == 1.0

    def test_batch_matches_sequential_restricted(self, lake):
        columns, index = lake
        searcher = LakeSearcher(index)
        queries = [make_query(columns, t, seed=t) for t in (3, 14, 25)]
        batch = searcher.search_many(queries, 0.3, 0.5, ef_search=6)
        for query, got in zip(queries, batch.results):
            single = searcher.search(query, 0.3, 0.5, ef_search=6)
            assert hit_rows(got) == hit_rows(single)

    def test_partitioned_backend_zero_false_positives(self, lake):
        columns, _ = lake
        part = PartitionedPexeso(
            n_pivots=2, levels=3, n_partitions=3, max_workers=2
        ).fit(columns)
        searcher = LakeSearcher(part)
        query = make_query(columns, 19)
        exact = {
            (h.column_id, h.match_count, h.joinability)
            for h in searcher.search(query, 0.3, 0.5).joinable
        }
        for ef in (2, 6):
            got = searcher.search(query, 0.3, 0.5, ef_search=ef)
            assert set(hit_rows(got)) <= exact
        full = searcher.search(query, 0.3, 0.5, ef_search=10**6)
        assert set(hit_rows(full)) == exact

    def test_ann_restriction_shrinks_verification(self, lake):
        columns, index = lake
        searcher = LakeSearcher(index)
        query = make_query(columns, 11)
        exact = searcher.search(query, 0.3, 0.5)
        got = searcher.search(query, 0.3, 0.5, ef_search=4)
        assert got.stats.columns_verified <= exact.stats.columns_verified


class TestMutationInvalidation:
    def make_index(self):
        return PexesoIndex.build(clustered_columns(seed=5), n_pivots=2, levels=2)

    def test_add_drops_graph_and_falls_back_to_exact(self):
        index = self.make_index()
        assert index.ensure_ann_graph() is not None
        rng = np.random.default_rng(1)
        index.add_column(rng.normal(size=(5, 6)))
        assert index.ann_graph is None
        # invalidated: no silent lazy rebuild — exact fallback instead
        assert index.ensure_ann_graph() is None
        assert candidate_lists(index, [rng.normal(size=(3, 6))], 4) is None
        searcher = LakeSearcher(index)
        query = clustered_columns(seed=5)[3]
        exact = searcher.search(query, 0.3, 0.5)
        got = searcher.search(query, 0.3, 0.5, ef_search=2)
        assert hit_rows(got) == hit_rows(exact)

    def test_delete_drops_graph(self):
        index = self.make_index()
        index.ensure_ann_graph()
        index.delete_column(0)
        assert index.ann_graph is None
        assert index.ensure_ann_graph() is None

    def test_explicit_rebuild_restores_the_tier(self):
        index = self.make_index()
        rng = np.random.default_rng(2)
        index.add_column(rng.normal(size=(5, 6)))
        graph = index.build_ann_graph()
        assert graph is index.ann_graph is index.ensure_ann_graph()
        # the rebuilt graph covers the added column
        assert graph.n_nodes == index.n_columns

    def test_fit_resets_to_lazily_buildable(self):
        index = self.make_index()
        rng = np.random.default_rng(3)
        index.add_column(rng.normal(size=(5, 6)))
        assert index.ensure_ann_graph() is None
        index.fit(clustered_columns(seed=6))
        assert index.ensure_ann_graph() is not None


class TestPersistence:
    def test_v3_roundtrip_under_mmap(self, lake, tmp_path):
        columns, _ = lake
        index = PexesoIndex.build(columns, n_pivots=2, levels=3)
        graph = index.build_ann_graph()
        save_index(index, tmp_path / "idx", fmt=FORMAT_VERSION)
        loaded = load_index(tmp_path / "idx", mmap=True)
        assert loaded.ann_graph is not None
        np.testing.assert_array_equal(loaded.ann_graph.node_columns, graph.node_columns)
        np.testing.assert_array_equal(loaded.ann_graph.neighbors, graph.neighbors)
        np.testing.assert_array_equal(loaded.ann_graph.centroids, graph.centroids)
        np.testing.assert_array_equal(loaded.ann_graph.box_min, graph.box_min)
        np.testing.assert_array_equal(loaded.ann_graph.box_max, graph.box_max)
        assert loaded.ann_graph.entry == graph.entry

        query = make_query(columns, 7)
        want = LakeSearcher(index).search(query, 0.3, 0.5, ef_search=6)
        got = LakeSearcher(loaded).search(query, 0.3, 0.5, ef_search=6)
        assert hit_rows(got) == hit_rows(want)

    def test_v3_without_graph_stays_loadable(self, lake, tmp_path):
        columns, _ = lake
        index = PexesoIndex.build(columns, n_pivots=2, levels=3)
        assert index.ann_graph is None
        save_index(index, tmp_path / "plain", fmt=FORMAT_VERSION)
        loaded = load_index(tmp_path / "plain", mmap=True)
        assert loaded.ann_graph is None
        # and the tier still works through a lazy build
        assert loaded.ensure_ann_graph() is not None

    def test_v2_format_rebuilds_lazily(self, lake, tmp_path):
        columns, _ = lake
        index = PexesoIndex.build(columns, n_pivots=2, levels=3)
        index.build_ann_graph()
        save_index(index, tmp_path / "v2", fmt=V2_FORMAT_VERSION)
        loaded = load_index(tmp_path / "v2")
        assert loaded.ann_graph is None  # v2 does not persist the graph
        query = make_query(columns, 7)
        want = LakeSearcher(index).search(query, 0.3, 0.5, ef_search=6)
        got = LakeSearcher(loaded).search(query, 0.3, 0.5, ef_search=6)
        assert hit_rows(got) == hit_rows(want)


class TestKnobHelpers:
    def test_normalized_ef_search(self):
        assert normalized_ef_search(None) is None
        assert normalized_ef_search(1) == 1
        assert normalized_ef_search("64") == 64
        for bad in (0, -3):
            with pytest.raises(ValueError):
                normalized_ef_search(bad)

    def test_ef_from_recall_target(self):
        assert ef_from_recall_target(1.0, 500) == 500
        assert ef_from_recall_target(0.5, 100) == 50
        assert ef_from_recall_target(0.01, 10) == 1
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                ef_from_recall_target(bad, 100)

    def test_measure_recall(self):
        assert measure_recall([], []) == 1.0
        assert measure_recall([1, 2], [1, 2, 3]) == 1.0
        assert measure_recall([1, 2, 3, 4], [1, 2]) == 0.5
        assert measure_recall([1], [2]) == 0.0

    def test_default_ef_is_sane(self):
        assert DEFAULT_EF_SEARCH >= 1
