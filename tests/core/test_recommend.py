"""Tests for threshold recommendation."""

import numpy as np
import pytest

from repro.core.metric import normalize_rows
from repro.core.recommend import match_rate_profile, sample_repository, suggest_tau


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    centers = normalize_rows(rng.normal(size=(10, 8)))
    repo = normalize_rows(
        centers[rng.choice(10, size=400)] + rng.normal(scale=0.03, size=(400, 8))
    )
    queries = normalize_rows(
        centers[rng.choice(10, size=40)] + rng.normal(scale=0.03, size=(40, 8))
    )
    return repo, queries


class TestSuggestTau:
    def test_achieves_target_rate(self, data):
        repo, queries = data
        for target in (0.3, 0.6, 0.9):
            tau = suggest_tau(queries, repo, target_match_rate=target)
            nearest = np.min(
                np.linalg.norm(queries[:, None, :] - repo[None, :, :], axis=2), axis=1
            )
            achieved = (nearest <= tau).mean()
            assert achieved >= target - 1e-9

    def test_monotone_in_target(self, data):
        repo, queries = data
        taus = [suggest_tau(queries, repo, t) for t in (0.2, 0.5, 0.8)]
        assert taus == sorted(taus)

    def test_invalid_target(self, data):
        repo, queries = data
        with pytest.raises(ValueError):
            suggest_tau(queries, repo, 0.0)
        with pytest.raises(ValueError):
            suggest_tau(queries, repo, 1.5)


class TestProfile:
    def test_profile_monotone(self, data):
        repo, queries = data
        profile = match_rate_profile(queries, repo, [0.01, 0.1, 0.5, 2.0])
        values = list(profile.values())
        assert values == sorted(values)
        assert profile[2.0] == 1.0

    def test_profile_keys(self, data):
        repo, queries = data
        profile = match_rate_profile(queries, repo, [0.1, 0.2])
        assert set(profile) == {0.1, 0.2}


class TestSampleRepository:
    def test_cap_respected(self, data):
        repo, _ = data
        sample = sample_repository([repo], max_vectors=50)
        assert sample.shape == (50, 8)

    def test_small_repo_returned_whole(self):
        columns = [np.ones((3, 4)), np.zeros((2, 4))]
        sample = sample_repository(columns, max_vectors=100)
        assert sample.shape == (5, 4)
