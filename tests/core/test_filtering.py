"""Tests for the Lemma 1-6 predicates.

The soundness properties are the heart of PEXESO's exactness:
* filters (Lemmas 1, 3, 4) must never prune a true match;
* matchers (Lemmas 2, 5, 6) must never accept a false match.
Both are checked against brute-force distances on random data.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filtering import (
    lemma1_filter_mask,
    lemma2_match_mask,
    lemma3_filter_vectors_vs_cell,
    lemma4_filter_cell_vs_cell,
    lemma5_match_vectors_vs_cell,
    lemma6_match_cell_vs_cell,
    rectangle_query_regions,
    square_query_region,
)
from repro.core.metric import EuclideanMetric, normalize_rows
from repro.core.pivot import PivotSpace


def _setup(seed: int, n: int = 60, dim: int = 6, n_pivots: int = 3):
    rng = np.random.default_rng(seed)
    data = normalize_rows(rng.normal(size=(n, dim)))
    queries = normalize_rows(rng.normal(size=(10, dim)))
    metric = EuclideanMetric()
    space = PivotSpace(data[:n_pivots], metric)
    return data, queries, metric, space


class TestLemma1And2Soundness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("tau", [0.3, 0.8, 1.3])
    def test_lemma1_never_prunes_matches(self, seed, tau):
        data, queries, metric, space = _setup(seed)
        x_mapped = space.map_vectors(data)
        q_mapped = space.map_vectors(queries)
        for qi, q in enumerate(queries):
            true_match = metric.distances_to(q, data) <= tau
            pruned = lemma1_filter_mask(x_mapped, q_mapped[qi], tau)
            assert not (true_match & pruned).any()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("tau", [0.3, 0.8, 1.3])
    def test_lemma2_never_accepts_non_matches(self, seed, tau):
        data, queries, metric, space = _setup(seed)
        x_mapped = space.map_vectors(data)
        q_mapped = space.map_vectors(queries)
        for qi, q in enumerate(queries):
            true_match = metric.distances_to(q, data) <= tau
            accepted = lemma2_match_mask(x_mapped, q_mapped[qi], tau)
            assert not (accepted & ~true_match).any()

    def test_lemma2_fires_near_pivot(self):
        """Vectors near a pivot are accepted when the query is also near it."""
        data, _, metric, space = _setup(3)
        pivot = space.pivots[0]
        q = pivot  # query equals the pivot
        q_mapped = space.map_vectors(q[None, :])[0]
        x_mapped = space.map_vectors(data)
        accepted = lemma2_match_mask(x_mapped, q_mapped, tau=0.5)
        near = metric.distances_to(pivot, data) <= 0.5
        # everything lemma 2 accepts via pivot 0 must be within tau of q
        assert (accepted <= near).all()
        assert accepted.any()  # at least the pivot itself (distance 0)


class TestCellPredicates:
    def _cell(self, lo, hi):
        return np.asarray(lo, dtype=float), np.asarray(hi, dtype=float)

    def test_lemma3_prunes_disjoint_cell(self):
        lo, hi = self._cell([10.0, 10.0], [11.0, 11.0])
        q = np.array([[0.0, 0.0]])
        assert lemma3_filter_vectors_vs_cell(q, lo, hi, tau=1.0)[0]

    def test_lemma3_keeps_overlapping_cell(self):
        lo, hi = self._cell([0.5, 0.5], [1.5, 1.5])
        q = np.array([[0.0, 0.0]])
        assert not lemma3_filter_vectors_vs_cell(q, lo, hi, tau=1.0)[0]

    def test_lemma3_boundary_touch_is_kept(self):
        lo, hi = self._cell([1.0, 0.0], [2.0, 1.0])
        q = np.array([[0.0, 0.0]])
        # SQR reaches exactly the cell's lo in dim 0
        assert not lemma3_filter_vectors_vs_cell(q, lo, hi, tau=1.0)[0]

    def test_lemma5_whole_cell_inside_rqr(self):
        lo, hi = self._cell([0.0, 0.0], [0.2, 5.0])
        q = np.array([[0.1, 3.0]])
        # pivot 0: cell_hi + q' = 0.3 <= tau
        assert lemma5_match_vectors_vs_cell(q, hi, tau=0.4)[0]

    def test_lemma5_rejects_when_no_pivot_covers(self):
        lo, hi = self._cell([0.3, 0.3], [0.5, 0.5])
        q = np.array([[0.3, 0.3]])
        assert not lemma5_match_vectors_vs_cell(q, hi, tau=0.4)[0]

    def test_lemma4_prunes_far_cells(self):
        q_lo, q_hi = self._cell([0.0, 0.0], [1.0, 1.0])
        t_lo, t_hi = self._cell([3.0, 0.0], [4.0, 1.0])
        assert lemma4_filter_cell_vs_cell(q_lo, q_hi, t_lo, t_hi, tau=1.0)

    def test_lemma4_keeps_near_cells(self):
        q_lo, q_hi = self._cell([0.0, 0.0], [1.0, 1.0])
        t_lo, t_hi = self._cell([1.5, 0.0], [2.5, 1.0])
        assert not lemma4_filter_cell_vs_cell(q_lo, q_hi, t_lo, t_hi, tau=1.0)

    def test_lemma6_matches_origin_cells(self):
        q_hi = np.array([0.1, 4.0])
        t_hi = np.array([0.2, 4.0])
        # pivot 0: 0.1 + 0.2 <= 0.4
        assert lemma6_match_cell_vs_cell(q_hi, t_hi, tau=0.4)

    def test_lemma6_rejects(self):
        q_hi = np.array([0.3, 4.0])
        t_hi = np.array([0.3, 4.0])
        assert not lemma6_match_cell_vs_cell(q_hi, t_hi, tau=0.4)


class TestCellSoundnessAgainstBruteForce:
    """Cell-level lemmas must be sound for every vector inside the cells."""

    @pytest.mark.parametrize("tau", [0.2, 0.5, 1.0])
    def test_lemma3_soundness(self, tau):
        data, queries, metric, space = _setup(5)
        x_mapped = space.map_vectors(data)
        q_mapped = space.map_vectors(queries)
        # carve an arbitrary cell around a batch of mapped vectors
        lo = x_mapped[:20].min(axis=0)
        hi = x_mapped[:20].max(axis=0)
        pruned = lemma3_filter_vectors_vs_cell(q_mapped, lo, hi, tau)
        for qi in np.nonzero(pruned)[0]:
            distances = metric.distances_to(queries[qi], data[:20])
            assert (distances > tau).all()

    @pytest.mark.parametrize("tau", [0.6, 1.0, 1.5])
    def test_lemma5_soundness(self, tau):
        data, queries, metric, space = _setup(6)
        x_mapped = space.map_vectors(data)
        q_mapped = space.map_vectors(queries)
        lo = x_mapped[:20].min(axis=0)
        hi = x_mapped[:20].max(axis=0)
        matched = lemma5_match_vectors_vs_cell(q_mapped, hi, tau)
        for qi in np.nonzero(matched)[0]:
            distances = metric.distances_to(queries[qi], data[:20])
            assert (distances <= tau).all()

    @pytest.mark.parametrize("tau", [0.3, 0.8])
    def test_lemma4_soundness(self, tau):
        data, queries, metric, space = _setup(7)
        x_mapped = space.map_vectors(data)
        q_mapped = space.map_vectors(queries)
        t_lo, t_hi = x_mapped[:15].min(axis=0), x_mapped[:15].max(axis=0)
        q_lo, q_hi = q_mapped.min(axis=0), q_mapped.max(axis=0)
        if lemma4_filter_cell_vs_cell(q_lo, q_hi, t_lo, t_hi, tau):
            pairwise = metric.pairwise(queries, data[:15])
            assert (pairwise > tau).all()

    @pytest.mark.parametrize("tau", [0.8, 1.2, 1.8])
    def test_lemma6_soundness(self, tau):
        data, queries, metric, space = _setup(8)
        x_mapped = space.map_vectors(data)
        q_mapped = space.map_vectors(queries)
        t_hi = x_mapped[:15].max(axis=0)
        q_hi = q_mapped.max(axis=0)
        if lemma6_match_cell_vs_cell(q_hi, t_hi, tau):
            pairwise = metric.pairwise(queries, data[:15])
            assert (pairwise <= tau).all()


class TestQueryRegions:
    def test_sqr_bounds(self):
        lo, hi = square_query_region(np.array([1.0, 2.0]), 0.5)
        np.testing.assert_allclose(lo, [0.5, 1.5])
        np.testing.assert_allclose(hi, [1.5, 2.5])

    def test_rqr_existence(self):
        regions = rectangle_query_regions(np.array([0.2, 0.9]), tau=0.5)
        assert [idx for idx, _ in regions] == [0]
        assert regions[0][1] == pytest.approx(0.3)

    def test_rqr_none_when_tau_small(self):
        assert rectangle_query_regions(np.array([0.6, 0.9]), tau=0.5) == []

    @settings(max_examples=30, deadline=None)
    @given(tau=st.floats(0.01, 2.0), coord=st.floats(0.0, 2.0))
    def test_rqr_extent_never_negative(self, tau, coord):
        for _, extent in rectangle_query_regions(np.array([coord]), tau):
            assert extent >= 0.0
