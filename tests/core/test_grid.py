"""Tests for the sparse hierarchical grid."""

import numpy as np
import pytest

from repro.core.cellcodes import encode_cells
from repro.core.grid import HierarchicalGrid


@pytest.fixture()
def mapped():
    rng = np.random.default_rng(0)
    return rng.uniform(0.0, 2.0, size=(100, 3))


class TestConstruction:
    def test_every_vector_lands_in_one_leaf(self, mapped):
        grid = HierarchicalGrid.build(mapped, levels=3, extent=2.0)
        members = [m for cell in grid.leaf_cells.values() for m in cell.members]
        assert sorted(members) == list(range(100))

    def test_leaf_count_bounded_by_vectors(self, mapped):
        grid = HierarchicalGrid.build(mapped, levels=4, extent=2.0)
        assert len(grid.leaf_cells) <= 100

    def test_level_cell_counts_are_monotone(self, mapped):
        grid = HierarchicalGrid.build(mapped, levels=4, extent=2.0)
        sizes = [len(grid.cells[level]) for level in range(1, 5)]
        assert sizes == sorted(sizes)

    def test_root_children_cover_level1(self, mapped):
        grid = HierarchicalGrid.build(mapped, levels=3, extent=2.0)
        assert {c.coords for c in grid.root.children} == set(grid.cells[1])

    def test_parent_child_nesting(self, mapped):
        grid = HierarchicalGrid.build(mapped, levels=3, extent=2.0)
        for level in range(1, 3):
            for cell in grid.iter_cells(level):
                for child in cell.children:
                    assert child.level == level + 1
                    assert tuple(c >> 1 for c in child.coords) == cell.coords

    def test_vectors_inside_their_leaf_box(self, mapped):
        grid = HierarchicalGrid.build(mapped, levels=3, extent=2.0)
        for cell in grid.leaf_cells.values():
            lo, hi = grid.cell_box(cell)
            for m in cell.members:
                # boundary values may be clipped into the last cell
                assert (mapped[m] >= lo - 1e-9).all()
                assert (mapped[m] <= hi + 1e-9).all() or np.isclose(
                    mapped[m], 2.0
                ).any()

    def test_boundary_value_clipped_to_last_cell(self):
        grid = HierarchicalGrid.build(np.array([[2.0, 2.0]]), levels=2, extent=2.0)
        assert list(grid.leaf_cells) == [(3, 3)]

    def test_store_members_false(self, mapped):
        grid = HierarchicalGrid.build(mapped, levels=2, extent=2.0, store_members=False)
        assert all(not cell.members for cell in grid.leaf_cells.values())
        with pytest.raises(RuntimeError):
            grid.subtree_members(grid.root)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_levels(self, bad):
        with pytest.raises(ValueError):
            HierarchicalGrid(2, bad, 2.0)

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            HierarchicalGrid(2, 2, 0.0)

    def test_dim_mismatch_on_insert(self, mapped):
        grid = HierarchicalGrid.build(mapped, levels=2, extent=2.0)
        with pytest.raises(ValueError):
            grid.insert(np.zeros((2, 5)))


class TestGeometry:
    def test_cell_size_halves_per_level(self):
        grid = HierarchicalGrid(2, 3, extent=2.0)
        assert grid.cell_size(1) == 1.0
        assert grid.cell_size(2) == 0.5
        assert grid.cell_size(3) == 0.25

    def test_cell_box(self):
        grid = HierarchicalGrid.build(np.array([[0.6, 1.4]]), levels=2, extent=2.0)
        cell = next(iter(grid.leaf_cells.values()))
        lo, hi = grid.cell_box(cell)
        np.testing.assert_allclose(hi - lo, 0.5)
        assert (np.array([0.6, 1.4]) >= lo).all()
        assert (np.array([0.6, 1.4]) <= hi).all()

    def test_root_box_is_whole_space(self):
        grid = HierarchicalGrid(3, 2, extent=2.0)
        lo, hi = grid.cell_box(grid.root)
        np.testing.assert_allclose(lo, 0.0)
        np.testing.assert_allclose(hi, 2.0)

    def test_leaf_coords_match_manual_formula(self, mapped):
        grid = HierarchicalGrid.build(mapped, levels=3, extent=2.0)
        coords = grid.leaf_coords_for(mapped)
        manual = np.clip((mapped / (2.0 / 8)).astype(int), 0, 7)
        np.testing.assert_array_equal(coords, manual)


class TestTraversal:
    def test_subtree_leaves_of_root_is_all(self, mapped):
        grid = HierarchicalGrid.build(mapped, levels=3, extent=2.0)
        leaves = grid.subtree_leaves(grid.root)
        assert {leaf.coords for leaf in leaves} == set(grid.leaf_cells)

    def test_subtree_members_of_root_is_all(self, mapped):
        grid = HierarchicalGrid.build(mapped, levels=3, extent=2.0)
        assert sorted(grid.subtree_members(grid.root)) == list(range(100))

    def test_subtree_of_leaf_is_itself(self, mapped):
        grid = HierarchicalGrid.build(mapped, levels=3, extent=2.0)
        leaf = next(iter(grid.leaf_cells.values()))
        assert grid.subtree_leaves(leaf) == [leaf]

    def test_n_cells(self, mapped):
        grid = HierarchicalGrid.build(mapped, levels=3, extent=2.0)
        assert grid.n_cells == sum(len(grid.cells[level]) for level in (1, 2, 3))


class TestIncrementalInsert:
    def test_insert_returns_leaf_codes(self):
        grid = HierarchicalGrid(2, 2, extent=2.0)
        codes = grid.insert(np.array([[0.1, 0.1], [1.9, 1.9]]))
        expected = encode_cells(np.array([[0, 0], [3, 3]]), n_dims=2, bits_per_axis=2)
        np.testing.assert_array_equal(codes, expected)

    def test_row_indices_continue_across_inserts(self):
        grid = HierarchicalGrid(2, 2, extent=2.0)
        grid.insert(np.array([[0.1, 0.1]]))
        grid.insert(np.array([[0.1, 0.1]]))
        cell = grid.leaf_cells[(0, 0)]
        assert cell.members == [0, 1]

    def test_insert_creates_ancestors_once(self):
        grid = HierarchicalGrid(2, 3, extent=2.0)
        grid.insert(np.array([[0.1, 0.1], [0.11, 0.11]]))
        assert len(grid.cells[1]) == 1
        assert len(grid.root.children) == 1

    def test_memory_bytes_positive(self, mapped):
        grid = HierarchicalGrid.build(mapped, levels=2, extent=2.0)
        assert grid.memory_bytes() > 0
