"""Failure-injection tests: malformed inputs must fail loudly, not corrupt
results."""

import numpy as np
import pytest

from repro.core.index import PexesoIndex
from repro.core.search import pexeso_search


@pytest.fixture()
def index(small_columns):
    return PexesoIndex.build(small_columns, n_pivots=3, levels=2)


class TestNanRejection:
    def test_nan_column_rejected(self, index):
        bad = np.full((3, 8), np.nan)
        with pytest.raises(ValueError, match="NaN"):
            index.add_column(bad)

    def test_inf_column_rejected(self, index):
        bad = np.ones((3, 8))
        bad[1, 2] = np.inf
        with pytest.raises(ValueError, match="infinite"):
            index.add_column(bad)

    def test_nan_query_rejected(self, index):
        bad = np.ones((3, 8))
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            pexeso_search(index, bad, 0.5, 0.5)

    def test_build_rejects_nan(self):
        with pytest.raises(ValueError):
            PexesoIndex.build([np.full((4, 4), np.nan)])

    def test_index_unchanged_after_rejected_append(self, index, small_columns, small_query):
        before = pexeso_search(index, small_query, 0.8, 0.3).column_ids
        with pytest.raises(ValueError):
            index.add_column(np.full((3, 8), np.nan))
        after = pexeso_search(index, small_query, 0.8, 0.3).column_ids
        assert before == after


class TestShapeValidation:
    def test_1d_column_promoted(self, index):
        # a single vector as 1-d input is a 1-row column
        new_id = index.add_column(np.ones(8) / np.sqrt(8))
        assert index.column_size(new_id) == 1

    def test_wrong_width_rejected(self, index):
        with pytest.raises(ValueError):
            index.add_column(np.ones((3, 5)))


class TestMetricSoundnessGuard:
    def test_cosine_distance_rejected(self):
        from repro.core.metric import CosineDistance

        with pytest.raises(ValueError, match="triangle"):
            PexesoIndex(metric=CosineDistance())

    def test_true_metrics_accepted(self):
        from repro.core.metric import ChebyshevMetric, ManhattanMetric

        for metric in (ManhattanMetric(), ChebyshevMetric()):
            PexesoIndex(metric=metric)  # must not raise
