"""Tests for PexesoIndex construction and maintenance (§III-E)."""

import pickle

import numpy as np
import pytest

from repro.baselines.exact_naive import naive_search
from repro.core.index import PexesoIndex
from repro.core.metric import ManhattanMetric, normalize_rows
from repro.core.search import pexeso_search


@pytest.fixture()
def columns():
    rng = np.random.default_rng(0)
    return [normalize_rows(rng.normal(size=(rng.integers(3, 15), 6))) for _ in range(20)]


class TestBuild:
    def test_column_ids_sequential(self, columns):
        index = PexesoIndex.build(columns, n_pivots=3, levels=2)
        assert sorted(index.column_rows) == list(range(20))

    def test_column_rows_partition_vector_store(self, columns):
        index = PexesoIndex.build(columns, n_pivots=3, levels=2)
        all_rows = np.concatenate([index.column_rows[c] for c in sorted(index.column_rows)])
        np.testing.assert_array_equal(all_rows, np.arange(index.n_vectors))

    def test_vectors_roundtrip(self, columns):
        index = PexesoIndex.build(columns, n_pivots=3, levels=2)
        for cid, column in enumerate(columns):
            np.testing.assert_allclose(index.vectors[index.column_rows[cid]], column)

    def test_mapped_consistent_with_pivot_space(self, columns):
        index = PexesoIndex.build(columns, n_pivots=3, levels=2)
        recomputed = index.pivot_space.map_vectors(index.vectors)
        np.testing.assert_allclose(index.mapped, recomputed, atol=1e-12)

    def test_empty_repository_raises(self):
        with pytest.raises(ValueError):
            PexesoIndex.build([])

    def test_mixed_dims_raise(self, columns):
        bad = columns + [np.zeros((3, 9))]
        with pytest.raises(ValueError, match="dimensionality"):
            PexesoIndex.build(bad)

    def test_empty_column_raises(self, columns):
        index = PexesoIndex.build(columns)
        with pytest.raises(ValueError):
            index.add_column(np.zeros((0, 6)))

    def test_add_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PexesoIndex().add_column(np.zeros((2, 4)))

    @pytest.mark.parametrize("bad_kwargs", [dict(n_pivots=0), dict(levels=0)])
    def test_invalid_params(self, bad_kwargs):
        with pytest.raises(ValueError):
            PexesoIndex(**bad_kwargs)

    def test_alternative_metric(self, columns):
        index = PexesoIndex.build(columns, metric=ManhattanMetric(), n_pivots=2, levels=2)
        assert index.pivot_space.extent == ManhattanMetric().max_distance(6)

    def test_stats_populated(self, columns):
        index = PexesoIndex.build(columns, n_pivots=3, levels=2)
        assert index.stats.n_vectors == index.n_vectors
        assert index.stats.n_columns == 20
        assert index.stats.n_leaf_cells == index.inverted.n_cells
        assert index.stats.total_seconds >= 0.0

    def test_memory_bytes_positive(self, columns):
        assert PexesoIndex.build(columns).memory_bytes() > 0


class TestAppend:
    def test_append_then_search_finds_new_column(self, columns):
        index = PexesoIndex.build(columns, n_pivots=3, levels=3)
        query = columns[0][:5]
        new_id = index.add_column(query.copy())
        result = pexeso_search(index, query, tau=1e-4, joinability=1.0)
        assert new_id in result.column_ids

    def test_append_preserves_exactness(self, columns):
        index = PexesoIndex.build(columns[:15], n_pivots=3, levels=3)
        for column in columns[15:]:
            index.add_column(column)
        rng = np.random.default_rng(5)
        query = normalize_rows(rng.normal(size=(8, 6)))
        got = pexeso_search(index, query, 0.8, 0.25).column_ids
        want = naive_search(columns, query, 0.8, 0.25).column_ids
        assert got == want


class TestDelete:
    def test_deleted_column_never_returned(self, columns):
        index = PexesoIndex.build(columns, n_pivots=3, levels=3)
        query = columns[3][:6]
        before = pexeso_search(index, query, tau=1e-4, joinability=1.0)
        assert 3 in before.column_ids
        index.delete_column(3)
        after = pexeso_search(index, query, tau=1e-4, joinability=1.0)
        assert 3 not in after.column_ids

    def test_delete_preserves_other_results(self, columns):
        index = PexesoIndex.build(columns, n_pivots=3, levels=3)
        index.delete_column(7)
        rng = np.random.default_rng(6)
        query = normalize_rows(rng.normal(size=(8, 6)))
        got = pexeso_search(index, query, 0.8, 0.25).column_ids
        remaining = {cid: col for cid, col in enumerate(columns) if cid != 7}
        want = [
            cid for cid in sorted(remaining)
            if cid in set(
                naive_search(columns, query, 0.8, 0.25).column_ids
            )
        ]
        assert got == want

    def test_delete_unknown_raises(self, columns):
        index = PexesoIndex.build(columns)
        with pytest.raises(KeyError):
            index.delete_column(999)

    def test_column_size(self, columns):
        index = PexesoIndex.build(columns)
        assert index.column_size(0) == columns[0].shape[0]


class TestPickle:
    def test_roundtrip_search_identical(self, columns):
        index = PexesoIndex.build(columns, n_pivots=3, levels=3)
        clone = pickle.loads(pickle.dumps(index))
        rng = np.random.default_rng(7)
        query = normalize_rows(rng.normal(size=(6, 6)))
        assert (
            pexeso_search(index, query, 0.7, 0.3).column_ids
            == pexeso_search(clone, query, 0.7, 0.3).column_ids
        )
