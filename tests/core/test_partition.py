"""Tests for JSD partitioning (§IV)."""

import numpy as np
import pytest

from repro.core.metric import normalize_rows
from repro.core.partition import (
    HistogramSpace,
    average_kmeans_partition,
    column_histogram,
    jensen_shannon_divergence,
    jsd_kmeans_partition,
    kl_divergence,
    random_partition,
)


def _two_population_columns(seed=0, per_group=10):
    """Columns drawn from two clearly different distributions."""
    rng = np.random.default_rng(seed)
    center_a = np.zeros(6)
    center_a[0] = 1.0
    center_b = np.zeros(6)
    center_b[1] = -1.0
    group_a = [
        normalize_rows(center_a + rng.normal(scale=0.05, size=(12, 6)))
        for _ in range(per_group)
    ]
    group_b = [
        normalize_rows(center_b + rng.normal(scale=0.05, size=(12, 6)))
        for _ in range(per_group)
    ]
    return group_a, group_b


class TestDivergences:
    def test_kl_zero_on_identical(self):
        p = np.array([0.25, 0.25, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_kl_nonnegative(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            p = rng.dirichlet(np.ones(8))
            q = rng.dirichlet(np.ones(8))
            assert kl_divergence(p, q) >= -1e-12

    def test_kl_asymmetric(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_jsd_symmetric(self):
        rng = np.random.default_rng(1)
        p = rng.dirichlet(np.ones(8))
        q = rng.dirichlet(np.ones(8))
        assert jensen_shannon_divergence(p, q) == pytest.approx(
            jensen_shannon_divergence(q, p)
        )

    def test_jsd_zero_iff_equal(self):
        p = np.array([0.3, 0.7])
        assert jensen_shannon_divergence(p, p) == pytest.approx(0.0, abs=1e-9)
        assert jensen_shannon_divergence(p, np.array([0.7, 0.3])) > 0.01

    def test_smoothing_handles_zeros(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert np.isfinite(jensen_shannon_divergence(p, q))


class TestHistogramSpace:
    def test_histogram_normalised(self):
        rng = np.random.default_rng(2)
        sample = rng.normal(size=(100, 5))
        space = HistogramSpace(sample)
        hist = space.histogram(sample[:30])
        assert hist.sum() == pytest.approx(1.0)
        assert (hist >= 0).all()

    def test_bins_count(self):
        space = HistogramSpace(np.random.default_rng(3).normal(size=(50, 4)),
                               n_dims=2, bins_per_dim=8)
        assert space.n_bins == 64

    def test_same_distribution_similar_histograms(self):
        group_a, group_b = _two_population_columns()
        sample = np.concatenate(group_a + group_b)
        space = HistogramSpace(sample)
        h_a1 = column_histogram(group_a[0], space)
        h_a2 = column_histogram(group_a[1], space)
        h_b = column_histogram(group_b[0], space)
        assert jensen_shannon_divergence(h_a1, h_a2) < jensen_shannon_divergence(h_a1, h_b)

    def test_out_of_range_vectors_clipped(self):
        space = HistogramSpace(np.zeros((10, 3)) + 0.5)
        hist = space.histogram(np.full((5, 3), 100.0))
        assert hist.sum() == pytest.approx(1.0)


class TestJsdKmeans:
    def test_separates_two_populations(self):
        group_a, group_b = _two_population_columns()
        columns = group_a + group_b
        labels = jsd_kmeans_partition(columns, 2, rng=np.random.default_rng(4))
        assert len(set(labels[:10])) == 1
        assert len(set(labels[10:])) == 1
        assert labels[0] != labels[10]

    def test_label_shape(self):
        group_a, group_b = _two_population_columns(per_group=5)
        labels = jsd_kmeans_partition(group_a + group_b, 3)
        assert labels.shape == (10,)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            jsd_kmeans_partition([], 2)


class TestBaselinePartitioners:
    def test_random_partition_range(self):
        labels = random_partition(100, 7, rng=np.random.default_rng(5))
        assert labels.shape == (100,)
        assert set(labels) <= set(range(7))

    def test_average_kmeans_separates(self):
        group_a, group_b = _two_population_columns()
        labels = average_kmeans_partition(group_a + group_b, 2,
                                          rng=np.random.default_rng(6))
        assert labels[0] != labels[10]
