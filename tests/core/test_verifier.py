"""Tests for Algorithm 2 (verification)."""

import numpy as np
import pytest

from repro.core.index import PexesoIndex
from repro.core.metric import EuclideanMetric, normalize_rows
from repro.core.blocker import block
from repro.core.grid import HierarchicalGrid
from repro.core.stats import SearchStats
from repro.core.verifier import verify


def _pipeline(columns, queries, tau, t_count, **verify_kwargs):
    """Run blocking + verification manually, returning the verdict."""
    index = PexesoIndex.build(columns, n_pivots=3, levels=3)
    q_mapped = index.pivot_space.map_vectors(queries)
    hg_q = HierarchicalGrid.build(q_mapped, index.levels, index.pivot_space.extent)
    pairs = block(hg_q, index.grid, q_mapped, tau)
    stats = SearchStats()
    verdict = verify(
        pairs,
        index.inverted,
        queries,
        q_mapped,
        index.vectors,
        index.mapped,
        index.metric,
        tau,
        t_count,
        stats=stats,
        **verify_kwargs,
    )
    return index, verdict, stats


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    columns = [normalize_rows(rng.normal(size=(rng.integers(4, 20), 6))) for _ in range(25)]
    queries = normalize_rows(rng.normal(size=(10, 6)))
    return columns, queries


def _truth_counts(columns, queries, tau):
    metric = EuclideanMetric()
    counts = {}
    for cid, column in enumerate(columns):
        counts[cid] = int((metric.pairwise(queries, column) <= tau).any(axis=1).sum())
    return counts


class TestExactCounts:
    @pytest.mark.parametrize("tau", [0.3, 0.7, 1.1])
    def test_match_counts_equal_truth(self, data, tau):
        columns, queries = data
        truth = _truth_counts(columns, queries, tau)
        _, verdict, _ = _pipeline(columns, queries, tau, t_count=1, exact_counts=True)
        for cid, expected in truth.items():
            assert verdict.match_counts.get(cid, 0) == expected

    def test_exact_flag_recorded(self, data):
        columns, queries = data
        _, verdict, _ = _pipeline(columns, queries, 0.5, 2, exact_counts=True)
        assert verdict.exact

    @pytest.mark.parametrize("t_count", [1, 3, 7])
    def test_joinable_set_matches_truth(self, data, t_count):
        columns, queries = data
        tau = 0.8
        truth = _truth_counts(columns, queries, tau)
        _, verdict, _ = _pipeline(columns, queries, tau, t_count)
        expected = {cid for cid, c in truth.items() if c >= t_count}
        assert verdict.joinable == expected


class TestEarlyTermination:
    def test_early_accept_gives_lower_bound_counts(self, data):
        columns, queries = data
        tau, t_count = 0.9, 2
        truth = _truth_counts(columns, queries, tau)
        _, verdict, _ = _pipeline(columns, queries, tau, t_count, early_accept=True)
        for cid in verdict.joinable:
            assert t_count <= truth[cid]
            assert verdict.match_counts[cid] <= truth[cid]

    def test_lemma7_never_kills_joinable_columns(self, data):
        columns, queries = data
        for tau in (0.4, 0.8):
            for t_count in (2, 5):
                truth = _truth_counts(columns, queries, tau)
                _, verdict, _ = _pipeline(columns, queries, tau, t_count, use_lemma7=True)
                expected = {cid for cid, c in truth.items() if c >= t_count}
                assert verdict.joinable == expected

    def test_lemma7_skips_counted(self, data):
        columns, queries = data
        # impossible threshold: every column dies quickly
        _, _, stats = _pipeline(columns, queries, 0.05, t_count=10)
        assert stats.lemma7_skips >= 0  # counter exists and is non-negative

    def test_disable_everything_still_exact(self, data):
        columns, queries = data
        tau, t_count = 0.7, 3
        truth = _truth_counts(columns, queries, tau)
        _, verdict, _ = _pipeline(
            columns, queries, tau, t_count,
            use_lemma1=False, use_lemma2=False, use_lemma7=False, early_accept=False,
        )
        expected = {cid for cid, c in truth.items() if c >= t_count}
        assert verdict.joinable == expected


class TestInstrumentation:
    def test_lemma1_reduces_distance_computations(self, data):
        columns, queries = data
        _, _, with_l1 = _pipeline(columns, queries, 0.5, 1, use_lemma1=True)
        _, _, without = _pipeline(columns, queries, 0.5, 1, use_lemma1=False)
        assert with_l1.distance_computations <= without.distance_computations

    def test_lemma2_short_circuits(self, data):
        columns, queries = data
        _, _, stats = _pipeline(columns, queries, 1.6, 1, use_lemma2=True)
        assert stats.lemma2_matched >= 0

    def test_verification_time_recorded(self, data):
        columns, queries = data
        _, _, stats = _pipeline(columns, queries, 0.6, 2)
        assert stats.verification_seconds >= 0.0
