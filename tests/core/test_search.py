"""Tests for Algorithm 3 — the assembled search — including the central
exactness property against the naive oracle and all ablations."""

import numpy as np
import pytest

from repro.baselines.exact_naive import naive_search
from repro.core.index import PexesoIndex
from repro.core.metric import normalize_rows
from repro.core.search import ABLATIONS, AblationFlags, pexeso_search


@pytest.fixture(scope="module")
def index(small_columns):
    return PexesoIndex.build(small_columns, n_pivots=3, levels=3)


class TestExactness:
    @pytest.mark.parametrize("tau", [0.1, 0.4, 0.9, 1.5])
    @pytest.mark.parametrize("joinability", [0.1, 0.4, 0.8])
    def test_matches_naive(self, index, small_columns, small_query, tau, joinability):
        got = pexeso_search(index, small_query, tau, joinability).column_ids
        want = naive_search(small_columns, small_query, tau, joinability).column_ids
        assert got == want

    @pytest.mark.parametrize("name", list(ABLATIONS))
    def test_ablations_preserve_exactness(self, index, small_columns, small_query, name):
        tau, joinability = 0.8, 0.3
        got = pexeso_search(index, small_query, tau, joinability, flags=ABLATIONS[name])
        want = naive_search(small_columns, small_query, tau, joinability)
        assert got.column_ids == want.column_ids

    def test_all_flags_off_still_exact(self, index, small_columns, small_query):
        got = pexeso_search(
            index, small_query, 0.7, 0.3, flags=AblationFlags.none()
        ).column_ids
        want = naive_search(small_columns, small_query, 0.7, 0.3).column_ids
        assert got == want

    def test_exact_counts_match_naive(self, index, small_columns, small_query):
        res = pexeso_search(index, small_query, 0.9, 0.2, exact_counts=True)
        ref = naive_search(small_columns, small_query, 0.9, 0.2)
        assert {h.column_id: h.match_count for h in res.joinable} == {
            h.column_id: h.match_count for h in ref.joinable
        }

    def test_clustered_data_exact(self, clustered_columns):
        index = PexesoIndex.build(clustered_columns, n_pivots=4, levels=4)
        query = clustered_columns[0]
        for tau in (0.05, 0.2, 0.5):
            got = pexeso_search(index, query, tau, 0.5).column_ids
            want = naive_search(clustered_columns, query, tau, 0.5).column_ids
            assert got == want

    @pytest.mark.parametrize("n_pivots", [1, 2, 5, 7])
    @pytest.mark.parametrize("levels", [1, 2, 4, 6])
    def test_exact_for_all_grid_shapes(self, small_columns, small_query, n_pivots, levels):
        index = PexesoIndex.build(small_columns, n_pivots=n_pivots, levels=levels)
        got = pexeso_search(index, small_query, 0.6, 0.3).column_ids
        want = naive_search(small_columns, small_query, 0.6, 0.3).column_ids
        assert got == want


class TestResultShape:
    def test_sorted_by_column_id(self, index, small_query):
        result = pexeso_search(index, small_query, 1.2, 0.2)
        ids = result.column_ids
        assert ids == sorted(ids)

    def test_joinability_at_least_threshold(self, index, small_query):
        result = pexeso_search(index, small_query, 1.0, 0.4)
        for hit in result.joinable:
            assert hit.match_count >= result.t_count

    def test_len_and_query_size(self, index, small_query):
        result = pexeso_search(index, small_query, 0.8, 0.3)
        assert len(result) == len(result.joinable)
        assert result.query_size == small_query.shape[0]

    def test_self_query_is_fully_joinable(self, small_columns, index):
        query = small_columns[5]
        result = pexeso_search(index, query, tau=1e-6, joinability=1.0)
        assert 5 in result.column_ids
        hit = next(h for h in result.joinable if h.column_id == 5)
        assert hit.joinability == pytest.approx(1.0)

    def test_stats_attached(self, index, small_query):
        result = pexeso_search(index, small_query, 0.5, 0.3)
        assert result.stats.pivot_mapping_distances == small_query.shape[0] * 3


class TestValidation:
    def test_empty_query_raises(self, index):
        with pytest.raises(ValueError, match="empty"):
            pexeso_search(index, np.zeros((0, 8)), 0.5, 0.5)

    def test_dim_mismatch_raises(self, index):
        with pytest.raises(ValueError, match="dim"):
            pexeso_search(index, np.zeros((3, 5)), 0.5, 0.5)

    def test_negative_tau_raises(self, index, small_query):
        with pytest.raises(ValueError, match="tau"):
            pexeso_search(index, small_query, -0.1, 0.5)

    def test_unbuilt_index_raises(self, small_query):
        with pytest.raises(RuntimeError):
            pexeso_search(PexesoIndex(), small_query, 0.5, 0.5)

    def test_search_method_on_index(self, index, small_query):
        direct = index.search(small_query, tau=0.6, joinability=0.3)
        assert direct.column_ids == pexeso_search(index, small_query, 0.6, 0.3).column_ids


class TestFilteringEffectiveness:
    """The lemmas should reduce work on clustered (realistic) data."""

    def test_pexeso_beats_naive_distance_count(self, clustered_columns):
        index = PexesoIndex.build(clustered_columns, n_pivots=4, levels=4)
        query = clustered_columns[1]
        res = pexeso_search(index, query, 0.12, 0.5)
        ref = naive_search(clustered_columns, query, 0.12, 0.5)
        assert res.stats.distance_computations < ref.stats.distance_computations

    def test_ablations_only_increase_work(self, clustered_columns):
        index = PexesoIndex.build(clustered_columns, n_pivots=4, levels=4)
        query = clustered_columns[2]
        full = pexeso_search(index, query, 0.12, 0.5).stats.distance_computations
        no_l1 = pexeso_search(
            index, query, 0.12, 0.5, flags=AblationFlags(lemma1=False)
        ).stats.distance_computations
        assert no_l1 >= full
