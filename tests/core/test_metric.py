"""Tests for repro.core.metric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.metric import (
    ChebyshevMetric,
    CosineDistance,
    EuclideanMetric,
    ManhattanMetric,
    get_metric,
    normalize_rows,
)
from repro.core.stats import CounterBox

METRICS = [EuclideanMetric(), ManhattanMetric(), ChebyshevMetric()]

finite_vec = arrays(
    np.float64,
    6,
    elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False),
)


class TestEuclidean:
    def test_known_distance(self):
        a = np.array([0.0, 0.0])
        b = np.array([3.0, 4.0])
        assert EuclideanMetric().distance(a, b) == pytest.approx(5.0)

    def test_pairwise_matches_scalar(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(5, 4))
        b = rng.normal(size=(7, 4))
        metric = EuclideanMetric()
        matrix = metric.pairwise(a, b)
        for i in range(5):
            for j in range(7):
                assert matrix[i, j] == pytest.approx(
                    np.linalg.norm(a[i] - b[j]), abs=1e-9
                )

    def test_distances_to_matches_pairwise(self):
        rng = np.random.default_rng(1)
        q = rng.normal(size=4)
        batch = rng.normal(size=(9, 4))
        metric = EuclideanMetric()
        np.testing.assert_allclose(
            metric.distances_to(q, batch), metric.pairwise(q, batch)[0]
        )

    def test_max_distance_unit_vectors(self):
        assert EuclideanMetric().max_distance(300) == 2.0

    def test_no_negative_sqrt(self):
        # identical points must give exactly 0 despite float error
        a = np.full((1, 8), 0.1234567)
        assert EuclideanMetric().pairwise(a, a)[0, 0] == 0.0


class TestManhattanChebyshev:
    def test_manhattan_known(self):
        a = np.array([1.0, 2.0])
        b = np.array([4.0, -2.0])
        assert ManhattanMetric().distance(a, b) == pytest.approx(7.0)

    def test_chebyshev_known(self):
        a = np.array([1.0, 2.0])
        b = np.array([4.0, -2.0])
        assert ChebyshevMetric().distance(a, b) == pytest.approx(4.0)

    def test_ordering_l1_l2_linf(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=4), rng.normal(size=4)
        l1 = ManhattanMetric().distance(a, b)
        l2 = EuclideanMetric().distance(a, b)
        linf = ChebyshevMetric().distance(a, b)
        assert l1 >= l2 >= linf

    def test_manhattan_unit_bound(self):
        rng = np.random.default_rng(3)
        vectors = normalize_rows(rng.normal(size=(50, 16)))
        metric = ManhattanMetric()
        assert metric.pairwise(vectors, vectors).max() <= metric.max_distance(16)


@pytest.mark.parametrize("metric", METRICS, ids=lambda m: m.name)
class TestMetricAxioms:
    @settings(max_examples=25, deadline=None)
    @given(a=finite_vec, b=finite_vec)
    def test_symmetry(self, metric, a, b):
        assert metric.distance(a, b) == pytest.approx(metric.distance(b, a), abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(a=finite_vec, b=finite_vec, c=finite_vec)
    def test_triangle_inequality(self, metric, a, b, c):
        ab = metric.distance(a, b)
        bc = metric.distance(b, c)
        ac = metric.distance(a, c)
        assert ac <= ab + bc + 1e-6

    @settings(max_examples=25, deadline=None)
    @given(a=finite_vec)
    def test_identity(self, metric, a):
        assert metric.distance(a, a) == pytest.approx(0.0, abs=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(a=finite_vec, b=finite_vec)
    def test_non_negativity(self, metric, a, b):
        assert metric.distance(a, b) >= 0.0


class TestCosine:
    def test_orthogonal(self):
        assert CosineDistance().distance(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(1.0)

    def test_parallel(self):
        assert CosineDistance().distance(
            np.array([2.0, 0.0]), np.array([5.0, 0.0])
        ) == pytest.approx(0.0)

    def test_opposite(self):
        assert CosineDistance().distance(
            np.array([1.0, 0.0]), np.array([-1.0, 0.0])
        ) == pytest.approx(2.0)

    def test_relates_to_euclidean_on_unit_vectors(self):
        rng = np.random.default_rng(4)
        a, b = normalize_rows(rng.normal(size=(2, 8)))
        d_cos = CosineDistance().distance(a, b)
        d_euc = EuclideanMetric().distance(a, b)
        assert d_euc ** 2 == pytest.approx(2 * d_cos, abs=1e-9)

    def test_flagged_as_non_metric(self):
        assert CosineDistance.is_metric is False

    def test_zero_vector_safe(self):
        z = np.zeros(4)
        assert np.isfinite(CosineDistance().distance(z, np.ones(4)))


class TestRegistry:
    @pytest.mark.parametrize("name", ["euclidean", "manhattan", "chebyshev", "cosine"])
    def test_get_metric(self, name):
        assert get_metric(name).name == name

    def test_get_metric_case_insensitive(self):
        assert get_metric("Euclidean").name == "euclidean"

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError, match="unknown metric"):
            get_metric("hamming")


class TestCounter:
    def test_pairwise_counts(self):
        counter = CounterBox()
        metric = EuclideanMetric(counter=counter)
        metric.pairwise(np.zeros((3, 2)), np.zeros((5, 2)))
        assert counter.count == 15

    def test_distance_counts_one(self):
        counter = CounterBox()
        EuclideanMetric(counter=counter).distance(np.zeros(2), np.ones(2))
        assert counter.count == 1

    def test_distances_to_counts_batch(self):
        counter = CounterBox()
        EuclideanMetric(counter=counter).distances_to(np.zeros(2), np.ones((7, 2)))
        assert counter.count == 7

    def test_reset(self):
        counter = CounterBox()
        counter.add(5)
        counter.reset()
        assert counter.count == 0


class TestNormalizeRows:
    def test_unit_norm(self):
        rng = np.random.default_rng(5)
        out = normalize_rows(rng.normal(size=(10, 6)))
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_zero_row_untouched(self):
        out = normalize_rows(np.zeros((2, 3)))
        np.testing.assert_array_equal(out, np.zeros((2, 3)))

    def test_does_not_mutate_input(self):
        original = np.ones((2, 2))
        normalize_rows(original)
        np.testing.assert_array_equal(original, np.ones((2, 2)))


class TestRegisterMetric:
    def test_register_round_trips(self):
        from repro.core.metric import (
            METRIC_REGISTRY,
            get_metric,
            metric_round_trips,
            register_metric,
        )

        class WeightedEuclidean(EuclideanMetric):
            name = "weighted-euclidean-test"

        assert not metric_round_trips(WeightedEuclidean())
        register_metric(WeightedEuclidean)
        try:
            assert metric_round_trips(WeightedEuclidean())
            assert isinstance(
                get_metric("weighted-euclidean-test"), WeightedEuclidean
            )
        finally:
            del METRIC_REGISTRY["weighted-euclidean-test"]

    def test_register_as_decorator(self):
        from repro.core.metric import METRIC_REGISTRY, register_metric

        @register_metric
        class DecoratedMetric(EuclideanMetric):
            name = "decorated-test"

        try:
            assert METRIC_REGISTRY["decorated-test"] is DecoratedMetric
        finally:
            del METRIC_REGISTRY["decorated-test"]

    def test_register_rejects_nameless(self):
        from repro.core.metric import Metric, register_metric

        class Nameless(Metric):
            pass

        with pytest.raises(ValueError):
            register_metric(Nameless)

    def test_register_rejects_name_collision(self):
        from repro.core.metric import register_metric

        class FakeEuclidean(EuclideanMetric):
            name = "euclidean"

        with pytest.raises(ValueError):
            register_metric(FakeEuclidean)

    def test_builtins_round_trip(self):
        from repro.core.metric import metric_round_trips

        assert metric_round_trips(EuclideanMetric())
        assert metric_round_trips(ManhattanMetric())

    def test_mixed_case_registered_name_round_trips(self):
        from repro.core.metric import (
            METRIC_REGISTRY,
            get_metric,
            metric_round_trips,
            register_metric,
        )

        @register_metric
        class CamelCaseMetric(EuclideanMetric):
            name = "CamelCase-Test"

        try:
            assert metric_round_trips(CamelCaseMetric())
            # get_metric must find the verbatim name (it lowercases only
            # as a fallback for the built-ins).
            assert isinstance(get_metric("CamelCase-Test"), CamelCaseMetric)
        finally:
            del METRIC_REGISTRY["CamelCase-Test"]

    def test_non_default_constructible_metric_does_not_round_trip(self):
        from repro.core.metric import (
            METRIC_REGISTRY,
            metric_round_trips,
            register_metric,
        )

        @register_metric
        class ScaledMetric(EuclideanMetric):
            name = "scaled-test"

            def __init__(self, scale):  # no default: name alone can't rebuild it
                super().__init__()
                self.scale = scale

        try:
            # Registered, but get_metric could not reconstruct it — the
            # persistence gate must send it down the pickle path.
            assert not metric_round_trips(ScaledMetric(2.0))
        finally:
            del METRIC_REGISTRY["scaled-test"]

    def test_metric_without_counter_kwarg_does_not_round_trip(self):
        from repro.core.metric import (
            METRIC_REGISTRY,
            metric_round_trips,
            register_metric,
        )

        @register_metric
        class NoCounterMetric(EuclideanMetric):
            name = "no-counter-test"

            def __init__(self):  # drops the counter kwarg get_metric passes
                super().__init__()

        try:
            # cls() works, but get_metric's cls(counter=None) would not —
            # the gate must reject it so the spill falls back to pickle
            # instead of saving an unloadable lake.
            assert not metric_round_trips(NoCounterMetric())
        finally:
            del METRIC_REGISTRY["no-counter-test"]
