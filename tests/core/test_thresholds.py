"""Tests for ratio-based threshold specification (§V)."""

import pytest

from repro.core.metric import EuclideanMetric, ManhattanMetric
from repro.core.thresholds import distance_threshold, joinability_count


class TestDistanceThreshold:
    def test_paper_default(self):
        # 6% of the maximum Euclidean distance (2) = 0.12
        assert distance_threshold(0.06, EuclideanMetric(), 300) == pytest.approx(0.12)

    def test_scales_with_metric(self):
        tau = distance_threshold(0.1, ManhattanMetric(), 16)
        assert tau == pytest.approx(0.1 * ManhattanMetric().max_distance(16))

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_out_of_range_fraction(self, bad):
        with pytest.raises(ValueError):
            distance_threshold(bad, EuclideanMetric(), 8)

    def test_full_fraction_allowed(self):
        assert distance_threshold(1.0, EuclideanMetric(), 8) == 2.0


class TestJoinabilityCount:
    @pytest.mark.parametrize(
        "fraction,size,expected",
        [
            (0.2, 10, 2),
            (0.6, 10, 6),
            (0.5, 15, 8),   # ceil(7.5)
            (1.0, 7, 7),
            (0.01, 10, 1),  # floors at one match
        ],
    )
    def test_fraction_to_count(self, fraction, size, expected):
        assert joinability_count(fraction, size) == expected

    def test_float_boundary_robust(self):
        # 0.6 * 5 = 3.0000000000000004 in floats; must not bump to 4
        assert joinability_count(0.6, 5) == 3

    def test_absolute_count_passthrough(self):
        assert joinability_count(4, 10) == 4

    @pytest.mark.parametrize("bad", [0, 11, -3])
    def test_count_out_of_range(self, bad):
        with pytest.raises(ValueError):
            joinability_count(bad, 10)

    @pytest.mark.parametrize("bad", [0.0, 1.2, -0.5])
    def test_fraction_out_of_range(self, bad):
        with pytest.raises(ValueError):
            joinability_count(bad, 10)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            joinability_count(True, 10)

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            joinability_count(0.5, 0)
