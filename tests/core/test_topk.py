"""Tests for top-k joinable column search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import PexesoIndex
from repro.core.metric import normalize_rows
from repro.core.topk import naive_topk, pexeso_topk


@pytest.fixture(scope="module")
def index(small_columns):
    return PexesoIndex.build(small_columns, n_pivots=3, levels=3)


class TestTopK:
    @pytest.mark.parametrize("k", [1, 3, 10, 40])
    @pytest.mark.parametrize("tau", [0.3, 0.8, 1.3])
    def test_matches_oracle(self, index, small_columns, small_query, k, tau):
        got = pexeso_topk(index, small_query, tau, k)
        want = naive_topk(small_columns, small_query, tau, k)
        assert [(c, n) for c, n, _ in got.hits] == [(c, n) for c, n, _ in want]

    def test_sorted_by_joinability_then_id(self, index, small_query):
        result = pexeso_topk(index, small_query, 0.9, 10)
        keys = [(-count, cid) for cid, count, _ in result.hits]
        assert keys == sorted(keys)

    def test_k_larger_than_repository(self, index, small_columns, small_query):
        result = pexeso_topk(index, small_query, 0.8, 1000)
        want = naive_topk(small_columns, small_query, 0.8, 1000)
        assert len(result.hits) == len(want)
        assert len(result.hits) <= len(small_columns)

    def test_zero_match_columns_excluded(self, index, small_query):
        result = pexeso_topk(index, small_query, 1e-9, 10)
        assert result.hits == []

    def test_k_one_is_best_column(self, index, small_columns, small_query):
        got = pexeso_topk(index, small_query, 0.9, 1)
        want = naive_topk(small_columns, small_query, 0.9, 1)
        assert got.hits[0][:2] == want[0][:2]

    def test_self_query_ranks_self_first(self, index, small_columns):
        query = small_columns[7]
        result = pexeso_topk(index, query, 1e-6, 1)
        assert result.hits[0][0] == 7
        assert result.hits[0][2] == pytest.approx(1.0)

    def test_invalid_k(self, index, small_query):
        with pytest.raises(ValueError):
            pexeso_topk(index, small_query, 0.5, 0)

    def test_empty_query(self, index):
        with pytest.raises(ValueError):
            pexeso_topk(index, np.zeros((0, 8)), 0.5, 3)

    def test_unbuilt_index(self, small_query):
        with pytest.raises(RuntimeError):
            pexeso_topk(PexesoIndex(), small_query, 0.5, 3)

    def test_deleted_column_excluded(self, small_columns, small_query):
        index = PexesoIndex.build(small_columns, n_pivots=3, levels=3)
        full = pexeso_topk(index, small_query, 0.9, 5)
        victim = full.hits[0][0]
        index.delete_column(victim)
        pruned = pexeso_topk(index, small_query, 0.9, 5)
        assert victim not in pruned.column_ids

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 12),
           tau=st.floats(0.05, 1.8))
    def test_property_matches_oracle(self, seed, k, tau):
        rng = np.random.default_rng(seed)
        columns = [
            normalize_rows(rng.normal(size=(int(rng.integers(2, 12)), 6)))
            for _ in range(10)
        ]
        query = normalize_rows(rng.normal(size=(6, 6)))
        index = PexesoIndex.build(columns, n_pivots=2, levels=3)
        got = pexeso_topk(index, query, tau, k)
        want = naive_topk(columns, query, tau, k)
        assert [(c, n) for c, n, _ in got.hits] == [(c, n) for c, n, _ in want]


class TestTopKEdgeCases:
    """Property tests for the corners the ranking logic must not bend."""

    def test_k_zero_rejected(self, index, small_query):
        with pytest.raises(ValueError):
            pexeso_topk(index, small_query, 0.5, 0)
        with pytest.raises(ValueError):
            pexeso_topk(index, small_query, 0.5, -3)

    def test_negative_theta_rejected(self, index, small_query):
        with pytest.raises(ValueError):
            pexeso_topk(index, small_query, 0.5, 3, theta=-1)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), extra=st.integers(0, 30))
    def test_k_at_least_repository_size_returns_all_matching(self, seed, extra):
        rng = np.random.default_rng(seed)
        columns = [
            normalize_rows(rng.normal(size=(int(rng.integers(2, 10)), 5)))
            for _ in range(8)
        ]
        query = normalize_rows(rng.normal(size=(5, 5)))
        index = PexesoIndex.build(columns, n_pivots=2, levels=3)
        got = pexeso_topk(index, query, 0.9, len(columns) + extra)
        want = naive_topk(columns, query, 0.9, len(columns))
        assert [(c, n) for c, n, _ in got.hits] == [(c, n) for c, n, _ in want]
        assert len(got.hits) <= len(columns)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 12))
    def test_all_tied_joinabilities_break_by_column_id(self, seed, k):
        # Every column is the same set of vectors, so every joinability
        # ties; the ranking must then be ascending column ID, cut at k.
        rng = np.random.default_rng(seed)
        base = normalize_rows(rng.normal(size=(6, 5)))
        columns = [base.copy() for _ in range(7)]
        query = base[:4]
        index = PexesoIndex.build(columns, n_pivots=2, levels=3)
        got = pexeso_topk(index, query, 1e-6, k)
        assert [c for c, _, _ in got.hits] == list(range(min(k, 7)))
        assert all(n == 4 for _, n, _ in got.hits)

    def test_empty_query_rejected(self, index):
        with pytest.raises(ValueError):
            pexeso_topk(index, np.zeros((0, 8)), 0.5, 3)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 10))
    def test_tau_matching_nothing_yields_empty(self, seed, k):
        rng = np.random.default_rng(seed)
        columns = [
            normalize_rows(rng.normal(size=(int(rng.integers(2, 8)), 5)))
            for _ in range(6)
        ]
        # A query orthogonal-ish and a τ far below any realistic distance.
        query = normalize_rows(rng.normal(size=(4, 5))) * -1.0
        index = PexesoIndex.build(columns, n_pivots=2, levels=3)
        got = pexeso_topk(index, query, 1e-12, k)
        assert got.hits == naive_topk(columns, query, 1e-12, k)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 8),
           tau=st.floats(0.1, 1.5))
    def test_theta_at_most_kth_count_never_changes_results(self, seed, k, tau):
        # The theta floor is sound: any value <= the true k-th best count
        # (the largest floor the partitioned search can ever pass) leaves
        # the result untouched.
        rng = np.random.default_rng(seed)
        columns = [
            normalize_rows(rng.normal(size=(int(rng.integers(2, 10)), 5)))
            for _ in range(9)
        ]
        query = normalize_rows(rng.normal(size=(5, 5)))
        index = PexesoIndex.build(columns, n_pivots=2, levels=3)
        want = pexeso_topk(index, query, tau, k)
        kth = want.hits[k - 1][1] if len(want.hits) >= k else 0
        for theta in {0, max(0, kth - 1), kth}:
            got = pexeso_topk(index, query, tau, k, theta=theta)
            assert got.hits == want.hits

    def test_theta_above_every_count_abandons_all(self, index, small_query):
        # A floor no column can reach abandons the whole candidate set
        # (counted as generalized Lemma 7 skips) — this is what lets a
        # later shard bail out instantly once earlier shards are better.
        baseline = pexeso_topk(index, small_query, 0.9, 5)
        assert baseline.hits  # sanity: the floor below has something to beat
        got = pexeso_topk(
            index, small_query, 0.9, 5, theta=small_query.shape[0] + 1
        )
        assert got.hits == []
        assert got.stats.lemma7_skips > 0
