"""Tests for top-k joinable column search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import PexesoIndex
from repro.core.metric import normalize_rows
from repro.core.topk import naive_topk, pexeso_topk


@pytest.fixture(scope="module")
def index(small_columns):
    return PexesoIndex.build(small_columns, n_pivots=3, levels=3)


class TestTopK:
    @pytest.mark.parametrize("k", [1, 3, 10, 40])
    @pytest.mark.parametrize("tau", [0.3, 0.8, 1.3])
    def test_matches_oracle(self, index, small_columns, small_query, k, tau):
        got = pexeso_topk(index, small_query, tau, k)
        want = naive_topk(small_columns, small_query, tau, k)
        assert [(c, n) for c, n, _ in got.hits] == [(c, n) for c, n, _ in want]

    def test_sorted_by_joinability_then_id(self, index, small_query):
        result = pexeso_topk(index, small_query, 0.9, 10)
        keys = [(-count, cid) for cid, count, _ in result.hits]
        assert keys == sorted(keys)

    def test_k_larger_than_repository(self, index, small_columns, small_query):
        result = pexeso_topk(index, small_query, 0.8, 1000)
        want = naive_topk(small_columns, small_query, 0.8, 1000)
        assert len(result.hits) == len(want)
        assert len(result.hits) <= len(small_columns)

    def test_zero_match_columns_excluded(self, index, small_query):
        result = pexeso_topk(index, small_query, 1e-9, 10)
        assert result.hits == []

    def test_k_one_is_best_column(self, index, small_columns, small_query):
        got = pexeso_topk(index, small_query, 0.9, 1)
        want = naive_topk(small_columns, small_query, 0.9, 1)
        assert got.hits[0][:2] == want[0][:2]

    def test_self_query_ranks_self_first(self, index, small_columns):
        query = small_columns[7]
        result = pexeso_topk(index, query, 1e-6, 1)
        assert result.hits[0][0] == 7
        assert result.hits[0][2] == pytest.approx(1.0)

    def test_invalid_k(self, index, small_query):
        with pytest.raises(ValueError):
            pexeso_topk(index, small_query, 0.5, 0)

    def test_empty_query(self, index):
        with pytest.raises(ValueError):
            pexeso_topk(index, np.zeros((0, 8)), 0.5, 3)

    def test_unbuilt_index(self, small_query):
        with pytest.raises(RuntimeError):
            pexeso_topk(PexesoIndex(), small_query, 0.5, 3)

    def test_deleted_column_excluded(self, small_columns, small_query):
        index = PexesoIndex.build(small_columns, n_pivots=3, levels=3)
        full = pexeso_topk(index, small_query, 0.9, 5)
        victim = full.hits[0][0]
        index.delete_column(victim)
        pruned = pexeso_topk(index, small_query, 0.9, 5)
        assert victim not in pruned.column_ids

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 12),
           tau=st.floats(0.05, 1.8))
    def test_property_matches_oracle(self, seed, k, tau):
        rng = np.random.default_rng(seed)
        columns = [
            normalize_rows(rng.normal(size=(int(rng.integers(2, 12)), 6)))
            for _ in range(10)
        ]
        query = normalize_rows(rng.normal(size=(6, 6)))
        index = PexesoIndex.build(columns, n_pivots=2, levels=3)
        got = pexeso_topk(index, query, tau, k)
        want = naive_topk(columns, query, tau, k)
        assert [(c, n) for c, n, _ in got.hits] == [(c, n) for c, n, _ in want]
