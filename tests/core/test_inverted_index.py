"""Tests for the cell -> column inverted index."""

import pytest

from repro.core.inverted_index import InvertedIndex, Posting


class TestAddColumn:
    def test_basic_postings(self):
        index = InvertedIndex()
        index.add_column(0, [(0, 0), (0, 0), (1, 1)], first_row=0)
        postings = index.postings((0, 0))
        assert len(postings) == 1
        assert postings[0].column_id == 0
        assert postings[0].rows == [0, 1]
        assert index.postings((1, 1))[0].rows == [2]

    def test_postings_sorted_by_column(self):
        index = InvertedIndex()
        index.add_column(2, [(0, 0)], first_row=10)
        index.add_column(0, [(0, 0)], first_row=0)
        index.add_column(1, [(0, 0)], first_row=5)
        assert [p.column_id for p in index.postings((0, 0))] == [0, 1, 2]

    def test_unknown_cell_empty(self):
        assert InvertedIndex().postings((9, 9)) == []

    def test_contains(self):
        index = InvertedIndex()
        index.add_column(0, [(1, 2)], first_row=0)
        assert (1, 2) in index
        assert (0, 0) not in index

    def test_n_cells_and_postings(self):
        index = InvertedIndex()
        index.add_column(0, [(0, 0), (1, 1)], first_row=0)
        index.add_column(1, [(0, 0)], first_row=2)
        assert index.n_cells == 2
        assert index.n_postings == 3

    def test_add_vector_merges_into_existing_posting(self):
        index = InvertedIndex()
        index.add_vector((0, 0), 3, 7)
        index.add_vector((0, 0), 3, 8)
        assert index.postings((0, 0))[0].rows == [7, 8]
        assert index.n_postings == 1


class TestDeleteColumn:
    def test_delete_removes_postings(self):
        index = InvertedIndex()
        index.add_column(0, [(0, 0), (1, 1)], first_row=0)
        index.add_column(1, [(0, 0)], first_row=2)
        removed = index.delete_column(0)
        assert removed == 2
        assert [p.column_id for p in index.postings((0, 0))] == [1]

    def test_delete_drops_empty_cells(self):
        index = InvertedIndex()
        index.add_column(0, [(5, 5)], first_row=0)
        index.delete_column(0)
        assert (5, 5) not in index
        assert index.n_cells == 0

    def test_delete_unknown_column_is_noop(self):
        index = InvertedIndex()
        index.add_column(0, [(0, 0)], first_row=0)
        assert index.delete_column(42) == 0
        assert index.n_postings == 1


class TestColumnsInCells:
    def test_merge_multiple_cells(self):
        index = InvertedIndex()
        index.add_column(1, [(0, 0), (1, 1)], first_row=0)
        index.add_column(0, [(1, 1)], first_row=2)
        merged = index.columns_in_cells([(0, 0), (1, 1)])
        assert list(merged) == [0, 1]  # DaaT order
        assert merged[1] == [0, 1]
        assert merged[0] == [2]

    def test_daat_order_increasing(self):
        index = InvertedIndex()
        for col in (5, 3, 9, 1):
            index.add_column(col, [(0, 0)], first_row=col * 10)
        merged = index.columns_in_cells([(0, 0)])
        assert list(merged) == sorted(merged)

    def test_empty_cells_ignored(self):
        index = InvertedIndex()
        index.add_column(0, [(0, 0)], first_row=0)
        assert index.columns_in_cells([(7, 7)]) == {}

    def test_memory_bytes_positive(self):
        index = InvertedIndex()
        index.add_column(0, [(0, 0)], first_row=0)
        assert index.memory_bytes() > 0


class TestPostingOrdering:
    def test_lt_by_column(self):
        assert Posting(1, []) < Posting(2, [])
        assert not Posting(2, []) < Posting(1, [])
