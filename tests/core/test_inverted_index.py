"""Tests for the cell-code -> column CSR inverted index."""

import numpy as np
import pytest

from repro.core.inverted_index import InvertedIndex, Posting


class TestAddColumn:
    def test_basic_postings(self):
        index = InvertedIndex()
        index.add_column(0, [5, 5, 9], first_row=0)
        postings = index.postings(5)
        assert len(postings) == 1
        assert postings[0].column_id == 0
        assert postings[0].rows == [0, 1]
        assert index.postings(9)[0].rows == [2]

    def test_postings_sorted_by_column(self):
        index = InvertedIndex()
        index.add_column(2, [5], first_row=10)
        index.add_column(0, [5], first_row=0)
        index.add_column(1, [5], first_row=5)
        assert [p.column_id for p in index.postings(5)] == [0, 1, 2]

    def test_unknown_cell_empty(self):
        assert InvertedIndex().postings(99) == []

    def test_contains(self):
        index = InvertedIndex()
        index.add_column(0, [12], first_row=0)
        assert 12 in index
        assert 0 not in index

    def test_n_cells_and_postings(self):
        index = InvertedIndex()
        index.add_column(0, [5, 9], first_row=0)
        index.add_column(1, [5], first_row=2)
        assert index.n_cells == 2
        assert index.n_postings == 3

    def test_add_vector_merges_into_existing_posting(self):
        index = InvertedIndex()
        index.add_vector(5, 3, 7)
        index.add_vector(5, 3, 8)
        assert index.postings(5)[0].rows == [7, 8]
        assert index.n_postings == 1

    def test_numpy_cells_accepted(self):
        index = InvertedIndex()
        index.add_column(0, np.array([5, 5, 9], dtype=np.int64), first_row=0)
        assert index.postings(5)[0].rows == [0, 1]


class TestBuildBulk:
    def test_equals_incremental_appends(self):
        rng = np.random.default_rng(7)
        cells = rng.integers(0, 30, size=60)
        cols = np.sort(rng.integers(0, 6, size=60))
        bulk = InvertedIndex()
        bulk.build_bulk(cells, cols)
        incremental = InvertedIndex()
        for col in np.unique(cols):
            mask = cols == col
            first = int(np.nonzero(mask)[0][0])
            incremental.add_column(int(col), cells[mask], first_row=first)
        assert bulk.n_postings == incremental.n_postings
        for cell in bulk.cells():
            got = [(p.column_id, p.rows) for p in bulk.postings(cell)]
            want = [(p.column_id, p.rows) for p in incremental.postings(cell)]
            assert got == want

    def test_empty_build(self):
        index = InvertedIndex()
        index.build_bulk(np.empty(0), np.empty(0))
        assert index.n_postings == 0
        assert index.n_cells == 0


class TestDeleteColumn:
    def test_delete_removes_postings(self):
        index = InvertedIndex()
        index.add_column(0, [5, 9], first_row=0)
        index.add_column(1, [5], first_row=2)
        removed = index.delete_column(0)
        assert removed == 2
        assert [p.column_id for p in index.postings(5)] == [1]

    def test_delete_drops_empty_cells(self):
        index = InvertedIndex()
        index.add_column(0, [55], first_row=0)
        index.delete_column(0)
        assert 55 not in index
        assert index.n_cells == 0

    def test_delete_unknown_column_is_noop(self):
        index = InvertedIndex()
        index.add_column(0, [5], first_row=0)
        assert index.delete_column(42) == 0
        assert index.n_postings == 1


class TestColumnsInCells:
    def test_merge_multiple_cells(self):
        index = InvertedIndex()
        index.add_column(1, [5, 9], first_row=0)
        index.add_column(0, [9], first_row=2)
        merged = index.columns_in_cells([5, 9])
        assert list(merged) == [0, 1]  # DaaT order
        assert merged[1] == [0, 1]
        assert merged[0] == [2]

    def test_daat_order_increasing(self):
        index = InvertedIndex()
        for col in (5, 3, 9, 1):
            index.add_column(col, [7], first_row=col * 10)
        merged = index.columns_in_cells([7])
        assert list(merged) == sorted(merged)

    def test_empty_cells_ignored(self):
        index = InvertedIndex()
        index.add_column(0, [5], first_row=0)
        assert index.columns_in_cells([77]) == {}

    def test_arrays_form_matches_dict_form(self):
        rng = np.random.default_rng(3)
        index = InvertedIndex()
        row = 0
        for col in range(8):
            n = int(rng.integers(1, 12))
            index.add_column(col, rng.integers(0, 10, size=n), first_row=row)
            row += n
        probe = [0, 3, 7, 9, 42]
        cols, rows, lens = index.columns_in_cells_arrays(probe)
        merged = index.columns_in_cells(probe)
        assert cols.tolist() == list(merged)
        offset = 0
        for col, length in zip(cols.tolist(), lens.tolist()):
            assert rows[offset : offset + length].tolist() == merged[col]
            offset += length

    def test_memory_bytes_positive(self):
        index = InvertedIndex()
        index.add_column(0, [5], first_row=0)
        assert index.memory_bytes() > 0


class TestPostingOrdering:
    def test_lt_by_column(self):
        assert Posting(1, []) < Posting(2, [])
        assert not Posting(2, []) < Posting(1, [])
