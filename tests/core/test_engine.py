"""Batch query engine: results must be identical to sequential search.

The contract under test (see :mod:`repro.core.engine`): for every query
in a batch, ``BatchSearch`` returns exactly what N independent
``pexeso_search`` calls would — same joinable column IDs, same match
counts (including the early-termination lower bounds), same joinability
values — across metrics, thresholds, ablation configurations, row-block
sizes and thread-pool widths.
"""

import numpy as np
import pytest

from repro.core.engine import BatchResult, BatchSearch, batch_search
from repro.core.index import PexesoIndex
from repro.core.metric import ChebyshevMetric, EuclideanMetric, ManhattanMetric, normalize_rows
from repro.core.search import ABLATIONS, AblationFlags, pexeso_search


def make_queries(seed: int, n_queries: int, dim: int, rows=(1, 14)) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [
        normalize_rows(rng.normal(size=(int(rng.integers(*rows)), dim)))
        for _ in range(n_queries)
    ]


def assert_batch_equals_sequential(index, queries, tau, joinability, **engine_kwargs):
    """Per-query equality of hits, counts and thresholds."""
    flags = engine_kwargs.pop("flags", None)
    exact_counts = engine_kwargs.pop("exact_counts", False)
    batch = BatchSearch(
        index, flags=flags, exact_counts=exact_counts, **engine_kwargs
    ).search_many(queries, tau, joinability)
    assert len(batch) == len(queries)
    taus = tau if not np.isscalar(tau) else [tau] * len(queries)
    joins = joinability if not np.isscalar(joinability) else [joinability] * len(queries)
    for query, t, j, got in zip(queries, taus, joins, batch.results):
        want = pexeso_search(
            index, query, t, j, flags=flags, exact_counts=exact_counts
        )
        assert got.column_ids == want.column_ids
        assert {h.column_id: h.match_count for h in got.joinable} == {
            h.column_id: h.match_count for h in want.joinable
        }
        assert {h.column_id: h.joinability for h in got.joinable} == {
            h.column_id: h.joinability for h in want.joinable
        }
        assert [h.exact_count for h in got.joinable] == [
            h.exact_count for h in want.joinable
        ]
        assert got.t_count == want.t_count
        assert got.query_size == want.query_size
        assert got.tau == want.tau
    return batch


@pytest.fixture(scope="module")
def index(small_columns):
    return PexesoIndex.build(small_columns, n_pivots=3, levels=3)


@pytest.fixture(scope="module")
def queries():
    return make_queries(seed=77, n_queries=8, dim=8)


class TestBatchEqualsSequential:
    def test_default_flags(self, index, queries):
        assert_batch_equals_sequential(index, queries, 0.6, 0.3)

    @pytest.mark.parametrize("name", sorted(ABLATIONS))
    def test_all_ablation_configs(self, index, queries, name):
        assert_batch_equals_sequential(
            index, queries, 0.5, 0.4, flags=ABLATIONS[name]
        )

    def test_everything_disabled(self, index, queries):
        assert_batch_equals_sequential(
            index, queries, 0.7, 0.3, flags=AblationFlags.none()
        )

    @pytest.mark.parametrize("tau", [0.05, 0.3, 0.8, 1.4])
    @pytest.mark.parametrize("joinability", [0.1, 0.6, 1.0])
    def test_threshold_grid(self, index, queries, tau, joinability):
        assert_batch_equals_sequential(index, queries, tau, joinability)

    @pytest.mark.parametrize(
        "metric_cls", [EuclideanMetric, ManhattanMetric, ChebyshevMetric]
    )
    def test_metrics(self, small_columns, queries, metric_cls):
        metric_index = PexesoIndex.build(
            small_columns, metric=metric_cls(), n_pivots=3, levels=3
        )
        assert_batch_equals_sequential(metric_index, queries, 0.6, 0.4)

    def test_exact_counts_mode(self, index, queries):
        batch = assert_batch_equals_sequential(
            index, queries, 0.8, 0.2, exact_counts=True
        )
        for result in batch.results:
            assert all(h.exact_count for h in result.joinable)

    def test_absolute_joinability_counts(self, index, queries):
        assert_batch_equals_sequential(index, queries, 0.6, 1)

    @pytest.mark.parametrize("row_block_size", [1, 3, 8, 64, 1000])
    def test_row_block_sizes(self, index, queries, row_block_size):
        assert_batch_equals_sequential(
            index, queries, 0.55, 0.35, row_block_size=row_block_size
        )

    def test_per_query_taus_and_joinabilities(self, index, queries):
        rng = np.random.default_rng(5)
        taus = [float(rng.uniform(0.1, 1.0)) for _ in queries]
        joins = [float(rng.uniform(0.1, 1.0)) for _ in queries]
        assert_batch_equals_sequential(index, queries, taus, joins)

    def test_thread_pool_with_mixed_taus(self, index, queries):
        taus = [0.3, 0.6] * (len(queries) // 2)
        assert_batch_equals_sequential(index, queries, taus, 0.4, max_workers=4)

    def test_thread_pool_splits_single_tau_batch(self, index, queries):
        # max_workers > 1 splits one tau group into parallel subgroups;
        # results must stay identical to the sequential reference.
        assert_batch_equals_sequential(index, queries, 0.6, 0.3, max_workers=3)

    def test_serial_mode(self, index, queries):
        assert_batch_equals_sequential(index, queries, 0.6, 0.3, max_workers=1)

    def test_single_query_batch(self, index, small_query):
        assert_batch_equals_sequential(index, [small_query], 0.6, 0.3)

    def test_deleted_columns_never_surface(self, small_columns, queries):
        mutable = PexesoIndex.build(small_columns, n_pivots=3, levels=3)
        mutable.delete_column(0)
        mutable.delete_column(7)
        batch = assert_batch_equals_sequential(mutable, queries, 0.9, 0.2)
        for ids in batch.column_ids:
            assert 0 not in ids and 7 not in ids


class TestBatchApi:
    def test_empty_batch(self, index):
        batch = BatchSearch(index).search_many([], 0.5, 0.5)
        assert len(batch) == 0
        assert batch.results == []
        assert batch.n_joinable == 0

    def test_convenience_function(self, index, queries):
        got = batch_search(index, queries, 0.6, 0.3)
        assert isinstance(got, BatchResult)
        assert got.column_ids == BatchSearch(index).search_many(queries, 0.6, 0.3).column_ids

    def test_result_container(self, index, queries):
        batch = BatchSearch(index).search_many(queries, 0.6, 0.3)
        assert batch[0].column_ids == batch.results[0].column_ids
        assert [r.query_size for r in batch] == [q.shape[0] for q in queries]
        assert batch.wall_seconds > 0
        assert batch.n_joinable == sum(len(ids) for ids in batch.column_ids)

    def test_unbuilt_index_rejected(self):
        with pytest.raises(RuntimeError, match="not built"):
            BatchSearch(PexesoIndex())

    def test_empty_query_rejected(self, index, queries):
        with pytest.raises(ValueError, match="empty"):
            BatchSearch(index).search_many([np.zeros((0, 8))], 0.5, 0.5)

    def test_dim_mismatch_rejected(self, index):
        with pytest.raises(ValueError, match="dim"):
            BatchSearch(index).search_many([np.zeros((3, 5))], 0.5, 0.5)

    def test_negative_tau_rejected(self, index, small_query):
        with pytest.raises(ValueError, match="non-negative"):
            BatchSearch(index).search_many([small_query], -0.1, 0.5)

    def test_nan_query_rejected(self, index):
        bad = np.full((3, 8), np.nan)
        with pytest.raises(ValueError, match="NaN"):
            BatchSearch(index).search_many([bad], 0.5, 0.5)

    def test_mismatched_tau_list_rejected(self, index, queries):
        with pytest.raises(ValueError, match="one entry per query"):
            BatchSearch(index).search_many(queries, [0.5, 0.6], 0.5)

    def test_bad_row_block_size_rejected(self, index):
        with pytest.raises(ValueError, match="row_block_size"):
            BatchSearch(index, row_block_size=0)


class TestBatchStats:
    def test_per_query_stats_are_threaded_through(self, index, queries):
        batch = BatchSearch(index).search_many(queries, 0.8, 0.2)
        # every query carries its own verification counters
        assert all(r.stats is not None for r in batch.results)
        per_query_distances = [r.stats.distance_computations for r in batch.results]
        assert sum(per_query_distances) == batch.stats.distance_computations
        # blocking output is attributed per query and sums to the batch total
        assert (
            sum(r.stats.candidate_pairs for r in batch.results)
            == batch.stats.candidate_pairs
        )
        assert (
            sum(r.stats.matching_pairs for r in batch.results)
            == batch.stats.matching_pairs
        )

    def test_shared_blocking_counted_once(self, index, queries):
        batch = BatchSearch(index).search_many(queries, 0.8, 0.2)
        # the shared descent runs once per tau group, so per-query stats
        # carry no cells_visited of their own
        assert batch.stats.cells_visited > 0
        assert all(r.stats.cells_visited == 0 for r in batch.results)
        assert batch.stats.blocking_seconds >= 0.0
        assert batch.stats.verification_seconds >= 0.0

    def test_pivot_mapping_attribution(self, index, queries):
        batch = BatchSearch(index).search_many(queries, 0.6, 0.3)
        for query, result in zip(queries, batch.results):
            assert (
                result.stats.pivot_mapping_distances
                == query.shape[0] * index.n_pivots
            )

    def test_record_batch_sizes_off_by_default(self, index, queries):
        batch = BatchSearch(index).search_many(queries, 0.8, 0.2)
        assert batch.stats.coalesced_batch_sizes == []

    def test_record_batch_sizes_appends_fan_in(self, index, queries):
        engine = BatchSearch(index, record_batch_sizes=True)
        batch = engine.search_many(queries, 0.8, 0.2)
        assert batch.stats.coalesced_batch_sizes == [len(queries)]
        # empty batches record nothing
        assert engine.search_many([], 0.8, 0.2).stats.coalesced_batch_sizes == []


class TestMergeShardBatches:
    """The global-ID merge the partitioned search is built on."""

    def test_merges_and_remaps(self, small_columns, small_query):
        from repro.core.engine import merge_shard_batches

        # Split the repository into two halves and merge the per-half
        # batches: must equal one batch over the full index.
        half = len(small_columns) // 2
        left = PexesoIndex.build(small_columns[:half], n_pivots=3, levels=3)
        right = PexesoIndex.build(small_columns[half:], n_pivots=3, levels=3)
        full = PexesoIndex.build(small_columns, n_pivots=3, levels=3)
        queries = [small_query, small_columns[3]]
        batches = [
            BatchSearch(left, exact_counts=True).search_many(queries, 0.8, 0.3),
            BatchSearch(right, exact_counts=True).search_many(queries, 0.8, 0.3),
        ]
        maps = [list(range(half)), list(range(half, len(small_columns)))]
        merged = merge_shard_batches(batches, maps)
        want = BatchSearch(full, exact_counts=True).search_many(queries, 0.8, 0.3)
        for got_r, want_r in zip(merged.results, want.results):
            assert [(h.column_id, h.match_count) for h in got_r.joinable] == [
                (h.column_id, h.match_count) for h in want_r.joinable
            ]

    def test_rejects_empty_and_mismatched(self, small_columns, small_query):
        from repro.core.engine import merge_shard_batches

        index = PexesoIndex.build(small_columns[:5], n_pivots=2, levels=2)
        engine = BatchSearch(index)
        one = engine.search_many([small_query], 0.8, 0.3)
        two = engine.search_many([small_query, small_query], 0.8, 0.3)
        with pytest.raises(ValueError):
            merge_shard_batches([], [])
        with pytest.raises(ValueError):
            merge_shard_batches([one], [list(range(5)), list(range(5))])
        with pytest.raises(ValueError):
            merge_shard_batches([one, two], [list(range(5)), list(range(5))])
