"""Tests for the command-line interface (index / search / serve / stats)."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.lake.csv_loader import dump_csv
from repro.lake.datagen import DataLakeGenerator
from repro.lake.table import Column, Table


@pytest.fixture(scope="module")
def lake_dir(tmp_path_factory):
    """A small CSV lake on disk built from the generator (misspellings etc.)."""
    directory = tmp_path_factory.mktemp("lake")
    gen = DataLakeGenerator(seed=4, n_entities=40, dim=16)
    lake = gen.generate_lake(n_tables=12, rows_range=(8, 14),
                             distractor_fraction=0.0, noise_row_fraction=0.0)
    for table in lake.tables:
        dump_csv(table, directory / f"{table.name}.csv")
    query_table, _ = gen.generate_query_table(
        n_rows=10, domain=0, kind_weights={"exact": 1.0}
    )
    dump_csv(query_table, directory / "_query.csv")
    (directory / "_query.csv").rename(directory.parent / "query.csv")
    return directory


class TestIndexCommand:
    def test_index_builds_artifacts(self, lake_dir, tmp_path):
        index_dir = tmp_path / "idx"
        code = main(["index", str(lake_dir), str(index_dir), "--dim", "32"])
        assert code == 0
        assert (index_dir / "manifest.json").exists()
        assert (index_dir / "catalog.json").exists()
        assert list(index_dir.glob("arrays_v3_*/vectors.npy"))

    def test_missing_lake_fails(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["index", str(empty), str(tmp_path / "idx")]) == 1


class TestSearchCommand:
    @pytest.fixture()
    def index_dir(self, lake_dir, tmp_path):
        out = tmp_path / "idx"
        assert main(["index", str(lake_dir), str(out), "--dim", "32"]) == 0
        return out

    def test_search_runs(self, index_dir, lake_dir, capsys):
        query_csv = lake_dir.parent / "query.csv"
        code = main([
            "search", str(index_dir), str(query_csv),
            "--tau", "0.2", "--joinability", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "joinability=" in out or "no joinable tables" in out

    def test_topk_mode(self, index_dir, lake_dir, capsys):
        query_csv = lake_dir.parent / "query.csv"
        code = main([
            "search", str(index_dir), str(query_csv),
            "--tau", "0.2", "--topk", "3",
        ])
        assert code == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if "\t" in l]
        assert 0 < len(lines) <= 3

    def test_explicit_column(self, index_dir, lake_dir, capsys):
        query_csv = lake_dir.parent / "query.csv"
        code = main([
            "search", str(index_dir), str(query_csv),
            "--column", "key", "--tau", "0.2", "--joinability", "0.2",
        ])
        assert code == 0

    def test_all_columns_batch_mode(self, index_dir, lake_dir, capsys):
        query_csv = lake_dir.parent / "query.csv"
        code = main([
            "search", str(index_dir), str(query_csv),
            "--all-columns", "--tau", "0.2", "--joinability", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[key]" in out  # per-column section header
        assert "query columns" in out  # batch summary line

    def test_all_columns_matches_single_column(self, index_dir, lake_dir, capsys):
        """Batch mode's key-column section equals the single search output."""
        query_csv = lake_dir.parent / "query.csv"
        assert main([
            "search", str(index_dir), str(query_csv),
            "--column", "key", "--tau", "0.2", "--joinability", "0.2",
        ]) == 0
        single = capsys.readouterr().out.strip().splitlines()
        assert main([
            "search", str(index_dir), str(query_csv),
            "--all-columns", "--workers", "2",
            "--tau", "0.2", "--joinability", "0.2",
        ]) == 0
        batch_out = capsys.readouterr().out.splitlines()
        key_section = batch_out[batch_out.index("[key]") + 1:]
        # the full section up to the next column header / summary line —
        # a superset of the single-search hits must fail, not pass
        end = next(
            i for i, line in enumerate(key_section)
            if line.startswith("[") or line.startswith("# ")
        )
        assert key_section[:end] == single


class TestJsonOutput:
    """--json emits the serving API's /search response schema."""

    @pytest.fixture()
    def index_dir(self, lake_dir, tmp_path):
        out = tmp_path / "idx"
        assert main(["index", str(lake_dir), str(out), "--dim", "32"]) == 0
        return out

    def test_search_json_schema(self, index_dir, lake_dir, capsys):
        query_csv = lake_dir.parent / "query.csv"
        assert main([
            "search", str(index_dir), str(query_csv),
            "--tau", "0.2", "--joinability", "0.2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"tau", "t_count", "query_size", "hits"}
        assert payload["hits"], "workload is built to produce hits"
        for hit in payload["hits"]:
            assert {"column_id", "table", "column", "match_count",
                    "joinability", "exact_count"} <= set(hit)
            assert isinstance(hit["column_id"], int)
            assert isinstance(hit["match_count"], int)

    def test_json_matches_plain_output(self, index_dir, lake_dir, capsys):
        query_csv = lake_dir.parent / "query.csv"
        assert main([
            "search", str(index_dir), str(query_csv),
            "--tau", "0.2", "--joinability", "0.2",
        ]) == 0
        plain = capsys.readouterr().out.strip().splitlines()
        assert main([
            "search", str(index_dir), str(query_csv),
            "--tau", "0.2", "--joinability", "0.2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        rebuilt = [
            f"{h['table']}.{h['column']}\tmatches={h['match_count']}\t"
            f"joinability={h['joinability']:.3f}"
            for h in payload["hits"]
        ]
        assert rebuilt == plain

    def test_topk_json_schema(self, index_dir, lake_dir, capsys):
        query_csv = lake_dir.parent / "query.csv"
        assert main([
            "search", str(index_dir), str(query_csv),
            "--tau", "0.2", "--topk", "3", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["k"] == 3
        scores = [h["joinability"] for h in payload["hits"]]
        assert scores == sorted(scores, reverse=True)

    def test_all_columns_json(self, index_dir, lake_dir, capsys):
        query_csv = lake_dir.parent / "query.csv"
        assert main([
            "search", str(index_dir), str(query_csv),
            "--all-columns", "--tau", "0.2", "--joinability", "0.2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "key" in payload["columns"]
        assert "hits" in payload["columns"]["key"]
        assert "distance_computations" in payload

    def test_json_schema_matches_server_response(self, index_dir, lake_dir):
        """The CLI payload and the HTTP /search payload share one shape."""
        import threading

        from repro.lake.csv_loader import load_csv
        from repro.serve.client import ServeClient
        from repro.serve.server import make_server

        query_csv = lake_dir.parent / "query.csv"
        server = make_server(index_dir, port=0, window_ms=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServeClient(server.url)
            values = load_csv(query_csv).column("key").values
            reply = client.search(values=values, tau=0.2, joinability=0.2)
        finally:
            server.shutdown()
            server.server_close()
        import io
        from contextlib import redirect_stdout

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            assert main([
                "search", str(index_dir), str(query_csv),
                "--tau", "0.2", "--joinability", "0.2", "--json",
            ]) == 0
        cli_payload = json.loads(buffer.getvalue())
        # server adds serving provenance on top of the shared schema
        # (timings always appear there — queue_wait at minimum)
        assert set(reply) == set(cli_payload) | {
            "generation", "cached", "timings"
        }
        assert reply["hits"] == cli_payload["hits"]


class TestServeCommand:
    def test_parser_accepts_serve(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "some_dir", "--port", "0", "--window-ms", "1.5",
            "--cache-size", "64",
        ])
        assert args.command == "serve"
        assert args.port == 0
        assert args.window_ms == 1.5

    def test_serve_missing_dir_fails(self, tmp_path, capsys):
        missing = tmp_path / "nothing"
        assert main(["serve", str(missing), "--port", "0"]) == 1
        assert capsys.readouterr().err.strip()


class TestPartitionedCli:
    """The sharded layout through the CLI: index --partitions, search
    --workers/--top-k/--partitions."""

    @pytest.fixture()
    def single_dir(self, lake_dir, tmp_path):
        out = tmp_path / "single"
        assert main(["index", str(lake_dir), str(out), "--dim", "32"]) == 0
        return out

    @pytest.fixture()
    def sharded_dir(self, lake_dir, tmp_path):
        out = tmp_path / "sharded"
        assert main([
            "index", str(lake_dir), str(out), "--dim", "32",
            "--partitions", "3",
        ]) == 0
        return out

    def test_partitioned_index_layout(self, sharded_dir):
        assert (sharded_dir / "partitioned.json").exists()
        assert (sharded_dir / "catalog.json").exists()
        assert len(list(sharded_dir.glob("partition_*/arrays_v3_*/vectors.npy"))) >= 1

    def _search_lines(self, capsys, index_dir, query_csv, *extra):
        assert main([
            "search", str(index_dir), str(query_csv),
            "--tau", "0.2", "--joinability", "0.2", *extra,
        ]) == 0
        return capsys.readouterr().out.strip().splitlines()

    def test_sharded_search_matches_single(self, single_dir, sharded_dir,
                                           lake_dir, capsys):
        query_csv = lake_dir.parent / "query.csv"
        single = self._search_lines(capsys, single_dir, query_csv)
        sharded = self._search_lines(capsys, sharded_dir, query_csv,
                                     "--workers", "2")
        assert sharded == single

    def test_repartitioned_search_matches_single(self, single_dir, lake_dir,
                                                 capsys):
        query_csv = lake_dir.parent / "query.csv"
        single = self._search_lines(capsys, single_dir, query_csv)
        repartitioned = self._search_lines(
            capsys, single_dir, query_csv,
            "--partitions", "3", "--workers", "2",
        )
        assert repartitioned == single

    def test_sharded_topk_matches_single(self, single_dir, sharded_dir,
                                         lake_dir, capsys):
        query_csv = lake_dir.parent / "query.csv"
        assert main([
            "search", str(single_dir), str(query_csv),
            "--tau", "0.2", "--top-k", "3",
        ]) == 0
        single = capsys.readouterr().out
        assert main([
            "search", str(sharded_dir), str(query_csv),
            "--tau", "0.2", "--top-k", "3", "--workers", "2",
        ]) == 0
        assert capsys.readouterr().out == single

    def test_all_columns_on_sharded_index(self, sharded_dir, lake_dir, capsys):
        query_csv = lake_dir.parent / "query.csv"
        assert main([
            "search", str(sharded_dir), str(query_csv),
            "--all-columns", "--workers", "2",
            "--tau", "0.2", "--joinability", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "[key]" in out and "query columns" in out

    def test_negative_partitions_rejected(self, single_dir, lake_dir, capsys,
                                          tmp_path):
        query_csv = lake_dir.parent / "query.csv"
        assert main([
            "search", str(single_dir), str(query_csv),
            "--tau", "0.2", "--partitions", "-3",
        ]) == 1
        assert "--partitions" in capsys.readouterr().err
        assert main([
            "index", str(lake_dir), str(tmp_path / "bad"),
            "--partitions", "0",
        ]) == 1
        assert "--partitions" in capsys.readouterr().err

    def test_partitions_ignored_on_sharded_dir(self, sharded_dir, lake_dir,
                                               capsys):
        query_csv = lake_dir.parent / "query.csv"
        assert main([
            "search", str(sharded_dir), str(query_csv),
            "--tau", "0.2", "--joinability", "0.2", "--partitions", "5",
        ]) == 0
        assert "--partitions ignored" in capsys.readouterr().err


class TestStatsCommand:
    def test_stats_output(self, lake_dir, capsys):
        assert main(["stats", str(lake_dir)]) == 0
        out = capsys.readouterr().out
        assert "# Tab.:" in out
        assert "# Vec.:" in out

    def test_stats_empty_dir(self, tmp_path, capsys):
        empty = tmp_path / "none"
        empty.mkdir()
        assert main(["stats", str(empty)]) == 1


class TestClusterCli:
    """The distributed tier through the CLI: cluster-coordinator /
    cluster-worker subcommands and `search --cluster URL`."""

    @pytest.fixture()
    def sharded_dir(self, lake_dir, tmp_path):
        out = tmp_path / "sharded"
        assert main([
            "index", str(lake_dir), str(out), "--dim", "32", "--partitions", "3",
        ]) == 0
        return out

    def test_parser_accepts_cluster_commands(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "cluster-coordinator", "some_dir", "--workers", "2",
            "--replication", "2", "--port", "0",
        ])
        assert args.command == "cluster-coordinator"
        assert args.workers == 2
        args = build_parser().parse_args([
            "cluster-worker", "some_dir", "--coordinator",
            "http://127.0.0.1:1", "--exact-counts",
        ])
        assert args.command == "cluster-worker"
        assert args.exact_counts is True

    def test_coordinator_requires_partitioned_dir(self, lake_dir, tmp_path,
                                                  capsys):
        single = tmp_path / "single"
        assert main(["index", str(lake_dir), str(single), "--dim", "32"]) == 0
        assert main([
            "cluster-coordinator", str(single), "--workers", "2", "--port", "0",
        ]) == 1
        assert "partitioned" in capsys.readouterr().err

    def test_worker_without_coordinator_fails(self, sharded_dir, capsys):
        # nothing listens on this port: joining must fail cleanly
        assert main([
            "cluster-worker", str(sharded_dir),
            "--coordinator", "http://127.0.0.1:9",
        ]) == 1
        assert "failed to join" in capsys.readouterr().err

    def test_search_cluster_matches_local(self, sharded_dir, lake_dir, capsys):
        """`search --cluster URL` == plain local `search`, via a real
        coordinator + worker pair on ephemeral ports."""
        from repro.cluster import LocalCluster

        query_csv = lake_dir.parent / "query.csv"
        assert main([
            "search", str(sharded_dir), str(query_csv),
            "--tau", "0.2", "--joinability", "0.2", "--json",
        ]) == 0
        local = json.loads(capsys.readouterr().out)

        with LocalCluster(sharded_dir, n_workers=2, replication=1) as cluster:
            assert main([
                "search", str(sharded_dir), str(query_csv),
                "--tau", "0.2", "--joinability", "0.2", "--json",
                "--cluster", cluster.url,
            ]) == 0
            remote = json.loads(capsys.readouterr().out)
            # human-readable mode prints the same hits with labels
            assert main([
                "search", str(sharded_dir), str(query_csv),
                "--tau", "0.2", "--joinability", "0.2",
                "--cluster", cluster.url,
            ]) == 0
            human = capsys.readouterr().out
        assert remote["hits"] == local["hits"]
        assert isinstance(remote["generation"], list)
        for hit in remote["hits"]:
            assert f"{hit['table']}.{hit['column']}" in human

    def test_search_cluster_topk(self, sharded_dir, lake_dir, capsys):
        from repro.cluster import LocalCluster

        query_csv = lake_dir.parent / "query.csv"
        with LocalCluster(sharded_dir, n_workers=2, replication=1) as cluster:
            assert main([
                "search", str(sharded_dir), str(query_csv),
                "--tau", "0.2", "--topk", "3", "--json",
                "--cluster", cluster.url,
            ]) == 0
            payload = json.loads(capsys.readouterr().out)
        scores = [h["joinability"] for h in payload["hits"]]
        assert scores == sorted(scores, reverse=True)
        assert len(payload["hits"]) <= 3

    def test_search_cluster_rejects_all_columns(self, sharded_dir, lake_dir,
                                                capsys):
        query_csv = lake_dir.parent / "query.csv"
        assert main([
            "search", str(sharded_dir), str(query_csv),
            "--all-columns", "--cluster", "http://127.0.0.1:9",
        ]) == 1
        assert "--all-columns" in capsys.readouterr().err

    def test_search_cluster_unreachable_fails_cleanly(self, sharded_dir,
                                                      lake_dir, capsys):
        query_csv = lake_dir.parent / "query.csv"
        assert main([
            "search", str(sharded_dir), str(query_csv),
            "--tau", "0.2", "--cluster", "http://127.0.0.1:9",
        ]) == 1
        assert "cluster request failed" in capsys.readouterr().err
