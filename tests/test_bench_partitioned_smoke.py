"""CI-size smoke test for the partitioned-search benchmark.

Runs ``benchmarks/bench_partitioned.py``'s comparison harness on a tiny
lake (seconds, not minutes) to keep the benchmark importable and its
parity checks — parallel shard engine == sequential per-partition loop,
sharded top-k == single-index top-k — exercised in every test run. The
≥2x speedup claim is asserted at full benchmark scale (`pytest
benchmarks/`) and in the CI bench-smoke job (`python
benchmarks/bench_partitioned.py`), where timings are meaningful.
"""

import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def bench_module():
    sys.path.insert(0, str(BENCHMARKS))
    try:
        import bench_partitioned

        yield bench_partitioned
    finally:
        sys.path.remove(str(BENCHMARKS))


def test_partitioned_comparison_runs_at_ci_size(bench_module):
    from common import make_dataset

    dataset = make_dataset(
        "smoke",
        n_tables=16,
        rows_range=(6, 14),
        dim=12,
        n_entities=40,
        n_queries=1,
        query_rows=8,
        seed=3,
    )
    out = bench_module.run_partitioned_comparison(
        dataset,
        n_queries=6,
        query_rows=8,
        n_partitions=4,
        max_workers=2,
        n_pivots=2,
        levels=2,
        topk_k=3,
    )
    # run_partitioned_comparison asserts parallel == sequential and
    # sharded top-k == single-index top-k internally; here we check the
    # report shape the benchmark table consumes.
    assert out["n_queries"] == 6
    assert out["n_partitions"] >= 1
    assert out["seq_seconds"] > 0 and out["par_seconds"] > 0
    assert out["seq_hits"] == out["par_hits"]
    assert out["speedup"] > 0
