"""Tests for the product-quantization baseline (PQ)."""

import numpy as np
import pytest

from repro.baselines.pq import (
    PQRangeIndex,
    ProductQuantizer,
    build_pq_index,
    calibrate_radius_scale,
    pq_search,
)
from repro.core.metric import EuclideanMetric, normalize_rows


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(0)
    centers = normalize_rows(rng.normal(size=(10, 8)))
    data = centers[rng.choice(10, size=300)] + rng.normal(scale=0.05, size=(300, 8))
    return normalize_rows(data)


class TestProductQuantizer:
    def test_codes_shape_and_range(self, points):
        pq = ProductQuantizer(n_subspaces=4, n_centroids=16).fit(points)
        codes = pq.encode(points)
        assert codes.shape == (300, 4)
        assert codes.max() < 16

    def test_reconstruction_error_reasonable(self, points):
        """ADC distance of a vector to itself must be small on clusterable data."""
        pq = ProductQuantizer(n_subspaces=4, n_centroids=32).fit(points)
        codes = pq.encode(points)
        self_distances = [
            pq.approximate_distances(points[i], codes[i : i + 1])[0] for i in range(20)
        ]
        assert float(np.mean(self_distances)) < 0.3

    def test_adc_approximates_true_distance(self, points):
        pq = ProductQuantizer(n_subspaces=4, n_centroids=32).fit(points)
        codes = pq.encode(points)
        metric = EuclideanMetric()
        q = points[0]
        approx = pq.approximate_distances(q, codes)
        exact = metric.distances_to(q, points)
        # mean absolute error well below the data scale
        assert float(np.mean(np.abs(approx - exact))) < 0.25

    def test_more_centroids_reduce_error(self, points):
        q = points[1]
        errors = []
        for ks in (4, 64):
            pq = ProductQuantizer(n_subspaces=4, n_centroids=ks).fit(points)
            codes = pq.encode(points)
            approx = pq.approximate_distances(q, codes)
            exact = EuclideanMetric().distances_to(q, points)
            errors.append(float(np.mean(np.abs(approx - exact))))
        assert errors[1] <= errors[0]

    @pytest.mark.parametrize("bad", [dict(n_subspaces=0), dict(n_centroids=0), dict(n_centroids=300)])
    def test_invalid_params(self, bad):
        with pytest.raises(ValueError):
            ProductQuantizer(**bad)

    def test_more_subspaces_than_dims(self, points):
        with pytest.raises(ValueError):
            ProductQuantizer(n_subspaces=16).fit(points[:, :4])


class TestRangeIndex:
    def test_range_query_is_approximate_but_nonempty(self, points):
        index = PQRangeIndex(points, ProductQuantizer(4, 32).fit(points))
        hits = index.range_query(points[0], 0.3)
        assert len(hits) > 0

    def test_radius_scale_grows_results(self, points):
        pq = ProductQuantizer(4, 32).fit(points)
        narrow = PQRangeIndex(points, pq, radius_scale=0.5)
        wide = PQRangeIndex(points, pq, radius_scale=2.0)
        q = points[5]
        assert len(wide.range_query(q, 0.3)) >= len(narrow.range_query(q, 0.3))

    def test_memory_smaller_than_raw(self, points):
        index = PQRangeIndex(points, ProductQuantizer(4, 16).fit(points))
        assert index.memory_bytes() < points.nbytes


class TestCalibration:
    def test_reaches_target_recall(self, points):
        index = PQRangeIndex(points, ProductQuantizer(4, 16).fit(points))
        queries = points[:15]
        tau = 0.3
        scale = calibrate_radius_scale(index, queries, tau, target_recall=0.85)
        index.radius_scale = scale
        metric = EuclideanMetric()
        found = total = 0
        for q in queries:
            truth = set(np.nonzero(metric.distances_to(q, points) <= tau)[0].tolist())
            hits = set(index.range_query(q, tau).tolist())
            found += len(hits & truth)
            total += len(truth)
        assert found / total >= 0.80  # binary-search resolution slack

    def test_higher_target_needs_no_smaller_scale(self, points):
        index = PQRangeIndex(points, ProductQuantizer(4, 16).fit(points))
        queries = points[:10]
        s75 = calibrate_radius_scale(index, queries, 0.3, 0.75)
        s95 = calibrate_radius_scale(index, queries, 0.3, 0.95)
        assert s95 >= s75

    def test_invalid_target(self, points):
        index = PQRangeIndex(points, ProductQuantizer(4, 16).fit(points))
        with pytest.raises(ValueError):
            calibrate_radius_scale(index, points[:3], 0.3, 0.0)


class TestPqSearch:
    def test_search_runs_and_returns_result(self, small_columns, small_query):
        result = pq_search(small_columns, small_query, 0.8, 0.3)
        assert result.t_count >= 1
        assert all(hit.column_id < len(small_columns) for hit in result.joinable)

    def test_prebuilt_index(self, small_columns, small_query):
        index, col_of_row = build_pq_index(small_columns, n_subspaces=4, n_centroids=16)
        result = pq_search(
            small_columns, small_query, 0.8, 0.3, index=index, column_of_row=col_of_row
        )
        assert isinstance(result.column_ids, list)
