"""Tests for the PEXESO-H baseline."""

import numpy as np
import pytest

from repro.baselines.exact_naive import naive_search
from repro.baselines.pexeso_h import pexeso_h_search
from repro.core.index import PexesoIndex
from repro.core.search import pexeso_search


@pytest.fixture(scope="module")
def index(small_columns):
    return PexesoIndex.build(small_columns, n_pivots=3, levels=3)


class TestExactness:
    @pytest.mark.parametrize("tau", [0.2, 0.6, 1.1])
    @pytest.mark.parametrize("T", [0.2, 0.5, 0.9])
    def test_matches_naive(self, index, small_columns, small_query, tau, T):
        got = pexeso_h_search(index, small_query, tau, T).column_ids
        want = naive_search(small_columns, small_query, tau, T).column_ids
        assert got == want

    def test_matches_pexeso(self, index, small_query):
        for tau in (0.3, 0.9):
            assert (
                pexeso_h_search(index, small_query, tau, 0.3).column_ids
                == pexeso_search(index, small_query, tau, 0.3).column_ids
            )


class TestWorkComparison:
    def test_h_does_more_distance_work_than_pexeso(self, clustered_columns):
        """Fig. 6a: PEXESO-H's naive verification computes more distances."""
        index = PexesoIndex.build(clustered_columns, n_pivots=4, levels=4)
        query = clustered_columns[0]
        h_stats = pexeso_h_search(index, query, 0.12, 0.5).stats
        p_stats = pexeso_search(index, query, 0.12, 0.5).stats
        assert h_stats.distance_computations >= p_stats.distance_computations

    def test_h_beats_naive(self, clustered_columns):
        index = PexesoIndex.build(clustered_columns, n_pivots=4, levels=4)
        query = clustered_columns[0]
        h_stats = pexeso_h_search(index, query, 0.12, 0.5).stats
        n_stats = naive_search(clustered_columns, query, 0.12, 0.5).stats
        assert h_stats.distance_computations < n_stats.distance_computations


class TestValidation:
    def test_unbuilt_index_raises(self, small_query):
        with pytest.raises(RuntimeError):
            pexeso_h_search(PexesoIndex(), small_query, 0.5, 0.5)
