"""Tests for the naive exhaustive oracle itself."""

import numpy as np
import pytest

from repro.baselines.exact_naive import naive_search
from repro.core.metric import EuclideanMetric, normalize_rows


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    columns = [normalize_rows(rng.normal(size=(10, 5))) for _ in range(8)]
    query = normalize_rows(rng.normal(size=(6, 5)))
    return columns, query


class TestNaive:
    def test_counts_by_definition(self, setup):
        """Hand-rolled joinability definition must agree."""
        columns, query = setup
        metric = EuclideanMetric()
        tau = 0.9
        result = naive_search(columns, query, tau, 0.2)
        for hit in result.joinable:
            count = 0
            for q in query:
                if any(metric.distance(q, x) <= tau for x in columns[hit.column_id]):
                    count += 1
            assert hit.match_count == count
            assert hit.joinability == pytest.approx(count / len(query))

    def test_self_column_is_joinable(self, setup):
        columns, _ = setup
        result = naive_search(columns, columns[2], 1e-6, 1.0)
        assert 2 in result.column_ids

    def test_impossible_threshold_empty(self, setup):
        columns, query = setup
        assert naive_search(columns, query, 1e-9, 1.0).column_ids == []

    def test_early_accept_same_answer(self, setup):
        columns, query = setup
        eager = naive_search(columns, query, 0.8, 0.3, early_accept=True)
        lazy = naive_search(columns, query, 0.8, 0.3, early_accept=False)
        assert eager.column_ids == lazy.column_ids

    def test_early_accept_computes_fewer_distances(self, setup):
        columns, query = setup
        eager = naive_search(columns, query, 1.8, 0.2, early_accept=True)
        lazy = naive_search(columns, query, 1.8, 0.2, early_accept=False)
        assert eager.stats.distance_computations <= lazy.stats.distance_computations

    def test_distance_count_without_early_accept(self, setup):
        columns, query = setup
        result = naive_search(columns, query, 0.5, 0.5)
        expected = len(query) * sum(c.shape[0] for c in columns)
        assert result.stats.distance_computations == expected

    def test_t_count_conversion(self, setup):
        columns, query = setup
        result = naive_search(columns, query, 0.5, 0.5)
        assert result.t_count == 3  # ceil(0.5 * 6)
