"""Tests for the string-similarity join baselines (Tables IV/V)."""

import pytest

from repro.baselines.string_joins import (
    edit_join_search,
    equi_join_search,
    fuzzy_join_search,
    jaccard_join_search,
    tfidf_join_search,
)

QUERY = ["mario party", "zelda quest", "metroid fusion", "pokemon red"]

COLUMNS = [
    # 0: exact matches for 3/4 query values
    ["mario party", "zelda quest", "metroid fusion", "tetris"],
    # 1: misspelled variants (no exact matches)
    ["mario partu", "zelda qest", "metroid fusoin", "tetris"],
    # 2: unrelated
    ["halo", "doom", "quake", "myst"],
    # 3: token-overlapping variants
    ["party mario", "quest zelda", "fusion metroid", "red pokemon"],
]


class TestEquiJoin:
    def test_exact_matches_only(self):
        result = equi_join_search(COLUMNS, QUERY, joinability=0.5)
        assert result.column_ids == [0]

    def test_match_count(self):
        result = equi_join_search(COLUMNS, QUERY, joinability=0.5)
        assert result.joinable[0].match_count == 3

    def test_high_threshold_excludes(self):
        assert equi_join_search(COLUMNS, QUERY, joinability=1.0).column_ids == []

    def test_duplicates_in_query_counted_independently(self):
        result = equi_join_search([["a", "b"]], ["a", "a", "z"], joinability=0.5)
        assert result.joinable[0].match_count == 2


class TestEditJoin:
    def test_recovers_misspellings(self):
        result = edit_join_search(COLUMNS, QUERY, joinability=0.5, theta=0.8)
        assert 0 in result.column_ids
        assert 1 in result.column_ids
        assert 2 not in result.column_ids

    def test_strict_theta_reduces_matches(self):
        loose = edit_join_search(COLUMNS, QUERY, 0.5, theta=0.7)
        strict = edit_join_search(COLUMNS, QUERY, 0.5, theta=0.99)
        assert set(strict.column_ids) <= set(loose.column_ids)


class TestJaccardJoin:
    def test_token_reorder_matches(self):
        result = jaccard_join_search(COLUMNS, QUERY, joinability=0.5, theta=0.9)
        assert 3 in result.column_ids  # same tokens, different order
        assert 1 not in result.column_ids  # different tokens entirely

    def test_exact_also_matches(self):
        result = jaccard_join_search(COLUMNS, QUERY, joinability=0.5, theta=0.9)
        assert 0 in result.column_ids


class TestFuzzyJoin:
    def test_recovers_token_level_typos(self):
        result = fuzzy_join_search(COLUMNS, QUERY, joinability=0.5, theta=0.6, delta=0.75)
        assert 0 in result.column_ids
        assert 1 in result.column_ids
        assert 3 in result.column_ids
        assert 2 not in result.column_ids


class TestTfidfJoin:
    def test_matches_exact_and_reordered(self):
        result = tfidf_join_search(COLUMNS, QUERY, joinability=0.5, theta=0.8)
        assert 0 in result.column_ids
        assert 3 in result.column_ids
        assert 2 not in result.column_ids


class TestRecallOrdering:
    def test_semantic_blindspot_of_all_string_methods(self):
        """Synonyms defeat every string matcher — the paper's motivation."""
        synonym_column = [["pacific islander", "mainland indigenous"]]
        query = ["hawaiian guamanian samoan", "american indian alaska native"]
        for search, kwargs in [
            (equi_join_search, {}),
            (jaccard_join_search, dict(theta=0.5)),
            (edit_join_search, dict(theta=0.7)),
            (fuzzy_join_search, dict(theta=0.4)),
            (tfidf_join_search, dict(theta=0.5)),
        ]:
            result = search(synonym_column, query, joinability=0.5, **kwargs)
            assert result.column_ids == [], search.__name__
