"""Tests for the cover-tree baseline (CTREE)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cover_tree import CoverTree, build_ctree_index, ctree_search
from repro.baselines.exact_naive import naive_search
from repro.core.metric import EuclideanMetric, normalize_rows


@pytest.fixture(scope="module")
def points():
    return normalize_rows(np.random.default_rng(0).normal(size=(150, 5)))


class TestRangeQuery:
    @pytest.mark.parametrize("radius", [0.05, 0.3, 0.8, 1.5, 2.0])
    def test_matches_brute_force(self, points, radius):
        tree = CoverTree(points)
        metric = EuclideanMetric()
        rng = np.random.default_rng(1)
        for _ in range(10):
            q = normalize_rows(rng.normal(size=(1, 5)))[0]
            got = sorted(tree.range_query(q, radius))
            want = sorted(np.nonzero(metric.distances_to(q, points) <= radius)[0].tolist())
            assert got == want

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), radius=st.floats(0.01, 2.0))
    def test_property_matches_brute_force(self, points, seed, radius):
        tree = CoverTree(points)
        q = normalize_rows(np.random.default_rng(seed).normal(size=(1, 5)))[0]
        got = sorted(tree.range_query(q, radius))
        want = sorted(
            np.nonzero(EuclideanMetric().distances_to(q, points) <= radius)[0].tolist()
        )
        assert got == want

    def test_query_point_in_tree(self, points):
        tree = CoverTree(points)
        hits = tree.range_query(points[42], 1e-9)
        assert 42 in hits

    def test_duplicate_points_all_returned(self):
        dup = np.tile([[1.0, 0.0]], (5, 1))
        tree = CoverTree(dup)
        assert sorted(tree.range_query(np.array([1.0, 0.0]), 0.1)) == [0, 1, 2, 3, 4]

    def test_empty_tree(self):
        tree = CoverTree(np.zeros((0, 3)))
        assert tree.range_query(np.zeros(3), 1.0) == []

    def test_single_point(self):
        tree = CoverTree(np.array([[0.5, 0.5]]))
        assert tree.range_query(np.array([0.5, 0.5]), 0.1) == [0]
        assert tree.range_query(np.array([5.0, 5.0]), 0.1) == []

    def test_memory_bytes(self, points):
        assert CoverTree(points).memory_bytes() > 0

    def test_counts_distances(self, points):
        tree = CoverTree(points)
        before = tree.stats.distance_computations
        tree.range_query(points[0], 0.5)
        assert tree.stats.distance_computations > before


class TestCtreeSearch:
    def test_matches_naive(self, small_columns, small_query):
        for tau in (0.3, 0.8):
            for T in (0.2, 0.5):
                got = ctree_search(small_columns, small_query, tau, T).column_ids
                want = naive_search(small_columns, small_query, tau, T).column_ids
                assert got == want

    def test_prebuilt_index_reused(self, small_columns, small_query):
        tree, col_of_row = build_ctree_index(small_columns)
        got = ctree_search(
            small_columns, small_query, 0.7, 0.3, tree=tree, column_of_row=col_of_row
        ).column_ids
        want = naive_search(small_columns, small_query, 0.7, 0.3).column_ids
        assert got == want
