"""Tests for the extreme-pivot-table baseline (EPT)."""

import numpy as np
import pytest

from repro.baselines.ept import ExtremePivotTable, build_ept_index, ept_search
from repro.baselines.exact_naive import naive_search
from repro.core.metric import EuclideanMetric, normalize_rows


@pytest.fixture(scope="module")
def points():
    return normalize_rows(np.random.default_rng(0).normal(size=(120, 6)))


class TestRangeQuery:
    @pytest.mark.parametrize("radius", [0.05, 0.4, 1.0, 1.9])
    def test_matches_brute_force(self, points, radius):
        table = ExtremePivotTable(points, n_pivots=4)
        metric = EuclideanMetric()
        rng = np.random.default_rng(2)
        for _ in range(10):
            q = normalize_rows(rng.normal(size=(1, 6)))[0]
            got = sorted(table.range_query(q, radius).tolist())
            want = sorted(np.nonzero(metric.distances_to(q, points) <= radius)[0].tolist())
            assert got == want

    def test_single_pivot_still_exact(self, points):
        table = ExtremePivotTable(points, n_pivots=1)
        q = points[3]
        got = sorted(table.range_query(q, 0.5).tolist())
        want = sorted(
            np.nonzero(EuclideanMetric().distances_to(q, points) <= 0.5)[0].tolist()
        )
        assert got == want

    def test_more_pivots_than_points(self):
        small = normalize_rows(np.random.default_rng(3).normal(size=(3, 4)))
        table = ExtremePivotTable(small, n_pivots=10)
        assert table.pivots.shape[0] <= 3

    def test_table_shape(self, points):
        table = ExtremePivotTable(points, n_pivots=5)
        assert table.table.shape == (120, 5)

    def test_table_entries_are_distances(self, points):
        table = ExtremePivotTable(points, n_pivots=3)
        metric = EuclideanMetric()
        for j, pivot in enumerate(table.pivots):
            np.testing.assert_allclose(
                table.table[:, j], metric.distances_to(pivot, points), atol=1e-6
            )

    def test_memory_bytes(self, points):
        assert ExtremePivotTable(points, n_pivots=3).memory_bytes() > 0

    def test_filter_reduces_verifications(self, points):
        """With a small radius most points must be pruned before exact check."""
        table = ExtremePivotTable(points, n_pivots=5)
        stats_before = table.stats.distance_computations
        table.range_query(points[0], 0.1)
        used = table.stats.distance_computations - stats_before
        # pivots + survivors; must be far fewer than checking all 120
        assert used < 60


class TestEptSearch:
    def test_matches_naive(self, small_columns, small_query):
        for tau in (0.3, 0.8):
            for T in (0.2, 0.5):
                got = ept_search(small_columns, small_query, tau, T).column_ids
                want = naive_search(small_columns, small_query, tau, T).column_ids
                assert got == want

    def test_prebuilt_index_reused(self, small_columns, small_query):
        table, col_of_row = build_ept_index(small_columns, n_pivots=4)
        got = ept_search(
            small_columns, small_query, 0.7, 0.3, table=table, column_of_row=col_of_row
        ).column_ids
        want = naive_search(small_columns, small_query, 0.7, 0.3).column_ids
        assert got == want
