"""CI-size smoke test for the cluster benchmark.

Runs ``benchmarks/bench_cluster.py``'s comparison harness on a tiny lake
with real worker processes, so the benchmark stays importable and its
exactness check — every scatter-gathered reply equal hit-for-hit to
single-node search — runs in every test pass. The >= 2x scaling claim
is asserted at full benchmark scale (``pytest benchmarks/``) and in the
CI cluster job (``python benchmarks/bench_cluster.py``), where the
machine has the cores to show it.
"""

import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def bench_module():
    sys.path.insert(0, str(BENCHMARKS))
    try:
        import bench_cluster

        yield bench_cluster
    finally:
        sys.path.remove(str(BENCHMARKS))


def test_cluster_comparison_runs_at_ci_size(bench_module, tmp_path):
    from common import make_dataset

    dataset = make_dataset(
        "smoke",
        n_tables=16,
        rows_range=(6, 14),
        dim=12,
        n_entities=40,
        n_queries=1,
        query_rows=8,
        seed=9,
    )
    out = bench_module.run_cluster_comparison(
        dataset,
        n_partitions=4,
        worker_counts=(1, 2),
        n_clients=2,
        requests_per_client=2,
        n_pivots=2,
        levels=2,
        mode="process",
        lake_dir=tmp_path,
    )
    # run_cluster_comparison asserts every cluster reply == single-node
    # search internally; here we check the report shape.
    assert out["n_requests"] == 4
    assert set(out["seconds"]) == {1, 2}
    assert all(s > 0 for s in out["seconds"].values())
    assert out["speedup"] > 0
