"""Regression tests for the PR 8 serving/resilience bugfix sweep.

Three latent bugs, one test class each:

* empty partition subsets (``parts=[]``) used to normalize to ``()``
  and come back as a plausible-looking "no matches" — the service now
  raises ``ValueError`` and the HTTP server answers 400;
* the micro-batcher's per-request error-isolation fallback caught
  ``BaseException``, so a ``KeyboardInterrupt`` during re-dispatch was
  stored as one request's error instead of killing the dispatch;
* (``LatencyTracker.quantile``'s nearest-rank off-by-one is pinned in
  ``tests/cluster/test_resilience.py`` next to the tracker's other
  tests.)
"""

import threading

import numpy as np
import pytest

from repro.core.index import PexesoIndex
from repro.core.metric import normalize_rows
from repro.core.out_of_core import PartitionedPexeso
from repro.serve.client import ServeClient, ServeError
from repro.serve.coalescer import PendingRequest
from repro.serve.server import make_server
from repro.serve.service import QueryService


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(31)
    return [
        normalize_rows(rng.normal(size=(int(rng.integers(5, 12)), 6)))
        for _ in range(12)
    ]


@pytest.fixture()
def partitioned_service(columns):
    lake = PartitionedPexeso(n_pivots=2, levels=2, n_partitions=3).fit(columns)
    return QueryService(lake, window_ms=0, cache_size=0)


class TestEmptyPartsRejected:
    def test_service_raises_value_error(self, partitioned_service, columns):
        with pytest.raises(ValueError, match="at least one partition"):
            partitioned_service.search(columns[0][:4], 0.5, 0.3, parts=[])

    def test_topk_raises_too(self, partitioned_service, columns):
        with pytest.raises(ValueError, match="at least one partition"):
            partitioned_service.topk(columns[0][:4], 0.5, 2, parts=[])

    def test_non_empty_parts_still_work(self, partitioned_service, columns):
        response = partitioned_service.search(
            columns[0][:4], 0.5, 0.3, parts=[0, 1, 2]
        )
        assert response.result is not None

    def test_http_answers_400(self, columns):
        lake = PartitionedPexeso(n_pivots=2, levels=2, n_partitions=3).fit(columns)
        service = QueryService(lake, window_ms=0, cache_size=0)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServeClient(server.url)
            with pytest.raises(ServeError) as excinfo:
                client.search(
                    vectors=columns[0][:4], tau=0.5, joinability=0.3, parts=[]
                )
            assert excinfo.value.status == 400
        finally:
            server.shutdown()
            server.server_close()


class TestBatcherErrorIsolation:
    def make_service(self, columns):
        index = PexesoIndex.build(columns, n_pivots=2, levels=2)
        return QueryService(index, window_ms=5.0, cache_size=0)

    def test_keyboard_interrupt_escapes_the_fallback(self, columns):
        """A control-flow exception during per-request re-dispatch must
        propagate, not be swallowed into ``request.error``."""
        service = self.make_service(columns)
        calls = {"n": 0}
        real_search_many = service.searcher.search_many

        def flaky_search_many(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("batch-level failure, triggers re-dispatch")
            raise KeyboardInterrupt()

        service.searcher.search_many = flaky_search_many
        try:
            request = PendingRequest((columns[0][:4], 0.5, 0.3))
            with pytest.raises(KeyboardInterrupt):
                service._execute_batch([request])
            assert request.error is None
        finally:
            service.searcher.search_many = real_search_many

    def test_plain_errors_stay_per_request(self, columns):
        """The isolation the fallback exists for: an ``Exception`` during
        re-dispatch lands on the failing request only."""
        service = self.make_service(columns)
        calls = {"n": 0}
        real_search_many = service.searcher.search_many

        def flaky_search_many(queries, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("batch-level failure")
            if calls["n"] == 2:
                raise ValueError("this request alone is broken")
            return real_search_many(queries, *args, **kwargs)

        service.searcher.search_many = flaky_search_many
        try:
            bad = PendingRequest((columns[0][:4], 0.5, 0.3))
            good = PendingRequest((columns[1][:4], 0.5, 0.3))
            service._execute_batch([bad, good])
            assert isinstance(bad.error, ValueError)
            assert good.error is None
            assert good.payload is not None
        finally:
            service.searcher.search_many = real_search_many
