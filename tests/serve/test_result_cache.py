"""Tests for the generation-stamped LRU result cache."""

import numpy as np
import pytest

from repro.serve.cache import ResultCache, query_cache_key


@pytest.fixture
def query():
    return np.random.default_rng(0).normal(size=(5, 4))


class TestQueryCacheKey:
    def test_same_query_same_key(self, query):
        assert query_cache_key("search", query, 0.5, 0.6) == query_cache_key(
            "search", query.copy(), 0.5, 0.6
        )

    def test_kind_and_params_disambiguate(self, query):
        base = query_cache_key("search", query, 0.5, 0.6)
        assert query_cache_key("topk", query, 0.5, 0.6) != base
        assert query_cache_key("search", query, 0.4, 0.6) != base
        assert query_cache_key("search", query, 0.5, 0.7) != base

    def test_different_content_different_key(self, query):
        other = query.copy()
        other[0, 0] += 1.0
        assert query_cache_key("search", query) != query_cache_key("search", other)

    def test_shape_guard(self):
        flat = np.zeros(6)
        reshaped = np.zeros((2, 3))
        assert query_cache_key("search", flat) != query_cache_key("search", reshaped)

    def test_key_is_hashable(self, query):
        hash(query_cache_key("search", query, 0.5, 0.6, True))


class TestResultCache:
    def test_hit_round_trip(self):
        cache = ResultCache(capacity=4)
        cache.put(("a",), "value", generation=3)
        entry = cache.get(("a",), generation=3)
        assert entry is not None
        assert entry.value == "value"
        assert entry.generation == 3

    def test_generation_mismatch_is_miss_and_drops(self):
        cache = ResultCache(capacity=4)
        cache.put(("a",), "old", generation=1)
        assert cache.get(("a",), generation=2) is None
        assert len(cache) == 0  # stale entry dropped eagerly

    def test_absent_key_is_miss(self):
        cache = ResultCache(capacity=4)
        assert cache.get(("nope",), generation=0) is None

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put(("a",), 1, 0)
        cache.put(("b",), 2, 0)
        assert cache.get(("a",), 0) is not None  # refresh a
        cache.put(("c",), 3, 0)  # evicts b
        assert cache.get(("b",), 0) is None
        assert cache.get(("a",), 0) is not None
        assert cache.get(("c",), 0) is not None

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put(("a",), 1, 0)
        assert len(cache) == 0
        assert cache.get(("a",), 0) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_clear(self):
        cache = ResultCache(capacity=4)
        cache.put(("a",), 1, 0)
        cache.clear()
        assert len(cache) == 0


class TestStaleStragglerPut:
    """A slow in-flight search finishing after a mutation must not
    replace a fresher cached result with its stale one."""

    def test_older_generation_put_is_dropped(self):
        cache = ResultCache(capacity=4)
        cache.put(("k",), "post-mutation result", generation=2)
        # The straggler computed against generation 1 finishes late.
        cache.put(("k",), "stale result", generation=1)
        hit = cache.get(("k",), generation=2)
        assert hit is not None and hit.value == "post-mutation result"

    def test_equal_generation_put_replaces(self):
        cache = ResultCache(capacity=4)
        cache.put(("k",), "first", generation=3)
        cache.put(("k",), "second", generation=3)
        assert cache.get(("k",), generation=3).value == "second"

    def test_newer_generation_put_replaces(self):
        cache = ResultCache(capacity=4)
        cache.put(("k",), "old", generation=1)
        cache.put(("k",), "new", generation=2)
        assert cache.get(("k",), generation=2).value == "new"
        assert cache.get(("k",), generation=1) is None

    def test_dropped_straggler_does_not_refresh_lru_order(self):
        cache = ResultCache(capacity=2)
        cache.put(("a",), 1, generation=5)
        cache.put(("b",), 2, generation=5)
        cache.put(("a",), 0, generation=4)  # dropped straggler
        cache.put(("c",), 3, generation=5)  # evicts the true LRU: "a"
        assert cache.get(("a",), generation=5) is None
        assert cache.get(("b",), generation=5).value == 2
        assert cache.get(("c",), generation=5).value == 3
