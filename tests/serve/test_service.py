"""Tests for the resident QueryService (locking, caching, generations)."""

import threading

import numpy as np
import pytest

from repro.core.index import PexesoIndex
from repro.core.metric import normalize_rows
from repro.core.out_of_core import LakeSearcher, PartitionedPexeso
from repro.core.search import pexeso_search
from repro.core.topk import pexeso_topk
from repro.serve.service import QueryService, RWLock


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(7)
    return [
        normalize_rows(rng.normal(size=(int(rng.integers(5, 15)), 6)))
        for _ in range(24)
    ]


@pytest.fixture(scope="module")
def query(columns):
    return columns[5][:8]


@pytest.fixture
def index(columns):
    return PexesoIndex.build(columns, n_pivots=3, levels=3)


@pytest.fixture
def service(index):
    return QueryService(index, window_ms=0, cache_size=32, exact_counts=True)


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        lock.acquire_read()
        lock.acquire_read()
        lock.release_read()
        lock.release_read()

    def test_writer_excludes_reader(self):
        lock = RWLock()
        order = []
        lock.acquire_write()

        def reader():
            with lock.read():
                order.append("read")

        t = threading.Thread(target=reader)
        t.start()
        t.join(timeout=0.05)
        assert order == []  # reader blocked behind the writer
        order.append("write-done")
        lock.release_write()
        t.join(timeout=2)
        assert order == ["write-done", "read"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        states = []

        def writer():
            with lock.write():
                states.append("wrote")

        def late_reader():
            with lock.read():
                states.append("late-read")

        wt = threading.Thread(target=writer)
        wt.start()
        import time

        time.sleep(0.02)  # let the writer start waiting
        rt = threading.Thread(target=late_reader)
        rt.start()
        rt.join(timeout=0.05)
        assert states == []  # late reader queued behind the waiting writer
        lock.release_read()
        wt.join(timeout=2)
        rt.join(timeout=2)
        assert states == ["wrote", "late-read"]


class TestServing:
    def test_search_matches_sequential_oracle(self, service, index, columns, query):
        response = service.search(query, 0.6, 0.3)
        want = pexeso_search(index, query, 0.6, 0.3, exact_counts=True)
        got = [(h.column_id, h.match_count) for h in response.result.joinable]
        expect = [(h.column_id, h.match_count) for h in want.joinable]
        assert got == expect
        assert response.generation == 0
        assert response.cached is False

    def test_cache_hit_and_counters_are_exact_ints(self, service, query):
        first = service.search(query, 0.6, 0.3)
        second = service.search(query, 0.6, 0.3)
        assert second.cached is True
        assert second.result is first.result  # replayed object
        stats = service.snapshot_stats()
        assert stats.cache_hits == 1
        assert stats.cache_misses == 1
        assert isinstance(stats.cache_hits, int)
        assert isinstance(stats.cache_misses, int)
        assert all(isinstance(n, int) for n in stats.coalesced_batch_sizes)
        assert list(stats.coalesced_batch_sizes).count(1) == 1  # one real dispatch

    def test_cache_distinguishes_joinability_int_vs_float(self, service, query):
        """joinability=1 (absolute count) and 1.0 (100% fraction) hash the
        same in Python but mean different searches — the cache key must
        keep them apart."""
        strict = service.search(query, 0.6, 1.0)  # all |Q| rows must match
        loose = service.search(query, 0.6, 1)  # any one row suffices
        assert loose.cached is False  # no key collision with the strict entry
        assert loose.result.t_count == 1
        assert strict.result.t_count == query.shape[0]
        assert set(strict.result.column_ids) <= set(loose.result.column_ids)

    def test_mutation_bumps_generation_and_invalidates_cache(
        self, service, columns, query
    ):
        service.search(query, 0.6, 0.3)
        column_id, generation = service.add_column(query)
        assert generation == 1
        response = service.search(query, 0.6, 0.3)
        assert response.cached is False  # generation bump invalidated the entry
        assert response.generation == 1
        assert column_id in response.result.column_ids

        assert service.delete_column(column_id) == 2
        after = service.search(query, 0.6, 0.3)
        assert after.generation == 2
        assert column_id not in after.result.column_ids
        with pytest.raises(KeyError):
            service.delete_column(column_id)

    def test_topk_served_and_cached(self, service, index, query):
        response = service.topk(query, 0.6, 5)
        want = pexeso_topk(index, query, 0.6, 5)
        assert response.result.hits == want.hits
        again = service.topk(query, 0.6, 5)
        assert again.cached is True

    def test_coalesced_concurrent_requests_share_one_dispatch(self, index, columns):
        service = QueryService(index, window_ms=20.0, cache_size=0,
                               exact_counts=True)
        gate = threading.Barrier(10)
        responses = [None] * 10

        def client(i):
            gate.wait()
            responses[i] = service.search(columns[i][:6], 0.6, 0.3)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = service.snapshot_stats()
        assert sum(stats.coalesced_batch_sizes) == 10
        assert max(stats.coalesced_batch_sizes) > 1
        for i, response in enumerate(responses):
            want = pexeso_search(index, columns[i][:6], 0.6, 0.3,
                                 exact_counts=True)
            got = [(h.column_id, h.match_count) for h in response.result.joinable]
            assert got == [(h.column_id, h.match_count) for h in want.joinable]

    def test_no_coalescing_mode(self, index, query):
        service = QueryService(index, window_ms=None, cache_size=0)
        assert service.coalescing_enabled is False
        response = service.search(query, 0.6, 0.3)
        assert response.generation == 0
        stats = service.snapshot_stats()
        # serial dispatch must not report "coalesced" work
        assert stats.coalesced_batch_sizes == []

    def test_invalid_query_rejected_before_dispatch(self, service):
        with pytest.raises(ValueError):
            service.search(np.empty((0, 6)), 0.6, 0.3)
        with pytest.raises(ValueError):
            service.search(np.full((3, 6), np.nan), 0.6, 0.3)
        with pytest.raises(ValueError):
            service.search(np.zeros((3, 9)), 0.6, 0.3)

    def test_resolve_tau(self, service):
        assert service.resolve_tau(0.5, None, 6) == 0.5
        fraction = service.resolve_tau(None, 0.06, 6)
        assert fraction > 0
        with pytest.raises(ValueError):
            service.resolve_tau(None, None, 6)
        with pytest.raises(ValueError):
            service.resolve_tau(0.5, 0.06, 6)

    def test_describe_is_json_safe(self, service, query):
        import json

        service.search(query, 0.6, 0.3)
        payload = service.describe()
        json.dumps(payload)
        assert payload["n_columns"] == 24
        assert payload["cache"]["misses"] == 1


class TestPartitionedBackend:
    def test_partitioned_service_matches_single(self, columns, query, tmp_path):
        lake = PartitionedPexeso(
            n_pivots=3, levels=3, n_partitions=3, spill_dir=tmp_path
        ).fit(columns)
        service = QueryService(lake, window_ms=0, exact_counts=True)
        single = PexesoIndex.build(columns, n_pivots=3, levels=3)
        response = service.search(query, 0.6, 0.3)
        want = pexeso_search(single, query, 0.6, 0.3, exact_counts=True)
        assert response.result.column_ids == want.column_ids
        assert service.searcher.is_partitioned

    def test_partitioned_live_maintenance(self, columns, query):
        lake = PartitionedPexeso(n_pivots=3, levels=3, n_partitions=3).fit(columns)
        service = QueryService(lake, window_ms=0, exact_counts=True)
        before = service.n_columns
        column_id, generation = service.add_column(query)
        assert generation == 1
        assert service.n_columns == before + 1
        hits = service.search(query, 1e-6, 1.0).result.column_ids
        assert column_id in hits
        service.delete_column(column_id)
        assert service.n_columns == before
        hits = service.search(query, 1e-6, 1.0).result.column_ids
        assert column_id not in hits

    def test_wrapped_lake_searcher_accepted_and_not_mutated(self, columns, query):
        searcher = LakeSearcher(PexesoIndex.build(columns, n_pivots=3, levels=3))
        service = QueryService(searcher, window_ms=0, cache_size=0)
        assert service.search(query, 0.6, 0.3).result is not None
        # the caller's searcher keeps its own configuration; fan-in
        # telemetry is recorded by the service itself
        assert searcher.record_batch_sizes is False
        assert service.snapshot_stats().coalesced_batch_sizes == [1]

    def test_recording_searcher_not_double_counted(self, columns, query):
        searcher = LakeSearcher(
            PexesoIndex.build(columns, n_pivots=3, levels=3),
            record_batch_sizes=True,
        )
        service = QueryService(searcher, window_ms=0, cache_size=0)
        service.search(query, 0.6, 0.3)
        assert service.snapshot_stats().coalesced_batch_sizes == [1]

    def test_batch_size_samples_are_bounded_with_exact_totals(self, index, query):
        service = QueryService(index, window_ms=0, cache_size=0)
        service.MAX_COALESCED_SAMPLES = 5
        for _ in range(12):
            service.search(query, 0.6, 0.3)
        stats = service.snapshot_stats()
        assert len(stats.coalesced_batch_sizes) == 5  # window held
        assert service.coalescing_totals() == (12, 12)  # totals exact
        assert service.describe()["coalescing"] == {
            "enabled": True, "window_ms": 0.0, "max_batch": 64,
            "batches": 12, "requests": 12,
        }
