"""HTTP round-trip tests: server + client over ephemeral ports."""

import threading

import numpy as np
import pytest

from repro.core.index import PexesoIndex
from repro.core.metric import normalize_rows
from repro.core.out_of_core import PartitionedPexeso
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import make_server
from repro.serve.service import QueryService


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(21)
    return [
        normalize_rows(rng.normal(size=(int(rng.integers(5, 12)), 6)))
        for _ in range(18)
    ]


@pytest.fixture()
def served(columns):
    """A running server + client over a fresh single-index service."""
    index = PexesoIndex.build(columns, n_pivots=3, levels=3)
    service = QueryService(index, window_ms=0, cache_size=32, exact_counts=True)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield service, ServeClient(server.url)
    finally:
        server.shutdown()
        server.server_close()


class TestRoundTrips:
    def test_healthz(self, served):
        _, client = served
        reply = client.healthz()
        assert reply["ok"] is True
        assert reply["generation"] == 0
        assert reply["n_columns"] == 18

    def test_search_vectors(self, served, columns):
        service, client = served
        reply = client.search(vectors=columns[3][:6], tau=0.6, joinability=0.3)
        assert reply["generation"] == 0
        assert reply["cached"] is False
        direct = service.search(columns[3][:6], 0.6, 0.3)
        assert [h["column_id"] for h in reply["hits"]] == \
            direct.result.column_ids
        for hit in reply["hits"]:
            assert isinstance(hit["match_count"], int)
            assert 0.0 <= hit["joinability"] <= 1.0

    def test_search_ef_knob_round_trip(self, served, columns):
        """``ef_search`` crosses the wire, restricts candidates without
        inventing hits, and is echoed in the payload."""
        service, client = served
        query = columns[3][:6]
        exact = client.search(vectors=query, tau=0.6, joinability=0.3)
        assert "ef_search" not in exact
        restricted = client.search(
            vectors=query, tau=0.6, joinability=0.3, ef_search=2
        )
        assert restricted["ef_search"] == 2
        rows = lambda reply: {  # noqa: E731
            (h["column_id"], h["match_count"]) for h in reply["hits"]
        }
        assert rows(restricted) <= rows(exact)
        full = client.search(
            vectors=query, tau=0.6, joinability=0.3, ef_search=10**6
        )
        assert [
            (h["column_id"], h["match_count"]) for h in full["hits"]
        ] == [(h["column_id"], h["match_count"]) for h in exact["hits"]]

    def test_search_ef_knob_validated(self, served, columns):
        # raw bodies: the client's int() coercion must not mask the
        # server-side validation of non-integer / non-positive knobs
        _, client = served
        for bad in (0, -1, "sixty-four", 1.5, True):
            with pytest.raises(ServeError) as excinfo:
                client._request(
                    "POST", "/search",
                    body={"vectors": columns[0][:4].tolist(), "tau": 0.6,
                          "joinability": 0.3, "ef_search": bad},
                )
            assert excinfo.value.status == 400

    def test_search_cached_on_second_call(self, served, columns):
        _, client = served
        first = client.search(vectors=columns[2][:5], tau=0.6, joinability=0.3)
        second = client.search(vectors=columns[2][:5], tau=0.6, joinability=0.3)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["hits"] == first["hits"]

    def test_topk(self, served, columns):
        _, client = served
        reply = client.topk(vectors=columns[0][:6], tau=0.6, k=4)
        assert reply["k"] == 4
        assert len(reply["hits"]) <= 4
        joinabilities = [h["joinability"] for h in reply["hits"]]
        assert joinabilities == sorted(joinabilities, reverse=True)

    def test_tau_fraction(self, served, columns):
        _, client = served
        reply = client.search(
            vectors=columns[1][:5], tau_fraction=0.06, joinability=0.3
        )
        assert reply["tau"] > 0

    def test_live_add_and_delete(self, served, columns):
        _, client = served
        probe = columns[4][:7]
        added = client.add_column(vectors=probe, table="live", column="key")
        assert added["generation"] == 1
        found = client.search(vectors=probe, tau=1e-6, joinability=1.0)
        assert added["column_id"] in [h["column_id"] for h in found["hits"]]
        removed = client.delete_column(added["column_id"])
        assert removed["generation"] == 2
        gone = client.search(vectors=probe, tau=1e-6, joinability=1.0)
        assert added["column_id"] not in [h["column_id"] for h in gone["hits"]]

    def test_stats_and_metrics(self, served, columns):
        _, client = served
        client.search(vectors=columns[6][:5], tau=0.6, joinability=0.3)
        stats = client.stats()
        assert stats["requests_served"] >= 1
        assert stats["cache"]["capacity"] == 32
        metrics = client.metrics()
        assert "pexeso_serve_cache_misses" in metrics
        assert "pexeso_serve_coalesced_batches" in metrics
        assert "pexeso_serve_generation" in metrics


class TestErrors:
    def test_unknown_path_404(self, served):
        _, client = served
        with pytest.raises(ServeError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404

    def test_bad_body_400(self, served):
        _, client = served
        with pytest.raises(ServeError) as err:
            client._request("POST", "/search", body={"tau": 0.5})
        assert err.value.status == 400

    def test_vectors_and_values_both_given_400(self, served):
        _, client = served
        with pytest.raises(ServeError) as err:
            client._request(
                "POST", "/search",
                body={"vectors": [[0.0] * 6], "values": ["x"], "tau": 0.5},
            )
        assert err.value.status == 400

    def test_values_without_embedder_400(self, served):
        _, client = served
        with pytest.raises(ServeError) as err:
            client.search(values=["alice"], tau=0.5)
        assert err.value.status == 400

    def test_bare_string_values_400(self, served):
        # a bare string would be embedded character by character
        _, client = served
        with pytest.raises(ServeError) as err:
            client._request(
                "POST", "/search", body={"values": "alice", "tau": 0.5}
            )
        assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            client._request(
                "POST", "/search", body={"vectors": "alice", "tau": 0.5}
            )
        assert err.value.status == 400

    def test_delete_unknown_column_404(self, served):
        _, client = served
        with pytest.raises(ServeError) as err:
            client.delete_column(10**6)
        assert err.value.status == 404

    def test_both_taus_400(self, served, columns):
        _, client = served
        with pytest.raises(ServeError) as err:
            client._request(
                "POST", "/search",
                body={"vectors": columns[0][:3].tolist(), "tau": 0.5,
                      "tau_fraction": 0.06},
            )
        assert err.value.status == 400


class TestPartitionedLayout:
    def test_partitioned_service_over_http(self, columns, tmp_path):
        lake = PartitionedPexeso(
            n_pivots=3, levels=3, n_partitions=3, spill_dir=tmp_path / "lake"
        ).fit(columns)
        service = QueryService(lake, window_ms=0, exact_counts=True)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServeClient(server.url)
            probe = columns[9][:6]
            reply = client.search(vectors=probe, tau=0.6, joinability=0.3)
            single = PexesoIndex.build(columns, n_pivots=3, levels=3)
            from repro.core.search import pexeso_search

            want = pexeso_search(single, probe, 0.6, 0.3, exact_counts=True)
            assert [h["column_id"] for h in reply["hits"]] == want.column_ids
            assert client.stats()["partitioned"] is True

            added = client.add_column(vectors=probe)
            found = client.search(vectors=probe, tau=1e-6, joinability=1.0)
            assert added["column_id"] in [h["column_id"] for h in found["hits"]]
            client.delete_column(added["column_id"])
        finally:
            server.shutdown()
            server.server_close()


class TestMakeServerFromDirectory:
    def test_serves_saved_index_with_catalog(self, columns, tmp_path):
        import json

        from repro.core.persistence import save_index

        index = PexesoIndex.build(columns, n_pivots=3, levels=3)
        out = save_index(index, tmp_path / "idx")
        (out / "catalog.json").write_text(json.dumps({
            "columns": [
                {"table": f"t{i}", "column": "key"} for i in range(len(columns))
            ],
            "embedder": {"dim": 6, "seed": 0},
            "preprocess": True,
        }))
        server = make_server(out, port=0, window_ms=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServeClient(server.url)
            reply = client.search(vectors=columns[0][:5], tau=0.6,
                                  joinability=0.3)
            for hit in reply["hits"]:
                assert hit["table"].startswith("t")
            # the catalog embedder enables string queries
            strings = client.search(values=["alice", "bob"], tau_fraction=0.06,
                                    joinability=0.5)
            assert "hits" in strings
        finally:
            server.shutdown()
            server.server_close()
