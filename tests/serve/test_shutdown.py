"""Graceful shutdown (drain semantics) and shard-LRU metrics exposition."""

import threading
import time

import numpy as np
import pytest

from repro.core.metric import normalize_rows
from repro.core.out_of_core import PartitionedPexeso
from repro.serve.client import ServeClient
from repro.serve.server import make_server
from repro.serve.service import QueryService


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(31)
    return [
        normalize_rows(rng.normal(size=(int(rng.integers(5, 10)), 6)))
        for _ in range(12)
    ]


class TestGracefulShutdown:
    def test_close_waits_for_inflight_request(self, columns):
        """close() must drain a request that is already executing."""
        from repro.core.index import PexesoIndex

        index = PexesoIndex.build(columns, n_pivots=3, levels=3)
        service = QueryService(index, window_ms=None, cache_size=0)
        release = threading.Event()
        real_search = service.search

        def slow_search(*args, **kwargs):
            release.wait(timeout=5.0)
            return real_search(*args, **kwargs)

        service.search = slow_search
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()

        client = ServeClient(server.url)
        outcome = {}

        def request():
            outcome["reply"] = client.search(
                vectors=columns[0][:4], tau=0.6, joinability=0.3
            )

        requester = threading.Thread(target=request)
        requester.start()
        time.sleep(0.15)  # the request is now inside slow_search

        closer = threading.Thread(target=server.close)
        closer.start()
        time.sleep(0.1)
        assert closer.is_alive(), "close() must wait for the in-flight request"
        release.set()
        closer.join(timeout=5.0)
        requester.join(timeout=5.0)
        assert not closer.is_alive()
        # the drained request completed normally, not with a reset socket
        assert outcome["reply"]["hits"] is not None

    def test_close_without_serving_does_not_deadlock(self, columns):
        from repro.core.index import PexesoIndex

        index = PexesoIndex.build(columns, n_pivots=3, levels=3)
        server = make_server(QueryService(index), port=0)
        server.close()  # serve_forever never ran; must return immediately

    def test_context_manager_closes(self, columns):
        from repro.core.index import PexesoIndex

        index = PexesoIndex.build(columns, n_pivots=3, levels=3)
        with make_server(QueryService(index), port=0) as server:
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            assert ServeClient(server.url).healthz()["ok"] is True
        thread.join(timeout=5.0)
        assert not thread.is_alive()

    def test_drain_deadline_bounds_the_wait(self, columns):
        """A handler that never finishes cannot wedge close() forever."""
        from repro.core.index import PexesoIndex

        index = PexesoIndex.build(columns, n_pivots=3, levels=3)
        service = QueryService(index, window_ms=None, cache_size=0)
        service.search = lambda *a, **k: time.sleep(30.0)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        def doomed_request():
            try:
                ServeClient(server.url, timeout=2.0).search(
                    vectors=columns[0][:4], tau=0.6, joinability=0.3
                )
            except Exception:
                pass  # abandoned by the bounded drain — expected

        hang = threading.Thread(target=doomed_request, daemon=True)
        hang.start()
        time.sleep(0.15)
        started = time.monotonic()
        server.close(drain_seconds=0.3)
        assert time.monotonic() - started < 5.0


class TestShardLRUMetrics:
    def test_metrics_expose_lru_gauges(self, columns, tmp_path):
        """Spill-mode shard residency is observable through /metrics."""
        lake = PartitionedPexeso(
            n_pivots=2, levels=3, n_partitions=3,
            spill_dir=tmp_path / "spill", lru_shards=2,
        ).fit(columns)
        service = QueryService(lake, window_ms=None, cache_size=0)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServeClient(server.url)
            client.search(vectors=columns[2][:4], tau=0.6, joinability=0.3)
            metrics = client.metrics()
            assert "pexeso_serve_shard_lru_size" in metrics
            assert "pexeso_serve_shard_lru_capacity 2" in metrics
            assert "pexeso_serve_shard_lru_misses" in metrics
            assert "pexeso_serve_resident_shards" in metrics
            assert "pexeso_serve_shard_load_seconds" in metrics
            info = service.lru_info()
            assert info["lru_size"] <= 2
            assert info["lru_misses"] >= 1
            # /stats carries the same structure
            assert client.stats()["shard_lru"]["lru_capacity"] == 2
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_single_index_has_no_lru_info(self, columns):
        from repro.core.index import PexesoIndex

        service = QueryService(PexesoIndex.build(columns, n_pivots=2, levels=3))
        assert service.lru_info() is None
