"""Tests for the micro-batching request coalescer."""

import threading
import time

import pytest

from repro.serve.coalescer import MicroBatcher


def echo_executor(record):
    """An executor that answers each request with its args and logs sizes."""

    def execute(batch):
        record.append(len(batch))
        for request in batch:
            request.payload = ("done", *request.args)

    return execute


class TestMicroBatcher:
    def test_single_submit(self):
        sizes = []
        batcher = MicroBatcher(echo_executor(sizes), window_seconds=0)
        assert batcher.submit(1, 2) == ("done", 1, 2)
        assert sizes == [1]
        assert batcher.pending == 0

    def test_concurrent_submissions_coalesce(self):
        sizes = []
        gate = threading.Barrier(8)

        def execute(batch):
            sizes.append(len(batch))
            time.sleep(0.005)  # let stragglers queue behind the leader
            for request in batch:
                request.payload = request.args[0]

        batcher = MicroBatcher(execute, window_seconds=0.02)
        results = [None] * 8

        def client(i):
            gate.wait()
            results[i] = batcher.submit(i)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(results) == list(range(8))  # everyone got their own answer
        assert sum(sizes) == 8
        assert max(sizes) > 1, "concurrent arrivals must fuse into one batch"

    def test_max_batch_splits_queue(self):
        sizes = []
        gate = threading.Barrier(9)
        batcher = MicroBatcher(echo_executor(sizes), window_seconds=0.02,
                               max_batch=4)

        def client(i):
            gate.wait()
            batcher.submit(i)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(9)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(sizes) == 9
        assert max(sizes) <= 4

    def test_executor_error_propagates_to_all(self):
        def execute(batch):
            raise RuntimeError("engine down")

        batcher = MicroBatcher(execute, window_seconds=0)
        with pytest.raises(RuntimeError, match="engine down"):
            batcher.submit(1)
        # the batcher recovers: leadership was released
        assert batcher.pending == 0

    def test_recovers_after_error(self):
        calls = []

        def execute(batch):
            calls.append(len(batch))
            if len(calls) == 1:
                raise RuntimeError("first call fails")
            for request in batch:
                request.payload = "ok"

        batcher = MicroBatcher(execute, window_seconds=0)
        with pytest.raises(RuntimeError):
            batcher.submit(1)
        assert batcher.submit(2) == "ok"

    def test_leadership_hands_off_after_own_request(self):
        """A leader exits once its own request is answered; a request that
        queued up mid-execution is promoted to leader and serves itself."""
        order = []
        follower_queued = threading.Event()

        def execute(batch):
            order.append([r.args[0] for r in batch])
            if len(order) == 1:
                # hold the first batch until a follower is waiting
                assert follower_queued.wait(timeout=2)
            for r in batch:
                r.payload = r.args[0]

        batcher = MicroBatcher(execute, window_seconds=0)
        results = {}

        def client(name):
            results[name] = batcher.submit(name)

        first = threading.Thread(target=client, args=("a",))
        first.start()
        while not order:  # first batch is executing
            time.sleep(0.001)
        second = threading.Thread(target=client, args=("b",))
        second.start()
        while batcher.pending == 0:  # follower is queued behind the leader
            time.sleep(0.001)
        follower_queued.set()
        first.join(timeout=2)
        second.join(timeout=2)
        assert results == {"a": "a", "b": "b"}
        assert order == [["a"], ["b"]]  # second batch ran via promotion
        # leadership was released cleanly: a fresh submit still works
        assert batcher.submit("c") == "c"
        assert batcher.pending == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: None, window_seconds=-1)
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: None, max_batch=0)
