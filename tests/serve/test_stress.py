"""Concurrent correctness: mixed serving traffic vs. a per-generation oracle.

N threads hammer one :class:`~repro.serve.service.QueryService` with a
mix of ``search`` / ``topk`` / ``add_column`` / ``delete_column``. Every
response is stamped with the index generation it was served under; after
the run, the mutation log is replayed into one column-set snapshot per
generation and **every** recorded response is checked against the
exhaustive oracle over the snapshot it claims — hits *and* exact match
counts. Any torn read (a search observing a half-applied mutation, a
stale cache entry surviving a generation bump, a coalesced batch mixing
generations) fails this test.
"""

import threading

import numpy as np
import pytest

from repro.core.index import PexesoIndex
from repro.core.metric import EuclideanMetric, normalize_rows
from repro.core.thresholds import joinability_count
from repro.serve.service import QueryService

N_INITIAL = 14
DIM = 6
TAU = 0.6
JOINABILITY = 0.3
N_SEARCHERS = 4
N_MUTATORS = 2
OPS_PER_SEARCHER = 10
OPS_PER_MUTATOR = 6


def _make_columns(seed, n, rows=(5, 12)):
    rng = np.random.default_rng(seed)
    return [
        normalize_rows(rng.normal(size=(int(rng.integers(*rows)), DIM)))
        for _ in range(n)
    ]


def _oracle_counts(snapshot, query, tau):
    """Exact per-column match counts over one generation's column set."""
    metric = EuclideanMetric()
    counts = {}
    for cid, column in snapshot.items():
        pairwise = metric.pairwise(query, column)
        counts[cid] = int((pairwise <= tau).any(axis=1).sum())
    return counts


@pytest.mark.parametrize("window_ms", [0.0, 3.0])
def test_mixed_traffic_matches_generation_oracle(window_ms):
    initial = _make_columns(100, N_INITIAL)
    index = PexesoIndex.build(initial, n_pivots=3, levels=3)
    service = QueryService(
        index, window_ms=window_ms, cache_size=64, exact_counts=True
    )

    queries = _make_columns(200, 6, rows=(6, 10))
    fresh = [_make_columns(300 + t, OPS_PER_MUTATOR) for t in range(N_MUTATORS)]

    log_lock = threading.Lock()
    mutations = []  # (generation, op, column_id, vectors-or-None)
    search_records = []  # ("search", query_idx, generation, [(cid, count)])
    topk_records = []  # ("topk", query_idx, k, generation, [(cid, count)])
    errors = []
    gate = threading.Barrier(N_SEARCHERS + N_MUTATORS)

    def searcher(worker):
        rng = np.random.default_rng(worker)
        try:
            gate.wait()
            for step in range(OPS_PER_SEARCHER):
                qi = int(rng.integers(len(queries)))
                if step % 3 == 2:
                    k = int(rng.integers(1, 6))
                    response = service.topk(queries[qi], TAU, k)
                    rows = [(cid, count) for cid, count, _ in response.result.hits]
                    with log_lock:
                        topk_records.append((qi, k, response.generation, rows))
                else:
                    response = service.search(queries[qi], TAU, JOINABILITY)
                    rows = [
                        (hit.column_id, hit.match_count)
                        for hit in response.result.joinable
                    ]
                    with log_lock:
                        search_records.append((qi, response.generation, rows))
        except BaseException as exc:  # noqa: BLE001 - surfaced after join
            errors.append(exc)

    def mutator(worker):
        my_added = []
        rng = np.random.default_rng(1000 + worker)
        try:
            gate.wait()
            for step in range(OPS_PER_MUTATOR):
                if my_added and rng.random() < 0.4:
                    cid, _ = my_added.pop(int(rng.integers(len(my_added))))
                    generation = service.delete_column(cid)
                    with log_lock:
                        mutations.append((generation, "del", cid, None))
                else:
                    vectors = fresh[worker][step]
                    cid, generation = service.add_column(vectors)
                    my_added.append((cid, vectors))
                    with log_lock:
                        mutations.append((generation, "add", cid, vectors))
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=searcher, args=(w,)) for w in range(N_SEARCHERS)
    ] + [threading.Thread(target=mutator, args=(w,)) for w in range(N_MUTATORS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors

    # -- replay the mutation log into one snapshot per generation -------------
    mutations.sort()
    generations = [g for g, *_ in mutations]
    assert generations == list(range(1, len(mutations) + 1)), (
        "each mutation must bump the generation exactly once"
    )
    snapshots = {0: {cid: col for cid, col in enumerate(initial)}}
    current = dict(snapshots[0])
    for generation, op, cid, vectors in mutations:
        if op == "add":
            assert cid not in current, "column IDs must never be reused"
            current[cid] = vectors
        else:
            del current[cid]
        snapshots[generation] = dict(current)

    # -- every response must match the oracle for its own generation ----------
    assert search_records, "stress run produced no searches"
    for qi, generation, rows in search_records:
        snapshot = snapshots[generation]
        counts = _oracle_counts(snapshot, queries[qi], TAU)
        t_count = joinability_count(JOINABILITY, queries[qi].shape[0])
        want = sorted(
            (cid, count) for cid, count in counts.items() if count >= t_count
        )
        assert rows == want, (
            f"search (query {qi}) served under generation {generation} "
            f"disagrees with that generation's oracle"
        )

    assert topk_records, "stress run produced no topk requests"
    for qi, k, generation, rows in topk_records:
        snapshot = snapshots[generation]
        counts = _oracle_counts(snapshot, queries[qi], TAU)
        ranked = sorted(
            ((cid, count) for cid, count in counts.items() if count > 0),
            key=lambda row: (-row[1], row[0]),
        )[: min(k, len(snapshot))]
        assert rows == ranked, (
            f"topk (query {qi}, k={k}) served under generation {generation} "
            f"disagrees with that generation's oracle"
        )


def test_cache_is_never_stale_under_churn():
    """Repeatedly alternate search / mutate; a cached reply must always
    carry the generation its payload was computed under, never the
    current one by accident."""
    initial = _make_columns(1, 10)
    service = QueryService(
        PexesoIndex.build(initial, n_pivots=3, levels=3),
        window_ms=0,
        cache_size=16,
        exact_counts=True,
    )
    query = initial[2][:6]
    seen = []
    for round_ in range(6):
        first = service.search(query, TAU, JOINABILITY)
        second = service.search(query, TAU, JOINABILITY)
        assert second.generation == first.generation
        assert second.cached is True
        seen.append(first.generation)
        cid, _ = service.add_column(_make_columns(50 + round_, 1)[0])
        service.delete_column(cid)
    assert seen == [2 * r for r in range(6)]
    stats = service.snapshot_stats()
    assert stats.cache_hits == 6
    assert stats.cache_misses == 6
