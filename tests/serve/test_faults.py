"""Fault injector determinism, jittered retries, admission and drain."""

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.index import PexesoIndex
from repro.core.metric import normalize_rows
from repro.serve.client import ServeClient, ServeError
from repro.serve.faults import (
    FaultInjector,
    InjectedBlackhole,
    InjectedDrop,
)
from repro.serve.server import AdmissionController, make_server
from repro.serve.service import QueryService


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(77)
    return [
        normalize_rows(rng.normal(size=(int(rng.integers(5, 10)), 6)))
        for _ in range(10)
    ]


@pytest.fixture()
def service(columns):
    index = PexesoIndex.build(columns, n_pivots=3, levels=3)
    return QueryService(index, window_ms=None, cache_size=0)


def running_server(service, **kwargs):
    server = make_server(service, port=0, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


class TestInjectorScheduling:
    def test_nth_first_every_are_deterministic(self):
        injector = FaultInjector(seed=0)
        injector.script("drop", nth=[1, 3])
        fired = [
            bool(injector.intercept("t", "POST", "/search")) for _ in range(5)
        ]
        assert fired == [False, True, False, True, False]

        injector.clear()
        injector.script("drop", first=2)
        fired = [
            bool(injector.intercept("t", "POST", "/search")) for _ in range(4)
        ]
        assert fired == [True, True, False, False]

        injector.clear()
        injector.script("drop", every=3)
        fired = [
            bool(injector.intercept("t", "POST", "/search")) for _ in range(6)
        ]
        assert fired == [True, False, False, True, False, False]

    def test_probability_replays_with_same_seed(self):
        def run(seed):
            injector = FaultInjector(seed=seed)
            injector.script("delay", probability=0.4, delay=0.0)
            return [
                bool(injector.intercept("t", "POST", "/search"))
                for _ in range(40)
            ]

        assert run(7) == run(7)
        assert run(7) != run(8)  # astronomically unlikely to collide

    def test_matchers_scope_by_method_path_target(self):
        injector = FaultInjector()
        injector.script("drop", method="POST", path="/search", target="w1")
        assert not injector.intercept("w1", "GET", "/search")
        assert not injector.intercept("w1", "POST", "/topk")
        assert not injector.intercept("w2", "POST", "/search")
        assert injector.intercept("w1", "POST", "/search")

    def test_times_caps_total_firings(self):
        injector = FaultInjector()
        injector.script("drop", times=2)
        fired = sum(
            bool(injector.intercept("t", "POST", "/x")) for _ in range(5)
        )
        assert fired == 2
        assert injector.fired("drop") == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().script("meteor")

    def test_client_hook_raises_typed_exceptions(self):
        injector = FaultInjector()
        rule = injector.script("drop", first=1)
        with pytest.raises(InjectedDrop):
            injector.before_send("t", "POST", "/search")
        injector.unscript(rule)
        injector.script("blackhole", delay=0.0)
        with pytest.raises(InjectedBlackhole):
            injector.before_send("t", "POST", "/search")
        # both are transport-level types the retry/failover machinery sees
        assert issubclass(InjectedDrop, ConnectionError)
        assert issubclass(InjectedBlackhole, TimeoutError)


class TestClientFaultsAndJitter:
    def test_client_retries_through_injected_drops(self, service, columns):
        server, thread = running_server(service)
        try:
            injector = FaultInjector(seed=1)
            injector.script("drop", first=2, path="/search")
            client = ServeClient(
                server.url, retries=2, retry_backoff=0.001,
                fault_injector=injector,
            )
            reply = client.search(
                vectors=columns[0][:4], tau=0.6, joinability=0.3
            )
            assert reply["hits"] is not None
            assert injector.fired("drop") == 2
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_retry_budget_exhausted_raises_the_drop(self, service, columns):
        server, thread = running_server(service)
        try:
            injector = FaultInjector(seed=1)
            injector.script("drop", path="/search")  # every attempt
            client = ServeClient(
                server.url, retries=1, retry_backoff=0.001,
                fault_injector=injector,
            )
            with pytest.raises(ConnectionError):
                client.search(vectors=columns[0][:4], tau=0.6, joinability=0.3)
            assert injector.fired("drop") == 2  # initial + one retry
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_full_jitter_desynchronizes_backoff(self, service, columns):
        """Two clients with the same schedule but different RNGs must not
        sleep the same deterministic ceiling (the retry-storm fix)."""
        server, thread = running_server(service)
        try:
            sleeps = {}
            for name, seed in (("a", 5), ("b", 6)):
                injector = FaultInjector(seed=1)
                injector.script("drop", first=3, path="/search")
                client = ServeClient(
                    server.url, retries=3, retry_backoff=0.05,
                    retry_rng=random.Random(seed), fault_injector=injector,
                )
                observed = []
                client._backoff_sleep = (
                    lambda attempt, c=client, o=observed: o.append(
                        c._retry_rng.uniform(0.0, c.retry_backoff * 2 ** attempt)
                    )
                )
                client.search(vectors=columns[0][:4], tau=0.6, joinability=0.3)
                sleeps[name] = observed
            assert len(sleeps["a"]) == len(sleeps["b"]) == 3
            assert sleeps["a"] != sleeps["b"]
            ceilings = [0.05, 0.1, 0.2]
            for vals in sleeps.values():
                assert all(0.0 <= v <= c for v, c in zip(vals, ceilings))
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_jitter_off_reproduces_deterministic_backoff(self):
        client = ServeClient("http://127.0.0.1:1", retry_jitter=False,
                             retry_backoff=0.01)
        started = time.monotonic()
        client._backoff_sleep(1)
        assert time.monotonic() - started >= 0.02


class TestServerFaults:
    def test_injected_error_answers_without_running_the_query(
        self, service, columns
    ):
        injector = FaultInjector()
        injector.script("error", path="/search", status=503, first=1)
        server, thread = running_server(service, fault_injector=injector)
        try:
            client = ServeClient(server.url)
            with pytest.raises(ServeError) as err:
                client.search(vectors=columns[0][:4], tau=0.6, joinability=0.3)
            assert err.value.status == 503
            assert "injected" in err.value.message
            # the schedule is spent: the next request runs normally
            reply = client.search(
                vectors=columns[0][:4], tau=0.6, joinability=0.3
            )
            assert reply["hits"] is not None
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_injected_drop_kills_the_connection(self, service, columns):
        injector = FaultInjector()
        injector.script("drop", path="/search", first=1)
        server, thread = running_server(service, fault_injector=injector)
        try:
            client = ServeClient(server.url)
            with pytest.raises((ConnectionError, OSError)):
                client.search(vectors=columns[0][:4], tau=0.6, joinability=0.3)
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_injected_delay_slows_the_worker(self, service, columns):
        injector = FaultInjector()
        injector.script("delay", path="/search", delay=0.2, first=1)
        server, thread = running_server(service, fault_injector=injector)
        try:
            client = ServeClient(server.url)
            started = time.monotonic()
            client.search(vectors=columns[0][:4], tau=0.6, joinability=0.3)
            assert time.monotonic() - started >= 0.2
        finally:
            server.close()
            thread.join(timeout=5.0)


class TestAdmissionControl:
    def test_overload_sheds_429_with_retry_after(self, service, columns):
        release = threading.Event()
        real_search = service.search

        def slow_search(*args, **kwargs):
            release.wait(timeout=10.0)
            return real_search(*args, **kwargs)

        service.search = slow_search
        server, thread = running_server(service, max_concurrent=2)
        try:
            def request():
                client = ServeClient(server.url, timeout=15.0)
                try:
                    reply = client.search(
                        vectors=columns[0][:4], tau=0.6, joinability=0.3
                    )
                    return ("ok", reply)
                except ServeError as exc:
                    return ("error", exc)

            with ThreadPoolExecutor(max_workers=6) as pool:
                futures = [pool.submit(request) for _ in range(6)]
                time.sleep(0.3)  # let 2 enter, 4 get shed
                release.set()
                outcomes = [f.result() for f in futures]
            shed = [o for kind, o in outcomes if kind == "error"]
            served = [o for kind, o in outcomes if kind == "ok"]
            assert len(served) >= 2 and len(shed) >= 1
            for exc in shed:
                assert exc.status == 429
                assert exc.retry_after is not None and exc.retry_after > 0
            snapshot = server.admission.snapshot()
            assert snapshot["admission_shed"] == len(shed)
            # the handler releases its slot just *after* the reply hits
            # the wire, so give the finally blocks a beat to run
            deadline = time.monotonic() + 2.0
            while (
                server.admission.snapshot()["admission_inflight"]
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert server.admission.snapshot()["admission_inflight"] == 0
        finally:
            release.set()
            server.close()
            thread.join(timeout=5.0)

    def test_get_endpoints_bypass_admission(self, service, columns):
        """Ops visibility survives overload: /metrics is never shed."""
        server, thread = running_server(service, max_concurrent=1)
        try:
            client = ServeClient(server.url)
            server.admission.try_acquire()  # saturate the gate
            try:
                assert client.healthz()["ok"] is True
                metrics = client.metrics()
                assert "pexeso_serve_admission_capacity 1.0" in metrics
                assert "pexeso_serve_admission_inflight 1.0" in metrics
                with pytest.raises(ServeError) as err:
                    client.search(
                        vectors=columns[0][:4], tau=0.6, joinability=0.3
                    )
                assert err.value.status == 429
            finally:
                server.admission.release()
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_metrics_expose_shed_and_deadline_gauges(self, service, columns):
        server, thread = running_server(service)
        try:
            client = ServeClient(server.url)
            metrics = client.metrics()
            assert "pexeso_serve_admission_shed 0.0" in metrics
            assert "pexeso_serve_deadline_rejects 0.0" in metrics
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_controller_validates_capacity(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        unlimited = AdmissionController(None)
        assert all(unlimited.try_acquire() for _ in range(64))


class TestDeadlineRejection:
    def test_expired_budget_rejected_504_before_work(self, service, columns):
        server, thread = running_server(service)
        try:
            client = ServeClient(server.url)
            with pytest.raises(ServeError) as err:
                client.search(
                    vectors=columns[0][:4], tau=0.6, joinability=0.3,
                    deadline_ms=0.0,
                )
            assert err.value.status == 504
            assert server.deadline_rejects == 1
            assert "pexeso_serve_deadline_rejects 1.0" in client.metrics()
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_live_budget_is_honoured(self, service, columns):
        server, thread = running_server(service)
        try:
            client = ServeClient(server.url)
            reply = client.search(
                vectors=columns[0][:4], tau=0.6, joinability=0.3,
                deadline_ms=30_000.0,
            )
            assert reply["hits"] is not None
            assert server.deadline_rejects == 0
        finally:
            server.close()
            thread.join(timeout=5.0)


class TestDrainWindow:
    def test_mid_drain_requests_get_fast_503(self, service, columns):
        """New arrivals during close() are refused immediately with
        Retry-After while the in-flight request drains normally."""
        release = threading.Event()
        real_search = service.search

        def slow_search(*args, **kwargs):
            release.wait(timeout=10.0)
            return real_search(*args, **kwargs)

        service.search = slow_search
        server, thread = running_server(service)
        try:
            inflight_outcome = {}

            def inflight():
                inflight_outcome["reply"] = ServeClient(
                    server.url, timeout=15.0
                ).search(vectors=columns[0][:4], tau=0.6, joinability=0.3)

            requester = threading.Thread(target=inflight)
            requester.start()
            time.sleep(0.2)  # request is now inside slow_search

            closer = threading.Thread(target=server.close)
            closer.start()
            time.sleep(0.2)  # drain is underway, socket still accepting

            started = time.monotonic()
            with pytest.raises(ServeError) as err:
                ServeClient(server.url, timeout=15.0).search(
                    vectors=columns[0][:4], tau=0.6, joinability=0.3
                )
            elapsed = time.monotonic() - started
            assert err.value.status == 503
            assert err.value.retry_after is not None
            assert elapsed < 2.0, "mid-drain refusal must be fast"

            release.set()
            closer.join(timeout=10.0)
            requester.join(timeout=10.0)
            assert inflight_outcome["reply"]["hits"] is not None
        finally:
            release.set()
            server.close()
            thread.join(timeout=5.0)
