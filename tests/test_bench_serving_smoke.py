"""CI-size smoke test for the serving benchmark.

Runs ``benchmarks/bench_serving.py``'s comparison harness on a tiny lake
(seconds, not minutes) so the benchmark stays importable and its parity
checks — coalesced == serial hit for hit, cached replay == original,
every replay a cache hit — run in every test pass. The ≥2x speedup claim
is asserted at full benchmark scale (`pytest benchmarks/`) and in the CI
serving job (`python benchmarks/bench_serving.py`), where timings are
meaningful.
"""

import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def bench_module():
    sys.path.insert(0, str(BENCHMARKS))
    try:
        import bench_serving

        yield bench_serving
    finally:
        sys.path.remove(str(BENCHMARKS))


def test_serving_comparison_runs_at_ci_size(bench_module):
    from common import make_dataset

    dataset = make_dataset(
        "smoke",
        n_tables=16,
        rows_range=(6, 14),
        dim=12,
        n_entities=40,
        n_queries=1,
        query_rows=8,
        seed=6,
    )
    out = bench_module.run_serving_comparison(
        dataset,
        n_clients=4,
        requests_per_client=3,
        n_pivots=2,
        levels=2,
        window_ms=2.0,
    )
    # run_serving_comparison asserts coalesced == serial (hit for hit)
    # and the cache-replay invariants internally; here we check the
    # report shape the benchmark table consumes.
    assert out["n_requests"] == 12
    assert out["serial_seconds"] > 0 and out["coalesced_seconds"] > 0
    assert out["mean_batch"] >= 1
    assert out["speedup"] > 0 and out["cache_speedup"] > 0
    # the per-stage breakdown rides into the BENCH json artifact
    assert "verify" in out["stage_seconds"]
    assert all(v >= 0 for v in out["stage_seconds"].values())


def test_sampled_out_tracing_overhead_under_five_percent(bench_module):
    from common import make_dataset

    dataset = make_dataset(
        "trace-overhead",
        n_tables=16,
        rows_range=(6, 14),
        dim=12,
        n_entities=40,
        n_queries=1,
        query_rows=8,
        seed=7,
    )
    out = bench_module.run_tracing_overhead(
        dataset, n_requests=24, n_pivots=2, levels=2, repeats=5
    )
    assert out["plain_seconds"] > 0 and out["traced_out_seconds"] > 0
    assert out["overhead_pct"] < 5.0, (
        f"sampled-out tracing cost {out['overhead_pct']:.2f}% at smoke size"
    )
