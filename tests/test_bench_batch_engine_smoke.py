"""CI-size smoke test for the batch-engine benchmark.

Runs ``benchmarks/bench_batch_engine.py``'s comparison harness on a tiny
dataset (seconds, not minutes) to keep the benchmark importable and its
equality checks exercised in every test run. The ≥2x speedup claim is
asserted only at full benchmark scale (`pytest benchmarks/`), where
timings are meaningful.
"""

import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def bench_module():
    sys.path.insert(0, str(BENCHMARKS))
    try:
        import bench_batch_engine

        yield bench_batch_engine
    finally:
        sys.path.remove(str(BENCHMARKS))


def test_batch_comparison_runs_at_ci_size(bench_module):
    from common import make_dataset

    dataset = make_dataset(
        "smoke",
        n_tables=12,
        rows_range=(6, 14),
        dim=12,
        n_entities=40,
        n_queries=1,
        query_rows=8,
        seed=3,
    )
    out = bench_module.run_batch_comparison(
        dataset, n_queries=6, query_rows=8, n_pivots=2, levels=2
    )
    # run_batch_comparison asserts batch == sequential internally; here we
    # check the report shape the benchmark table consumes.
    assert out["n_queries"] == 6
    assert out["seq_seconds"] > 0 and out["batch_seconds"] > 0
    assert out["seq_distances"] >= 0 and out["batch_distances"] >= 0
    assert out["speedup"] > 0
