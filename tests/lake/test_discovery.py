"""Tests for the end-to-end discovery facade."""

import pytest

from repro.lake.datagen import DataLakeGenerator
from repro.lake.discovery import JoinableTableSearch
from repro.lake.table import Column, Table


@pytest.fixture(scope="module")
def gen():
    return DataLakeGenerator(seed=1, n_entities=80, dim=24)


@pytest.fixture(scope="module")
def lake(gen):
    return gen.generate_lake(n_tables=30, rows_range=(10, 22))


@pytest.fixture(scope="module")
def search(gen, lake):
    s = JoinableTableSearch(gen.embedder, n_pivots=3, levels=3, preprocess=False)
    return s.index_tables(lake.tables)


class TestIndexing:
    def test_refs_cover_lake(self, search, lake):
        assert len(search.refs) == lake.n_tables
        assert search.index.n_columns == lake.n_tables

    def test_index_before_search_required(self, gen):
        s = JoinableTableSearch(gen.embedder)
        table = Table("q", [Column("key", ["a"] * 5)], key_column="key")
        with pytest.raises(RuntimeError):
            s.search(table)

    def test_no_usable_tables_raises(self, gen):
        s = JoinableTableSearch(gen.embedder)
        tiny = Table("tiny", [Column("a", ["x"])])
        with pytest.raises(ValueError):
            s.index_tables([tiny])


class TestSearch:
    def test_finds_ground_truth_tables(self, gen, lake, search):
        query, q_entities = gen.generate_query_table(n_rows=15, domain=0)
        hits = search.search(query, tau_fraction=0.06, joinability=0.4)
        got = {h.ref.table_name for h in hits}
        truth = {f"table_{i}" for i in lake.true_joinable_tables(q_entities, 0.4)}
        assert got == truth

    def test_hits_sorted_by_joinability(self, gen, search):
        query, _ = gen.generate_query_table(n_rows=15, domain=2)
        hits = search.search(query, tau_fraction=0.06, joinability=0.2)
        scores = [h.joinability for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_record_mapping_points_to_matching_rows(self, gen, lake, search):
        query, _ = gen.generate_query_table(n_rows=15, domain=0)
        hits = search.search(query, tau_fraction=0.06, joinability=0.3)
        if not hits:
            pytest.skip("no hits at this threshold")
        hit = hits[0]
        table_index = int(hit.ref.table_name.split("_")[1])
        q_values = query.column("key").values
        t_entities = lake.entity_columns[table_index]
        embedder = lake.embedder
        for qi, ti in hit.record_mapping:
            q_entity = embedder.entity_of(q_values[qi])
            assert q_entity is not None
            assert t_entities[ti] == q_entity

    def test_mappings_can_be_skipped(self, gen, search):
        query, _ = gen.generate_query_table(n_rows=15, domain=1)
        hits = search.search(query, joinability=0.3, with_mappings=False)
        assert all(h.record_mapping == [] for h in hits)

    def test_explicit_query_column(self, gen, search):
        query, _ = gen.generate_query_table(n_rows=15, domain=0)
        hits_auto = search.search(query, joinability=0.3, with_mappings=False)
        hits_explicit = search.search(
            query, query_column="key", joinability=0.3, with_mappings=False
        )
        assert {h.ref for h in hits_auto} == {h.ref for h in hits_explicit}

    def test_query_without_key_raises(self, search):
        bad = Table("q", [Column("n", ["1", "2", "3", "4", "5"])])
        with pytest.raises(ValueError, match="query column"):
            search.search(bad)


class TestShardedFacade:
    """The facade over a partitioned backend: same hits, plus top-k."""

    @pytest.fixture(scope="class")
    def sharded(self, gen, lake):
        s = JoinableTableSearch(
            gen.embedder, n_pivots=3, levels=3, preprocess=False,
            n_partitions=4, max_workers=2,
        )
        return s.index_tables(lake.tables)

    def test_partitioned_backend_selected(self, sharded):
        assert sharded.searcher.is_partitioned
        assert sharded.index is None

    def test_hits_match_single_index(self, gen, search, sharded):
        query, _ = gen.generate_query_table(n_rows=14, domain=0)
        want = search.search(query, with_mappings=False)
        got = sharded.search(query, with_mappings=False)
        assert [(h.ref, h.match_count) for h in got] == [
            (h.ref, h.match_count) for h in want
        ]

    def test_record_mappings_still_work(self, gen, sharded):
        query, _ = gen.generate_query_table(n_rows=10, domain=1)
        hits = sharded.search(query, with_mappings=True)
        assert any(h.record_mapping for h in hits)

    def test_topk_matches_across_backends(self, gen, search, sharded):
        query, _ = gen.generate_query_table(n_rows=12, domain=2)
        want = search.topk(query, k=5)
        got = sharded.topk(query, k=5)
        assert [(h.ref, h.match_count) for h in got] == [
            (h.ref, h.match_count) for h in want
        ]
        assert len(got) <= 5

    def test_topk_rank_order(self, gen, search):
        query, _ = gen.generate_query_table(n_rows=12, domain=0)
        hits = search.topk(query, k=8)
        joins = [h.joinability for h in hits]
        assert joins == sorted(joins, reverse=True)

    def test_topk_before_indexing_raises(self, gen):
        s = JoinableTableSearch(gen.embedder)
        table = Table("q", [Column("key", ["a"] * 5)], key_column="key")
        with pytest.raises(RuntimeError):
            s.topk(table)

    def test_all_columns_on_sharded_backend(self, gen, search, sharded):
        query, _ = gen.generate_query_table(n_rows=12, domain=3)
        want = search.search_all_columns(query)
        got = sharded.search_all_columns(query)
        assert {
            name: [(h.ref, h.match_count) for h in hits]
            for name, hits in got.items()
        } == {
            name: [(h.ref, h.match_count) for h in hits]
            for name, hits in want.items()
        }

    def test_spilled_facade(self, gen, lake, search, tmp_path_factory):
        spill = tmp_path_factory.mktemp("facade_spill")
        s = JoinableTableSearch(
            gen.embedder, n_pivots=3, levels=3, preprocess=False,
            n_partitions=3, spill_dir=spill, max_workers=2,
        ).index_tables(lake.tables)
        query, _ = gen.generate_query_table(n_rows=10, domain=4)
        want = search.search(query, with_mappings=False)
        got = s.search(query, with_mappings=False)
        assert [h.ref for h in got] == [h.ref for h in want]
