"""Live table add/remove through the discovery facade (§III-E)."""

import pytest

from repro.lake.datagen import DataLakeGenerator
from repro.lake.discovery import JoinableTableSearch
from repro.lake.table import Column, Table


@pytest.fixture(scope="module")
def gen():
    return DataLakeGenerator(seed=5, n_entities=60, dim=24)


@pytest.fixture(scope="module")
def lake(gen):
    return gen.generate_lake(n_tables=16, rows_range=(8, 18))


@pytest.fixture
def search(gen, lake):
    s = JoinableTableSearch(gen.embedder, n_pivots=3, levels=3, preprocess=False)
    return s.index_tables(lake.tables)


@pytest.fixture
def query_pair(gen):
    """A query table plus a fresh lake table over the same entity domain."""
    query, _ = gen.generate_query_table(n_rows=12, domain=1, name="the_query")
    twin, _ = gen.generate_query_table(n_rows=14, domain=1, name="live_table")
    return query, twin


class TestAddTable:
    def test_add_table_becomes_searchable(self, search, query_pair):
        query, twin = query_pair
        before = {h.ref.table_name for h in search.search(query, joinability=0.3)}
        assert "live_table" not in before
        column_id = search.add_table(twin)
        assert search.refs[column_id].table_name == "live_table"
        after = {h.ref.table_name for h in search.search(query, joinability=0.3)}
        assert "live_table" in after
        assert before <= after

    def test_add_table_requires_index(self, gen, query_pair):
        s = JoinableTableSearch(gen.embedder)
        with pytest.raises(RuntimeError):
            s.add_table(query_pair[1])

    def test_add_unusable_table_raises_and_rolls_back(self, search):
        junk = Table("junk", [Column("a", ["x"])])
        n_tables = len(search.repository)
        with pytest.raises(ValueError):
            search.add_table(junk)
        assert len(search.repository) == n_tables
        assert "junk" not in search.repository.tables

    def test_failed_index_insert_rolls_back_registration(
        self, search, query_pair, monkeypatch
    ):
        """A failure *after* registration (embedding / backend insert) must
        not leave a zombie table — a retry would collide into a suffixed
        name and remove_table would target the wrong entry."""
        _, twin = query_pair

        def boom(vectors):
            raise RuntimeError("backend insert failed")

        monkeypatch.setattr(search.searcher, "add_column", boom)
        with pytest.raises(RuntimeError, match="backend insert failed"):
            search.add_table(twin)
        assert "live_table" not in search.repository.tables
        monkeypatch.undo()
        # a retry on the healthy backend registers under the plain name
        column_id = search.add_table(twin)
        assert search.refs[column_id].table_name == "live_table"

    def test_name_collision_gets_suffix(self, search, lake, query_pair):
        _, twin = query_pair
        collider = Table(
            lake.tables[0].name, twin.columns, key_column=twin.key_column
        )
        column_id = search.add_table(collider)
        registered = search.refs[column_id].table_name
        assert registered != lake.tables[0].name
        assert registered.startswith(lake.tables[0].name)
        assert registered in search.repository.tables


class TestRemoveTable:
    def test_remove_table_disappears_from_results(self, search, query_pair):
        query, _ = query_pair
        hits = search.search(query, joinability=0.2)
        assert hits, "need at least one hit to remove"
        victim = hits[0].ref.table_name
        removed = search.remove_table(victim)
        assert removed  # at least one column came out
        after = {h.ref.table_name for h in search.search(query, joinability=0.2)}
        assert victim not in after
        assert victim not in search.repository.tables

    def test_remove_then_re_add(self, search, query_pair):
        query, twin = query_pair
        column_id = search.add_table(twin)
        assert search.remove_table("live_table") == [column_id]
        new_id = search.add_table(twin)
        assert new_id != column_id  # IDs are never reused
        names = {h.ref.table_name for h in search.search(query, joinability=0.3)}
        assert "live_table" in names

    def test_remove_unknown_raises(self, search):
        with pytest.raises(KeyError):
            search.remove_table("no_such_table")

    def test_remove_requires_index(self, gen):
        s = JoinableTableSearch(gen.embedder)
        with pytest.raises(RuntimeError):
            s.remove_table("anything")


class TestPartitionedFacade:
    def test_add_remove_on_partitioned_backend(self, gen, lake, query_pair):
        search = JoinableTableSearch(
            gen.embedder, n_pivots=3, levels=3, preprocess=False, n_partitions=3
        ).index_tables(lake.tables)
        query, twin = query_pair
        column_id = search.add_table(twin)
        names = {h.ref.table_name for h in search.search(query, joinability=0.3)}
        assert "live_table" in names
        search.remove_table("live_table")
        names = {h.ref.table_name for h in search.search(query, joinability=0.3)}
        assert "live_table" not in names
        assert column_id not in search.searcher.backend._ensure_column_shard()
