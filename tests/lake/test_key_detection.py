"""Tests for join-key column detection."""

import pytest

from repro.lake.key_detection import candidate_join_columns, detect_key_column
from repro.lake.table import Column, Table


def _table(**cols):
    columns = [Column(name, values) for name, values in cols.items()]
    return Table("t", columns)


class TestDetectKeyColumn:
    def test_prefers_distinct_string_column(self):
        table = _table(
            category=["toy", "toy", "toy", "game", "game"],
            name=["Mario", "Zelda", "Metroid", "Kirby", "Pikmin"],
        )
        assert detect_key_column(table) == "name"

    def test_numeric_columns_excluded(self):
        table = _table(
            amount=["1", "2", "3", "4", "5"],
            name=["a b", "c d", "e f", "g h", "i j"],
        )
        assert detect_key_column(table) == "name"

    def test_identifier_columns_excluded(self):
        table = _table(
            sku=["SKU-1", "SKU-2", "SKU-3", "SKU-4", "SKU-5"],
            name=["alpha x", "beta y", "gamma z", "delta w", "epsilon v"],
        )
        assert detect_key_column(table) == "name"

    def test_date_columns_allowed(self):
        table = _table(
            when=["2020-01-01", "2020-01-02", "2020-01-03", "2020-01-04", "2020-01-05"],
        )
        assert detect_key_column(table) == "when"

    def test_explicit_key_wins(self):
        table = Table(
            "t",
            [
                Column("a", ["x", "y", "z", "w", "v"]),
                Column("b", ["1a", "2b", "3c", "4d", "5e"]),
            ],
            key_column="b",
        )
        assert detect_key_column(table) == "b"

    def test_small_tables_rejected(self):
        table = _table(name=["a", "b", "c"])  # < 5 rows
        assert detect_key_column(table) is None

    def test_low_distinctness_rejected(self):
        table = _table(kind=["a", "a", "a", "a", "b"])
        assert detect_key_column(table) is None

    def test_no_columns(self):
        assert detect_key_column(Table("t")) is None


class TestCandidates:
    def test_ordered_by_distinctness(self):
        table = _table(
            half=["a", "a", "b", "b", "c"],
            full=["p q", "r s", "t u", "v w", "x y"],
        )
        assert candidate_join_columns(table) == ["full", "half"]

    def test_empty_when_no_strings(self):
        table = _table(n=["1", "2", "3", "4", "5"])
        assert candidate_join_columns(table) == []
