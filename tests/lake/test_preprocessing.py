"""Tests for date/abbreviation normalisation (§II-A)."""

import pytest

from repro.lake.preprocessing import expand_abbreviations, normalize_date, to_full_form


class TestAbbreviations:
    def test_paper_examples(self):
        assert expand_abbreviations("Mar") == "March"
        assert expand_abbreviations("Main St") == "Main Street"

    def test_trailing_period(self):
        assert expand_abbreviations("Mar.") == "March"

    def test_case_insensitive_keys(self):
        assert expand_abbreviations("MAR") == "March"

    def test_unknown_tokens_untouched(self):
        assert expand_abbreviations("Zanzibar") == "Zanzibar"

    def test_multiple_tokens(self):
        out = expand_abbreviations("123 N Main St Apt 4")
        assert out == "123 North Main Street Apartment 4"

    def test_extra_dictionary(self):
        out = expand_abbreviations("acme hq", extra={"hq": "Headquarters"})
        assert out == "acme Headquarters"

    def test_extra_overrides_default(self):
        out = expand_abbreviations("st", extra={"st": "Saint"})
        assert out == "Saint"


class TestNormalizeDate:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("2021-03-05", "March 5 2021"),
            ("3/5/2021", "March 5 2021"),
            ("Mar 5, 2021", "March 5 2021"),
            ("Mar. 5 2021", "March 5 2021"),
            ("5 Mar 2021", "March 5 2021"),
            ("5 March 2021", "March 5 2021"),
            ("12/25/99", "December 25 1999"),
            ("1/1/20", "January 1 2020"),
        ],
    )
    def test_formats(self, raw, expected):
        assert normalize_date(raw) == expected

    def test_invalid_month_untouched(self):
        assert normalize_date("2021-13-05") == "2021-13-05"

    def test_non_date_untouched(self):
        assert normalize_date("hello world") == "hello world"


class TestToFullForm:
    def test_dates_routed_to_date_path(self):
        assert to_full_form("2020-06-01") == "June 1 2020"

    def test_strings_routed_to_abbreviation_path(self):
        assert to_full_form("N Main St") == "North Main Street"

    def test_idempotent_on_full_forms(self):
        full = "March 5 2021"
        assert to_full_form(full) == full
