"""Tests for CSV loading and dumping."""

import pytest

from repro.lake.csv_loader import dump_csv, load_csv
from repro.lake.table import Column, Table


class TestLoadCsv:
    def test_basic_roundtrip(self, tmp_path):
        path = tmp_path / "games.csv"
        path.write_text("name,year\nMario,1998\nZelda,1986\n")
        table = load_csv(path)
        assert table.name == "games"
        assert table.column_names == ["name", "year"]
        assert table.column("name").values == ["Mario", "Zelda"]

    def test_quoted_fields(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text('name,desc\n"Mario, the game","fun"\n')
        table = load_csv(path)
        assert table.column("name").values == ["Mario, the game"]

    def test_short_rows_padded(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b,c\n1,2\n")
        table = load_csv(path)
        assert table.column("c").values == [""]

    def test_long_rows_truncated(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2,3,4\n")
        table = load_csv(path)
        assert table.n_columns == 2
        assert table.column("b").values == ["2"]

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        table = load_csv(path)
        assert table.n_columns == 0

    def test_explicit_name_and_key(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n")
        table = load_csv(path, name="custom", key_column="a")
        assert table.name == "custom"
        assert table.key_column == "a"

    def test_bogus_key_column_ignored(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n")
        table = load_csv(path, key_column="nope")
        assert table.key_column is None


class TestDumpCsv:
    def test_dump_then_load(self, tmp_path):
        table = Table(
            "t", [Column("x", ["1", "hello, world"]), Column("y", ["2", "3"])]
        )
        path = tmp_path / "out" / "t.csv"
        dump_csv(table, path)
        loaded = load_csv(path)
        assert loaded.column("x").values == table.column("x").values
        assert loaded.column("y").values == table.column("y").values
