"""Tests for the table model."""

import pytest

from repro.lake.table import Column, Table


@pytest.fixture()
def table():
    return Table(
        name="games",
        columns=[
            Column("name", ["Mario Party", "Zelda", "Metroid"]),
            Column("year", ["1998", "1986", "1994"]),
        ],
        key_column="name",
    )


class TestColumn:
    def test_len(self):
        assert len(Column("c", ["a", "b"])) == 2

    def test_distinct_ratio(self):
        assert Column("c", ["a", "a", "b", "c"]).distinct_ratio == pytest.approx(0.75)

    def test_distinct_ratio_empty(self):
        assert Column("c", []).distinct_ratio == 0.0

    def test_non_missing_filters_na(self):
        col = Column("c", ["x", "", "NA", "null", "None", "y", "n/a"])
        assert col.non_missing() == ["x", "y"]


class TestTable:
    def test_shape(self, table):
        assert table.n_rows == 3
        assert table.n_columns == 2
        assert table.column_names == ["name", "year"]

    def test_column_lookup(self, table):
        assert table.column("year").values[0] == "1998"

    def test_column_missing_raises(self, table):
        with pytest.raises(KeyError):
            table.column("publisher")

    def test_key_values(self, table):
        assert table.key_values() == ["Mario Party", "Zelda", "Metroid"]

    def test_key_values_without_key_raises(self):
        t = Table("t", [Column("a", ["1"])])
        with pytest.raises(ValueError):
            t.key_values()

    def test_row_and_iter(self, table):
        assert table.row(1) == {"name": "Zelda", "year": "1986"}
        assert len(list(table.iter_rows())) == 3

    def test_ragged_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            Table("bad", [Column("a", ["1"]), Column("b", ["1", "2"])])

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="key column"):
            Table("bad", [Column("a", ["1"])], key_column="nope")

    def test_from_rows(self):
        t = Table.from_rows("t", ["x", "y"], [["1", "2"], ["3", "4"]])
        assert t.column("x").values == ["1", "3"]
        assert t.column("y").values == ["2", "4"]

    def test_empty_table(self):
        t = Table("empty")
        assert t.n_rows == 0
        assert t.n_columns == 0
