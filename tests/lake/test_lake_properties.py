"""Property-based tests for the lake substrate (hypothesis)."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lake.csv_loader import dump_csv, load_csv
from repro.lake.preprocessing import expand_abbreviations, normalize_date, to_full_form
from repro.lake.table import Column, Table

# printable cell content including the CSV-hostile characters
cell_text = st.text(
    alphabet=string.ascii_letters + string.digits + ' ,"\'-_/.',
    max_size=20,
)


class TestCsvRoundtripProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(cell_text, cell_text), min_size=1, max_size=15
        )
    )
    def test_dump_load_identity(self, rows, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("csv")
        table = Table(
            "t",
            [
                Column("a", [r[0] for r in rows]),
                Column("b", [r[1] for r in rows]),
            ],
        )
        path = tmp / "t.csv"
        dump_csv(table, path)
        loaded = load_csv(path)
        assert loaded.column("a").values == table.column("a").values
        assert loaded.column("b").values == table.column("b").values


class TestPreprocessingProperties:
    @settings(max_examples=60, deadline=None)
    @given(text=cell_text)
    def test_expand_abbreviations_idempotent(self, text):
        once = expand_abbreviations(text)
        assert expand_abbreviations(once) == once

    @settings(max_examples=60, deadline=None)
    @given(text=cell_text)
    def test_normalize_date_idempotent(self, text):
        once = normalize_date(text)
        assert normalize_date(once) == once

    @settings(max_examples=60, deadline=None)
    @given(text=cell_text)
    def test_to_full_form_total(self, text):
        """Preprocessing never crashes and always returns a string."""
        out = to_full_form(text)
        assert isinstance(out, str)

    @settings(max_examples=40, deadline=None)
    @given(
        year=st.integers(1900, 2099),
        month=st.integers(1, 12),
        day=st.integers(1, 28),
    )
    def test_iso_and_us_dates_agree(self, year, month, day):
        iso = normalize_date(f"{year}-{month:02d}-{day:02d}")
        us = normalize_date(f"{month}/{day}/{year}")
        assert iso == us
