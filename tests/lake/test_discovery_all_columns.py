"""Tests for the all-columns query mode (§II-A option 3)."""

import pytest

from repro.lake.datagen import DataLakeGenerator
from repro.lake.discovery import JoinableTableSearch
from repro.lake.join import left_join
from repro.lake.table import Column, Table


@pytest.fixture(scope="module")
def setup():
    gen = DataLakeGenerator(seed=17, n_entities=60, dim=24)
    lake = gen.generate_lake(n_tables=20, rows_range=(10, 20))
    search = JoinableTableSearch(gen.embedder, n_pivots=3, levels=3,
                                 preprocess=False)
    search.index_tables(lake.tables)
    return gen, lake, search


class TestSearchAllColumns:
    def test_every_candidate_searched(self, setup):
        gen, lake, search = setup
        query, _ = gen.generate_query_table(n_rows=15, domain=0)
        per_column = search.search_all_columns(query, joinability=0.3)
        assert "key" in per_column
        # 'payload' is numeric -> not a candidate
        assert "payload" not in per_column

    def test_key_column_results_match_single_search(self, setup):
        gen, lake, search = setup
        query, _ = gen.generate_query_table(n_rows=15, domain=1)
        per_column = search.search_all_columns(query, joinability=0.3)
        single = search.search(query, query_column="key", joinability=0.3,
                               with_mappings=False)
        assert {h.ref for h in per_column["key"]} == {h.ref for h in single}

    def test_no_candidates_raises(self, setup):
        _, _, search = setup
        numbers_only = Table(
            "nums", [Column("n", ["1", "2", "3", "4", "5"])]
        )
        with pytest.raises(ValueError, match="candidate"):
            search.search_all_columns(numbers_only)


class TestDiscoveryToJoin:
    def test_end_to_end_materialised_join(self, setup):
        """Discovery hit -> record mapping -> left_join -> enriched table."""
        gen, lake, search = setup
        query, _ = gen.generate_query_table(n_rows=15, domain=0)
        hits = search.search(query, joinability=0.25)
        if not hits:
            pytest.skip("no joinable tables at this threshold")
        hit = hits[0]
        target = next(
            t for t in lake.tables if t.name == hit.ref.table_name
        )
        joined = left_join(query, target, hit.record_mapping)
        assert joined.n_rows == query.n_rows
        # at least the matched rows carry target attributes
        attr = next(c for c in joined.columns if c.name.startswith("attr"))
        matched_rows = {qi for qi, _ in hit.record_mapping}
        for qi in matched_rows:
            assert attr.values[qi] != ""
