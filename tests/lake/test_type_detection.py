"""Tests for the SATO-stand-in type detection."""

import pytest

from repro.lake.table import Column
from repro.lake.type_detection import (
    SemanticType,
    detect_column_type,
    is_date_value,
    is_identifier_value,
    is_numeric_value,
)


class TestValuePredicates:
    @pytest.mark.parametrize("v", ["42", "-3.14", "+7", "1,234,567", "0.5"])
    def test_numeric_accepts(self, v):
        assert is_numeric_value(v)

    @pytest.mark.parametrize("v", ["abc", "12a", "", "1 2", "1.2.3"])
    def test_numeric_rejects(self, v):
        assert not is_numeric_value(v)

    @pytest.mark.parametrize(
        "v", ["2021-03-05", "3/5/2021", "Mar 5, 2021", "March 5 2021", "5 March 2021"]
    )
    def test_date_accepts(self, v):
        assert is_date_value(v)

    @pytest.mark.parametrize("v", ["hello", "2021", "13-05", "May"])
    def test_date_rejects(self, v):
        assert not is_date_value(v)

    @pytest.mark.parametrize("v", ["AB-1234", "SKU99", "X_9Y"])
    def test_identifier_accepts(self, v):
        assert is_identifier_value(v)

    @pytest.mark.parametrize("v", ["hello", "ABCD", "ab-12"])
    def test_identifier_rejects(self, v):
        assert not is_identifier_value(v)


class TestColumnDetection:
    def test_numeric_column(self):
        col = Column("pop", ["123", "456", "789", "1,000", "42"])
        assert detect_column_type(col) == SemanticType.NUMERIC

    def test_date_column(self):
        col = Column("d", ["2020-01-02", "3/4/2021", "Mar 5, 2019", "2018-12-31", "1/1/11"])
        assert detect_column_type(col) == SemanticType.DATE

    def test_identifier_column(self):
        col = Column("id", ["SKU-001", "SKU-002", "SKU-003", "SKU-004", "SKU-005"])
        assert detect_column_type(col) == SemanticType.IDENTIFIER

    def test_string_column(self):
        col = Column("name", ["Mario", "Zelda", "Metroid", "Pokemon", "Kirby"])
        assert detect_column_type(col) == SemanticType.STRING

    def test_empty_column(self):
        assert detect_column_type(Column("e", ["", "NA", "null"])) == SemanticType.EMPTY

    def test_dominance_threshold(self):
        # 3/5 numeric is below the 80% dominance bar -> STRING
        col = Column("mixed", ["1", "2", "3", "abc", "def"])
        assert detect_column_type(col) == SemanticType.STRING

    def test_missing_values_ignored(self):
        col = Column("pop", ["", "NA", "1", "2", "3", "4", "5"])
        assert detect_column_type(col) == SemanticType.NUMERIC
