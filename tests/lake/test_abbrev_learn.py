"""Tests for the abbreviation-rule learner."""

import pytest

from repro.lake.abbrev_learn import candidate_rules, learn_abbreviations
from repro.lake.preprocessing import expand_abbreviations


class TestCandidateRules:
    def test_prefix_rule(self):
        assert ("st", "street") in candidate_rules("Main St", "Main Street")

    def test_subsequence_rule(self):
        assert ("blvd", "boulevard") in candidate_rules(
            "Sunset Blvd", "Sunset Boulevard"
        )

    def test_initialism(self):
        assert candidate_rules("NY", "New York") == [("ny", "new york")]

    def test_no_rule_for_unrelated_tokens(self):
        assert candidate_rules("Oak Rd", "Elm Street") == []

    def test_anchor_at_first_letter_required(self):
        # "treet" is a subsequence of "street" but not anchored
        assert ("treet", "street") not in candidate_rules(
            "Main treet", "Main street"
        )

    def test_equal_tokens_skipped(self):
        assert candidate_rules("Main Street", "Main Street") == []


class TestLearnAbbreviations:
    def test_learns_from_repeated_evidence(self):
        pairs = [
            ("Main St", "Main Street"),
            ("Oak St", "Oak Street"),
            ("Elm St", "Elm Street"),
            ("Pine Ave", "Pine Avenue"),
            ("Lake Ave", "Lake Avenue"),
        ]
        rules = learn_abbreviations(pairs, min_support=2)
        assert rules["st"] == "Street"
        assert rules["ave"] == "Avenue"

    def test_min_support_filters_noise(self):
        pairs = [
            ("Main St", "Main Street"),
            ("X Qz", "X Quartz"),  # appears once -> dropped
            ("Oak St", "Oak Street"),
        ]
        rules = learn_abbreviations(pairs, min_support=2)
        assert "qz" not in rules
        assert "st" in rules

    def test_most_frequent_expansion_wins(self):
        pairs = [("A St", "A Street")] * 3 + [("B St", "B Stadium")] * 2
        rules = learn_abbreviations(pairs, min_support=1)
        assert rules["st"] == "Street"

    def test_empty_input(self):
        assert learn_abbreviations([]) == {}

    def test_learned_rules_feed_preprocessing(self):
        pairs = [
            ("Acme Mfg", "Acme Manufacturing"),
            ("Zorro Mfg", "Zorro Manufacturing"),
        ]
        rules = learn_abbreviations(pairs, min_support=2)
        out = expand_abbreviations("Bolt Mfg", extra=rules)
        assert out == "Bolt Manufacturing"
