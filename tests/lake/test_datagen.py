"""Tests for the synthetic data-lake generator."""

import numpy as np
import pytest

from repro.core.metric import EuclideanMetric
from repro.lake.datagen import DEFAULT_KIND_WEIGHTS, DataLakeGenerator


@pytest.fixture(scope="module")
def gen():
    return DataLakeGenerator(seed=0, n_entities=80, dim=24)


@pytest.fixture(scope="module")
def lake(gen):
    return gen.generate_lake(n_tables=30, rows_range=(8, 20))


class TestUniverse:
    def test_entity_count(self, gen):
        assert len(gen.entities) == 80

    def test_variant_kinds_present(self, gen):
        entity = gen.entities[0]
        assert set(entity.variants) == {"exact", "misspell", "abbrev", "synonym"}
        assert entity.canonical in entity.variants["exact"]

    def test_all_surfaces_registered(self, gen):
        for entity in gen.entities[:10]:
            for surface in entity.all_surfaces():
                assert gen.embedder.entity_of(surface) == entity.entity_id

    def test_surface_geometry(self, gen):
        """Same-entity variants within the paper's default tau; strangers far."""
        metric = EuclideanMetric()
        tau_default = 0.06 * 2  # 6% of max distance
        entity = gen.entities[0]
        vectors = gen.embedder.embed_column(entity.all_surfaces())
        assert metric.pairwise(vectors, vectors).max() < tau_default

    def test_confusable_siblings_are_near_but_not_within_tau(self, gen):
        metric = EuclideanMetric()
        # siblings are appended after the base entities
        n_base = int(round(80 * (1 - 0.12)))
        sibling = gen.entities[n_base]
        distances = []
        for other in gen.entities[:n_base]:
            a = gen.embedder.embed(sibling.canonical)
            b = gen.embedder.embed(other.canonical)
            distances.append(metric.distance(a, b))
        nearest = min(distances)
        assert 0.05 < nearest < 0.4  # near one parent, not inside default tau

    def test_misspell_differs_from_canonical(self, gen):
        entity = gen.entities[1]
        assert entity.variants["misspell"][0] != entity.canonical

    def test_deterministic(self):
        a = DataLakeGenerator(seed=5, n_entities=10)
        b = DataLakeGenerator(seed=5, n_entities=10)
        assert [e.canonical for e in a.entities] == [e.canonical for e in b.entities]

    def test_sample_surface_kinds(self, gen):
        """Fresh misspellings are generated per occurrence, but every
        sampled surface is registered to the right entity."""
        entity = gen.entities[2]
        surfaces = {gen.sample_surface(entity) for _ in range(50)}
        for surface in surfaces:
            assert gen.embedder.entity_of(surface) == entity.entity_id
        assert len(surfaces) > 1
        # fresh misspellings exist beyond the fixed variant pool
        assert surfaces - set(entity.all_surfaces())


class TestLake:
    def test_shapes(self, lake):
        assert lake.n_tables == 30
        assert len(lake.string_columns) == 30
        assert len(lake.entity_columns) == 30
        for table, keys, ents in zip(lake.tables, lake.string_columns, lake.entity_columns):
            assert table.n_rows == len(keys) == len(ents)
            assert table.key_column == "key"

    def test_distractor_tables_have_no_entities(self, lake):
        n_distractors = int(round(30 * 0.15))
        for i in range(n_distractors):
            assert all(e is None for e in lake.entity_columns[i])

    def test_entity_tables_have_entities(self, lake):
        assert any(
            any(e is not None for e in ents) for ents in lake.entity_columns[5:]
        )

    def test_vector_columns_match_strings(self, lake):
        vectors = lake.vector_columns()
        assert len(vectors) == 30
        for vec, keys in zip(vectors, lake.string_columns):
            assert vec.shape == (len(keys), 24)

    def test_true_joinability_range(self, lake, gen):
        _, q_entities = gen.generate_query_table(n_rows=15, domain=0)
        for i in range(lake.n_tables):
            assert 0.0 <= lake.true_joinability(q_entities, i) <= 1.0

    def test_true_joinable_monotone_in_threshold(self, lake, gen):
        _, q_entities = gen.generate_query_table(n_rows=15, domain=1)
        loose = lake.true_joinable_tables(q_entities, 0.1)
        strict = lake.true_joinable_tables(q_entities, 0.5)
        assert strict <= loose

    def test_query_domain_gives_joinable_tables(self, gen, lake):
        _, q_entities = gen.generate_query_table(n_rows=15, domain=0)
        assert len(lake.true_joinable_tables(q_entities, 0.2)) > 0


class TestMLTask:
    @pytest.mark.parametrize("kind", ["classification", "regression"])
    def test_task_shapes(self, kind):
        gen = DataLakeGenerator(seed=2, n_entities=60)
        task = gen.make_ml_task(kind, n_rows=50, n_lake_tables=10)
        assert task.kind == kind
        assert task.query_table.n_rows == 50
        assert len(task.query_entities) == 50
        assert task.label_column in task.query_table.column_names

    def test_regression_labels_parse(self):
        gen = DataLakeGenerator(seed=3, n_entities=60)
        task = gen.make_ml_task("regression", n_rows=30, n_lake_tables=8)
        values = [float(v) for v in task.query_table.column("label").values]
        assert np.std(values) > 0

    def test_classification_labels_are_classes(self):
        gen = DataLakeGenerator(seed=4, n_entities=60, n_classes=5)
        task = gen.make_ml_task("classification", n_rows=30, n_lake_tables=8)
        labels = set(task.query_table.column("label").values)
        assert labels <= {str(i) for i in range(5)}

    def test_invalid_kind(self, gen):
        with pytest.raises(ValueError):
            gen.make_ml_task("ranking")

    def test_feature_tables_carry_signal(self):
        gen = DataLakeGenerator(seed=5, n_entities=60)
        task = gen.make_ml_task("classification", n_rows=30, n_lake_tables=8)
        feature_names = {
            col.name for table in task.lake.tables for col in table.columns
        }
        assert any(name.startswith("feat_") for name in feature_names)
