"""Tests for join materialisation."""

import pytest

from repro.lake.join import best_match_per_row, join_coverage, left_join
from repro.lake.table import Column, Table


@pytest.fixture()
def tables():
    query = Table(
        "games",
        [
            Column("name", ["Mario", "Zelda", "Metroid"]),
            Column("year", ["1998", "1986", "1994"]),
        ],
        key_column="name",
    )
    target = Table(
        "sales",
        [
            Column("title", ["Zelda", "Mario", "Kirby"]),
            Column("sold", ["7.6", "9.0", "3.3"]),
            Column("year", ["1986", "1998", "1992"]),
        ],
    )
    return query, target


class TestBestMatch:
    def test_first_pair_wins(self):
        assert best_match_per_row([(0, 5), (0, 9), (2, 1)], 3) == [5, None, 1]

    def test_out_of_range_ignored(self):
        assert best_match_per_row([(7, 0), (-1, 0)], 2) == [None, None]

    def test_empty_mapping(self):
        assert best_match_per_row([], 2) == [None, None]


class TestLeftJoin:
    def test_basic_join(self, tables):
        query, target = tables
        joined = left_join(query, target, [(0, 1), (1, 0)])
        assert joined.n_rows == 3
        assert joined.column("sold").values == ["9.0", "7.6", ""]
        assert joined.column("title").values == ["Mario", "Zelda", ""]

    def test_name_clash_suffixed(self, tables):
        query, target = tables
        joined = left_join(query, target, [(0, 1)])
        assert "year" in joined.column_names           # query's year
        assert "year_sales" in joined.column_names     # target's year
        assert joined.column("year").values == ["1998", "1986", "1994"]
        assert joined.column("year_sales").values == ["1998", "", ""]

    def test_custom_suffix_and_missing(self, tables):
        query, target = tables
        joined = left_join(query, target, [(2, 2)], suffix="_t", missing="NA")
        assert joined.column("year_t").values == ["NA", "NA", "1992"]

    def test_all_query_rows_kept(self, tables):
        query, target = tables
        joined = left_join(query, target, [])
        assert joined.n_rows == query.n_rows
        assert joined.column("sold").values == ["", "", ""]

    def test_key_column_preserved(self, tables):
        query, target = tables
        joined = left_join(query, target, [(0, 1)])
        assert joined.key_column == "name"

    def test_join_name(self, tables):
        query, target = tables
        assert left_join(query, target, []).name == "games_x_sales"

    def test_does_not_mutate_inputs(self, tables):
        query, target = tables
        left_join(query, target, [(0, 1)])
        assert query.n_columns == 2
        assert target.n_columns == 3


class TestCoverage:
    def test_coverage_fraction(self):
        assert join_coverage([(0, 1), (2, 0)], 4) == pytest.approx(0.5)

    def test_duplicates_counted_once(self):
        assert join_coverage([(0, 1), (0, 2)], 2) == pytest.approx(0.5)

    def test_empty(self):
        assert join_coverage([], 3) == 0.0
        assert join_coverage([(0, 0)], 0) == 0.0
