"""Tests for the table repository (offline component)."""

import numpy as np
import pytest

from repro.embedding.hashing import HashingNGramEmbedder
from repro.lake.repository import ColumnRef, TableRepository
from repro.lake.table import Column, Table


def _games_table(name="games"):
    return Table(
        name,
        [
            Column("title", ["Mario Party", "Zelda Quest", "Metroid Saga",
                             "Kirby Land", "Pikmin World"]),
            Column("year", ["1998", "1986", "1994", "1992", "2001"]),
        ],
        key_column="title",
    )


class TestIngestion:
    def test_add_and_len(self):
        repo = TableRepository()
        repo.add_table(_games_table())
        assert len(repo) == 1

    def test_name_collision_suffix(self):
        repo = TableRepository()
        repo.add_table(_games_table())
        repo.add_table(_games_table())
        assert set(repo.tables) == {"games", "games_2"}

    def test_load_directory(self, tmp_path):
        (tmp_path / "a.csv").write_text("name,v\naa bb,1\ncc dd,2\nee ff,3\ngg hh,4\nii jj,5\n")
        (tmp_path / "b.csv").write_text("x\n1\n")
        repo = TableRepository()
        assert repo.load_directory(tmp_path) == 2
        assert "a" in repo.tables


class TestExtraction:
    def test_extract_key_columns(self):
        repo = TableRepository()
        repo.add_table(_games_table())
        refs, columns = repo.extract_key_columns()
        assert refs == [ColumnRef("games", "title")]
        assert columns[0][0] == "Mario Party"

    def test_unusable_tables_skipped(self):
        repo = TableRepository()
        repo.add_table(Table("tiny", [Column("a", ["x", "y"])]))
        repo.add_table(_games_table())
        refs, _ = repo.extract_key_columns()
        assert [r.table_name for r in refs] == ["games"]

    def test_preprocessing_applied(self):
        repo = TableRepository(preprocess=True)
        repo.add_table(
            Table(
                "addresses",
                [Column("addr", ["1 N Main St", "2 S Oak Rd", "3 E Pine Ave",
                                 "4 W Elm Blvd", "5 N Lake Dr"])],
                key_column="addr",
            )
        )
        _, columns = repo.extract_key_columns()
        assert columns[0][0] == "1 North Main Street"

    def test_preprocessing_disabled(self):
        repo = TableRepository(preprocess=False)
        repo.add_table(
            Table(
                "addresses",
                [Column("addr", ["1 N Main St", "2 S Oak Rd", "3 E Pine Ave",
                                 "4 W Elm Blvd", "5 N Lake Dr"])],
                key_column="addr",
            )
        )
        _, columns = repo.extract_key_columns()
        assert columns[0][0] == "1 N Main St"

    def test_vectorize(self):
        repo = TableRepository()
        repo.add_table(_games_table())
        refs, vectors = repo.vectorize(HashingNGramEmbedder(dim=16))
        assert len(refs) == len(vectors) == 1
        assert vectors[0].shape == (5, 16)
        np.testing.assert_allclose(np.linalg.norm(vectors[0], axis=1), 1.0)
