"""Tests for dataset statistics (Table III machinery)."""

import numpy as np
import pytest

from repro.lake.datagen import DataLakeGenerator
from repro.lake.statistics import DatasetStatistics, dataset_statistics, lake_statistics


class TestDatasetStatistics:
    def test_basic_profile(self):
        columns = [np.zeros((5, 8)), np.zeros((15, 8))]
        stats = dataset_statistics("toy", columns, model="hashing")
        assert stats.n_tables == 2
        assert stats.n_vectors == 20
        assert stats.n_columns == 2
        assert stats.avg_vectors_per_column == pytest.approx(10.0)
        assert stats.dim == 8
        assert stats.model == "hashing"

    def test_explicit_table_count(self):
        columns = [np.zeros((5, 4))]
        stats = dataset_statistics("t", columns, n_tables=42)
        assert stats.n_tables == 42

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dataset_statistics("e", [])

    def test_as_row_matches_headers(self):
        stats = dataset_statistics("toy", [np.zeros((5, 8))])
        assert len(stats.as_row()) == len(DatasetStatistics.HEADERS)


class TestLakeStatistics:
    def test_profile_from_lake(self):
        gen = DataLakeGenerator(seed=0, n_entities=30, dim=16)
        lake = gen.generate_lake(n_tables=10, rows_range=(5, 10))
        stats = lake_statistics("synthetic", lake)
        assert stats.n_tables == 10
        assert stats.n_columns == 10
        assert stats.n_vectors == sum(len(v) for v in lake.string_columns)
        assert stats.dim == 16
