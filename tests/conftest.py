"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metric import EuclideanMetric, normalize_rows


def make_columns(rng: np.random.Generator, n_columns: int, dim: int,
                 rows: tuple[int, int] = (3, 25)) -> list[np.ndarray]:
    """Random unit-vector columns of varying length."""
    return [
        normalize_rows(rng.normal(size=(int(rng.integers(*rows)), dim)))
        for _ in range(n_columns)
    ]


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20210329)  # the paper's arXiv v4 date


@pytest.fixture(scope="session")
def metric() -> EuclideanMetric:
    return EuclideanMetric()


@pytest.fixture(scope="session")
def small_columns(rng) -> list[np.ndarray]:
    """A small repository: 40 columns of 8-dim unit vectors."""
    return make_columns(np.random.default_rng(11), 40, 8)


@pytest.fixture(scope="session")
def small_query(rng) -> np.ndarray:
    return normalize_rows(np.random.default_rng(12).normal(size=(15, 8)))


@pytest.fixture(scope="session")
def clustered_columns() -> list[np.ndarray]:
    """Columns with cluster structure (closer to real embedding data)."""
    rng = np.random.default_rng(13)
    centers = normalize_rows(rng.normal(size=(12, 8)))
    columns = []
    for _ in range(30):
        picks = rng.choice(12, size=int(rng.integers(4, 20)))
        vectors = centers[picks] + rng.normal(scale=0.05, size=(len(picks), 8))
        columns.append(normalize_rows(vectors))
    return columns
