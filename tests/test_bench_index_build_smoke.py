"""CI-size smoke test for the index-build benchmark.

Runs ``benchmarks/bench_index_build.py``'s comparison harness on a small
lake (seconds, not minutes). Unlike the batch-engine smoke test, the
headline >= 3x claim *is* asserted here: the array-native core's margin
over the row-by-row reference builder is wide enough to hold at CI size.
"""

import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def bench_module():
    sys.path.insert(0, str(BENCHMARKS))
    try:
        import bench_index_build

        yield bench_index_build
    finally:
        sys.path.remove(str(BENCHMARKS))


def test_build_comparison_runs_at_ci_size(bench_module):
    from common import make_dataset

    dataset = make_dataset(
        "smoke",
        n_tables=120,
        rows_range=(8, 20),
        dim=16,
        n_entities=120,
        n_queries=1,
        query_rows=10,
        seed=5,
    )
    out = bench_module.run_build_comparison(dataset, n_pivots=3, levels=3)
    # run_build_comparison asserts postings equivalence and the save/load
    # answer check internally; here we check the report shape and the
    # speedup claim at CI size.
    assert out["n_columns"] >= 120
    assert out["ref_core_seconds"] > 0 and out["array_core_seconds"] > 0
    assert out["save_seconds"] > 0 and out["load_seconds"] > 0
    assert out["speedup"] >= bench_module.MIN_SPEEDUP, (
        f"array core must be >= {bench_module.MIN_SPEEDUP}x faster than the "
        f"reference builder at CI size, got {out['speedup']:.2f}x"
    )
