"""CI-size smoke test for the tail-latency benchmark.

Runs ``benchmarks/bench_tail_latency.py``'s two harnesses — the
hedging-on/off trace and the overload burst — at tiny scale, so the
benchmark stays importable and its exactness checks (every hedged /
admitted reply equal hit-for-hit to single-node search) run in every
test pass. The >= 30% p99-improvement claim is asserted only at full
benchmark scale (``python benchmarks/bench_tail_latency.py``, the CI
chaos job), where the straggler stall dwarfs scheduling noise.
"""

import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def bench_module():
    sys.path.insert(0, str(BENCHMARKS))
    try:
        import bench_tail_latency

        yield bench_tail_latency
    finally:
        sys.path.remove(str(BENCHMARKS))


@pytest.fixture(scope="module")
def dataset(bench_module):
    return bench_module.tail_like(scale=0.4, seed=5)


def test_tail_comparison_runs_at_ci_size(bench_module, dataset, tmp_path):
    out = bench_module.run_tail_comparison(
        dataset,
        n_requests=12,
        n_clients=2,
        n_partitions=2,
        slow_probability=0.25,
        slow_delay=0.2,
        n_pivots=2,
        levels=2,
        lake_dir=tmp_path,
    )
    # run_tail_comparison asserts every reply == single-node search
    # internally; here we check the report shape. No p99 assertion at
    # smoke scale — 12 requests is not a tail.
    assert out["n_requests"] == 12
    for arm in ("hedging_off", "hedging_on"):
        stats = out[arm]
        assert 0 < stats["p50"] <= stats["p95"] <= stats["p99"] <= stats["max"]
        assert stats["faults_fired"] >= 0
        # coordinator stage breakdown rides along into the BENCH json
        assert stats["stage_seconds"].keys() == {"merge", "scatter"}
        assert all(v >= 0 for v in stats["stage_seconds"].values())
    assert out["hedging_off"]["hedges_fired"] == 0
    assert "p99_improvement" in out


def test_overload_sheds_and_drains_at_ci_size(bench_module, dataset):
    out = bench_module.run_overload(
        dataset,
        capacity=1,
        n_clients=6,
        requests_per_client=2,
        work_delay=0.05,
        n_columns=12,
    )
    # every offered request got a real HTTP answer: an exact 200 or a
    # 429 with Retry-After (run_overload asserts both internally)
    assert out["served"] + out["shed"] == out["offered"] == 12
    assert out["served"] >= 1
    assert out["shed"] >= 1
    assert out["inflight_after"] == 0
