"""Strict Prometheus text-format conformance for every /metrics surface.

A small line-format parser (no third-party deps) checks the exposition
grammar — ``# HELP`` / ``# TYPE`` headers, sample lines, label escaping,
summary ``quantile``/``_sum``/``_count`` structure — and is then applied
to the three real endpoints: the single-node serve server, the cluster
coordinator's ``metrics_text`` and the cluster HTTP server.
"""

import re
import threading

import numpy as np
import pytest

from repro.cluster.local import LocalCluster
from repro.core.index import PexesoIndex
from repro.core.metric import normalize_rows
from repro.core.out_of_core import PartitionedPexeso
from repro.core.persistence import save_partitioned
from repro.serve.client import ServeClient
from repro.serve.server import make_server
from repro.serve.service import QueryService

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_VALUE = r"[-+]?(?:\d+(?:\.\d+)?(?:[eE][-+]?\d+)?|Inf|NaN)"
_SAMPLE_RE = re.compile(rf"^({_NAME})(?:\{{(.*)\}})? ({_VALUE})$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\["\\n])*)"')


def parse_exposition(text):
    """Parse Prometheus text exposition, failing on any grammar violation.

    Returns ``{family_name: {"kind", "help", "samples": [(name, labels,
    value), ...]}}``.  Enforces: HELP immediately followed by TYPE, every
    sample belongs to a declared family (allowing ``_sum``/``_count``
    suffixes on summaries), labels are well-formed and fully escaped, and
    no (name, labels) pair repeats.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    families = {}
    pending_help = None
    seen_series = set()
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert re.fullmatch(_NAME, name), f"bad family name: {name!r}"
            assert name not in families, f"duplicate HELP for {name}"
            assert "\n" not in help_text
            pending_help = (name, help_text)
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert kind in ("counter", "gauge", "summary"), kind
            assert pending_help is not None and pending_help[0] == name, \
                f"TYPE for {name} not preceded by its HELP"
            families[name] = {
                "kind": kind, "help": pending_help[1], "samples": [],
            }
            pending_help = None
        elif line.startswith("#"):
            raise AssertionError(f"unknown comment line: {line!r}")
        else:
            match = _SAMPLE_RE.match(line)
            assert match, f"malformed sample line: {line!r}"
            name, label_blob, raw_value = match.groups()
            family = _owning_family(families, name)
            labels = _parse_labels(label_blob)
            series = (name, tuple(sorted(labels.items())))
            assert series not in seen_series, f"duplicate series: {line!r}"
            seen_series.add(series)
            family["samples"].append((name, labels, float(raw_value)))
    assert pending_help is None, f"dangling HELP for {pending_help}"
    return families


def _owning_family(families, sample_name):
    if sample_name in families:
        return families[sample_name]
    for suffix in ("_sum", "_count"):
        base = sample_name.removesuffix(suffix)
        if base != sample_name and families.get(base, {}).get("kind") == \
                "summary":
            return families[base]
    raise AssertionError(f"sample {sample_name!r} has no declared family")


def _parse_labels(label_blob):
    if label_blob is None:
        return {}
    assert label_blob, "empty label braces"
    labels = {}
    rebuilt = []
    for match in _LABEL_RE.finditer(label_blob):
        key, value = match.groups()
        assert key not in labels, f"duplicate label {key!r}"
        labels[key] = value
        rebuilt.append(match.group(0))
    assert ",".join(rebuilt) == label_blob, \
        f"labels not fully parseable: {label_blob!r}"
    return labels


def assert_summary_shape(families, name, label_subset=None):
    """A summary family must expose quantile series plus _sum/_count."""
    family = families[name]
    assert family["kind"] == "summary"

    def matches(labels):
        return label_subset is None or all(
            labels.get(k) == v for k, v in label_subset.items()
        )

    quantiles = [
        labels["quantile"] for sample_name, labels, _ in family["samples"]
        if sample_name == name and matches(labels)
    ]
    assert quantiles == ["0.5", "0.95", "0.99"]
    sums = [v for n, labels, v in family["samples"]
            if n == f"{name}_sum" and matches(labels)]
    counts = [v for n, labels, v in family["samples"]
              if n == f"{name}_count" and matches(labels)]
    assert len(sums) == 1 and len(counts) == 1
    assert counts[0] == int(counts[0]) and counts[0] >= 1


class TestParserRejectsBadInput:
    def test_sample_without_family_fails(self):
        with pytest.raises(AssertionError):
            parse_exposition("orphan 1\n")

    def test_type_without_help_fails(self):
        with pytest.raises(AssertionError):
            parse_exposition("# TYPE x counter\nx 1\n")

    def test_unescaped_quote_in_label_fails(self):
        text = '# HELP x X.\n# TYPE x gauge\nx{a="b"c"} 1\n'
        with pytest.raises(AssertionError):
            parse_exposition(text)


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(13)
    return [
        normalize_rows(rng.normal(size=(int(rng.integers(5, 12)), 6)))
        for _ in range(18)
    ]


@pytest.fixture(scope="module")
def lake_dir(columns, tmp_path_factory):
    lake = tmp_path_factory.mktemp("obs-lake")
    part = PartitionedPexeso(n_pivots=2, levels=3, n_partitions=4)
    part.fit(columns)
    save_partitioned(part, lake)
    return lake


class TestServeEndpoint:
    @pytest.fixture()
    def served(self, columns):
        index = PexesoIndex.build(columns, n_pivots=3, levels=3)
        service = QueryService(
            index, window_ms=0, cache_size=8, exact_counts=True
        )
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield ServeClient(server.url)
        finally:
            server.shutdown()
            server.server_close()

    def test_serve_metrics_conform(self, served, columns):
        served.search(vectors=columns[2][:6], tau=0.6, joinability=0.3)
        families = parse_exposition(served.metrics())
        for legacy in (
            "pexeso_serve_cache_misses",
            "pexeso_serve_coalesced_batches",
            "pexeso_serve_generation",
            "pexeso_serve_coalesced_requests",
        ):
            assert legacy in families, f"missing legacy family {legacy}"
        assert families["pexeso_serve_cache_misses"]["kind"] == "counter"
        assert families["pexeso_serve_generation"]["kind"] == "gauge"
        assert_summary_shape(families, "pexeso_serve_batch_size")
        stage_family = families["pexeso_serve_stage_seconds"]
        stages = {
            labels["stage"] for _, labels, _ in stage_family["samples"]
        }
        assert "verify" in stages
        assert_summary_shape(
            families, "pexeso_serve_stage_seconds", {"stage": "verify"}
        )


class TestClusterEndpoints:
    @pytest.fixture(scope="class")
    def cluster(self, lake_dir):
        with LocalCluster(
            lake_dir,
            n_workers=2,
            replication=2,
            mode="thread",
            worker_kwargs=dict(
                exact_counts=True, window_ms=None, cache_size=0
            ),
        ) as running:
            yield running

    def test_cluster_http_metrics_conform(self, cluster, columns):
        cluster.client.search(vectors=columns[4][:6], tau=0.5,
                              joinability=0.3)
        families = parse_exposition(cluster.client.metrics())
        for legacy in (
            "pexeso_serve_cluster_requests",
            "pexeso_serve_cluster_workers_up",
            "pexeso_serve_cluster_worker_up",
            "pexeso_serve_cluster_breaker_open",
        ):
            assert legacy in families
        assert families["pexeso_serve_cluster_requests"]["kind"] == "counter"
        up_slots = {
            labels["slot"]
            for _, labels, _ in
            families["pexeso_serve_cluster_worker_up"]["samples"]
        }
        assert up_slots == {"0", "1"}
        # the HTTP layer merges in resilience gauges
        assert "pexeso_serve_admission_capacity" in families

    def test_coordinator_metrics_text_conforms(self, cluster, columns):
        cluster.client.search(vectors=columns[5][:5], tau=0.5,
                              joinability=0.3)
        text = cluster.coordinator.metrics_text()
        families = parse_exposition(text)
        latency = "pexeso_serve_cluster_slot_latency_seconds"
        assert latency in families
        served_slots = {
            labels["slot"] for name, labels, _ in
            families[latency]["samples"] if name == latency
        }
        assert served_slots  # at least one slot answered a scatter
        slot = sorted(served_slots)[0]
        assert_summary_shape(families, latency, {"slot": slot})
