"""Unit tests for spans, propagation, sampling and the slow-query log."""

import json

from repro.obs.trace import (
    NULL_SPAN,
    NullSpan,
    TraceContext,
    Tracer,
)


class TestTraceContext:
    def test_header_round_trip(self):
        ctx = TraceContext("t00000001", "s00000002", sampled=True)
        parsed = TraceContext.from_header(ctx.to_header())
        assert parsed.trace_id == "t00000001"
        assert parsed.span_id == "s00000002"
        assert parsed.sampled is True

    def test_unsampled_round_trip(self):
        ctx = TraceContext("t1", "s1", sampled=False)
        assert ctx.to_header().endswith(":0")
        assert TraceContext.from_header(ctx.to_header()).sampled is False

    def test_prefixed_ids_with_dashes_survive(self):
        # tracer prefixes may contain dashes — the colon separator keeps
        # such IDs unambiguous on the wire
        ctx = TraceContext("w-1-t00000009", "w-1-s00000004", sampled=True)
        parsed = TraceContext.from_header(ctx.to_header())
        assert parsed.trace_id == "w-1-t00000009"
        assert parsed.span_id == "w-1-s00000004"

    def test_malformed_headers_parse_to_none(self):
        for bad in (None, "", "junk", "a:b", "a:b:2", "::1", "a::1", "a:b:1:c"):
            assert TraceContext.from_header(bad) is None


class TestSpans:
    def test_root_trace_records_and_nests(self):
        tracer = Tracer()
        with tracer.trace("root") as root:
            with root.child("inner") as inner:
                inner.annotate(rows=3)
        spans = tracer.spans()
        assert [s["name"] for s in spans] == ["inner", "root"]
        assert spans[0]["parent_id"] == root.span_id
        assert spans[0]["annotations"] == {"rows": 3}
        assert spans[1]["parent_id"] is None
        assert all(s["duration_seconds"] >= 0 for s in spans)

    def test_child_without_parent_is_null_span(self):
        tracer = Tracer()
        span = tracer.span("orphan", parent=None)
        assert span is NULL_SPAN
        assert isinstance(span.child("x"), NullSpan)
        with span as s:
            s.annotate(ignored=True)
        assert tracer.spans() == []
        assert not span  # falsy, so callers can gate on it

    def test_remote_continuation_inherits_trace_and_sampling(self):
        coordinator = Tracer(prefix="c-")
        worker = Tracer(prefix="w-")
        with coordinator.trace("coordinator.search") as root:
            header = root.context().to_header()
        ctx = TraceContext.from_header(header)
        with worker.trace("service.search", parent=ctx) as remote:
            pass
        (record,) = worker.spans()
        assert record["trace_id"] == root.trace_id
        assert record["parent_id"] == root.span_id
        assert remote.remote_parent is True

    def test_unsampled_context_propagates_without_recording(self):
        tracer = Tracer(sample_rate=0.0)
        span = tracer.trace("root")
        assert span.sampled is False
        assert span.context().to_header().endswith(":0")
        child = span.child("inner")
        child.finish()
        span.finish()
        assert tracer.spans() == []

    def test_deterministic_sampling_records_every_other_trace(self):
        tracer = Tracer(sample_rate=0.5)
        decisions = [tracer.trace(f"r{i}").sampled for i in range(10)]
        assert sum(decisions) == 5
        # the accumulator fires on every second root, deterministically
        assert decisions == [False, True] * 5

    def test_rate_one_samples_everything_rate_zero_nothing(self):
        assert all(Tracer(sample_rate=1.0).trace("r").sampled
                   for _ in range(5))
        assert not any(Tracer(sample_rate=0.0).trace("r").sampled
                       for _ in range(5))

    def test_exception_annotates_error(self):
        tracer = Tracer()
        try:
            with tracer.trace("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        (record,) = tracer.spans()
        assert record["annotations"]["error"] == "RuntimeError"

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(max_spans=4)
        for i in range(10):
            tracer.trace(f"r{i}").finish()
        assert len(tracer.spans()) == 4
        assert tracer.spans()[0]["name"] == "r6"


class TestTraceTrees:
    def test_traces_groups_spans_into_trees(self):
        tracer = Tracer()
        with tracer.trace("root") as root:
            with root.child("a") as a:
                with a.child("a1"):
                    pass
            with root.child("b"):
                pass
        (tree,) = tracer.traces()
        assert tree["trace_id"] == root.trace_id
        assert tree["n_spans"] == 4
        (top,) = tree["roots"]
        assert top["name"] == "root"
        assert [c["name"] for c in top["children"]] == ["a", "b"]
        assert [c["name"] for c in top["children"][0]["children"]] == ["a1"]

    def test_remote_parented_span_becomes_local_root(self):
        worker = Tracer()
        ctx = TraceContext("t-far", "s-far", sampled=True)
        with worker.trace("service.search", parent=ctx):
            pass
        (tree,) = worker.traces()
        assert tree["roots"][0]["name"] == "service.search"

    def test_loopback_context_from_own_span_nests_locally(self):
        # a thread-mode cluster serialises a context over HTTP and hands
        # it back to the *same* tracer — the parent really is local, so
        # the continuation must nest under it, not split off a new root
        tracer = Tracer()
        with tracer.trace("outer") as outer:
            with outer.child("inner"):
                pass
        inner_id = tracer.spans()[0]["span_id"]
        with tracer.trace(
            "continued",
            parent=TraceContext(outer.trace_id, inner_id, sampled=True),
        ):
            pass
        (tree,) = tracer.traces()
        (root,) = tree["roots"]
        assert root["name"] == "outer"
        (inner,) = root["children"]
        assert [c["name"] for c in inner["children"]] == ["continued"]
        assert inner["children"][0]["remote_parent"] is False

    def test_foreign_span_id_is_never_mistaken_for_loopback(self):
        # two processes number spans independently, so a remote parent's
        # ID can *look* locally shaped — it only counts as loopback if
        # this tracer actually issued it (regression: an HTTP client and
        # server, both unprefixed, produced a tree with no roots at all)
        tracer = Tracer()
        tracer.trace("local").finish()
        with tracer.trace(
            "continued",
            parent=TraceContext("t-far", "s00000099", sampled=True),
        ):
            pass
        trees = {t["trace_id"]: t for t in tracer.traces()}
        (continued,) = trees["t-far"]["roots"]
        assert continued["name"] == "continued"
        assert continued["remote_parent"] is True

    def test_prefixed_tracer_rejects_unprefixed_collision(self):
        # the CLI gives each process a distinct prefix; an inbound ID
        # numbered like a local span but missing the prefix stays remote
        server = Tracer(prefix="a1-")
        server.trace("local").finish()
        with server.trace(
            "serve.search",
            parent=TraceContext("t-client", "s00000001", sampled=True),
        ):
            pass
        trees = {t["trace_id"]: t for t in server.traces()}
        (root,) = trees["t-client"]["roots"]
        assert root["name"] == "serve.search"
        assert root["remote_parent"] is True


class TestSlowQueryLog:
    def test_slow_local_roots_emit_structured_json(self):
        lines = []
        tracer = Tracer(slow_query_seconds=0.0, slow_query_sink=lines.append)
        with tracer.trace("serve.search") as span:
            span.annotate(n_queries=2)
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["event"] == "slow_query"
        assert entry["name"] == "serve.search"
        assert entry["trace_id"] == span.trace_id
        assert entry["threshold_seconds"] == 0.0
        assert entry["annotations"] == {"n_queries": 2}
        assert tracer.slow_queries() == [entry]

    def test_children_never_hit_the_slow_log(self):
        lines = []
        tracer = Tracer(slow_query_seconds=0.0, slow_query_sink=lines.append)
        with tracer.trace("root") as root:
            with root.child("inner"):
                pass
        assert [json.loads(line)["name"] for line in lines] == ["root"]

    def test_threshold_filters_fast_queries(self):
        lines = []
        tracer = Tracer(slow_query_seconds=60.0, slow_query_sink=lines.append)
        tracer.trace("fast").finish()
        assert lines == []

    def test_configure_adjusts_knobs(self):
        tracer = Tracer()
        tracer.configure(sample_rate=0.0, slow_query_seconds=1.5)
        assert tracer.sample_rate == 0.0
        assert tracer.slow_query_seconds == 1.5
