"""Unit tests for the metrics registry and the bounded histogram."""

import math
import threading

import pytest

from repro.cluster.resilience import LatencyTracker
from repro.obs.metrics import (
    BoundedHistogram,
    MetricsRegistry,
    escape_label_value,
)


class TestBoundedHistogram:
    def test_lifetime_totals_survive_window_eviction(self):
        hist = BoundedHistogram(maxlen=4)
        for v in range(10):
            hist.add(v)
        assert len(hist) == 4          # window bounded
        assert hist.count == 10        # lifetime exact
        assert hist.total == sum(range(10))
        assert hist.max_value == 9
        assert list(hist) == [6, 7, 8, 9]

    def test_append_alias_and_list_equality(self):
        hist = BoundedHistogram()
        hist.append(3)
        hist.append(5)
        assert hist == [3, 5]
        assert hist != [3]
        assert sum(hist) == 8
        assert max(hist) == 5

    def test_nearest_rank_quantile_matches_latency_tracker(self):
        samples = [float(v) for v in range(1, 21)]
        hist = BoundedHistogram(samples)
        tracker = LatencyTracker(window=64)
        for v in samples:
            tracker.record(v)
        for q in (0.5, 0.95, 0.99):
            assert hist.quantile(q) == tracker.quantile(q)
        # p95 of 20 samples is the 19th smallest, never the max
        assert hist.quantile(0.95) == 19.0

    def test_empty_quantile_returns_default(self):
        assert BoundedHistogram().quantile(0.5, default=0.25) == 0.25

    def test_merge_adds_totals_and_concatenates_windows(self):
        a = BoundedHistogram([1, 2], maxlen=8)
        b = BoundedHistogram([3], maxlen=8)
        merged = a + b
        assert merged == [1, 2, 3]
        assert merged.count == 3
        assert merged.total == 6
        # list operands keep the SearchStats field-wise merge working
        assert (a + [7]).count == 3
        assert ([7] + a) == [7, 1, 2]

    def test_set_maxlen_rebounds_window_keeps_totals(self):
        hist = BoundedHistogram(range(10), maxlen=100)
        hist.set_maxlen(3)
        assert list(hist) == [7, 8, 9]
        assert hist.count == 10
        assert hist.total == sum(range(10))

    def test_rejects_bad_maxlen(self):
        with pytest.raises(ValueError):
            BoundedHistogram(maxlen=0)
        with pytest.raises(ValueError):
            BoundedHistogram().set_maxlen(0)


class TestEscaping:
    def test_label_value_escapes(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_plain_values_pass_through(self):
        assert escape_label_value("slot-0") == "slot-0"
        assert escape_label_value(3) == "3"


class TestMetricsRegistry:
    def test_counter_and_gauge_render_with_headers(self):
        reg = MetricsRegistry(prefix="x_")
        reg.counter("hits", "Hits.", 3)
        reg.gauge("capacity", "Capacity.", 1.0)
        text = reg.render()
        assert "# HELP x_hits Hits.\n# TYPE x_hits counter\nx_hits 3\n" in text
        # value formatting keeps the Python type: ints bare, floats with
        # the decimal point (dashboards parse these literally)
        assert "x_capacity 1.0" in text
        assert text.endswith("\n")

    def test_labelled_samples_share_one_family(self):
        reg = MetricsRegistry()
        reg.gauge("up", "Up.", 1, labels={"slot": 0})
        reg.gauge("up", "Up.", 0, labels={"slot": 1})
        text = reg.render()
        assert text.count("# TYPE up gauge") == 1
        assert 'up{slot="0"} 1' in text
        assert 'up{slot="1"} 0' in text

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("n", "N.", 1)
        with pytest.raises(ValueError):
            reg.gauge("n", "N.", 1)

    def test_summary_from_histogram_source(self):
        hist = BoundedHistogram([float(v) for v in range(1, 21)])
        reg = MetricsRegistry()
        reg.summary("lat", "Latency.", source=hist, labels={"stage": "verify"})
        text = reg.render()
        assert '# TYPE lat summary' in text
        assert 'lat{stage="verify",quantile="0.5"}' in text
        assert 'lat{stage="verify",quantile="0.95"} 19.0' in text
        assert 'lat_sum{stage="verify"} 210.0' in text
        assert 'lat_count{stage="verify"} 20' in text

    def test_summary_from_latency_tracker_source(self):
        tracker = LatencyTracker()
        tracker.record(0.25)
        tracker.record(0.75)
        reg = MetricsRegistry()
        reg.summary("call", "Call latency.", source=tracker)
        text = reg.render()
        assert "call_count 2" in text
        assert "call_sum 1.0" in text

    def test_help_line_escapes_newlines(self):
        reg = MetricsRegistry()
        reg.gauge("g", "line one\nline two", 1)
        assert "# HELP g line one\\nline two" in reg.render()

    def test_thread_safety_under_concurrent_samples(self):
        reg = MetricsRegistry()
        errors = []

        def work(slot):
            try:
                for i in range(200):
                    reg.counter("c", "C.", i, labels={"slot": slot})
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert reg.render().count("# TYPE c counter") == 1

    def test_histogram_mean_is_lifetime(self):
        hist = BoundedHistogram(maxlen=2)
        hist.extend([1.0, 2.0, 3.0])
        assert math.isclose(hist.mean(), 2.0)
