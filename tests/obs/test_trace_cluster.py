"""End-to-end tracing through a live 2-worker cluster, calm and chaotic.

Thread-mode workers share the process-default tracer, so one traced
``/search`` through coordinator + workers lands every span — coordinator
root, scatter, per-slot calls, worker service spans — in a single ring
buffer as ONE trace tree.  The chaos lane replays the 24 seeds with
scripted faults and demands the trace record the hedge/failover that
actually happened while answers stay bit-identical.
"""

import time

import numpy as np
import pytest

from repro.cluster import LocalCluster
from repro.cluster.resilience import ResilienceConfig
from repro.core.metric import normalize_rows
from repro.core.out_of_core import LakeSearcher, PartitionedPexeso
from repro.core.persistence import load_partitioned, save_partitioned
from repro.obs.trace import Tracer, set_default_tracer
from repro.serve.faults import FaultInjector

WORKER_KWARGS = dict(exact_counts=True, window_ms=None, cache_size=0)


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(29)
    return [
        normalize_rows(rng.normal(size=(int(rng.integers(5, 12)), 6)))
        for _ in range(18)
    ]


@pytest.fixture(scope="module")
def lake_dir(columns, tmp_path_factory):
    directory = tmp_path_factory.mktemp("trace-lake") / "lake"
    lake = PartitionedPexeso(n_pivots=2, levels=3, n_partitions=4).fit(columns)
    save_partitioned(lake, directory)
    return directory


@pytest.fixture(scope="module")
def reference(lake_dir):
    return LakeSearcher(load_partitioned(lake_dir))


@pytest.fixture()
def tracer():
    """A fresh process-default tracer, restored afterwards."""
    fresh = Tracer()
    previous = set_default_tracer(fresh)
    try:
        yield fresh
    finally:
        set_default_tracer(previous)


def span_names(tree):
    names = []

    def walk(node):
        names.append(node["name"])
        for child in node["children"]:
            walk(child)

    for root in tree["roots"]:
        walk(root)
    return names


def tree_annotations(tree):
    merged = {}

    def walk(node):
        merged.update(node["annotations"])
        for child in node["children"]:
            walk(child)

    for root in tree["roots"]:
        walk(root)
    return merged


def hit_rows(reply):
    return [
        (h["column_id"], h["match_count"], h["joinability"])
        for h in reply["hits"]
    ]


class TestCalmCluster:
    def test_one_traced_search_yields_one_covering_tree(
        self, tracer, lake_dir, columns
    ):
        with LocalCluster(
            lake_dir, n_workers=2, replication=2, mode="thread",
            worker_kwargs=WORKER_KWARGS,
            # hedging off: a losing hedge finishes *after* the response
            # and its straggler spans would show up as a second tree
            coordinator_kwargs=dict(
                resilience=ResilienceConfig(hedge=False),
            ),
        ) as cluster:
            query = normalize_rows(np.vstack(columns))
            cluster.client.search(vectors=query, tau=0.6, joinability=0.2)
            tracer.reset()  # warmed up: measure a steady-state request
            started = time.perf_counter()
            reply = cluster.client.search(
                vectors=query, tau=0.6, joinability=0.2
            )
            elapsed = time.perf_counter() - started

        (tree,) = tracer.traces()
        names = span_names(tree)
        (root,) = tree["roots"]
        assert root["name"] == "coordinator.search"
        # the full scatter/worker/service chain is present — worker-side
        # spans joined the coordinator's trace via header propagation
        for expected in (
            "coordinator.scatter", "scatter.slot", "worker.call",
            "serve.search", "service.search", "coordinator.merge",
        ):
            assert expected in names, f"missing span {expected}"
        slots = {
            node["annotations"]["slot"]
            for node in _find_all(tree, "scatter.slot")
        }
        assert slots == {0, 1}

        # acceptance: the coordinator root covers >= 95% of the measured
        # wall time (transport + JSON framing is all that may escape it)
        assert root["duration_seconds"] >= 0.95 * elapsed, (
            root["duration_seconds"], elapsed,
        )
        # the payload's stage breakdown never exceeds the span it sits in
        assert set(reply["timings"]) == {"scatter", "merge"}
        assert sum(reply["timings"].values()) <= root["duration_seconds"]

    def test_debug_traces_endpoint_serves_the_same_tree(
        self, tracer, lake_dir, columns
    ):
        with LocalCluster(
            lake_dir, n_workers=2, replication=2, mode="thread",
            worker_kwargs=WORKER_KWARGS,
        ) as cluster:
            cluster.client.search(
                vectors=columns[3][:5], tau=0.6, joinability=0.3
            )
            debug = cluster.client.debug_traces()
        assert [t["trace_id"] for t in debug["traces"]] == \
            [t["trace_id"] for t in tracer.traces()]
        assert "slow_queries" in debug


def _find_all(tree, name):
    found = []

    def walk(node):
        if node["name"] == name:
            found.append(node)
        for child in node["children"]:
            walk(child)

    for root in tree["roots"]:
        walk(root)
    return found


class TestChaosLane:
    """The 24-seed chaos lane, traced.

    Even seeds script a slow primary (the hedge must fire and win); odd
    seeds script a dropped transport call (the group must fail over to
    the replica).  Either way the query must produce exactly one trace
    tree that *records* the injected event, and the answer must stay
    bit-identical to the exhaustive reference.
    """

    @pytest.mark.parametrize("seed", range(24))
    def test_trace_records_injected_fault_with_exact_results(
        self, tracer, seed, lake_dir, reference, columns
    ):
        hedge_lane = seed % 2 == 0
        worker_faults = [None, None]
        coordinator_kwargs = dict(
            resilience=ResilienceConfig(
                hedge_default_delay=0.02, hedge_delay_max=0.02
            ),
        )
        if hedge_lane:
            slow = FaultInjector(seed=seed)
            slow.script("delay", path="/search", delay=0.3, times=1)
            worker_faults = [slow, None]
        else:
            drop = FaultInjector(seed=seed)
            drop.script("drop", path="/search", times=1)
            # retries=0: the transport must not quietly absorb the drop —
            # the group has to *fail over* to the replica
            coordinator_kwargs.update(retries=0, fault_injector=drop)

        query = columns[seed % len(columns)][:5]
        want = reference.search(query, 0.6, 0.3, exact_counts=True)
        want_rows = [
            (h.column_id, h.match_count, h.joinability) for h in want.joinable
        ]

        with LocalCluster(
            lake_dir, n_workers=2, replication=2, mode="thread",
            worker_kwargs=WORKER_KWARGS,
            worker_fault_injectors=worker_faults,
            coordinator_kwargs=coordinator_kwargs,
        ) as cluster:
            reply = cluster.client.search(
                vectors=query, tau=0.6, joinability=0.3
            )

        assert hit_rows(reply) == want_rows, f"seed {seed}: result drift"
        (tree,) = tracer.traces()  # exactly one trace for the one query
        annotations = tree_annotations(tree)
        if hedge_lane:
            assert annotations.get("hedge_fired") is True, f"seed {seed}"
            assert annotations.get("hedge_won") is True, f"seed {seed}"
        else:
            assert annotations.get("failover") is True, f"seed {seed}"
        # the scatter slot reports who actually answered after the fault
        assert "answered_by" in annotations, f"seed {seed}"
