"""CI-size smoke test for the persistence-format benchmark.

Runs ``benchmarks/bench_persistence.py``'s harnesses on a tiny lake so
the benchmark stays importable and its exactness checks — v2 and v3
cold-started lakes answering hit-for-hit like the source lake, and the
kernel backends agreeing bit-for-bit — run in every test pass. The
>= 10x cold-start and >= 3x compiled-lane claims are asserted at full
benchmark scale (``pytest benchmarks/``) and in the CI bench job
(``python benchmarks/bench_persistence.py``), where the arrays are big
enough for format costs to dominate per-file overhead.
"""

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def bench_module():
    sys.path.insert(0, str(BENCHMARKS))
    try:
        import bench_persistence

        yield bench_persistence
    finally:
        sys.path.remove(str(BENCHMARKS))


@pytest.fixture(scope="module")
def dataset():
    sys.path.insert(0, str(BENCHMARKS))
    try:
        from common import make_dataset

        return make_dataset(
            "smoke",
            n_tables=18,
            rows_range=(6, 14),
            dim=12,
            n_entities=40,
            n_queries=2,
            query_rows=8,
            seed=9,
        )
    finally:
        sys.path.remove(str(BENCHMARKS))


def test_coldstart_comparison_runs_at_ci_size(bench_module, dataset, tmp_path):
    out = bench_module.run_coldstart_comparison(
        dataset, n_partitions=3, n_pivots=2, levels=2, repeats=1,
        work_dir=tmp_path,
    )
    # run_coldstart_comparison asserts v2/v3 reload parity internally;
    # here we check the report shape. No speed assertion: at smoke size
    # both loads are dominated by constant per-file overhead.
    assert out["n_partitions"] == 3
    assert out["v2_coldstart_seconds"] > 0
    assert out["v3_coldstart_seconds"] > 0
    assert out["coldstart_speedup"] > 0


def test_verify_lane_comparison_runs_at_ci_size(bench_module, dataset):
    out = bench_module.run_verify_lane_comparison(
        dataset, n_pivots=2, levels=2, repeats=1
    )
    assert out["numpy_seconds"] > 0
    if out["have_numba"]:
        assert out["numba_seconds"] > 0
        assert out["compiled_speedup"] > 0
    else:
        assert "compiled_speedup" not in out


def test_bench_json_artifact_schema(bench_module, tmp_path, monkeypatch):
    import common

    monkeypatch.setattr(common, "RESULTS_DIR", tmp_path)
    path = common.write_bench_json("smoke_check", {"speedup": 2.0, "ok": True})
    assert path == tmp_path / "BENCH_smoke_check.json"
    payload = json.loads(path.read_text())
    assert payload["schema_version"] == 1
    assert payload["bench"] == "smoke_check"
    assert payload["metrics"] == {"speedup": 2.0, "ok": True}
    for key in ("unix_time", "python", "numpy", "kernel_backend"):
        assert key in payload
