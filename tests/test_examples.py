"""Smoke tests: the shipped examples must run end to end.

Each example's ``main()`` is executed in-process (fast ones only; the ML
enrichment example trains forests and is exercised by the Table V
benchmark instead).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "csv_data_lake.py",
    "out_of_core_partitioning.py",
    "lake_curation.py",
    "topk_and_persistence.py",
    "serving_quickstart.py",
    "cluster_quickstart.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    path = EXAMPLES / script
    assert path.exists(), f"example {script} missing"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"example {script} produced no output"


def test_examples_directory_complete():
    """Every example advertised in the README exists."""
    readme = (EXAMPLES.parent / "README.md").read_text()
    for script in EXAMPLES.glob("*.py"):
        assert script.name in readme, f"{script.name} not documented in README"
