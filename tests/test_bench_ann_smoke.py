"""CI-size smoke test for the ANN recall/latency benchmark.

Runs ``benchmarks/bench_ann.py``'s sweep harness on a tiny lake to keep
the benchmark importable and its invariants — zero false positives at
every beam width, recall measured against the exact engine — exercised
in every test run. The headline claims (verified-columns ratio <= 50%
and mean recall at the default beam) are asserted at full benchmark
scale (`pytest benchmarks/`) and in the CI ann-smoke job (`python
benchmarks/bench_ann.py`), where the lake is big enough for the default
beam to be a real cut.
"""

import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def bench_module():
    sys.path.insert(0, str(BENCHMARKS))
    try:
        import bench_ann

        yield bench_ann
    finally:
        sys.path.remove(str(BENCHMARKS))


def test_ann_curve_runs_at_ci_size(bench_module):
    from common import make_dataset

    dataset = make_dataset(
        "smoke",
        n_tables=24,
        rows_range=(6, 14),
        dim=12,
        n_entities=40,
        n_queries=1,
        query_rows=8,
        seed=7,
    )
    out = bench_module.run_ann_curve(
        dataset,
        n_queries=4,
        query_rows=8,
        ef_values=(2, 8, len(dataset.vector_columns)),
        n_pivots=2,
        levels=2,
    )
    # run_ann_curve asserts zero false positives internally; here we
    # check the curve shape the report and JSON artifact consume.
    assert out["n_queries"] == 4
    assert len(out["curve"]) == 3
    for row in out["curve"]:
        assert 0.0 <= row["min_recall"] <= row["recall"] <= 1.0
        assert row["latency_s"] > 0
        assert 0.0 <= row["verified_ratio"]
    # the beam covering the whole lake degenerates to exact
    full = out["curve"][-1]
    assert full["recall"] == 1.0
    assert full["columns_verified"] == out["exact_columns_verified"]
