from setuptools import find_packages, setup

setup(
    name="repro-pexeso",
    version="1.3.0",
    description=(
        "PEXESO reproduction: joinable table discovery in data lakes, "
        "grown into a sharded, serving, clustered search system"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            # the CLI as a real binary: `repro index ...`, `repro serve ...`,
            # `repro cluster-coordinator ...` instead of `python -m repro.cli`
            "repro = repro.cli:main",
        ]
    },
)
