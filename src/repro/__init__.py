"""PEXESO — joinable table discovery in data lakes with high-dimensional
similarity (reproduction of Dong et al., ICDE 2021).

Quickstart::

    from repro import PexesoIndex, distance_threshold

    index = PexesoIndex.build(columns, n_pivots=5, levels=4)
    tau = distance_threshold(0.06, index.metric, index.dim)
    result = index.search(query_vectors, tau=tau, joinability=0.6)
    for hit in result.joinable:
        print(hit.column_id, hit.joinability)

See :mod:`repro.lake` for loading CSV data lakes and :mod:`repro.embedding`
for turning string columns into vectors.
"""

from repro.core import (
    AblationFlags,
    BatchResult,
    BatchSearch,
    EuclideanMetric,
    JoinableColumn,
    LakeSearcher,
    Metric,
    PartitionedPexeso,
    PexesoIndex,
    SearchResult,
    SearchStats,
    TopKResult,
    batch_search,
    distance_threshold,
    get_metric,
    joinability_count,
    pexeso_search,
    pexeso_topk,
    register_metric,
)

__version__ = "1.3.0"

__all__ = [
    "AblationFlags",
    "BatchResult",
    "BatchSearch",
    "batch_search",
    "EuclideanMetric",
    "JoinableColumn",
    "LakeSearcher",
    "Metric",
    "PartitionedPexeso",
    "PexesoIndex",
    "SearchResult",
    "SearchStats",
    "TopKResult",
    "__version__",
    "distance_threshold",
    "get_metric",
    "joinability_count",
    "pexeso_search",
    "pexeso_topk",
    "register_metric",
]
