"""Dapper-style tracing: spans, HTTP propagation, slow-query log.

One traced ``/search`` through a cluster yields a single trace tree:
the coordinator opens a root span, every scatter call opens a per-slot
child annotated with the resilience decisions (hedge fired/won,
failover, breaker state, deadline remaining), and the worker side links
its service/engine spans to the coordinator's via the ``X-Repro-Trace``
header — the trace context travels next to ``X-Repro-Deadline-Ms``.

Design points:

* **Deterministic IDs** — trace and span IDs come from a locked
  process-local counter, not a RNG, so tests (and replayed traces) are
  stable. IDs carry the tracer's ``prefix`` so two processes' spans
  stay distinguishable when their buffers are merged.
* **Sampling** — ``sample_rate`` is applied deterministically at the
  root (every k-th trace pattern, not a coin flip); the decision rides
  the header as the third field, so workers record exactly the traces
  the coordinator sampled. Unsampled spans still carry IDs (the header
  must still propagate) but never land in the buffer — their overhead
  is a couple of attribute writes.
* **Bounded buffers** — finished spans land in a ring buffer (exposed
  at ``GET /debug/traces``); local roots that exceed
  ``slow_query_seconds`` additionally emit one structured JSON line and
  land in the slow-query ring.
"""

from __future__ import annotations

import itertools
import json
import logging
import threading
import time
from collections import deque
from typing import Callable, Optional, Union

#: trace propagation header: ``<trace_id>:<span_id>:<sampled:0|1>``
#: (colon-separated — generated IDs carry the tracer prefix, which may
#: itself contain dashes, so ``-`` would be ambiguous to split on)
TRACE_HEADER = "X-Repro-Trace"

logger = logging.getLogger("repro.obs.slow_query")


class TraceContext:
    """The wire form of a span: what crosses process boundaries."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool = True):
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = bool(sampled)

    def to_header(self) -> str:
        return f"{self.trace_id}:{self.span_id}:{1 if self.sampled else 0}"

    @classmethod
    def from_header(cls, value: Optional[str]) -> Optional["TraceContext"]:
        """Parse a propagated header; ``None`` on absent/malformed input
        (a bad trace header must never fail the request carrying it)."""
        if not value:
            return None
        parts = value.strip().split(":")
        if len(parts) != 3 or not parts[0] or not parts[1]:
            return None
        if parts[2] not in ("0", "1"):
            return None
        return cls(parts[0], parts[1], sampled=parts[2] == "1")

    def __repr__(self) -> str:
        return f"TraceContext({self.to_header()!r})"


class NullSpan:
    """The inert span: accepts the full :class:`Span` API, records nothing.

    Returned for child spans with no parent so internal layers can
    instrument unconditionally without ever starting accidental roots.
    """

    __slots__ = ()

    sampled = False
    trace_id = None
    span_id = None
    duration: Optional[float] = None

    def annotate(self, **fields) -> "NullSpan":
        return self

    def child(self, name: str) -> "NullSpan":
        return self

    def context(self) -> Optional[TraceContext]:
        return None

    def finish(self) -> None:
        return None

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __bool__(self) -> bool:
        return False


#: the shared inert instance (stateless, so one is enough)
NULL_SPAN = NullSpan()


class Span:
    """One timed operation inside a trace.

    Use as a context manager (``with tracer.trace("search") as span:``)
    or finish explicitly. ``annotate`` attaches structured fields — the
    scatter path records hedge/failover/breaker decisions this way.
    """

    __slots__ = (
        "tracer", "name", "trace_id", "span_id", "parent_id", "sampled",
        "annotations", "started_at", "_started", "duration", "remote_parent",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        sampled: bool,
        remote_parent: bool = False,
    ):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.sampled = sampled
        self.remote_parent = remote_parent
        self.annotations: dict = {}
        self.started_at = time.time()
        self._started = time.perf_counter()
        self.duration: Optional[float] = None

    def annotate(self, **fields) -> "Span":
        """Attach structured fields; returns self for chaining."""
        self.annotations.update(fields)
        return self

    def child(self, name: str) -> Union["Span", NullSpan]:
        """Open a child span under this one."""
        return self.tracer.span(name, parent=self)

    def context(self) -> TraceContext:
        """The propagation context for outbound calls under this span."""
        return TraceContext(self.trace_id, self.span_id, sampled=self.sampled)

    def finish(self) -> None:
        if self.duration is not None:  # already finished
            return
        self.duration = time.perf_counter() - self._started
        if self.sampled:
            self.tracer._record(self)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "remote_parent": self.remote_parent,
            "name": self.name,
            "started_at": self.started_at,
            "duration_seconds": self.duration,
            "annotations": dict(self.annotations),
        }

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.annotations.setdefault("error", exc_type.__name__)
        self.finish()

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id})"
        )


class Tracer:
    """Span factory, ring buffer and slow-query log for one process.

    Args:
        sample_rate: fraction of *root* traces recorded, in ``[0, 1]``.
            Applied deterministically (an accumulator, not a RNG): 1.0
            records everything, 0.0 nothing, 0.5 every other trace.
            Propagated contexts carry their own decision and bypass the
            knob — the sampler runs once, at the edge.
        max_spans: ring-buffer capacity of finished spans.
        slow_query_seconds: local-root spans at/above this duration emit
            one JSON line to ``slow_query_sink`` and join the slow-query
            ring; ``None`` disables the log.
        slow_query_sink: callable taking the JSON line (defaults to the
            ``repro.obs.slow_query`` logger at INFO).
        prefix: prepended to generated IDs, keeping spans from different
            processes distinguishable in merged views.
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        max_spans: int = 2048,
        slow_query_seconds: Optional[float] = None,
        slow_query_sink: Optional[Callable[[str], None]] = None,
        prefix: str = "",
        max_slow_queries: int = 256,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.sample_rate = float(sample_rate)
        self.slow_query_seconds = slow_query_seconds
        self.slow_query_sink = slow_query_sink
        self.prefix = prefix
        self._lock = threading.Lock()
        self._trace_seq = itertools.count(1)
        self._span_seq = itertools.count(1)
        self._span_issued = 0
        self._sample_acc = 0.0
        self._spans: deque = deque(maxlen=int(max_spans))
        self._slow: deque = deque(maxlen=int(max_slow_queries))

    # -- configuration -------------------------------------------------------------

    def configure(
        self,
        sample_rate: Optional[float] = None,
        slow_query_seconds: Optional[float] = None,
        prefix: Optional[str] = None,
    ) -> "Tracer":
        """Adjust knobs in place (the CLI flags land here)."""
        if sample_rate is not None:
            if not 0.0 <= sample_rate <= 1.0:
                raise ValueError("sample_rate must be in [0, 1]")
            self.sample_rate = float(sample_rate)
        if slow_query_seconds is not None:
            self.slow_query_seconds = float(slow_query_seconds)
        if prefix is not None:
            self.prefix = prefix
        return self

    # -- span creation -------------------------------------------------------------

    def _next_trace_id(self) -> str:
        return f"{self.prefix}t{next(self._trace_seq):08d}"

    def _next_span_id(self) -> str:
        n = next(self._span_seq)
        if n > self._span_issued:
            self._span_issued = n
        return f"{self.prefix}s{n:08d}"

    def _issued_span_id(self, span_id: str) -> bool:
        """True if this tracer generated ``span_id`` itself.

        A remote context carrying a self-issued parent is a *loopback*:
        the request crossed the wire back into the same process (a
        thread-mode cluster), so the parent span is genuinely local and
        the continuation should nest under it instead of starting a new
        local root. Cross-process tracers are told apart by their ID
        prefix (the CLI derives one per process).
        """
        tag = f"{self.prefix}s"
        if not span_id.startswith(tag):
            return False
        suffix = span_id[len(tag):]
        if len(suffix) != 8 or not suffix.isdigit():
            return False
        return 0 < int(suffix) <= self._span_issued

    def _sample_decision(self) -> bool:
        """Deterministic rate limiter: records ceil(rate * n) of n roots."""
        with self._lock:
            self._sample_acc += self.sample_rate
            if self._sample_acc >= 1.0 - 1e-9:
                self._sample_acc -= 1.0
                return True
            return False

    def trace(
        self,
        name: str,
        parent: Union[TraceContext, Span, None] = None,
    ) -> Span:
        """Open a root (or remote-continued) span.

        With ``parent=None`` a new trace starts and the sampling
        decision is made here. With a :class:`TraceContext` (parsed
        from an inbound header) the span joins the remote trace and
        inherits its sampling decision. With a local :class:`Span`,
        behaves like :meth:`span`.
        """
        if isinstance(parent, Span):
            return self.span(name, parent=parent)  # type: ignore[return-value]
        if isinstance(parent, TraceContext):
            return Span(
                self, name, parent.trace_id, self._next_span_id(),
                parent_id=parent.span_id, sampled=parent.sampled,
                remote_parent=not self._issued_span_id(parent.span_id),
            )
        return Span(
            self, name, self._next_trace_id(), self._next_span_id(),
            parent_id=None, sampled=self._sample_decision(),
        )

    def span(
        self,
        name: str,
        parent: Union[Span, NullSpan, TraceContext, None],
    ) -> Union[Span, NullSpan]:
        """Open a child span; with no parent, returns the inert
        :data:`NULL_SPAN` (children never start traces by accident)."""
        if parent is None or isinstance(parent, NullSpan):
            return NULL_SPAN
        if isinstance(parent, TraceContext):
            return self.trace(name, parent=parent)
        return Span(
            self, name, parent.trace_id, self._next_span_id(),
            parent_id=parent.span_id, sampled=parent.sampled,
        )

    # -- recording -----------------------------------------------------------------

    def _record(self, span: Span) -> None:
        record = span.to_dict()
        with self._lock:
            self._spans.append(record)
        threshold = self.slow_query_seconds
        is_local_root = span.parent_id is None or span.remote_parent
        if (
            threshold is not None
            and is_local_root
            and span.duration is not None
            and span.duration >= threshold
        ):
            self._slow_query(record)

    def _slow_query(self, record: dict) -> None:
        entry = {
            "event": "slow_query",
            "ts": record["started_at"],
            "trace_id": record["trace_id"],
            "span_id": record["span_id"],
            "name": record["name"],
            "duration_seconds": record["duration_seconds"],
            "threshold_seconds": self.slow_query_seconds,
            "annotations": record["annotations"],
        }
        with self._lock:
            self._slow.append(entry)
        line = json.dumps(entry, sort_keys=True, default=str)
        sink = self.slow_query_sink
        if sink is not None:
            sink(line)
        else:
            logger.info("%s", line)

    # -- reading -------------------------------------------------------------------

    def spans(self) -> list:
        """Finished sampled spans, oldest first (bounded)."""
        with self._lock:
            return list(self._spans)

    def slow_queries(self) -> list:
        """Recent slow-query records, oldest first (bounded)."""
        with self._lock:
            return list(self._slow)

    def traces(self) -> list:
        """Finished spans grouped into trees, one entry per trace.

        Roots are spans whose parent is absent from this buffer (true
        roots *and* remote-parented spans — a worker's buffer shows its
        service spans as roots of the coordinator's trace). Children
        sort by start time.
        """
        spans = self.spans()
        by_trace: dict[str, list] = {}
        for record in spans:
            by_trace.setdefault(record["trace_id"], []).append(record)
        out = []
        for trace_id, records in by_trace.items():
            known = {r["span_id"] for r in records}
            children: dict[Optional[str], list] = {}
            for r in records:
                # a remote-parented span is always a local root: its
                # parent lives in another process whose span IDs may
                # collide with this buffer's (each tracer numbers its
                # own spans), so membership in `known` proves nothing
                local_parent = (
                    r["parent_id"] if r["parent_id"] in known
                    and not r.get("remote_parent") else None
                )
                children.setdefault(local_parent, []).append(r)

            def build(record: dict) -> dict:
                node = dict(record)
                kids = children.get(record["span_id"], [])
                kids.sort(key=lambda r: r["started_at"])
                node["children"] = [build(k) for k in kids]
                return node

            roots = sorted(
                children.get(None, []), key=lambda r: r["started_at"]
            )
            out.append({
                "trace_id": trace_id,
                "n_spans": len(records),
                "roots": [build(r) for r in roots],
            })
        return out

    def reset(self) -> None:
        """Drop buffered spans/slow queries (tests, not production)."""
        with self._lock:
            self._spans.clear()
            self._slow.clear()


# -- the process-wide default tracer ------------------------------------------------

_default_tracer = Tracer()
_default_lock = threading.Lock()


def default_tracer() -> Tracer:
    """The process-wide tracer servers fall back to when none is given.

    In thread-mode :class:`~repro.cluster.local.LocalCluster` runs the
    coordinator and every worker share this instance, so one traced
    query lands as a single tree in a single buffer.
    """
    return _default_tracer


def set_default_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-wide default; returns the *previous* tracer
    so callers can restore it (tests, scoped instrumentation)."""
    global _default_tracer
    with _default_lock:
        previous = _default_tracer
        _default_tracer = tracer
    return previous
