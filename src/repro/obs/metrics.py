"""Typed metrics registry with conformant Prometheus text exposition.

One registry replaces the three ad-hoc ``metrics_text`` string builders
(serve server, cluster server, coordinator). Design points:

* **Stateless render** — the servers build a fresh
  :class:`MetricsRegistry` per scrape from their live snapshots, so the
  registry never duplicates state the service already tracks. Metric
  *values* keep their Python type: ints render bare (``cluster_workers_up
  2``), floats render with their repr (``admission_capacity 1.0``) —
  both are valid Prometheus floats and existing dashboards/tests parse
  them literally.
* **Conformance** — every family gets ``# HELP`` / ``# TYPE`` lines and
  label values are escaped (``\\``, ``"``, newline), fixing the raw
  ``slot="..."`` interpolation the old f-strings did.
* **Summaries** — quantile series (``{quantile="0.95"}``) plus
  ``_sum`` / ``_count``, fed from nearest-rank quantile sources
  (:class:`BoundedHistogram` here,
  :class:`~repro.cluster.resilience.LatencyTracker` in the cluster).

:class:`BoundedHistogram` is the storage half: a bounded window of
recent samples with *exact* lifetime count/sum, nearest-rank quantiles
(the same rule as ``LatencyTracker``), and enough list compatibility
(``iter``/``len``/``==``/``append``/``+``) that it drops into
``SearchStats`` field-wise merge unchanged.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Iterable, Mapping, Optional, Sequence, Union

Number = Union[int, float]

#: quantiles exported for every summary unless the caller overrides them
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


def escape_label_value(value: object) -> str:
    """Escape a label value per the Prometheus text format.

    Backslash, double-quote and line-feed must be escaped inside the
    quoted label value; everything else passes through.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """``# HELP`` lines escape backslash and line-feed only."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: Optional[Mapping[str, object]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(value)}"' for name, value in labels.items()
    )
    return "{" + inner + "}"


def _format_quantile(q: float) -> str:
    # 0.5 -> "0.5", 0.99 -> "0.99": repr of the float, trimmed like str()
    return str(float(q))


class BoundedHistogram:
    """A bounded window of numeric samples with exact lifetime totals.

    Unlike a plain list (which the serving stats used to grow one entry
    per fused dispatch, forever), the retained window is capped at
    ``maxlen`` samples while ``count`` / ``total`` / ``max_value`` stay
    exact over the full lifetime. Quantiles are nearest-rank over the
    retained window — the same rule as
    :class:`~repro.cluster.resilience.LatencyTracker`.

    List compatibility (iteration, ``len``, equality against a list,
    ``append`` and ``+``-merge) keeps the
    ``SearchStats.coalesced_batch_sizes`` call sites working: ``merge``
    still sums field-wise via ``+``, ``sum(...)`` / ``max(...)`` still
    read the retained samples.
    """

    __slots__ = ("maxlen", "count", "total", "max_value", "_samples")

    def __init__(
        self,
        samples: Optional[Iterable[Number]] = None,
        maxlen: int = 4096,
    ):
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self.maxlen = int(maxlen)
        self.count = 0
        self.total: float = 0.0
        self.max_value: float = 0.0
        self._samples: deque = deque(maxlen=self.maxlen)
        if samples is not None:
            self.extend(samples)

    # -- recording -----------------------------------------------------------------

    def add(self, value: Number) -> None:
        self._samples.append(value)
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    #: list-compatible alias — existing call sites ``.append()`` samples
    append = add

    def extend(self, values: Iterable[Number]) -> None:
        for value in values:
            self.add(value)

    def set_maxlen(self, maxlen: int) -> None:
        """Shrink/grow the retained window (lifetime totals unaffected)."""
        maxlen = int(maxlen)
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        if maxlen != self.maxlen:
            self.maxlen = maxlen
            self._samples = deque(self._samples, maxlen=maxlen)

    # -- reading -------------------------------------------------------------------

    @property
    def samples(self) -> list:
        """The retained (most recent) samples, oldest first."""
        return list(self._samples)

    def quantile(self, q: float, default: float = 0.0) -> float:
        """Nearest-rank q-quantile of the retained window.

        Same rule as ``LatencyTracker.quantile``: the ``ceil(q * n)``-th
        smallest sample (1-based), clamped to the window.
        """
        if not self._samples:
            return default
        ranked = sorted(self._samples)
        rank = min(len(ranked) - 1, max(0, math.ceil(q * len(ranked)) - 1))
        return ranked[rank]

    def mean(self) -> float:
        """Lifetime mean (exact — uses the unbounded totals)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON-safe snapshot (window stats + exact lifetime totals)."""
        return {
            "count": self.count,
            "total": self.total,
            "max": self.max_value,
            "retained": len(self._samples),
        }

    # -- container / merge protocol ------------------------------------------------

    def __iter__(self):
        return iter(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __bool__(self) -> bool:
        return len(self._samples) > 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BoundedHistogram):
            return (
                self.count == other.count
                and self.total == other.total
                and list(self._samples) == list(other._samples)
            )
        if isinstance(other, (list, tuple)):
            return list(self._samples) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"BoundedHistogram(count={self.count}, total={self.total}, "
            f"retained={len(self._samples)}, maxlen={self.maxlen})"
        )

    def __add__(self, other) -> "BoundedHistogram":
        """Merged copy: exact totals add, windows concatenate (bounded).

        Accepts another histogram or a plain list of samples, so the
        generic ``SearchStats.merge`` (field-wise ``+``) keeps working.
        """
        if isinstance(other, BoundedHistogram):
            merged = BoundedHistogram(maxlen=max(self.maxlen, other.maxlen))
            merged._samples.extend(self._samples)
            merged._samples.extend(other._samples)
            merged.count = self.count + other.count
            merged.total = self.total + other.total
            merged.max_value = max(self.max_value, other.max_value)
            return merged
        if isinstance(other, (list, tuple)):
            return self + BoundedHistogram(other, maxlen=self.maxlen)
        return NotImplemented

    def __radd__(self, other) -> "BoundedHistogram":
        if isinstance(other, (list, tuple)):
            return BoundedHistogram(other, maxlen=self.maxlen) + self
        return NotImplemented


class _Family:
    """One metric family: name, type, help and its samples."""

    __slots__ = ("name", "kind", "help", "_samples")

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        # list of (suffix, labels, value) preserving insertion order
        self._samples: list[tuple[str, Optional[dict], Number]] = []

    def sample(
        self,
        value: Number,
        labels: Optional[Mapping[str, object]] = None,
        suffix: str = "",
    ) -> None:
        self._samples.append((suffix, dict(labels) if labels else None, value))

    def render(self, out: list) -> None:
        out.append(f"# HELP {self.name} {_escape_help(self.help)}")
        out.append(f"# TYPE {self.name} {self.kind}")
        for suffix, labels, value in self._samples:
            out.append(f"{self.name}{suffix}{_format_labels(labels)} {value}")


class MetricsRegistry:
    """A thread-safe, ordered collection of metric families.

    Typical scrape-time use::

        reg = MetricsRegistry(prefix="pexeso_serve_")
        reg.counter("cache_hits", "Result-cache hits.", stats.cache_hits)
        reg.gauge("generation", "Index generation.", service.generation)
        reg.summary("stage_seconds", "Stage wall time.",
                    source=hist, labels={"stage": "verify"})
        text = reg.render()

    ``prefix`` is prepended to every family name. Counters and gauges
    may be called repeatedly with different ``labels`` — samples join
    the same family (one ``# TYPE`` header).
    """

    def __init__(self, prefix: str = ""):
        self.prefix = prefix
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _family(self, name: str, kind: str, help_text: str) -> _Family:
        full = self.prefix + name
        with self._lock:
            family = self._families.get(full)
            if family is None:
                family = _Family(full, kind, help_text or full)
                self._families[full] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {full} already registered as {family.kind}, "
                    f"not {kind}"
                )
            return family

    def counter(
        self,
        name: str,
        help_text: str,
        value: Number,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        """A monotonically increasing total (current value given)."""
        self._family(name, "counter", help_text).sample(value, labels)

    def gauge(
        self,
        name: str,
        help_text: str,
        value: Number,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        """A point-in-time value."""
        self._family(name, "gauge", help_text).sample(value, labels)

    def summary(
        self,
        name: str,
        help_text: str,
        quantile_values: Optional[Mapping[float, float]] = None,
        count: int = 0,
        total: float = 0.0,
        labels: Optional[Mapping[str, object]] = None,
        source=None,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> None:
        """Quantile series plus ``_sum`` / ``_count``.

        Either pass explicit ``quantile_values`` / ``count`` / ``total``
        or a ``source`` exposing ``quantile(q)``, ``count`` and ``total``
        (:class:`BoundedHistogram`,
        :class:`~repro.cluster.resilience.LatencyTracker`).
        """
        if source is not None:
            quantile_values = {q: source.quantile(q) for q in quantiles}
            count = source.count
            total = getattr(source, "total", 0.0)
        family = self._family(name, "summary", help_text)
        for q, value in (quantile_values or {}).items():
            q_labels = dict(labels) if labels else {}
            q_labels["quantile"] = _format_quantile(q)
            family.sample(value, q_labels)
        family.sample(float(total), labels, suffix="_sum")
        family.sample(int(count), labels, suffix="_count")

    def render(self) -> str:
        """The Prometheus text exposition (trailing newline included)."""
        out: list = []
        with self._lock:
            for family in self._families.values():
                family.render(out)
        return "\n".join(out) + "\n"
