"""Observability: tracing, metrics registry, per-stage profiling.

The subsystem every serving/cluster layer reports into:

* :mod:`repro.obs.trace` — Dapper-style spans with deterministic IDs,
  HTTP propagation via the ``X-Repro-Trace`` header, a bounded ring
  buffer behind ``GET /debug/traces`` and a structured slow-query log.
* :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges
  and summaries rendered as conformant Prometheus text exposition
  (``# HELP`` / ``# TYPE``, escaped label values), plus
  :class:`~repro.obs.metrics.BoundedHistogram`, the bounded sample
  window with exact lifetime totals used by
  :class:`~repro.core.stats.SearchStats`.
"""

from repro.obs.metrics import BoundedHistogram, MetricsRegistry, escape_label_value
from repro.obs.trace import (
    TRACE_HEADER,
    NullSpan,
    Span,
    TraceContext,
    Tracer,
    default_tracer,
    set_default_tracer,
)

__all__ = [
    "BoundedHistogram",
    "MetricsRegistry",
    "escape_label_value",
    "TRACE_HEADER",
    "NullSpan",
    "Span",
    "TraceContext",
    "Tracer",
    "default_tracer",
    "set_default_tracer",
]
