"""String tokenisation helpers shared by embeddings and string baselines."""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[a-z0-9]+")


def word_tokens(text: str) -> list[str]:
    """Lower-cased alphanumeric word tokens of ``text``.

    Mirrors the paper's WDC preprocessing ("string values are split into
    English words") in a deterministic, punctuation-robust way.
    """
    return _WORD_RE.findall(text.lower())


def char_ngrams(text: str, n_min: int = 3, n_max: int = 5, pad: bool = True) -> list[str]:
    """Character n-grams of ``text`` for n in ``[n_min, n_max]``.

    With ``pad=True`` the token is wrapped in angle brackets the way
    fastText does (``<word>``), so prefixes/suffixes get dedicated grams.
    Strings shorter than ``n_min`` yield the whole padded string as a
    single gram so nothing embeds to zero.
    """
    if n_min < 1 or n_max < n_min:
        raise ValueError("need 1 <= n_min <= n_max")
    token = f"<{text}>" if pad else text
    grams = [
        token[i : i + n]
        for n in range(n_min, n_max + 1)
        for i in range(len(token) - n + 1)
    ]
    return grams if grams else [token]
