"""Raw-text substrate: tokenisation, edit distance, set/TF-IDF similarity.

These power the non-embedding join baselines of Tables IV/V (equi-join,
Jaccard-join, edit-join, fuzzy-join, TF-IDF-join).
"""

from repro.text.tokenize import char_ngrams, word_tokens
from repro.text.edit_distance import (
    edit_distance,
    edit_similarity,
)
from repro.text.similarity import (
    TfidfVectorizer,
    cosine_similarity,
    fuzzy_token_similarity,
    jaccard_similarity,
)

__all__ = [
    "TfidfVectorizer",
    "char_ngrams",
    "cosine_similarity",
    "edit_distance",
    "edit_similarity",
    "fuzzy_token_similarity",
    "jaccard_similarity",
    "word_tokens",
]
