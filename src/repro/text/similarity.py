"""Set, TF-IDF and fuzzy string similarities for the join baselines.

* Jaccard over word tokens — the Jaccard-join matcher.
* TF-IDF cosine — Cohen's WHIRL-style matcher [6].
* Fuzzy token similarity — Wang et al.'s fuzzy-join predicate [32]:
  token-level Jaccard where two tokens are considered equal when their
  edit similarity reaches an inner threshold δ, evaluated with greedy
  one-to-one token matching.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

from repro.text.edit_distance import edit_similarity
from repro.text.tokenize import word_tokens


def jaccard_similarity(a: str, b: str) -> float:
    """Jaccard similarity of the word-token sets of two strings."""
    sa = set(word_tokens(a))
    sb = set(word_tokens(b))
    if not sa and not sb:
        return 1.0
    if not sa or not sb:
        return 0.0
    inter = len(sa & sb)
    return inter / (len(sa) + len(sb) - inter)


def fuzzy_token_similarity(a: str, b: str, delta: float = 0.8) -> float:
    """Fuzzy-join similarity: Jaccard with edit-tolerant token equality [32].

    Tokens match when exactly equal or when their edit similarity is at
    least ``delta``; a greedy one-to-one matching approximates the maximum
    bipartite matching the predicate prescribes (exact for the common case
    of few near-duplicate tokens).
    """
    ta = word_tokens(a)
    tb = word_tokens(b)
    if not ta and not tb:
        return 1.0
    if not ta or not tb:
        return 0.0
    remaining = list(tb)
    matched = 0
    for token in ta:
        best_j = -1
        best_sim = 0.0
        for j, other in enumerate(remaining):
            if token == other:
                best_j, best_sim = j, 1.0
                break
            sim = edit_similarity(token, other)
            if sim >= delta and sim > best_sim:
                best_j, best_sim = j, sim
        if best_j >= 0:
            matched += 1
            remaining.pop(best_j)
    return matched / (len(ta) + len(tb) - matched)


class TfidfVectorizer:
    """Minimal TF-IDF model over word tokens with cosine scoring.

    Fit on the corpus (all repository strings plus the query strings),
    then :meth:`vector` yields sparse term->weight dicts.
    """

    def __init__(self) -> None:
        self.idf: dict[str, float] = {}
        self.n_docs = 0

    def fit(self, corpus: Iterable[str]) -> "TfidfVectorizer":
        doc_freq: Counter[str] = Counter()
        n_docs = 0
        for doc in corpus:
            n_docs += 1
            doc_freq.update(set(word_tokens(doc)))
        self.n_docs = n_docs
        self.idf = {
            term: math.log((1 + n_docs) / (1 + freq)) + 1.0
            for term, freq in doc_freq.items()
        }
        return self

    def vector(self, text: str) -> dict[str, float]:
        """L2-normalised TF-IDF weights of ``text`` (unknown terms get IDF 1)."""
        counts = Counter(word_tokens(text))
        if not counts:
            return {}
        weights = {
            term: tf * self.idf.get(term, 1.0) for term, tf in counts.items()
        }
        norm = math.sqrt(sum(w * w for w in weights.values()))
        return {term: w / norm for term, w in weights.items()}


def cosine_similarity(a: dict[str, float], b: dict[str, float]) -> float:
    """Cosine of two sparse normalised vectors (term -> weight)."""
    if len(a) > len(b):
        a, b = b, a
    return sum(w * b.get(term, 0.0) for term, w in a.items())
