"""Levenshtein edit distance (the edit-join baseline's matcher)."""

from __future__ import annotations

import numpy as np


def edit_distance(a: str, b: str) -> int:
    """Levenshtein distance with unit insert/delete/substitute costs.

    The inner loop runs over numpy rows, keeping the O(|a|*|b|) DP fast
    enough for the experiment scales without any C extension.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    b_codes = np.frombuffer(b.encode("utf-32-le"), dtype=np.uint32)
    previous = np.arange(len(b) + 1, dtype=np.int64)
    current = np.empty_like(previous)
    for i, ch in enumerate(a, start=1):
        current[0] = i
        substitution = previous[:-1] + (b_codes != ord(ch))
        deletion = previous[1:] + 1
        np.minimum(substitution, deletion, out=current[1:])
        # insertions need a sequential pass (prefix-min dependency)
        running = current[0]
        vals = current[1:]
        for j in range(vals.shape[0]):
            running = vals[j] if vals[j] <= running else running + 1
            vals[j] = running
        previous, current = current, previous
    return int(previous[-1])


def edit_similarity(a: str, b: str) -> float:
    """Normalised edit similarity ``1 - ED(a, b) / max(|a|, |b|)`` in [0, 1]."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - edit_distance(a, b) / longest
