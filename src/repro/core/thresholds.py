"""Ratio-based threshold specification (paper §V).

Users specify the two PEXESO thresholds as intuitive ratios:

* the distance threshold τ as a *percentage of the maximum distance*
  between unit-normalised vectors (2 for Euclidean), and
* the joinability threshold T as a *percentage of the query column size*.

These helpers convert between the ratio forms and the absolute values the
algorithms consume.
"""

from __future__ import annotations

import math

from repro.core.metric import Metric

#: guard against float boundary error when converting T ratios to counts
_EPS = 1e-9


def distance_threshold(fraction: float, metric: Metric, dim: int) -> float:
    """Convert a τ ratio (e.g. ``0.06`` for the paper's default 6%) to a distance.

    Args:
        fraction: fraction of the maximum distance, in ``(0, 1]``.
        metric: the metric in use.
        dim: dimensionality of the (unit-normalised) embeddings.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"distance fraction must be in (0, 1], got {fraction}")
    return fraction * metric.max_distance(dim)


def joinability_count(threshold: float | int, query_size: int) -> int:
    """Convert a joinability threshold to the minimum match count.

    Accepts either a fraction of the query column size in ``(0, 1]``
    (the paper's §V convention — ``jn(Q, S) >= T`` iff the match count is
    at least ``ceil(T * |Q|)``) or an absolute integer count.
    """
    if query_size <= 0:
        raise ValueError("query column must be non-empty")
    if isinstance(threshold, bool):
        raise TypeError("joinability threshold must be a number, not bool")
    if isinstance(threshold, int):
        if not 1 <= threshold <= query_size:
            raise ValueError(
                f"joinability count must be in [1, {query_size}], got {threshold}"
            )
        return threshold
    if not 0.0 < threshold <= 1.0:
        raise ValueError(
            f"fractional joinability threshold must be in (0, 1], got {threshold}"
        )
    return max(1, math.ceil(threshold * query_size - _EPS))
