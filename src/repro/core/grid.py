"""Sparse hierarchical grids over the pivot space (paper §III-B).

A grid of ``m`` levels divides the pivot space ``[0, extent]^|P|`` into
``2^(|P| * i)`` hyper-cells at level ``i`` (each dimension is split into
``2^i`` equal intervals). Only populated cells are materialised — the
paper notes this explicitly to save memory.

The grid is **array-native**: a cell is a bit-interleaved int64 *cell
code* (:mod:`repro.core.cellcodes`) and each level is one sorted code
array. Because a parent code is a bit-prefix of its children's codes,

* every level is derived from the leaf codes with vectorised shifts —
  inserting ``n`` rows is one ``floor``/``clip``/encode pass plus one
  ``np.unique`` per level, with no per-row Python;
* the children of a cell, the leaves of a subtree, and the member rows
  of a subtree are all *contiguous ranges* of the sorted arrays, found
  with ``np.searchsorted`` — the blocker descends the grid without ever
  touching a dict or a tuple.

Member rows (kept for ``HG_Q`` only, mirroring §III-B's structural
difference between the query and repository grids) live in a CSR layout:
one row-index array grouped by sorted leaf code plus an offsets array.

A :class:`GridCell` object tree equivalent to the original
tuple-coordinate representation is still available through ``root`` /
``cells`` / ``leaf_cells`` — it is built lazily from the code arrays and
is meant for inspection and tests, not for hot paths.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.core.cellcodes import check_code_width, decode_cells, encode_cells

Coords = tuple[int, ...]

#: alias: cells are int64 codes everywhere downstream of the grid
CellCode = int


def _merge_sorted_unique(current: np.ndarray, new: np.ndarray) -> np.ndarray:
    """Merge a sorted-unique array into another without re-sorting.

    ``np.union1d`` sorts the whole concatenation on every call; an
    append-heavy workload (§III-E) would pay an O(n log n) re-sort per
    column. Both inputs are already sorted and unique, so a
    ``searchsorted`` splice of the genuinely-new values is enough.
    """
    if current.size == 0:
        return new
    positions = np.searchsorted(current, new)
    fresh = np.ones(new.size, dtype=bool)
    inside = positions < current.size
    fresh[inside] = current[positions[inside]] != new[inside]
    if not fresh.any():
        return current
    return np.insert(current, positions[fresh], new[fresh])


class GridCell:
    """One populated cell of a hierarchical grid (lazy object view)."""

    __slots__ = ("level", "coords", "children", "members")

    def __init__(self, level: int, coords: Coords):
        self.level = level
        self.coords = coords
        #: populated child cells (next finer level)
        self.children: list["GridCell"] = []
        #: vector row indices, kept at leaf level only (and only when the
        #: grid stores members, i.e. for HG_Q)
        self.members: list[int] = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GridCell(level={self.level}, coords={self.coords})"


class HierarchicalGrid:
    """Sparse m-level grid over pivot-space coordinates in ``[0, extent]``.

    Args:
        n_dims: dimensionality of the pivot space, |P|.
        levels: number of levels ``m`` (excluding the root).
        extent: upper bound of every coordinate.
        store_members: keep member row indices per leaf cell (HG_Q does,
            HG_RV does not).
    """

    def __init__(self, n_dims: int, levels: int, extent: float, store_members: bool = True):
        if levels < 1:
            raise ValueError("a hierarchical grid needs at least one level")
        if n_dims < 1:
            raise ValueError("pivot space must have at least one dimension")
        if extent <= 0:
            raise ValueError("extent must be positive")
        check_code_width(n_dims, levels)
        self.n_dims = n_dims
        self.levels = levels
        self.extent = float(extent)
        self.store_members = store_members
        #: sorted cell codes per level; index 0 is the root level
        self._level_codes: list[np.ndarray] = [
            np.zeros(1, dtype=np.int64) if level == 0 else np.empty(0, dtype=np.int64)
            for level in range(levels + 1)
        ]
        #: leaf code of every inserted row, in insertion (= row) order
        self._row_codes = np.empty(0, dtype=np.int64)
        #: cached members CSR: (starts over sorted leaves, row order)
        self._members_cache: Optional[tuple[np.ndarray, np.ndarray]] = None
        #: cached GridCell object tree: (root, per-level coord dicts)
        self._tree_cache: Optional[tuple[GridCell, list[dict[Coords, GridCell]]]] = None
        self.n_vectors = 0

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        mapped: np.ndarray,
        levels: int,
        extent: float,
        store_members: bool = True,
    ) -> "HierarchicalGrid":
        """Build a grid from mapped vectors (rows are pivot-space points)."""
        mapped = np.atleast_2d(np.asarray(mapped, dtype=np.float64))
        grid = cls(mapped.shape[1], levels, extent, store_members=store_members)
        grid.insert(mapped)
        return grid

    @classmethod
    def from_leaf_codes(
        cls,
        leaf_codes: np.ndarray,
        n_dims: int,
        levels: int,
        extent: float,
        n_vectors: int = 0,
    ) -> "HierarchicalGrid":
        """Reconstruct an occupancy-only grid (HG_RV) from its leaf codes.

        Every ancestor level is derived by shifting, so persisting the
        leaf codes persists the whole grid.
        """
        grid = cls(n_dims, levels, extent, store_members=False)
        leaf_codes = np.unique(np.asarray(leaf_codes, dtype=np.int64))
        for level in range(1, levels + 1):
            shift = n_dims * (levels - level)
            codes = leaf_codes >> shift if shift else leaf_codes
            grid._level_codes[level] = np.unique(codes) if shift else codes
        grid.n_vectors = int(n_vectors)
        return grid

    def leaf_coords_for(self, mapped: np.ndarray) -> np.ndarray:
        """Integer leaf-cell coordinates for each mapped row."""
        mapped = np.atleast_2d(np.asarray(mapped, dtype=np.float64))
        n_cells = 1 << self.levels
        cell_size = self.extent / n_cells
        coords = np.floor(mapped / cell_size).astype(np.int64)
        np.clip(coords, 0, n_cells - 1, out=coords)
        return coords

    def leaf_codes_for(self, mapped: np.ndarray) -> np.ndarray:
        """Linearized leaf cell codes for each mapped row (one pass)."""
        return encode_cells(self.leaf_coords_for(mapped), self.n_dims, self.levels)

    def insert(self, mapped: np.ndarray) -> np.ndarray:
        """Insert mapped rows; returns the int64 leaf cell code of each row.

        Row indices assigned to members continue from the current
        ``n_vectors`` counter, so repeated inserts (column appends) index a
        growing external vector store consistently.
        """
        mapped = np.atleast_2d(np.asarray(mapped, dtype=np.float64))
        if mapped.shape[1] != self.n_dims:
            raise ValueError(
                f"mapped dim {mapped.shape[1]} != grid dim {self.n_dims}"
            )
        codes = self.leaf_codes_for(mapped)
        new_leaves = np.unique(codes)
        for level in range(self.levels, 0, -1):
            self._level_codes[level] = _merge_sorted_unique(
                self._level_codes[level], new_leaves
            )
            new_leaves = np.unique(new_leaves >> self.n_dims)
        if self.store_members:
            self._row_codes = np.concatenate([self._row_codes, codes])
            self._members_cache = None
        self._tree_cache = None
        self.n_vectors += mapped.shape[0]
        return codes

    # -- array-side structure ----------------------------------------------------

    def level_codes(self, level: int) -> np.ndarray:
        """Sorted cell codes of one level (level 0 is the root's [0])."""
        return self._level_codes[level]

    @property
    def leaf_codes(self) -> np.ndarray:
        """Sorted populated leaf cell codes."""
        return self._level_codes[self.levels]

    def children_codes(self, level: int, code: int) -> np.ndarray:
        """Sorted child codes (level+1) of the level-``level`` cell ``code``.

        Children of a cell are a contiguous range of the next level's
        sorted array because the parent code is a bit-prefix.
        """
        nxt = self._level_codes[level + 1]
        lo = int(np.searchsorted(nxt, int(code) << self.n_dims, side="left"))
        hi = int(np.searchsorted(nxt, (int(code) + 1) << self.n_dims, side="left"))
        return nxt[lo:hi]

    def subtree_leaf_codes(self, level: int, code: int) -> np.ndarray:
        """Sorted leaf codes below the level-``level`` cell ``code``."""
        shift = self.n_dims * (self.levels - level)
        leaves = self._level_codes[self.levels]
        lo = int(np.searchsorted(leaves, int(code) << shift, side="left"))
        hi = int(np.searchsorted(leaves, (int(code) + 1) << shift, side="left"))
        return leaves[lo:hi]

    def _members_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Members CSR: offsets aligned with ``leaf_codes``, grouped rows."""
        if not self.store_members:
            raise RuntimeError("this grid does not store member indices")
        if self._members_cache is None:
            order = np.argsort(self._row_codes, kind="stable").astype(np.intp)
            leaves = self._level_codes[self.levels]
            starts = np.empty(leaves.size + 1, dtype=np.intp)
            starts[:-1] = np.searchsorted(self._row_codes[order], leaves, side="left")
            starts[-1] = order.size
            self._members_cache = (starts, order)
        return self._members_cache

    def leaf_members(self, code: int) -> np.ndarray:
        """Member row indices (ascending) of one leaf cell code."""
        starts, order = self._members_csr()
        leaves = self._level_codes[self.levels]
        i = int(np.searchsorted(leaves, int(code), side="left"))
        if i >= leaves.size or leaves[i] != code:
            return np.empty(0, dtype=np.intp)
        return order[starts[i] : starts[i + 1]]

    def subtree_member_rows(self, level: int, code: int) -> np.ndarray:
        """Member rows of every leaf below a cell — one CSR slice.

        Rows grouped by sorted leaf code are contiguous across a subtree's
        leaf range, so no per-leaf gathering is needed.
        """
        starts, order = self._members_csr()
        shift = self.n_dims * (self.levels - level)
        leaves = self._level_codes[self.levels]
        lo = int(np.searchsorted(leaves, int(code) << shift, side="left"))
        hi = int(np.searchsorted(leaves, (int(code) + 1) << shift, side="left"))
        return order[starts[lo] : starts[hi]]

    # -- geometry ----------------------------------------------------------------

    def cell_size(self, level: int) -> float:
        """Edge length of a level-``level`` cell."""
        return self.extent / (1 << level)

    def level_coords(self, level: int) -> np.ndarray:
        """Decoded ``(n_cells, n_dims)`` integer coordinates of one level."""
        return decode_cells(self._level_codes[level], self.n_dims, level)

    def cell_box(self, cell: GridCell) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounds ``(lo, hi)`` of a cell.

        The root box spans the whole pivot space.
        """
        if cell.level == 0:
            lo = np.zeros(self.n_dims)
            hi = np.full(self.n_dims, self.extent)
            return lo, hi
        size = self.cell_size(cell.level)
        coords = np.asarray(cell.coords, dtype=np.float64)
        lo = coords * size
        return lo, lo + size

    # -- object-tree view (tests / inspection) -----------------------------------

    def _tree(self) -> tuple[GridCell, list[dict[Coords, GridCell]]]:
        """Build (and cache) the GridCell object tree from the code arrays."""
        if self._tree_cache is None:
            root = GridCell(0, ())
            cells: list[dict[Coords, GridCell]] = [{(): root}]
            parents: dict[int, GridCell] = {0: root}
            for level in range(1, self.levels + 1):
                codes = self._level_codes[level]
                coords_arr = decode_cells(codes, self.n_dims, level)
                level_map: dict[Coords, GridCell] = {}
                next_parents: dict[int, GridCell] = {}
                for code, coords in zip(codes.tolist(), coords_arr.tolist()):
                    cell = GridCell(level, tuple(coords))
                    level_map[cell.coords] = cell
                    parents[code >> self.n_dims].children.append(cell)
                    next_parents[code] = cell
                cells.append(level_map)
                parents = next_parents
            if self.store_members:
                starts, order = self._members_csr()
                leaves = self._level_codes[self.levels]
                coords_arr = decode_cells(leaves, self.n_dims, self.levels)
                leaf_map = cells[self.levels]
                for i, coords in enumerate(coords_arr.tolist()):
                    leaf_map[tuple(coords)].members = order[
                        starts[i] : starts[i + 1]
                    ].tolist()
            self._tree_cache = (root, cells)
        return self._tree_cache

    @property
    def root(self) -> GridCell:
        """Root of the object-tree view."""
        return self._tree()[0]

    @property
    def cells(self) -> list[dict[Coords, GridCell]]:
        """Per-level cell maps of the object-tree view (index 0 = root)."""
        return self._tree()[1]

    @property
    def leaf_cells(self) -> dict[Coords, GridCell]:
        """Populated leaf cells keyed by coordinates (object-tree view)."""
        return self._tree()[1][self.levels]

    def iter_cells(self, level: int) -> Iterator[GridCell]:
        """Iterate populated cells of one level (object-tree view)."""
        return iter(self._tree()[1][level].values())

    def subtree_leaves(self, cell: GridCell) -> list[GridCell]:
        """All populated leaf cells nested under ``cell`` (itself if a leaf)."""
        if cell.level == self.levels:
            return [cell]
        out: list[GridCell] = []
        stack = [cell]
        while stack:
            current = stack.pop()
            if current.level == self.levels:
                out.append(current)
            else:
                stack.extend(current.children)
        return out

    def subtree_members(self, cell: GridCell) -> list[int]:
        """Member row indices of all leaves under ``cell`` (HG_Q only)."""
        if not self.store_members:
            raise RuntimeError("this grid does not store member indices")
        out: list[int] = []
        for leaf in self.subtree_leaves(cell):
            out.extend(leaf.members)
        return out

    # -- reporting ---------------------------------------------------------------

    @property
    def n_cells(self) -> int:
        """Total number of populated cells over all levels (excluding root)."""
        return sum(arr.size for arr in self._level_codes[1:])

    def memory_bytes(self) -> int:
        """Memory footprint of the grid arrays (for Fig. 6b)."""
        total = sum(arr.nbytes for arr in self._level_codes)
        total += self._row_codes.nbytes
        if self._members_cache is not None:
            starts, order = self._members_cache
            total += starts.nbytes + order.nbytes
        return total
