"""Sparse hierarchical grids over the pivot space (paper §III-B).

A grid of ``m`` levels divides the pivot space ``[0, extent]^|P|`` into
``2^(|P| * i)`` hyper-cells at level ``i`` (each dimension is split into
``2^i`` equal intervals). Only populated cells are materialised — the
paper notes this explicitly to save memory. Cells form a tree: the root
covers the whole space; a level-``i`` cell's children are the populated
level-``i+1`` cells nested inside it.

Two grids are built per search: ``HG_Q`` for the mapped query vectors
(leaf cells keep their member vector indices) and ``HG_RV`` for the mapped
repository vectors (leaf occupancy only; vectors are reached through the
inverted index, mirroring the structural difference described in §III-B).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

Coords = tuple[int, ...]


class GridCell:
    """One populated cell of a hierarchical grid."""

    __slots__ = ("level", "coords", "children", "members")

    def __init__(self, level: int, coords: Coords):
        self.level = level
        self.coords = coords
        #: populated child cells (next finer level)
        self.children: list["GridCell"] = []
        #: vector row indices, kept at leaf level only (and only when the
        #: grid stores members, i.e. for HG_Q)
        self.members: list[int] = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GridCell(level={self.level}, coords={self.coords})"


class HierarchicalGrid:
    """Sparse m-level grid over pivot-space coordinates in ``[0, extent]``.

    Args:
        n_dims: dimensionality of the pivot space, |P|.
        levels: number of levels ``m`` (excluding the root).
        extent: upper bound of every coordinate.
        store_members: keep member row indices in leaf cells (HG_Q does,
            HG_RV does not).
    """

    def __init__(self, n_dims: int, levels: int, extent: float, store_members: bool = True):
        if levels < 1:
            raise ValueError("a hierarchical grid needs at least one level")
        if n_dims < 1:
            raise ValueError("pivot space must have at least one dimension")
        if extent <= 0:
            raise ValueError("extent must be positive")
        self.n_dims = n_dims
        self.levels = levels
        self.extent = float(extent)
        self.store_members = store_members
        self.root = GridCell(0, ())
        #: per-level cell maps; index 0 is the root level (single entry)
        self.cells: list[dict[Coords, GridCell]] = [dict() for _ in range(levels + 1)]
        self.cells[0][()] = self.root
        self.n_vectors = 0

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        mapped: np.ndarray,
        levels: int,
        extent: float,
        store_members: bool = True,
    ) -> "HierarchicalGrid":
        """Build a grid from mapped vectors (rows are pivot-space points)."""
        mapped = np.atleast_2d(np.asarray(mapped, dtype=np.float64))
        grid = cls(mapped.shape[1], levels, extent, store_members=store_members)
        grid.insert(mapped)
        return grid

    def leaf_coords_for(self, mapped: np.ndarray) -> np.ndarray:
        """Integer leaf-cell coordinates for each mapped row."""
        mapped = np.atleast_2d(np.asarray(mapped, dtype=np.float64))
        n_cells = 1 << self.levels
        cell_size = self.extent / n_cells
        coords = np.floor(mapped / cell_size).astype(np.int64)
        np.clip(coords, 0, n_cells - 1, out=coords)
        return coords

    def insert(self, mapped: np.ndarray) -> list[Coords]:
        """Insert mapped rows; returns the leaf coordinates of each row.

        Row indices assigned to members continue from the current
        ``n_vectors`` counter, so repeated inserts (column appends) index a
        growing external vector store consistently.
        """
        mapped = np.atleast_2d(np.asarray(mapped, dtype=np.float64))
        if mapped.shape[1] != self.n_dims:
            raise ValueError(
                f"mapped dim {mapped.shape[1]} != grid dim {self.n_dims}"
            )
        leaf = self.leaf_coords_for(mapped)
        start = self.n_vectors
        out: list[Coords] = []
        leaf_rows = leaf.tolist()
        for offset, row in enumerate(leaf_rows):
            coords = tuple(row)
            out.append(coords)
            cell = self._ensure_leaf(coords)
            if self.store_members:
                cell.members.append(start + offset)
        self.n_vectors += mapped.shape[0]
        return out

    def _ensure_leaf(self, coords: Coords) -> GridCell:
        """Create (if absent) the leaf cell and its ancestor chain."""
        leaf_map = self.cells[self.levels]
        cell = leaf_map.get(coords)
        if cell is not None:
            return cell
        cell = GridCell(self.levels, coords)
        leaf_map[coords] = cell
        child = cell
        for level in range(self.levels - 1, 0, -1):
            parent_coords = tuple(c >> 1 for c in child.coords)
            parent_map = self.cells[level]
            parent = parent_map.get(parent_coords)
            if parent is not None:
                parent.children.append(child)
                return cell
            parent = GridCell(level, parent_coords)
            parent_map[parent_coords] = parent
            parent.children.append(child)
            child = parent
        self.root.children.append(child)
        return cell

    # -- geometry ----------------------------------------------------------------

    def cell_size(self, level: int) -> float:
        """Edge length of a level-``level`` cell."""
        return self.extent / (1 << level)

    def cell_box(self, cell: GridCell) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounds ``(lo, hi)`` of a cell.

        The root box spans the whole pivot space.
        """
        if cell.level == 0:
            lo = np.zeros(self.n_dims)
            hi = np.full(self.n_dims, self.extent)
            return lo, hi
        size = self.cell_size(cell.level)
        coords = np.asarray(cell.coords, dtype=np.float64)
        lo = coords * size
        return lo, lo + size

    # -- traversal ---------------------------------------------------------------

    @property
    def leaf_cells(self) -> dict[Coords, GridCell]:
        """Populated leaf cells keyed by coordinates."""
        return self.cells[self.levels]

    def iter_cells(self, level: int) -> Iterator[GridCell]:
        """Iterate populated cells of one level."""
        return iter(self.cells[level].values())

    def subtree_leaves(self, cell: GridCell) -> list[GridCell]:
        """All populated leaf cells nested under ``cell`` (itself if a leaf)."""
        if cell.level == self.levels:
            return [cell]
        out: list[GridCell] = []
        stack = [cell]
        while stack:
            current = stack.pop()
            if current.level == self.levels:
                out.append(current)
            else:
                stack.extend(current.children)
        return out

    def subtree_members(self, cell: GridCell) -> list[int]:
        """Member row indices of all leaves under ``cell`` (HG_Q only)."""
        if not self.store_members:
            raise RuntimeError("this grid does not store member indices")
        out: list[int] = []
        for leaf in self.subtree_leaves(cell):
            out.extend(leaf.members)
        return out

    @property
    def n_cells(self) -> int:
        """Total number of populated cells over all levels (excluding root)."""
        return sum(len(level_map) for level_map in self.cells[1:])

    def memory_bytes(self) -> int:
        """Rough memory footprint of the grid structure (for Fig. 6b)."""
        total = 0
        for level_map in self.cells:
            for cell in level_map.values():
                # coords tuple + children list + member ints, 8 bytes a piece
                total += 8 * (len(cell.coords) + len(cell.children) + len(cell.members)) + 64
        return total
