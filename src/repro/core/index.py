"""The PEXESO index: pivots + hierarchical grid + inverted index (§III).

:class:`PexesoIndex` owns the repository side of the framework: the pivot
space, the mapped vector store, ``HG_RV`` and the inverted index. It
supports the incremental maintenance of §III-E (column append and delete);
out-of-core partitions spill it to disk through the array-native
:mod:`~repro.core.persistence` format.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.core.grid import HierarchicalGrid
from repro.core.inverted_index import InvertedIndex
from repro.core.metric import EuclideanMetric, Metric
from repro.core.pivot import PivotSpace, build_pivot_space
from repro.core.stats import IndexStats


class PexesoIndex:
    """Index over a repository of vector columns.

    Args:
        metric: original-space metric (must satisfy the triangle
            inequality; defaults to Euclidean on unit vectors).
        n_pivots: |P|, the pivot-space dimensionality (paper default 5 on
            OPEN, 3 on SWDC).
        levels: m, the hierarchical-grid depth (paper default 6 / 4). Use
            :func:`repro.core.cost.choose_optimal_m` to pick it from data.
            ``n_pivots * levels`` must stay within the 62 bits of a
            linearized cell code (every paper configuration does, by a
            wide margin).
        pivot_method: ``pca`` (paper §III-D), ``random`` or ``fft``.
        seed: randomness for pivot selection.
    """

    def __init__(
        self,
        metric: Optional[Metric] = None,
        n_pivots: int = 5,
        levels: int = 4,
        pivot_method: str = "pca",
        seed: int = 0,
    ):
        if n_pivots < 1:
            raise ValueError("need at least one pivot")
        if levels < 1:
            raise ValueError("need at least one grid level")
        self.metric = metric if metric is not None else EuclideanMetric()
        if not getattr(self.metric, "is_metric", True):
            raise ValueError(
                f"{type(self.metric).__name__} violates the triangle "
                "inequality; pivot filtering would be unsound. For cosine "
                "similarity, unit-normalise the vectors and use "
                "EuclideanMetric (d_e^2 = 2 * d_cos)."
            )
        self.n_pivots = n_pivots
        self.levels = levels
        self.pivot_method = pivot_method
        self.seed = seed
        self.stats = IndexStats()

        self.pivot_space: Optional[PivotSpace] = None
        self.grid: Optional[HierarchicalGrid] = None
        self.inverted: InvertedIndex = InvertedIndex()
        self._vector_blocks: list[np.ndarray] = []
        self._mapped_blocks: list[np.ndarray] = []
        self._vectors: Optional[np.ndarray] = None
        self._mapped: Optional[np.ndarray] = None
        self.column_rows: dict[int, np.ndarray] = {}
        self._next_column_id = 0
        self._n_rows = 0
        # Opt-in ANN candidate tier (repro.core.ann): a column graph, or
        # None. `_ann_invalidated` separates "never built" (a lazy build
        # is allowed) from "dropped by a mutation" (fall back to exact
        # until build_ann_graph() is called again).
        self.ann_graph = None
        self._ann_invalidated = False

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        columns: Sequence[np.ndarray],
        metric: Optional[Metric] = None,
        n_pivots: int = 5,
        levels: int = 4,
        pivot_method: str = "pca",
        seed: int = 0,
    ) -> "PexesoIndex":
        """Build an index from a sequence of ``(n_i, dim)`` vector columns."""
        index = cls(
            metric=metric,
            n_pivots=n_pivots,
            levels=levels,
            pivot_method=pivot_method,
            seed=seed,
        )
        index.fit(columns)
        return index

    def fit(self, columns: Sequence[np.ndarray]) -> "PexesoIndex":
        """Select pivots from the full repository and index every column.

        The index core is built in bulk: one vectorised pivot-mapping
        pass over the concatenated lake, one grid insert (leaf cell codes
        plus shift-derived ancestor levels) and one lexsort building the
        CSR inverted index — a handful of NumPy passes instead of
        per-column, per-row Python. The resulting structure is identical
        to appending the columns one at a time with :meth:`add_column`.
        """
        if not columns:
            raise ValueError("cannot build an index over zero columns")
        arrays = [np.atleast_2d(np.asarray(c, dtype=np.float64)) for c in columns]
        dim = arrays[0].shape[1]
        for arr in arrays:
            if arr.shape[1] != dim:
                raise ValueError("all columns must share one dimensionality")
            if arr.shape[0] == 0:
                raise ValueError("cannot index an empty column")
        all_vectors = np.concatenate(arrays, axis=0)
        if not np.isfinite(all_vectors).all():
            raise ValueError("column contains NaN or infinite values")

        t0 = time.perf_counter()
        self.pivot_space = build_pivot_space(
            all_vectors,
            self.n_pivots,
            self.metric,
            method=self.pivot_method,
            rng=np.random.default_rng(self.seed),
        )
        self.stats.pivot_selection_seconds += time.perf_counter() - t0

        self.grid = HierarchicalGrid(
            self.pivot_space.n_pivots,
            self.levels,
            self.pivot_space.extent,
            store_members=False,
        )

        t0 = time.perf_counter()
        mapped = self.pivot_space.map_vectors(all_vectors)
        self.stats.pivot_mapping_seconds += time.perf_counter() - t0

        t0 = time.perf_counter()
        cell_of_row = self.grid.insert(mapped)
        self.stats.grid_build_seconds += time.perf_counter() - t0

        sizes = np.asarray([arr.shape[0] for arr in arrays], dtype=np.intp)
        column_of_row = np.repeat(np.arange(len(arrays), dtype=np.int64), sizes)
        t0 = time.perf_counter()
        self.inverted.build_bulk(cell_of_row, column_of_row)
        self.stats.inverted_index_seconds += time.perf_counter() - t0

        self._vector_blocks = [all_vectors]
        self._mapped_blocks = [mapped]
        self._vectors = all_vectors
        self._mapped = mapped
        bounds = np.concatenate([[0], np.cumsum(sizes)])
        self.column_rows = {
            cid: np.arange(bounds[cid], bounds[cid + 1], dtype=np.intp)
            for cid in range(len(arrays))
        }
        self._next_column_id = len(arrays)
        self._n_rows = int(bounds[-1])
        self.ann_graph = None
        self._ann_invalidated = False
        self.stats.n_vectors = self._n_rows
        self.stats.n_columns = len(self.column_rows)
        self.stats.n_leaf_cells = self.inverted.n_cells
        self.stats.n_postings = self.inverted.n_postings
        return self

    def add_column(self, vectors: np.ndarray) -> int:
        """Append a column (§III-E) and return its assigned column ID."""
        if self.pivot_space is None or self.grid is None:
            raise RuntimeError("index is empty: call fit() before add_column()")
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[0] == 0:
            raise ValueError("cannot index an empty column")
        if not np.isfinite(vectors).all():
            raise ValueError("column contains NaN or infinite values")

        t0 = time.perf_counter()
        mapped = self.pivot_space.map_vectors(vectors)
        self.stats.pivot_mapping_seconds += time.perf_counter() - t0

        t0 = time.perf_counter()
        cells = self.grid.insert(mapped)
        self.stats.grid_build_seconds += time.perf_counter() - t0

        column_id = self._next_column_id
        self._next_column_id += 1
        first_row = self._n_rows
        t0 = time.perf_counter()
        self.inverted.add_column(column_id, cells, first_row)
        self.stats.inverted_index_seconds += time.perf_counter() - t0

        self._vector_blocks.append(vectors)
        self._mapped_blocks.append(mapped)
        self._vectors = None
        self._mapped = None
        self._drop_ann_graph()
        self.column_rows[column_id] = np.arange(
            first_row, first_row + vectors.shape[0], dtype=np.intp
        )
        self._n_rows += vectors.shape[0]
        self.stats.n_vectors = self._n_rows
        self.stats.n_columns = len(self.column_rows)
        self.stats.n_leaf_cells = self.inverted.n_cells
        self.stats.n_postings = self.inverted.n_postings
        return column_id

    def delete_column(self, column_id: int) -> None:
        """Remove a column from the inverted index (§III-E lazy deletion).

        Vector storage is retained (tombstoned): the postings are the only
        path from a search to a column, so removing them removes the
        column from every future result.
        """
        if column_id not in self.column_rows:
            raise KeyError(f"unknown column id {column_id}")
        self.inverted.delete_column(column_id)
        del self.column_rows[column_id]
        self._drop_ann_graph()
        self.stats.n_columns = len(self.column_rows)
        self.stats.n_leaf_cells = self.inverted.n_cells
        self.stats.n_postings = self.inverted.n_postings

    # -- approximate candidate tier ----------------------------------------------

    def _drop_ann_graph(self) -> None:
        """Mutations drop the column graph so stale nominations never surface.

        ANN-knobbed requests then run the exact pipeline (recall 1.0)
        until :meth:`build_ann_graph` is called again.
        """
        self.ann_graph = None
        self._ann_invalidated = True

    def build_ann_graph(self, m: Optional[int] = None):
        """(Re)build the opt-in ANN column graph (see :mod:`repro.core.ann`)."""
        from repro.core.ann import DEFAULT_GRAPH_DEGREE, ColumnGraph

        self.ann_graph = ColumnGraph.build(
            self, m=m if m is not None else DEFAULT_GRAPH_DEGREE
        )
        self._ann_invalidated = False
        return self.ann_graph

    def ensure_ann_graph(self):
        """The column graph, building it lazily on first ANN use.

        Returns ``None`` when the index was mutated since the last build
        — the documented exact fallback — or holds no columns.
        """
        if self.ann_graph is None and not self._ann_invalidated and self.column_rows:
            self.build_ann_graph()
        return self.ann_graph

    # -- vector stores -----------------------------------------------------------

    @property
    def vectors(self) -> np.ndarray:
        """Global ``(N, dim)`` vector store (lazily concatenated)."""
        if self._vectors is None:
            if not self._vector_blocks:
                raise RuntimeError("index holds no vectors")
            self._vectors = (
                self._vector_blocks[0]
                if len(self._vector_blocks) == 1
                else np.concatenate(self._vector_blocks, axis=0)
            )
            self._vector_blocks = [self._vectors]
        return self._vectors

    @property
    def mapped(self) -> np.ndarray:
        """Global ``(N, |P|)`` pivot-mapped store."""
        if self._mapped is None:
            if not self._mapped_blocks:
                raise RuntimeError("index holds no vectors")
            self._mapped = (
                self._mapped_blocks[0]
                if len(self._mapped_blocks) == 1
                else np.concatenate(self._mapped_blocks, axis=0)
            )
            self._mapped_blocks = [self._mapped]
        return self._mapped

    @property
    def n_columns(self) -> int:
        return len(self.column_rows)

    @property
    def n_vectors(self) -> int:
        return self._n_rows

    @property
    def dim(self) -> int:
        if self.pivot_space is None:
            raise RuntimeError("index is empty")
        return self.pivot_space.dim

    def column_size(self, column_id: int) -> int:
        """Number of vectors in a column."""
        return int(self.column_rows[column_id].size)

    # -- reporting ---------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Approximate index memory footprint (pivot table + grid + postings).

        Excludes the raw vector store, matching the paper's remark that
        "most memory consumption is the table repository storage".
        """
        total = self.mapped.nbytes if self._n_rows else 0
        if self.pivot_space is not None:
            total += self.pivot_space.pivots.nbytes
        if self.grid is not None:
            total += self.grid.memory_bytes()
        total += self.inverted.memory_bytes()
        return total

    def search(self, query_vectors: np.ndarray, tau: float, joinability: float | int, **kwargs):
        """Convenience wrapper around :func:`repro.core.search.pexeso_search`."""
        from repro.core.search import pexeso_search

        return pexeso_search(self, query_vectors, tau, joinability, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PexesoIndex(columns={self.n_columns}, vectors={self.n_vectors}, "
            f"pivots={self.n_pivots}, levels={self.levels})"
        )
