"""Small generic Lloyd k-means used by JSD partitioning and product
quantization (both need a clusterer and scikit-learn is not available).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np


def lloyd_kmeans(
    points: np.ndarray,
    k: int,
    n_iter: int = 20,
    rng: Optional[np.random.Generator] = None,
    distance: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
    mean: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster rows of ``points`` into ``k`` groups.

    Args:
        points: ``(n, d)`` data.
        k: number of clusters (clamped to ``n``).
        n_iter: maximum Lloyd iterations (stops early on convergence).
        distance: ``(points, centers) -> (n, k)`` distance matrix; defaults
            to squared Euclidean.
        mean: cluster-mean reducer ``(members) -> center``; defaults to the
            arithmetic mean. JSD k-means passes a histogram-mean here.

    Returns:
        ``(labels, centers)`` with ``labels`` of shape ``(n,)``.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n = points.shape[0]
    if n == 0:
        raise ValueError("cannot cluster zero points")
    k = max(1, min(k, n))
    rng = rng or np.random.default_rng(0)

    if distance is None:
        def distance(pts: np.ndarray, centers: np.ndarray) -> np.ndarray:
            aa = np.einsum("ij,ij->i", pts, pts)[:, None]
            bb = np.einsum("ij,ij->i", centers, centers)[None, :]
            return np.maximum(aa + bb - 2.0 * pts @ centers.T, 0.0)

    if mean is None:
        def mean(members: np.ndarray) -> np.ndarray:
            return members.mean(axis=0)

    centers = points[rng.choice(n, size=k, replace=False)].copy()
    labels = np.zeros(n, dtype=np.intp)
    for _ in range(n_iter):
        dist = distance(points, centers)
        new_labels = np.argmin(dist, axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for c in range(k):
            members = points[labels == c]
            if members.shape[0]:
                centers[c] = mean(members)
            else:
                # Re-seed empty clusters with the point farthest from its center.
                worst = int(np.argmax(dist[np.arange(n), labels]))
                centers[c] = points[worst]
    return labels, centers
