"""Blocking with hierarchical grids — Algorithm 1 + quick browsing (§III-B/C).

The two grids (``HG_Q`` over the mapped query vectors, ``HG_RV`` over the
mapped repository vectors) are descended simultaneously in a hierarchical
block-nested-loop join. Cell pairs proven disjoint by Lemma 4 are pruned
with their whole subtrees; cell pairs proven matching by Lemma 6 emit
matching pairs for every (query vector, target leaf) underneath. At the
leaf level Lemmas 3 and 5 decide per query vector.

Implementation notes: the descent follows Algorithm 1's structure but the
per-level predicates are evaluated *batched* — one numpy evaluation per
(query cell, all sibling target cells) instead of one per cell pair, and
one (query members x target cells) evaluation at the leaf level. Cells
are the linearized int64 codes of :mod:`repro.core.cellcodes`, so a
cell's children, subtree leaves and subtree members are contiguous
``np.searchsorted`` ranges of the grids' sorted code arrays, and cell
boxes come from vectorised code decoding. This keeps the measured
quantity (which pairs survive) identical to the tuple-coordinate
implementation while making blocking time negligible next to
verification, as the paper reports.

The output pairs the paper's ``⟨mapped query vector, leaf cells⟩`` form:
``match_pairs[q]`` / ``candidate_pairs[q]`` are the target leaf-cell-code
lists for query row ``q``.

Quick browsing: a query leaf cell and a target leaf cell with identical
codes can never be separated by Lemma 3/4 (they overlap), so such pairs
are emitted as candidates up front and skipped during the descent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core import kernels
from repro.core.cellcodes import decode_cells
from repro.core.grid import CellCode, HierarchicalGrid
from repro.core.stats import SearchStats


@dataclass
class BlockResult:
    """Pairs produced by blocking, keyed by query vector row index.

    Cell values are int64 leaf cell codes of ``HG_RV``.
    """

    match_pairs: dict[int, list[CellCode]] = field(default_factory=dict)
    candidate_pairs: dict[int, list[CellCode]] = field(default_factory=dict)

    def add_match(self, q: int, cell: CellCode) -> None:
        self.match_pairs.setdefault(q, []).append(cell)

    def add_matches(self, q: int, cells: list[CellCode]) -> None:
        """Bulk form of :meth:`add_match` (one list op per query row)."""
        existing = self.match_pairs.get(q)
        if existing is None:
            self.match_pairs[q] = list(cells)
        else:
            existing.extend(cells)

    def add_candidate(self, q: int, cell: CellCode) -> None:
        self.candidate_pairs.setdefault(q, []).append(cell)

    @property
    def n_match_pairs(self) -> int:
        return sum(len(cells) for cells in self.match_pairs.values())

    @property
    def n_candidate_pairs(self) -> int:
        return sum(len(cells) for cells in self.candidate_pairs.values())


class _Blocker:
    """Recursive state for one run of Algorithm 1."""

    def __init__(
        self,
        hg_q: HierarchicalGrid,
        hg_rv: HierarchicalGrid,
        q_mapped: np.ndarray,
        tau: float,
        stats: SearchStats,
        use_lemma34: bool,
        use_lemma56: bool,
        skip_aligned: Optional[set[CellCode]],
    ):
        if hg_q.levels != hg_rv.levels:
            raise ValueError("HG_Q and HG_RV must have the same number of levels")
        if hg_q.n_dims != hg_rv.n_dims:
            raise ValueError("HG_Q and HG_RV must share one pivot space")
        self.hg_q = hg_q
        self.hg_rv = hg_rv
        self.q_mapped = q_mapped
        self.tau = tau
        self.stats = stats
        self.use_lemma34 = use_lemma34
        self.use_lemma56 = use_lemma56
        self.skip_aligned = skip_aligned or set()
        self.result = BlockResult()
        #: cached (child codes, lo, hi) per (grid tag, level, parent code)
        self._child_cache: dict[
            tuple[str, int, int], tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}

    def run(self) -> BlockResult:
        self._block(0, 0, 0)
        return self.result

    # -- geometry helpers ----------------------------------------------------------

    def _children(
        self, tag: str, grid: HierarchicalGrid, level: int, code: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Child codes and stacked (lo, hi) boxes of a cell, cached per search."""
        key = (tag, level, code)
        cached = self._child_cache.get(key)
        if cached is not None:
            return cached
        child_level = level + 1
        codes = grid.children_codes(level, code)
        size = grid.cell_size(child_level)
        coords = decode_cells(codes, grid.n_dims, child_level).astype(np.float64)
        lo = coords * size
        entry = (codes, lo, lo + size)
        self._child_cache[key] = entry
        return entry

    # -- descent ---------------------------------------------------------------------

    def _block(self, level: int, code_q: int, code_r: int) -> None:
        q_codes, q_lo_all, q_hi_all = self._children("q", self.hg_q, level, code_q)
        r_codes, r_lo, r_hi = self._children("r", self.hg_rv, level, code_r)
        if q_codes.size == 0 or r_codes.size == 0:
            return
        leaf_level = self.hg_q.levels
        child_level = level + 1
        n_r = int(r_codes.size)

        for qi, q_code in enumerate(q_codes.tolist()):
            self.stats.cells_visited += n_r
            q_lo = q_lo_all[qi]
            q_hi = q_hi_all[qi]
            if child_level == leaf_level:
                self._block_leaves(q_code, r_codes, r_lo, r_hi)
                continue

            # Lemma 6 (cell-cell matching) and Lemma 4 (cell-cell
            # filtering), batched over sibling target cells through the
            # active kernel backend (numba-compiled when available).
            matched, filtered = kernels.cell_masks(
                r_lo, r_hi, q_lo, q_hi, self.tau,
                self.use_lemma56, self.use_lemma34,
            )

            n_matched = int(matched.sum())
            if n_matched:
                self.stats.lemma6_matched += n_matched
                for ri in np.nonzero(matched)[0]:
                    self._emit_subtree_matches(
                        child_level, q_code, int(r_codes[ri])
                    )
            self.stats.lemma4_filtered += int(filtered.sum())
            for ri in np.nonzero(~matched & ~filtered)[0]:
                self._block(child_level, q_code, int(r_codes[ri]))

    def _block_leaves(
        self,
        q_code: int,
        r_codes: np.ndarray,
        r_lo: np.ndarray,
        r_hi: np.ndarray,
    ) -> None:
        """Leaf stage: Lemmas 5 and 3 per (query vector, target leaf)
        (Alg. 1 l.3–9), batched over both axes."""
        members = self.hg_q.leaf_members(q_code)
        batch = self.q_mapped[members]  # (mq, d)
        tau = self.tau

        if self.skip_aligned and q_code in self.skip_aligned:
            keep = r_codes != q_code  # handled by quick browsing
            t_lo = r_lo[keep]
            t_hi = r_hi[keep]
            kept_cells = r_codes[keep].tolist()
        else:
            t_lo = r_lo
            t_hi = r_hi
            kept_cells = r_codes.tolist()
        if not kept_cells:
            return

        # Lemma 5 ((mq, kt) matching) and Lemma 3 (SQR-vs-box filtering),
        # batched over both axes through the active kernel backend.
        matched, filtered = kernels.leaf_masks(
            batch, t_lo, t_hi, tau, self.use_lemma56, self.use_lemma34
        )

        self.stats.lemma5_matched += int(matched.sum())
        self.stats.lemma3_filtered += int(filtered.sum())
        candidates = ~matched & ~filtered
        for mi, ri in zip(*np.nonzero(matched)):
            self.result.add_match(int(members[mi]), kept_cells[ri])
        for mi, ri in zip(*np.nonzero(candidates)):
            self.result.add_candidate(int(members[mi]), kept_cells[ri])

    def _emit_subtree_matches(self, level: int, q_code: int, r_code: int) -> None:
        """Lemma 6 fired: every query vector under ``q_code`` matches every
        target leaf cell under ``r_code`` (Alg. 1 l.11–12).

        Both subtrees are contiguous ranges of the grids' sorted arrays:
        the member rows are one CSR slice and the target leaves one code
        slice, emitted with one bulk list op per member."""
        members = self.hg_q.subtree_member_rows(level, q_code)
        leaves = self.hg_rv.subtree_leaf_codes(level, r_code).tolist()
        for q in members.tolist():
            self.result.add_matches(q, leaves)


def quick_browse(
    hg_q: HierarchicalGrid,
    hg_rv: HierarchicalGrid,
    result: BlockResult,
    stats: SearchStats,
) -> set[CellCode]:
    """Emit candidates for identically-aligned leaf cells (§III-C).

    Alignment is one ``np.intersect1d`` over the two sorted leaf-code
    arrays. Returns the set of aligned codes so Algorithm 1 can skip them.
    """
    aligned_codes = np.intersect1d(hg_q.leaf_codes, hg_rv.leaf_codes)
    stats.quick_browse_cells += int(aligned_codes.size)
    for code in aligned_codes.tolist():
        for q in hg_q.leaf_members(code).tolist():
            result.add_candidate(q, code)
    return set(aligned_codes.tolist())


def block(
    hg_q: HierarchicalGrid,
    hg_rv: HierarchicalGrid,
    q_mapped: np.ndarray,
    tau: float,
    stats: Optional[SearchStats] = None,
    use_lemma34: bool = True,
    use_lemma56: bool = True,
    use_quick_browsing: bool = True,
) -> BlockResult:
    """Run quick browsing + Algorithm 1 and return all pairs.

    Args:
        hg_q: hierarchical grid of the mapped query vectors (with members).
        hg_rv: hierarchical grid of the mapped repository vectors.
        q_mapped: ``(|Q|, |P|)`` mapped query vectors.
        tau: distance threshold in original-space units.
        stats: counters to update (a fresh one is created when omitted).
        use_lemma34 / use_lemma56: ablation switches (Fig. 9).
        use_quick_browsing: process aligned leaf cells up front.
    """
    stats = stats if stats is not None else SearchStats()
    started = time.perf_counter()
    blocker = _Blocker(
        hg_q,
        hg_rv,
        np.atleast_2d(q_mapped),
        tau,
        stats,
        use_lemma34,
        use_lemma56,
        skip_aligned=None,
    )
    if use_quick_browsing:
        blocker.skip_aligned = quick_browse(hg_q, hg_rv, blocker.result, stats)
    result = blocker.run()
    stats.blocking_seconds += time.perf_counter() - started
    stats.matching_pairs += result.n_match_pairs
    stats.candidate_pairs += result.n_candidate_pairs
    return result
