"""Blocking with hierarchical grids — Algorithm 1 + quick browsing (§III-B/C).

The two grids (``HG_Q`` over the mapped query vectors, ``HG_RV`` over the
mapped repository vectors) are descended simultaneously in a hierarchical
block-nested-loop join. Cell pairs proven disjoint by Lemma 4 are pruned
with their whole subtrees; cell pairs proven matching by Lemma 6 emit
matching pairs for every (query vector, target leaf) underneath. At the
leaf level Lemmas 3 and 5 decide per query vector.

Implementation note: the descent follows Algorithm 1's structure but the
per-level predicates are evaluated *batched* — one numpy evaluation per
(query cell, all sibling target cells) instead of one per cell pair, and
one (query members x target cells) evaluation at the leaf level. This
keeps the measured quantity (which pairs survive) identical while making
blocking time negligible next to verification, as the paper reports.

The output pairs the paper's ``⟨mapped query vector, leaf cells⟩`` form:
``match_pairs[q]`` / ``candidate_pairs[q]`` are the target leaf-cell lists
for query row ``q``.

Quick browsing: a query leaf cell and a target leaf cell with identical
coordinates can never be separated by Lemma 3/4 (they overlap), so such
pairs are emitted as candidates up front and skipped during the descent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.grid import Coords, GridCell, HierarchicalGrid
from repro.core.stats import SearchStats


@dataclass
class BlockResult:
    """Pairs produced by blocking, keyed by query vector row index."""

    match_pairs: dict[int, list[Coords]] = field(default_factory=dict)
    candidate_pairs: dict[int, list[Coords]] = field(default_factory=dict)

    def add_match(self, q: int, cell: Coords) -> None:
        self.match_pairs.setdefault(q, []).append(cell)

    def add_matches(self, q: int, cells: list[Coords]) -> None:
        """Bulk form of :meth:`add_match` (one list op per query row)."""
        existing = self.match_pairs.get(q)
        if existing is None:
            self.match_pairs[q] = list(cells)
        else:
            existing.extend(cells)

    def add_candidate(self, q: int, cell: Coords) -> None:
        self.candidate_pairs.setdefault(q, []).append(cell)

    @property
    def n_match_pairs(self) -> int:
        return sum(len(cells) for cells in self.match_pairs.values())

    @property
    def n_candidate_pairs(self) -> int:
        return sum(len(cells) for cells in self.candidate_pairs.values())


class _Blocker:
    """Recursive state for one run of Algorithm 1."""

    def __init__(
        self,
        hg_q: HierarchicalGrid,
        hg_rv: HierarchicalGrid,
        q_mapped: np.ndarray,
        tau: float,
        stats: SearchStats,
        use_lemma34: bool,
        use_lemma56: bool,
        skip_aligned: Optional[set[Coords]],
    ):
        if hg_q.levels != hg_rv.levels:
            raise ValueError("HG_Q and HG_RV must have the same number of levels")
        self.hg_q = hg_q
        self.hg_rv = hg_rv
        self.q_mapped = q_mapped
        self.tau = tau
        self.stats = stats
        self.use_lemma34 = use_lemma34
        self.use_lemma56 = use_lemma56
        self.skip_aligned = skip_aligned or set()
        self.result = BlockResult()
        #: cached stacked child boxes per parent cell (id -> (lo, hi))
        self._box_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def run(self) -> BlockResult:
        self._block(self.hg_q.root, self.hg_rv.root)
        return self.result

    # -- geometry helpers ----------------------------------------------------------

    def _child_boxes(
        self, grid: HierarchicalGrid, parent: GridCell
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stacked (lo, hi) boxes of a parent's children, cached per search."""
        cached = self._box_cache.get(id(parent))
        if cached is not None:
            return cached
        level = parent.level + 1
        size = grid.cell_size(level)
        coords = np.asarray([child.coords for child in parent.children], dtype=np.float64)
        lo = coords * size
        boxes = (lo, lo + size)
        self._box_cache[id(parent)] = boxes
        return boxes

    # -- descent ---------------------------------------------------------------------

    def _block(self, parent_q: GridCell, parent_r: GridCell) -> None:
        if not parent_q.children or not parent_r.children:
            return
        leaf_level = self.hg_q.levels
        child_level = parent_q.level + 1
        r_children = parent_r.children
        r_lo, r_hi = self._child_boxes(self.hg_rv, parent_r)
        q_lo_all, q_hi_all = self._child_boxes(self.hg_q, parent_q)

        for qi, cell_q in enumerate(parent_q.children):
            self.stats.cells_visited += len(r_children)
            q_lo = q_lo_all[qi]
            q_hi = q_hi_all[qi]
            if child_level == leaf_level:
                self._block_leaves(cell_q, r_children, r_lo, r_hi)
                continue

            # Lemma 6 (cell-cell matching), batched over sibling target cells:
            # exists pivot i with t_hi[i] + q_hi[i] <= tau.
            if self.use_lemma56:
                matched = ((r_hi + q_hi[None, :]) <= self.tau).any(axis=1)
            else:
                matched = np.zeros(len(r_children), dtype=bool)
            # Lemma 4 (cell-cell filtering), batched: boxes farther than tau
            # apart in some dimension.
            if self.use_lemma34:
                filtered = (
                    (r_lo > q_hi[None, :] + self.tau)
                    | (r_hi < q_lo[None, :] - self.tau)
                ).any(axis=1)
                filtered &= ~matched
            else:
                filtered = np.zeros(len(r_children), dtype=bool)

            n_matched = int(matched.sum())
            if n_matched:
                self.stats.lemma6_matched += n_matched
                for ri in np.nonzero(matched)[0]:
                    self._emit_subtree_matches(cell_q, r_children[ri])
            self.stats.lemma4_filtered += int(filtered.sum())
            for ri in np.nonzero(~matched & ~filtered)[0]:
                self._block(cell_q, r_children[ri])

    def _block_leaves(
        self,
        cell_q: GridCell,
        r_children: list[GridCell],
        r_lo: np.ndarray,
        r_hi: np.ndarray,
    ) -> None:
        """Leaf stage: Lemmas 5 and 3 per (query vector, target leaf)
        (Alg. 1 l.3–9), batched over both axes."""
        members = np.asarray(cell_q.members)
        batch = self.q_mapped[members]  # (mq, d)
        tau = self.tau

        keep = np.ones(len(r_children), dtype=bool)
        if self.skip_aligned and cell_q.coords in self.skip_aligned:
            for ri, cell_r in enumerate(r_children):
                if cell_r.coords == cell_q.coords:
                    keep[ri] = False  # handled by quick browsing
        t_lo = r_lo[keep]
        t_hi = r_hi[keep]
        kept_cells = [c for c, k in zip(r_children, keep) if k]
        if not kept_cells:
            return

        # Lemma 5: (mq, kt) — exists pivot i with t_hi[i] + q'[i] <= tau.
        if self.use_lemma56:
            matched = ((batch[:, None, :] + t_hi[None, :, :]) <= tau).any(axis=2)
        else:
            matched = np.zeros((len(members), len(kept_cells)), dtype=bool)
        # Lemma 3: SQR(q', tau) misses the cell box in some dimension.
        if self.use_lemma34:
            filtered = (
                (t_lo[None, :, :] > batch[:, None, :] + tau)
                | (t_hi[None, :, :] < batch[:, None, :] - tau)
            ).any(axis=2)
            filtered &= ~matched
        else:
            filtered = np.zeros_like(matched)

        self.stats.lemma5_matched += int(matched.sum())
        self.stats.lemma3_filtered += int(filtered.sum())
        candidates = ~matched & ~filtered
        for mi, ri in zip(*np.nonzero(matched)):
            self.result.add_match(int(members[mi]), kept_cells[ri].coords)
        for mi, ri in zip(*np.nonzero(candidates)):
            self.result.add_candidate(int(members[mi]), kept_cells[ri].coords)

    def _emit_subtree_matches(self, cell_q: GridCell, cell_r: GridCell) -> None:
        """Lemma 6 fired: every query vector under ``cell_q`` matches every
        target leaf cell under ``cell_r`` (Alg. 1 l.11–12).

        Emitted with one bulk list op per member instead of a per-(member,
        leaf) Python loop — with batched queries a single Lemma 6 hit can
        cover hundreds of member rows."""
        members = self.hg_q.subtree_members(cell_q)
        leaves = [leaf.coords for leaf in self.hg_rv.subtree_leaves(cell_r)]
        for q in members:
            self.result.add_matches(q, leaves)


def quick_browse(
    hg_q: HierarchicalGrid,
    hg_rv: HierarchicalGrid,
    result: BlockResult,
    stats: SearchStats,
) -> set[Coords]:
    """Emit candidates for identically-aligned leaf cells (§III-C).

    Returns the set of aligned coordinates so Algorithm 1 can skip them.
    """
    aligned: set[Coords] = set()
    rv_leaves = hg_rv.leaf_cells
    for coords, cell_q in hg_q.leaf_cells.items():
        if coords in rv_leaves:
            aligned.add(coords)
            stats.quick_browse_cells += 1
            for q in cell_q.members:
                result.add_candidate(q, coords)
    return aligned


def block(
    hg_q: HierarchicalGrid,
    hg_rv: HierarchicalGrid,
    q_mapped: np.ndarray,
    tau: float,
    stats: Optional[SearchStats] = None,
    use_lemma34: bool = True,
    use_lemma56: bool = True,
    use_quick_browsing: bool = True,
) -> BlockResult:
    """Run quick browsing + Algorithm 1 and return all pairs.

    Args:
        hg_q: hierarchical grid of the mapped query vectors (with members).
        hg_rv: hierarchical grid of the mapped repository vectors.
        q_mapped: ``(|Q|, |P|)`` mapped query vectors.
        tau: distance threshold in original-space units.
        stats: counters to update (a fresh one is created when omitted).
        use_lemma34 / use_lemma56: ablation switches (Fig. 9).
        use_quick_browsing: process aligned leaf cells up front.
    """
    stats = stats if stats is not None else SearchStats()
    started = time.perf_counter()
    blocker = _Blocker(
        hg_q,
        hg_rv,
        np.atleast_2d(q_mapped),
        tau,
        stats,
        use_lemma34,
        use_lemma56,
        skip_aligned=None,
    )
    if use_quick_browsing:
        blocker.skip_aligned = quick_browse(hg_q, hg_rv, blocker.result, stats)
    result = blocker.run()
    stats.blocking_seconds += time.perf_counter() - started
    stats.matching_pairs += result.n_match_pairs
    stats.candidate_pairs += result.n_candidate_pairs
    return result
