"""Opt-in approximate candidate tier: an NSW graph over pivot-mapped columns.

Every tier below this one is exact. At lake scale the pivot-filter +
verify path still touches a large share of the columns per query, which
is exactly the regime where graph-based candidate generation wins
(HNSW-style navigable small worlds). This module adds that tier without
giving up the repo's signature guarantee:

**Exact given recalled candidates.** The graph only *nominates* column
IDs; every nominated column still flows through the unchanged exact
verifier (Lemmas 1, 2, 7, early accept, exact distances). A returned hit
is therefore always a true hit with its exact match count — the only
approximation is *recall*: a joinable column the graph failed to
nominate is missing from the result. Recall is measured, not assumed:
``benchmarks/bench_ann.py`` sweeps the knob against the exact engine and
the differential oracle's ANN lane asserts zero false positives on every
seed.

Geometry
--------
One graph node per repository column, scored lexicographically::

    score(S) = ( min over query rows q of cheb(q, box(S)),
                 mean over query rows q of ||q - centroid(S)|| )

The primary score is the Chebyshev point-to-box distance in *pivot
space* (``box_min`` / ``box_max`` over the column's pivot-mapped rows).
Every row of the column lies inside the box and pivot mapping is
1-Lipschitz per coordinate (Lemma 1), so this lower-bounds the
pivot-space distance from the query to the column's *nearest* row — a
sound "can this column possibly match" filter. Pivot space is only
|P|-dimensional though, so on realistic lakes whole neighbourhoods tie
at box distance 0. The secondary score breaks those ties in the
information-rich *original embedding space*: the mean distance from the
query rows to the column centroid, a direct proxy for "does the
column's mass sit on the query's domain" (joinability needs *many*
query rows matched, hence mean over the query rather than min). Beam
search with width ``ef_search`` over the small-world graph returns the
best-scoring columns visited.

Knob semantics
--------------
``ef_search`` is the classic HNSW dial: the beam width and the number of
candidate columns nominated. ``ef_search >= n_columns`` degenerates to
nominating every column, which callers treat as "no restriction" —
results are then bit-for-bit the exact engine's. ``ef_search=None``
anywhere in the stack means the ANN tier is off (the default).
"""

from __future__ import annotations

import heapq
import math
from typing import Optional, Sequence

import numpy as np

#: Beam width used when a caller opts into the ANN tier without naming
#: one (CLI ``--ann``, service defaults). Chosen so small lakes (fewer
#: columns than the beam) degenerate to exact search while benchmark-size
#: lakes see a real candidate cut; bench_ann.py measures the recall this
#: buys on every run.
DEFAULT_EF_SEARCH = 64

#: Out-neighbours linked per node at insertion time.
DEFAULT_GRAPH_DEGREE = 8


class ColumnGraph:
    """A navigable-small-world graph over one index's columns.

    Immutable once built; index mutations (``add_column`` /
    ``delete_column``) drop the index's graph reference so stale
    nominations can never surface — ANN requests fall back to exact
    until :meth:`PexesoIndex.build_ann_graph` is called again.

    Args:
        node_columns: ``(n,)`` int64 — column ID of each node, ascending.
        centroids: ``(n, dim)`` — original-space centroid per column.
        box_min / box_max: ``(n, |P|)`` — pivot-space bounding box.
        neighbors: ``(n, max_degree)`` int64 adjacency, padded with -1.
        entry: index of the entry node (the centroid medoid).
    """

    def __init__(
        self,
        node_columns: np.ndarray,
        centroids: np.ndarray,
        box_min: np.ndarray,
        box_max: np.ndarray,
        neighbors: np.ndarray,
        entry: int,
    ):
        self.node_columns = np.asarray(node_columns, dtype=np.int64)
        self.centroids = np.asarray(centroids, dtype=np.float64)
        self.box_min = np.asarray(box_min, dtype=np.float64)
        self.box_max = np.asarray(box_max, dtype=np.float64)
        self.neighbors = np.asarray(neighbors, dtype=np.int64)
        self.entry = int(entry)

    # -- construction ---------------------------------------------------------------

    @classmethod
    def build(cls, index, m: int = DEFAULT_GRAPH_DEGREE) -> "ColumnGraph":
        """Build the graph from a fitted :class:`~repro.core.index.PexesoIndex`.

        Deterministic: nodes are inserted in ascending column-ID order,
        each linking to its ``m`` nearest predecessors by centroid
        distance (ties broken by insertion order) with reverse links
        added, so the graph is connected (every node reaches node 0) and
        identical across processes — a requirement for the cluster's
        replica-hedging guarantee that same query + same parts means a
        bit-identical payload.
        """
        if index.pivot_space is None:
            raise RuntimeError("index is not built; call fit() first")
        if m < 1:
            raise ValueError("graph degree m must be >= 1")
        column_ids = np.asarray(sorted(index.column_rows), dtype=np.int64)
        n = int(column_ids.size)
        if n == 0:
            raise ValueError("cannot build an ANN graph over an empty index")
        mapped = index.mapped
        vectors = index.vectors
        n_pivots = mapped.shape[1]
        centroids = np.empty((n, vectors.shape[1]), dtype=np.float64)
        box_min = np.empty((n, n_pivots), dtype=np.float64)
        box_max = np.empty((n, n_pivots), dtype=np.float64)
        for i, col in enumerate(column_ids):
            rows = index.column_rows[int(col)]
            centroids[i] = np.asarray(vectors[rows], dtype=np.float64).mean(axis=0)
            box_min[i] = mapped[rows].min(axis=0)
            box_max[i] = mapped[rows].max(axis=0)

        adjacency: list[list[int]] = [[] for _ in range(n)]
        for i in range(1, n):
            d = np.linalg.norm(centroids[:i] - centroids[i], axis=1)
            order = np.argsort(d, kind="stable")[: min(m, i)]
            for j in order.tolist():
                adjacency[i].append(j)
                adjacency[j].append(i)
        max_degree = max(1, max(len(a) for a in adjacency) if n > 1 else 1)
        neighbors = np.full((n, max_degree), -1, dtype=np.int64)
        for i, adj in enumerate(adjacency):
            if adj:
                neighbors[i, : len(adj)] = adj

        mean = centroids.mean(axis=0)
        entry = int(np.argmin(np.linalg.norm(centroids - mean, axis=1)))
        return cls(column_ids, centroids, box_min, box_max, neighbors, entry)

    # -- queries --------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return int(self.node_columns.size)

    def covers_all(self, ef_search: int) -> bool:
        """True when the beam is at least the whole lake — exact territory."""
        return int(ef_search) >= self.n_nodes

    def _scores(
        self,
        nodes: np.ndarray,
        query_vectors: np.ndarray,
        query_mapped: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-node (box score, centroid score) for one query.

        The primary score is the min-over-query-rows Chebyshev
        point-to-box distance in pivot space — 0 when any query row
        falls inside the column's box, so on realistic lakes whole
        neighbourhoods tie at 0. The secondary score breaks those ties
        by the mean Euclidean distance from the query rows to the
        column centroid in the original embedding space, preferring the
        column whose mass actually sits on the query's domain.
        """
        lo = self.box_min[nodes][:, None, :]
        hi = self.box_max[nodes][:, None, :]
        q = query_mapped[None, :, :]
        outside = np.maximum(np.maximum(lo - q, q - hi), 0.0)
        box = outside.max(axis=2).min(axis=1)
        diff = self.centroids[nodes][:, None, :] - query_vectors[None, :, :]
        cent = np.sqrt((diff * diff).sum(axis=2)).mean(axis=1)
        return box, cent

    def candidates(
        self,
        query_vectors: np.ndarray,
        query_mapped: np.ndarray,
        ef_search: int,
    ) -> np.ndarray:
        """Column IDs nominated for one query, ascending.

        Standard HNSW-style best-first beam search: expand the closest
        unexpanded node, stop once the closest frontier node is worse
        than the worst of the ``ef_search`` best seen. With
        ``ef_search >= n_nodes`` every column is returned (the graph is
        connected by construction), which downstream code treats as "no
        restriction" so the exact pipeline runs untouched.
        """
        ef = int(ef_search)
        if ef < 1:
            raise ValueError("ef_search must be >= 1")
        n = self.n_nodes
        if ef >= n:
            return self.node_columns.copy()
        query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
        query_mapped = np.atleast_2d(np.asarray(query_mapped, dtype=np.float64))

        entry = self.entry
        e_box, e_cent = self._scores(
            np.asarray([entry]), query_vectors, query_mapped
        )
        entry_score = (float(e_box[0]), float(e_cent[0]))
        visited = np.zeros(n, dtype=bool)
        visited[entry] = True
        # frontier: min-heap of (box, cent, node); best: max-heap of the
        # ef best via negated scores. Lexicographic (box, cent) ordering
        # with the node id as the final deterministic tie-break.
        frontier = [(entry_score[0], entry_score[1], entry)]
        best = [(-entry_score[0], -entry_score[1], entry)]
        while frontier:
            box, cent, node = heapq.heappop(frontier)
            if len(best) >= ef and (box, cent) > (-best[0][0], -best[0][1]):
                break
            around = self.neighbors[node]
            around = around[(around >= 0) & ~visited[np.maximum(around, 0)]]
            if around.size == 0:
                continue
            visited[around] = True
            n_box, n_cent = self._scores(around, query_vectors, query_mapped)
            for b, c, v in zip(n_box.tolist(), n_cent.tolist(), around.tolist()):
                if len(best) < ef or (b, c) < (-best[0][0], -best[0][1]):
                    heapq.heappush(frontier, (b, c, v))
                    heapq.heappush(best, (-b, -c, v))
                    if len(best) > ef:
                        heapq.heappop(best)
        picked = np.asarray(sorted(v for _, _, v in best), dtype=np.intp)
        return self.node_columns[picked]


def candidate_lists(
    index, queries: Sequence[np.ndarray], ef_search: Optional[int]
) -> Optional[list[np.ndarray]]:
    """Per-query candidate column IDs for one index, or ``None`` for exact.

    ``None`` comes back in every situation where the exact pipeline must
    run untouched: the knob is off, the index has no usable graph (never
    built, or dropped by a mutation — the documented fall-back-to-exact
    until rebuilt), or the beam covers the whole lake (``ef_search`` →
    max must be bit-for-bit the exact engine).
    """
    if ef_search is None:
        return None
    graph = index.ensure_ann_graph()
    if graph is None or graph.covers_all(ef_search):
        return None
    out = []
    for q in queries:
        vectors = np.atleast_2d(np.asarray(q, dtype=np.float64))
        out.append(
            graph.candidates(
                vectors, index.pivot_space.map_vectors(vectors), ef_search
            )
        )
    return out


def normalized_ef_search(ef_search) -> Optional[int]:
    """Validate a request-supplied knob: ``None`` (off) or an int >= 1."""
    if ef_search is None:
        return None
    ef = int(ef_search)
    if ef < 1:
        raise ValueError("ef_search must be a positive integer (or omitted)")
    return ef


def ef_from_recall_target(recall_target: float, n_columns: int) -> int:
    """Map a ``--recall-target`` fraction to a beam width.

    A target of 1.0 nominates every column (exact bit-for-bit); lower
    targets shrink the beam proportionally. The mapping is a monotone
    heuristic — actual recall is *measured* against the exact engine by
    bench_ann.py and the oracle's ANN lane, never promised by the knob.
    """
    target = float(recall_target)
    if not 0.0 < target <= 1.0:
        raise ValueError("recall target must be in (0, 1]")
    return max(1, int(math.ceil(target * max(1, int(n_columns)))))


def measure_recall(exact_ids, approx_ids) -> float:
    """|approx ∩ exact| / |exact|; 1.0 when the exact answer is empty."""
    exact = set(exact_ids)
    if not exact:
        return 1.0
    return len(exact & set(approx_ids)) / len(exact)
