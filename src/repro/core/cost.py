"""Cost model for verification and optimal grid depth (paper §III-E).

The expected number of exact distance computations for one search is

    E = sum over occurrences of q in the candidate-pair multiset C of
        N(SQR(q', τ))                                           (Eq. 1)

and ``N`` is upper-bounded from per-dimension marginal PDFs of the mapped
repository vectors:

    Nmax(SQR(q', τ)) = min_i ∫_{q'_i - τ - h}^{q'_i + τ + h} PDF_i      (Eq. 2)

where ``h`` is the leaf half-cell width of an m-level grid. To pick ``m``
the paper runs *blocking only* for a sampled query workload and minimises
the estimated cost. The optimum the paper's gradient descent finds is
fractional and rounded up; here the same objective is evaluated on the
integer candidate range directly, which is equivalent at these scales.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.blocker import block
from repro.core.grid import HierarchicalGrid


class MappedDensityModel:
    """Per-dimension marginal histograms of the mapped repository (Eq. 2)."""

    def __init__(self, mapped_rv: np.ndarray, extent: float, n_bins: int = 128):
        mapped_rv = np.atleast_2d(np.asarray(mapped_rv, dtype=np.float64))
        if mapped_rv.shape[0] == 0:
            raise ValueError("density model needs at least one mapped vector")
        self.extent = float(extent)
        self.n_bins = int(n_bins)
        self.n_vectors = mapped_rv.shape[0]
        self.n_dims = mapped_rv.shape[1]
        edges = np.linspace(0.0, self.extent, self.n_bins + 1)
        self.bin_edges = edges
        # Cumulative counts per dimension allow O(1) interval integrals.
        self._cum = np.zeros((self.n_dims, self.n_bins + 1))
        for i in range(self.n_dims):
            counts, _ = np.histogram(mapped_rv[:, i], bins=edges)
            self._cum[i, 1:] = np.cumsum(counts)

    def _interval_count(self, dim: int, lo: float, hi: float) -> float:
        """Approximate vector count with coordinate ``dim`` inside [lo, hi]."""
        lo = max(0.0, lo)
        hi = min(self.extent, hi)
        if hi <= lo:
            return 0.0
        scale = self.n_bins / self.extent
        flo = lo * scale
        fhi = hi * scale
        cum = self._cum[dim]

        def interp(x: float) -> float:
            j = int(x)
            if j >= self.n_bins:
                return float(cum[-1])
            frac = x - j
            return float(cum[j] + frac * (cum[j + 1] - cum[j]))

        return max(0.0, interp(fhi) - interp(flo))

    def nmax_sqr(self, q_mapped: np.ndarray, tau: float, levels: int) -> float:
        """Eq. 2: upper bound on vectors in leaf cells covering SQR(q', τ)."""
        half_cell = self.extent / (1 << levels) / 2.0
        radius = tau + half_cell
        return min(
            self._interval_count(i, q_mapped[i] - radius, q_mapped[i] + radius)
            for i in range(self.n_dims)
        )


def estimate_query_cost(
    density: MappedDensityModel,
    hg_rv: HierarchicalGrid,
    query_mapped: np.ndarray,
    tau: float,
) -> float:
    """Eq. 1 for one query column: blocking only, then Eq. 2 per occurrence."""
    hg_q = HierarchicalGrid.build(
        query_mapped, levels=hg_rv.levels, extent=hg_rv.extent, store_members=True
    )
    result = block(hg_q, hg_rv, query_mapped, tau)
    total = 0.0
    for q, cells in result.candidate_pairs.items():
        # The occurrence count of q in the multiset C equals its number of
        # candidate cells, and each occurrence contributes one Nmax term.
        nmax = density.nmax_sqr(query_mapped[q], tau, hg_rv.levels)
        total += len(cells) * nmax
    return total


def estimate_workload_cost(
    mapped_rv: np.ndarray,
    extent: float,
    workload: Sequence[tuple[np.ndarray, float]],
    levels: int,
    density: Optional[MappedDensityModel] = None,
) -> float:
    """Total Eq. 1 estimate across a workload for one grid depth ``m``.

    Args:
        mapped_rv: pivot-mapped repository vectors.
        extent: pivot-space extent.
        workload: pairs ``(mapped query column, tau)``.
        levels: candidate grid depth ``m``.
        density: precomputed density model (built when omitted).
    """
    density = density or MappedDensityModel(mapped_rv, extent)
    hg_rv = HierarchicalGrid.build(mapped_rv, levels=levels, extent=extent, store_members=False)
    return sum(
        estimate_query_cost(density, hg_rv, q_mapped, tau) for q_mapped, tau in workload
    )


def sample_workload(
    mapped_columns: Sequence[np.ndarray],
    extent: float,
    n_queries: int = 8,
    tau_fractions: tuple[float, float] = (0.02, 0.10),
    rng: Optional[np.random.Generator] = None,
) -> list[tuple[np.ndarray, float]]:
    """Sample a query workload as the paper suggests (§III-E).

    Columns are drawn from the repository itself and paired with τ values
    uniform in a practical range (0–10% of the maximum distance by
    default; T is irrelevant to Eq. 1 and therefore not sampled).
    """
    rng = rng or np.random.default_rng(0)
    n_queries = min(n_queries, len(mapped_columns))
    picks = rng.choice(len(mapped_columns), size=n_queries, replace=False)
    lo, hi = tau_fractions
    return [
        (np.atleast_2d(mapped_columns[i]), float(rng.uniform(lo, hi)) * extent)
        for i in picks
    ]


def choose_optimal_m(
    mapped_rv: np.ndarray,
    extent: float,
    workload: Sequence[tuple[np.ndarray, float]],
    m_candidates: Sequence[int] = range(1, 9),
    density: Optional[MappedDensityModel] = None,
) -> tuple[int, dict[int, float]]:
    """Pick the grid depth minimising the estimated workload cost.

    Returns the argmin ``m`` and the full cost profile so callers can
    inspect the trade-off curve the paper describes (Table VI).
    """
    density = density or MappedDensityModel(mapped_rv, extent)
    costs = {
        int(m): estimate_workload_cost(mapped_rv, extent, workload, int(m), density)
        for m in m_candidates
    }
    best = min(costs, key=lambda m: (costs[m], m))
    return best, costs
