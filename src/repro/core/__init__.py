"""Core PEXESO machinery: pivots, grids, blocking, verification, search.

This package implements the paper's primary contribution — the exact
block-and-verify joinable-column search — plus the cost model used to pick
the grid depth and the JSD partitioning used for out-of-core data lakes.
"""

from repro.core.metric import (
    ChebyshevMetric,
    CosineDistance,
    EuclideanMetric,
    ManhattanMetric,
    Metric,
    get_metric,
    register_metric,
)
from repro.core.index import PexesoIndex
from repro.core.search import AblationFlags, JoinableColumn, SearchResult, pexeso_search
from repro.core.engine import BatchResult, BatchSearch, batch_search, merge_shard_batches
from repro.core.stats import SearchStats
from repro.core.thresholds import distance_threshold, joinability_count
from repro.core.cost import choose_optimal_m, estimate_workload_cost
from repro.core.partition import (
    PARTITIONERS,
    average_kmeans_partition,
    column_histogram,
    jensen_shannon_divergence,
    jsd_kmeans_partition,
    partition_labels,
    random_partition,
)
from repro.core.out_of_core import LakeSearcher, PartitionedPexeso, ShardLRU
from repro.core.allpairs import JoinabilityGraph, JoinableEdge, discover_joinable_pairs
from repro.core.topk import TopKResult, pexeso_topk
from repro.core.persistence import (
    load_any,
    load_index,
    load_partitioned,
    save_index,
    save_partitioned,
)
from repro.core.recommend import match_rate_profile, sample_repository, suggest_tau

__all__ = [
    "JoinabilityGraph",
    "JoinableEdge",
    "TopKResult",
    "discover_joinable_pairs",
    "load_any",
    "load_index",
    "load_partitioned",
    "match_rate_profile",
    "pexeso_topk",
    "sample_repository",
    "save_index",
    "save_partitioned",
    "suggest_tau",
    "AblationFlags",
    "BatchResult",
    "BatchSearch",
    "LakeSearcher",
    "PARTITIONERS",
    "ShardLRU",
    "batch_search",
    "merge_shard_batches",
    "ChebyshevMetric",
    "CosineDistance",
    "EuclideanMetric",
    "JoinableColumn",
    "ManhattanMetric",
    "Metric",
    "PartitionedPexeso",
    "PexesoIndex",
    "SearchResult",
    "SearchStats",
    "average_kmeans_partition",
    "choose_optimal_m",
    "column_histogram",
    "distance_threshold",
    "estimate_workload_cost",
    "get_metric",
    "jensen_shannon_divergence",
    "jsd_kmeans_partition",
    "joinability_count",
    "partition_labels",
    "pexeso_search",
    "random_partition",
    "register_metric",
]
