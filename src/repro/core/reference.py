"""Preserved seed implementation of the grid / inverted-index build path.

The array-native index core (:mod:`repro.core.grid`,
:mod:`repro.core.inverted_index`) replaced the original row-by-row Python
build. This module keeps that original implementation — tuple-coordinate
grid cells inserted one row at a time, per-cell ``Posting`` lists
maintained with ``bisect``/``insort`` — verbatim, for two purposes:

* ``benchmarks/bench_index_build.py`` measures the array-native build
  against it (the PR's >= 3x speedup claim is asserted against this
  builder, not against a strawman);
* equivalence tests check that the CSR inverted index holds exactly the
  postings the reference build produces, cell for cell, row for row.

It is **not** wired into any search path.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Sequence

import numpy as np

Coords = tuple[int, ...]


class ReferencePosting:
    """One (column, rows-in-cell) entry of a reference postings list."""

    __slots__ = ("column_id", "rows")

    def __init__(self, column_id: int, rows: list[int]):
        self.column_id = column_id
        self.rows = rows

    def __lt__(self, other: "ReferencePosting") -> bool:
        return self.column_id < other.column_id


class ReferenceGridCell:
    """One populated cell of the reference hierarchical grid."""

    __slots__ = ("level", "coords", "children", "members")

    def __init__(self, level: int, coords: Coords):
        self.level = level
        self.coords = coords
        self.children: list["ReferenceGridCell"] = []
        self.members: list[int] = []


class ReferenceGrid:
    """The seed's sparse hierarchical grid: per-level coordinate dicts."""

    def __init__(self, n_dims: int, levels: int, extent: float, store_members: bool = True):
        self.n_dims = n_dims
        self.levels = levels
        self.extent = float(extent)
        self.store_members = store_members
        self.root = ReferenceGridCell(0, ())
        self.cells: list[dict[Coords, ReferenceGridCell]] = [
            dict() for _ in range(levels + 1)
        ]
        self.cells[0][()] = self.root
        self.n_vectors = 0

    def leaf_coords_for(self, mapped: np.ndarray) -> np.ndarray:
        mapped = np.atleast_2d(np.asarray(mapped, dtype=np.float64))
        n_cells = 1 << self.levels
        cell_size = self.extent / n_cells
        coords = np.floor(mapped / cell_size).astype(np.int64)
        np.clip(coords, 0, n_cells - 1, out=coords)
        return coords

    def insert(self, mapped: np.ndarray) -> list[Coords]:
        """Row-by-row insertion: one dict walk per vector (the seed path)."""
        mapped = np.atleast_2d(np.asarray(mapped, dtype=np.float64))
        leaf = self.leaf_coords_for(mapped)
        start = self.n_vectors
        out: list[Coords] = []
        for offset, row in enumerate(leaf.tolist()):
            coords = tuple(row)
            out.append(coords)
            cell = self._ensure_leaf(coords)
            if self.store_members:
                cell.members.append(start + offset)
        self.n_vectors += mapped.shape[0]
        return out

    def _ensure_leaf(self, coords: Coords) -> ReferenceGridCell:
        leaf_map = self.cells[self.levels]
        cell = leaf_map.get(coords)
        if cell is not None:
            return cell
        cell = ReferenceGridCell(self.levels, coords)
        leaf_map[coords] = cell
        child = cell
        for level in range(self.levels - 1, 0, -1):
            parent_coords = tuple(c >> 1 for c in child.coords)
            parent_map = self.cells[level]
            parent = parent_map.get(parent_coords)
            if parent is not None:
                parent.children.append(child)
                return cell
            parent = ReferenceGridCell(level, parent_coords)
            parent_map[parent_coords] = parent
            parent.children.append(child)
            child = parent
        self.root.children.append(child)
        return cell

    @property
    def leaf_cells(self) -> dict[Coords, ReferenceGridCell]:
        return self.cells[self.levels]


class ReferenceInvertedIndex:
    """The seed's inverted index: dict of per-cell ``insort``-ed postings."""

    def __init__(self) -> None:
        self._lists: dict[Coords, list[ReferencePosting]] = {}
        self.n_postings = 0

    def add_column(self, column_id: int, cells: Sequence[Coords], first_row: int) -> None:
        grouped: dict[Coords, list[int]] = {}
        for offset, cell in enumerate(cells):
            grouped.setdefault(cell, []).append(first_row + offset)
        for cell, rows in grouped.items():
            postings = self._lists.setdefault(cell, [])
            insort(postings, ReferencePosting(column_id, rows))
            self.n_postings += 1

    def delete_column(self, column_id: int) -> int:
        removed = 0
        empty: list[Coords] = []
        for cell, postings in self._lists.items():
            pos = bisect_left(postings, ReferencePosting(column_id, []))
            if pos < len(postings) and postings[pos].column_id == column_id:
                postings.pop(pos)
                removed += 1
                if not postings:
                    empty.append(cell)
        for cell in empty:
            del self._lists[cell]
        self.n_postings -= removed
        return removed

    def postings_by_cell(self) -> dict[Coords, list[tuple[int, list[int]]]]:
        """Full contents as plain data, for equivalence checks."""
        return {
            cell: [(p.column_id, list(p.rows)) for p in postings]
            for cell, postings in self._lists.items()
        }

    @property
    def n_cells(self) -> int:
        return len(self._lists)


def build_reference_structures(
    mapped_columns: Sequence[np.ndarray],
    levels: int,
    extent: float,
) -> tuple[ReferenceGrid, ReferenceInvertedIndex]:
    """The seed ``fit`` loop: per-column grid insert + postings append.

    Args:
        mapped_columns: pivot-mapped vectors of each column, in column-ID
            order (pivot selection and mapping are shared with the
            array-native path and therefore excluded from the comparison).
        levels: grid depth ``m``.
        extent: pivot-space extent.
    """
    if not mapped_columns:
        raise ValueError("cannot build over zero columns")
    n_dims = np.atleast_2d(mapped_columns[0]).shape[1]
    grid = ReferenceGrid(n_dims, levels, extent, store_members=False)
    inverted = ReferenceInvertedIndex()
    first_row = 0
    for column_id, mapped in enumerate(mapped_columns):
        cells = grid.insert(mapped)
        inverted.add_column(column_id, cells, first_row)
        first_row += np.atleast_2d(mapped).shape[0]
    return grid, inverted
