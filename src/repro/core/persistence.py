"""Index persistence: save/load a PexesoIndex to a directory.

The offline component of Fig. 1 builds the index once and serves many
online queries, so the index must outlive the process. Because the index
core is array-native — sorted leaf cell codes for the grid, lexsorted
CSR arrays for the inverted index — the whole structure round-trips as
**one** ``index.npz`` (portable, compressed) plus a small
``manifest.json``; nothing is pickled and no Python object graph is
rebuilt on load. The grid stores only its leaf codes: every ancestor
level is re-derived by vectorised shifting.

Format version 2. Version-1 directories (the pre-array layout with a
``structure.pkl``) are rejected with a clear error; rebuild the index to
migrate.

Partitioned lakes persist as a lake-level ``partitioned.json`` manifest
(labels, global column IDs per partition, build knobs) plus one
array-native index directory per non-empty partition
(:func:`save_partitioned` / :func:`load_partitioned`). Loading is lazy:
partitions stay on disk until a search pulls them through the shard
LRU. :func:`load_any` dispatches on the directory layout so callers
need not know which flavour was saved.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence, Union

import numpy as np

from repro.core.grid import HierarchicalGrid
from repro.core.index import PexesoIndex
from repro.core.inverted_index import InvertedIndex

#: bumped when the on-disk layout changes
FORMAT_VERSION = 2

#: bumped when the partitioned-lake layout changes
PARTITIONED_FORMAT_VERSION = 1

_ARCHIVE = "index.npz"

_PARTITIONED_MANIFEST = "partitioned.json"


def save_index(index: PexesoIndex, directory: str | Path) -> Path:
    """Persist a built index; returns the directory written.

    Raises:
        RuntimeError: when the index has not been built.
    """
    if index.pivot_space is None or index.grid is None:
        raise RuntimeError("cannot save an unbuilt index")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    inverted = index.inverted
    column_ids = np.fromiter(index.column_rows, dtype=np.int64, count=len(index.column_rows))
    column_first_rows = np.asarray(
        [int(index.column_rows[cid][0]) for cid in column_ids.tolist()], dtype=np.int64
    )
    column_counts = np.asarray(
        [int(index.column_rows[cid].size) for cid in column_ids.tolist()], dtype=np.int64
    )
    np.savez_compressed(
        directory / _ARCHIVE,
        vectors=index.vectors,
        mapped=index.mapped,
        pivots=index.pivot_space.pivots,
        extent=np.float64(index.pivot_space.extent),
        grid_leaf_codes=index.grid.leaf_codes,
        inv_codes=inverted._codes,
        inv_cols=inverted._cols,
        inv_starts=inverted._starts.astype(np.int64),
        inv_rows=inverted._rows.astype(np.int64),
        column_ids=column_ids,
        column_first_rows=column_first_rows,
        column_counts=column_counts,
    )
    manifest = {
        "format_version": FORMAT_VERSION,
        "metric": index.metric.name,
        "n_pivots": index.n_pivots,
        "levels": index.levels,
        "pivot_method": index.pivot_method,
        "seed": index.seed,
        "next_column_id": index._next_column_id,
        "n_columns": index.n_columns,
        "n_vectors": index.n_vectors,
        "dim": index.dim,
    }
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return directory


def load_index(directory: str | Path) -> PexesoIndex:
    """Load an index saved by :func:`save_index`.

    Raises:
        FileNotFoundError: when the directory lacks the expected files.
        ValueError: on a format-version mismatch.
    """
    from repro.core.metric import get_metric
    from repro.core.pivot import PivotSpace

    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"no index manifest under {directory}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"index format {manifest.get('format_version')} != {FORMAT_VERSION}"
        )

    arrays = np.load(directory / _ARCHIVE)

    index = PexesoIndex(
        metric=get_metric(manifest["metric"]),
        n_pivots=manifest["n_pivots"],
        levels=manifest["levels"],
        pivot_method=manifest["pivot_method"],
        seed=manifest["seed"],
    )
    index.pivot_space = PivotSpace(
        arrays["pivots"], index.metric, extent=float(arrays["extent"])
    )
    n_rows = int(manifest["n_vectors"])
    index.grid = HierarchicalGrid.from_leaf_codes(
        arrays["grid_leaf_codes"],
        n_dims=manifest["n_pivots"],
        levels=manifest["levels"],
        extent=float(arrays["extent"]),
        n_vectors=n_rows,
    )
    inverted = InvertedIndex()
    inverted._codes = arrays["inv_codes"].astype(np.int64)
    inverted._cols = arrays["inv_cols"].astype(np.int64)
    inverted._starts = arrays["inv_starts"].astype(np.intp)
    inverted._rows = arrays["inv_rows"].astype(np.intp)
    index.inverted = inverted
    index.column_rows = {
        int(cid): np.arange(int(first), int(first) + int(count), dtype=np.intp)
        for cid, first, count in zip(
            arrays["column_ids"].tolist(),
            arrays["column_first_rows"].tolist(),
            arrays["column_counts"].tolist(),
        )
    }
    index._next_column_id = int(manifest["next_column_id"])
    index._n_rows = n_rows
    vectors = arrays["vectors"]
    mapped = arrays["mapped"]
    index._vector_blocks = [vectors]
    index._mapped_blocks = [mapped]
    index._vectors = vectors
    index._mapped = mapped
    index.stats.n_vectors = index._n_rows
    index.stats.n_columns = len(index.column_rows)
    index.stats.n_leaf_cells = inverted.n_cells
    index.stats.n_postings = inverted.n_postings
    return index


# -- partitioned lakes ------------------------------------------------------------


def mutable_manifest_fields(lake) -> dict:
    """The manifest fields live maintenance can change.

    One serialization shared by :func:`save_partitioned` and the lake's
    in-place manifest refresh after ``add_column`` / ``delete_column``,
    so the two paths can never drift apart.
    """
    return {
        "labels": np.asarray(lake.labels).astype(int).tolist(),
        "partition_columns": [list(map(int, g)) for g in lake.partition_columns],
        "deleted_column_ids": sorted(int(c) for c in lake._deleted_ids),
    }


def save_partitioned(lake, directory: str | Path) -> Path:
    """Persist a fitted :class:`~repro.core.out_of_core.PartitionedPexeso`.

    Writes ``partitioned.json`` (labels, per-partition global column
    IDs, build knobs) plus one array-native index directory per
    non-empty partition. A lake already spilled *into* ``directory``
    reuses its partition directories; resident partitions are saved
    fresh; partitions spilled elsewhere are loaded and re-saved.

    Raises:
        RuntimeError: when the lake has not been fitted.
        ValueError: when the lake's metric cannot round-trip through its
            registry name (unregistered or not default-constructible
            custom metric) — register it with
            :func:`repro.core.metric.register_metric` and rebuild.
    """
    from repro.core.metric import metric_round_trips

    if lake.labels is None:
        raise RuntimeError("cannot save an unfitted partitioned lake")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    partitions: dict[str, str] = {}
    metric_name = None
    for part, globals_ in enumerate(lake.partition_columns):
        if not globals_:
            continue
        subdir = f"partition_{part}"
        if part in lake._resident:
            index = lake._resident[part]
            if not metric_round_trips(index.metric):
                raise ValueError(
                    f"metric {type(index.metric).__name__} cannot be "
                    "reconstructed from its registry name, so the saved "
                    "lake would be unloadable; register it with "
                    "repro.core.metric.register_metric and rebuild"
                )
            save_index(index, directory / subdir)
        else:
            spilled = lake._spilled.get(part)
            if spilled is None:
                raise RuntimeError(f"partition {part} has no index to save")
            if spilled.suffix == ".pkl":
                raise ValueError(
                    f"partition {part} was pickle-spilled (unregistered "
                    "custom metric); register the metric with "
                    "repro.core.metric.register_metric and rebuild to "
                    "persist the lake"
                )
            if spilled.resolve() != (directory / subdir).resolve():
                save_index(load_index(spilled), directory / subdir)
        if metric_name is None:
            metric_name = json.loads(
                (directory / subdir / "manifest.json").read_text()
            )["metric"]
        partitions[str(part)] = subdir

    manifest = {
        "format_version": PARTITIONED_FORMAT_VERSION,
        "metric": metric_name,
        "n_pivots": lake.n_pivots,
        "levels": lake.levels,
        "pivot_method": lake.pivot_method,
        "seed": lake.seed,
        "n_partitions": lake.n_partitions,
        "partitioner": lake.partitioner,
        "kmeans_iters": lake.kmeans_iters,
        **mutable_manifest_fields(lake),
        "partitions": partitions,
    }
    (directory / _PARTITIONED_MANIFEST).write_text(json.dumps(manifest, indent=2))
    return directory


def load_partitioned(directory: str | Path, parts: "Sequence[int] | None" = None):
    """Load a lake saved by :func:`save_partitioned` (lazy partitions).

    The returned :class:`~repro.core.out_of_core.PartitionedPexeso` is
    in spill mode over ``directory``: partition indexes are loaded on
    demand through the shard LRU, so opening a lake costs one JSON read.

    Args:
        parts: host only this partition subset (a cluster worker's
            assignment). The listed partitions are loaded **eagerly into
            memory** and the lake is restricted to them: searches cover
            only the hosted shards, mutations may only target them, and
            the shared on-disk layout is never written back — the worker
            owns its resident slice, the coordinator owns the metadata.

    Raises:
        FileNotFoundError: when the directory lacks the manifest.
        ValueError: on a format-version mismatch.
        KeyError: when ``parts`` names a partition the lake does not have.
    """
    from repro.core.metric import get_metric
    from repro.core.out_of_core import PartitionedPexeso

    directory = Path(directory)
    manifest_path = directory / _PARTITIONED_MANIFEST
    if not manifest_path.exists():
        raise FileNotFoundError(f"no partitioned manifest under {directory}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != PARTITIONED_FORMAT_VERSION:
        raise ValueError(
            f"partitioned format {manifest.get('format_version')} != "
            f"{PARTITIONED_FORMAT_VERSION}"
        )

    lake = PartitionedPexeso(
        metric=get_metric(manifest["metric"]),
        n_pivots=manifest["n_pivots"],
        levels=manifest["levels"],
        pivot_method=manifest["pivot_method"],
        seed=manifest["seed"],
        n_partitions=manifest["n_partitions"],
        partitioner=manifest["partitioner"],
        spill_dir=directory,
        kmeans_iters=manifest["kmeans_iters"],
    )
    lake.labels = np.asarray(manifest["labels"], dtype=np.intp)
    lake.partition_columns = [
        [int(cid) for cid in globals_]
        for globals_ in manifest["partition_columns"]
    ]
    lake._spilled = {
        int(part): directory / subdir
        for part, subdir in manifest["partitions"].items()
    }
    lake._deleted_ids = {
        int(cid) for cid in manifest.get("deleted_column_ids", [])
    }
    if parts is not None:
        wanted = sorted({int(p) for p in parts})
        unknown = [p for p in wanted if str(p) not in manifest["partitions"]]
        if unknown:
            raise KeyError(
                f"partitions {unknown} are not in the saved lake "
                f"(have: {sorted(int(p) for p in manifest['partitions'])})"
            )
        for p in wanted:
            lake._resident[p] = load_index(directory / manifest["partitions"][str(p)])
        # Nothing stays spilled: the hosted shards are resident, the
        # rest are not this lake's to touch (no re-spill, no LRU).
        lake._spilled = {}
        lake.restrict_to_parts(wanted)
    return lake


def load_any(
    directory: str | Path, parts: "Sequence[int] | None" = None
) -> Union[PexesoIndex, "object"]:
    """Load whatever index flavour ``directory`` holds.

    Dispatches on the on-disk layout: a ``partitioned.json`` manifest
    loads a :class:`~repro.core.out_of_core.PartitionedPexeso`, a plain
    ``manifest.json`` loads a single :class:`PexesoIndex`. ``parts``
    (a shard-subset restriction) requires the partitioned layout.

    Raises:
        FileNotFoundError: when neither manifest is present.
    """
    directory = Path(directory)
    if (directory / _PARTITIONED_MANIFEST).exists():
        return load_partitioned(directory, parts=parts)
    if parts is not None:
        raise ValueError(
            f"{directory} holds a single index; a partition subset needs "
            "the partitioned layout"
        )
    return load_index(directory)
