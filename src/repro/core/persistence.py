"""Index persistence: save/load a PexesoIndex to a directory.

The offline component of Fig. 1 builds the index once and serves many
online queries, so the index must outlive the process. The format is a
directory with the numeric stores as ``.npz`` (portable, memory-mappable)
plus a small pickle for the structural parts (grid, postings, metadata).
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path

import numpy as np

from repro.core.index import PexesoIndex

#: bumped when the on-disk layout changes
FORMAT_VERSION = 1


def save_index(index: PexesoIndex, directory: str | Path) -> Path:
    """Persist a built index; returns the directory written.

    Raises:
        RuntimeError: when the index has not been built.
    """
    if index.pivot_space is None or index.grid is None:
        raise RuntimeError("cannot save an unbuilt index")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    np.savez_compressed(
        directory / "vectors.npz",
        vectors=index.vectors,
        mapped=index.mapped,
        pivots=index.pivot_space.pivots,
    )
    with open(directory / "structure.pkl", "wb") as fh:
        pickle.dump(
            {
                "grid": index.grid,
                "inverted": index.inverted,
                "column_rows": index.column_rows,
                "next_column_id": index._next_column_id,
                "n_rows": index._n_rows,
                "extent": index.pivot_space.extent,
            },
            fh,
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    manifest = {
        "format_version": FORMAT_VERSION,
        "metric": index.metric.name,
        "n_pivots": index.n_pivots,
        "levels": index.levels,
        "pivot_method": index.pivot_method,
        "seed": index.seed,
        "n_columns": index.n_columns,
        "n_vectors": index.n_vectors,
        "dim": index.dim,
    }
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return directory


def load_index(directory: str | Path) -> PexesoIndex:
    """Load an index saved by :func:`save_index`.

    Raises:
        FileNotFoundError: when the directory lacks the expected files.
        ValueError: on a format-version mismatch.
    """
    from repro.core.metric import get_metric
    from repro.core.pivot import PivotSpace

    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"no index manifest under {directory}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"index format {manifest.get('format_version')} != {FORMAT_VERSION}"
        )

    arrays = np.load(directory / "vectors.npz")
    with open(directory / "structure.pkl", "rb") as fh:
        structure = pickle.load(fh)

    index = PexesoIndex(
        metric=get_metric(manifest["metric"]),
        n_pivots=manifest["n_pivots"],
        levels=manifest["levels"],
        pivot_method=manifest["pivot_method"],
        seed=manifest["seed"],
    )
    index.pivot_space = PivotSpace(
        arrays["pivots"], index.metric, extent=structure["extent"]
    )
    index.grid = structure["grid"]
    index.inverted = structure["inverted"]
    index.column_rows = structure["column_rows"]
    index._next_column_id = structure["next_column_id"]
    index._n_rows = structure["n_rows"]
    index._vector_blocks = [arrays["vectors"]]
    index._mapped_blocks = [arrays["mapped"]]
    index._vectors = arrays["vectors"]
    index._mapped = arrays["mapped"]
    index.stats.n_vectors = index._n_rows
    index.stats.n_columns = len(index.column_rows)
    return index
