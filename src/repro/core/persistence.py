"""Index persistence: save/load a PexesoIndex to a directory.

The offline component of Fig. 1 builds the index once and serves many
online queries, so the index must outlive the process. Because the index
core is array-native — sorted leaf cell codes for the grid, lexsorted
CSR arrays for the inverted index — the whole structure round-trips as
a handful of arrays plus a small ``manifest.json``; nothing is pickled
and no Python object graph is rebuilt on load.

Format **version 3** (the write default): every array is one raw
aligned ``.npy`` file inside a per-save epoch directory
(``arrays_v3_<epoch>/``), so :func:`load_index` opens them with
``mmap_mode="r"`` — loading a shard is a few ``open``/``mmap`` calls and
costs no copying, no decompression and almost no resident memory until
pages are actually touched. That makes cluster-worker cold start and
failover near-instant and lets the shard LRU hold far more shards than
RAM would allow (capacity is address space, not heap).

Crash safety: array files are written into a *fresh* epoch directory
and the manifest — which names the epoch directory — is swapped in with
an atomic rename (:mod:`repro.core.atomic`). A writer killed at any
instant leaves either the old complete index or the new complete index;
stale epoch directories and ``*.tmp-*`` files are ignored by loaders
and swept by the next successful save.

Format version 2 (one compressed ``index.npz``) is still **read**
supported — v2 directories load eagerly exactly as before, and saving
with ``fmt=2`` is kept for compatibility tooling. Version-1 directories
(the pre-array layout with a ``structure.pkl``) are rejected with a
clear error; rebuild the index to migrate.

Partitioned lakes persist as a lake-level ``partitioned.json`` manifest
(labels, global column IDs per partition, build knobs) plus one
array-native index directory per non-empty partition
(:func:`save_partitioned` / :func:`load_partitioned`). Loading is lazy:
partitions stay on disk until a search pulls them through the shard
LRU. :func:`load_any` dispatches on the directory layout so callers
need not know which flavour was saved.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.atomic import (
    atomic_write_array,
    atomic_write_text,
    clean_temp_artifacts,
)
from repro.core.grid import HierarchicalGrid
from repro.core.index import PexesoIndex
from repro.core.inverted_index import InvertedIndex

#: current write default; bumped when the on-disk layout changes
FORMAT_VERSION = 3

#: the pre-mmap single-archive layout, still loadable (read-only compat)
V2_FORMAT_VERSION = 2

#: formats :func:`load_index` accepts
SUPPORTED_FORMATS = (V2_FORMAT_VERSION, FORMAT_VERSION)

#: bumped when the partitioned-lake layout changes
PARTITIONED_FORMAT_VERSION = 1

_ARCHIVE = "index.npz"

_PARTITIONED_MANIFEST = "partitioned.json"

#: v3 epoch-directory prefix (the manifest names the live one)
_V3_ARRAYS_PREFIX = "arrays_v3_"

#: the arrays a v3 index directory persists, one ``.npy`` each, with the
#: dtype they are saved (and therefore mmapped) as
_V3_ARRAYS = (
    ("vectors", np.float64),
    ("mapped", np.float64),
    ("pivots", np.float64),
    ("grid_leaf_codes", np.int64),
    ("inv_codes", np.int64),
    ("inv_cols", np.int64),
    ("inv_starts", np.int64),
    ("inv_rows", np.int64),
    ("column_ids", np.int64),
    ("column_first_rows", np.int64),
    ("column_counts", np.int64),
)

#: optional v3 arrays persisting the ANN column graph (repro.core.ann).
#: Written only when the index carries a graph and declared by an "ann"
#: manifest field, so pre-ANN v3 directories keep loading unchanged.
_V3_ANN_ARRAYS = (
    ("ann_node_columns", np.int64),
    ("ann_centroids", np.float64),
    ("ann_box_min", np.float64),
    ("ann_box_max", np.float64),
    ("ann_neighbors", np.int64),
)


def _index_payload(index: PexesoIndex) -> tuple[dict[str, np.ndarray], dict]:
    """The arrays + manifest fields shared by every save format."""
    inverted = index.inverted
    column_ids = np.fromiter(
        index.column_rows, dtype=np.int64, count=len(index.column_rows)
    )
    column_first_rows = np.asarray(
        [int(index.column_rows[cid][0]) for cid in column_ids.tolist()],
        dtype=np.int64,
    )
    column_counts = np.asarray(
        [int(index.column_rows[cid].size) for cid in column_ids.tolist()],
        dtype=np.int64,
    )
    arrays = {
        "vectors": index.vectors,
        "mapped": index.mapped,
        "pivots": index.pivot_space.pivots,
        "grid_leaf_codes": index.grid.leaf_codes,
        "inv_codes": inverted._codes,
        "inv_cols": inverted._cols,
        "inv_starts": inverted._starts.astype(np.int64),
        "inv_rows": inverted._rows.astype(np.int64),
        "column_ids": column_ids,
        "column_first_rows": column_first_rows,
        "column_counts": column_counts,
    }
    manifest = {
        "metric": index.metric.name,
        "n_pivots": index.n_pivots,
        "levels": index.levels,
        "pivot_method": index.pivot_method,
        "seed": index.seed,
        "next_column_id": index._next_column_id,
        "n_columns": index.n_columns,
        "n_vectors": index.n_vectors,
        "dim": index.dim,
    }
    return arrays, manifest


def _sweep_stale_epochs(directory: Path, keep: str | None) -> None:
    """Drop epoch dirs a crashed (or superseded) save left behind.

    Safe while readers hold mmaps into a removed directory: on POSIX the
    unlinked files' pages stay valid until the last mapping goes away.
    """
    for entry in directory.iterdir():
        if (
            entry.is_dir()
            and entry.name.startswith(_V3_ARRAYS_PREFIX)
            and entry.name != keep
        ):
            shutil.rmtree(entry, ignore_errors=True)


def save_index(
    index: PexesoIndex, directory: str | Path, fmt: int = FORMAT_VERSION
) -> Path:
    """Persist a built index; returns the directory written.

    Args:
        fmt: on-disk format — ``3`` (raw mmap-able ``.npy`` files, the
            default) or ``2`` (one compressed ``index.npz``; kept so v2
            lakes can still be produced for compatibility testing).

    The write is crash-atomic in both formats: array data lands under
    names the current manifest does not reference, and the manifest swap
    is one ``os.replace``. A killed writer can never leave a directory
    that loads as a half-written index.

    Raises:
        RuntimeError: when the index has not been built.
        ValueError: for an unknown ``fmt``.
    """
    if index.pivot_space is None or index.grid is None:
        raise RuntimeError("cannot save an unbuilt index")
    if fmt not in SUPPORTED_FORMATS:
        raise ValueError(f"unknown index format {fmt}; supported: {SUPPORTED_FORMATS}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    arrays, manifest = _index_payload(index)
    manifest = {"format_version": fmt, **manifest}
    manifest["extent"] = float(index.pivot_space.extent)

    if fmt == V2_FORMAT_VERSION:
        manifest.pop("extent")
        np.savez_compressed(
            directory / _ARCHIVE,
            extent=np.float64(index.pivot_space.extent),
            **arrays,
        )
        atomic_write_text(
            directory / "manifest.json", json.dumps(manifest, indent=2)
        )
        clean_temp_artifacts(directory)
        return directory

    # v3: arrays into a fresh epoch dir, manifest flip last, then sweep.
    epoch = 0
    manifest_path = directory / "manifest.json"
    if manifest_path.exists():
        try:
            previous = json.loads(manifest_path.read_text())
            prior_dir = str(previous.get("arrays_dir", ""))
            if prior_dir.startswith(_V3_ARRAYS_PREFIX):
                epoch = int(prior_dir[len(_V3_ARRAYS_PREFIX):]) + 1
        except (ValueError, OSError):
            pass  # unreadable prior manifest: start a fresh epoch chain
    arrays_dir = f"{_V3_ARRAYS_PREFIX}{epoch:08d}"
    epoch_path = directory / arrays_dir
    if epoch_path.exists():  # a crashed writer got this far; restart it
        shutil.rmtree(epoch_path)
    epoch_path.mkdir()
    for name, dtype in _V3_ARRAYS:
        atomic_write_array(
            epoch_path / f"{name}.npy", arrays[name].astype(dtype, copy=False)
        )
    graph = getattr(index, "ann_graph", None)
    if graph is not None:
        ann_arrays = {
            "ann_node_columns": graph.node_columns,
            "ann_centroids": graph.centroids,
            "ann_box_min": graph.box_min,
            "ann_box_max": graph.box_max,
            "ann_neighbors": graph.neighbors,
        }
        for name, dtype in _V3_ANN_ARRAYS:
            atomic_write_array(
                epoch_path / f"{name}.npy",
                ann_arrays[name].astype(dtype, copy=False),
            )
        manifest["ann"] = {"entry": int(graph.entry)}
    manifest["arrays_dir"] = arrays_dir
    atomic_write_text(manifest_path, json.dumps(manifest, indent=2))
    _sweep_stale_epochs(directory, keep=arrays_dir)
    clean_temp_artifacts(directory)
    # The npz of an in-place v2 -> v3 re-save is now dead weight.
    (directory / _ARCHIVE).unlink(missing_ok=True)
    return directory


def _np_load(path: Path, mmap_mode: Optional[str]) -> np.ndarray:
    """``np.load`` hardened against a CPython 3.11 threading bug.

    numpy parses ``.npy`` headers with ``ast.literal_eval``, whose
    ``compile()`` call can spuriously raise ``SystemError: AST
    constructor recursion depth mismatch`` when the C recursion
    counter is perturbed by concurrent thread churn (cpython#105540).
    The failure is transient — the same load succeeds immediately on
    retry — and this repo loads shards from worker threads constantly,
    so retry a couple of times before giving up.
    """
    for attempt in range(3):
        try:
            return np.load(path, mmap_mode=mmap_mode)
        except SystemError:
            if attempt == 2:
                raise
    raise AssertionError("unreachable")


def _load_v3_arrays(
    directory: Path, manifest: dict, mmap: bool
) -> dict[str, np.ndarray]:
    arrays_dir = directory / str(manifest.get("arrays_dir", ""))
    if not arrays_dir.is_dir():
        raise FileNotFoundError(
            f"v3 index manifest names missing arrays dir {arrays_dir}"
        )
    mode = "r" if mmap else None
    arrays = {
        name: _np_load(arrays_dir / f"{name}.npy", mode)
        for name, _ in _V3_ARRAYS
    }
    # The ANN column graph rides along only when the manifest declares it
    # (same epoch directory, so the crash-atomicity story is unchanged).
    if manifest.get("ann"):
        for name, _ in _V3_ANN_ARRAYS:
            arrays[name] = _np_load(arrays_dir / f"{name}.npy", mode)
    return arrays


def load_index(directory: str | Path, mmap: bool = True) -> PexesoIndex:
    """Load an index saved by :func:`save_index`.

    Args:
        mmap: open a v3 directory's arrays with ``mmap_mode="r"``
            (zero-copy; pages fault in on first touch). ``False`` reads
            them eagerly into RAM. v2 directories always load eagerly
            (the npz must be decompressed).

    Mutating a mmap-loaded index is safe: every maintenance path
    (§III-E append/delete) builds *new* arrays rather than writing in
    place, and the one in-place structure (the inverted index's CSR
    offsets) is materialised at load time.

    Raises:
        FileNotFoundError: when the directory lacks the expected files.
        ValueError: on a format-version mismatch.
    """
    from repro.core.metric import get_metric
    from repro.core.pivot import PivotSpace

    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"no index manifest under {directory}")
    # A concurrent re-save flips the manifest to a new epoch directory
    # and sweeps the old one; a reader that fetched the manifest just
    # before the flip can find its arrays gone mid-open. The manifest it
    # re-reads then names the new complete epoch, so retrying gives a
    # consistent snapshot (arrays are never mixed across epochs — any
    # miss restarts the whole open).
    for attempt in range(10):
        manifest = json.loads(manifest_path.read_text())
        fmt = manifest.get("format_version")
        if fmt not in SUPPORTED_FORMATS:
            raise ValueError(
                f"index format {fmt} not in supported {SUPPORTED_FORMATS}"
            )
        try:
            if fmt == V2_FORMAT_VERSION:
                arrays = dict(np.load(directory / _ARCHIVE))
                extent = float(arrays.pop("extent"))
            else:
                arrays = _load_v3_arrays(directory, manifest, mmap)
                extent = float(manifest["extent"])
            break
        except FileNotFoundError:
            if attempt == 9:
                raise

    index = PexesoIndex(
        metric=get_metric(manifest["metric"]),
        n_pivots=manifest["n_pivots"],
        levels=manifest["levels"],
        pivot_method=manifest["pivot_method"],
        seed=manifest["seed"],
    )
    index.pivot_space = PivotSpace(arrays["pivots"], index.metric, extent=extent)
    n_rows = int(manifest["n_vectors"])
    index.grid = HierarchicalGrid.from_leaf_codes(
        arrays["grid_leaf_codes"],
        n_dims=manifest["n_pivots"],
        levels=manifest["levels"],
        extent=extent,
        n_vectors=n_rows,
    )
    inverted = InvertedIndex()
    inverted._codes = arrays["inv_codes"].astype(np.int64, copy=False)
    inverted._cols = arrays["inv_cols"].astype(np.int64, copy=False)
    # _starts is the one array maintenance mutates in place
    # (InvertedIndex.add_vector); materialise it so a read-only mmap can
    # never be written through. It is O(postings) offsets — tiny next to
    # the vector stores that stay mapped.
    inverted._starts = np.array(arrays["inv_starts"], dtype=np.intp)
    inverted._rows = arrays["inv_rows"].astype(np.intp, copy=False)
    index.inverted = inverted
    index.column_rows = {
        int(cid): np.arange(int(first), int(first) + int(count), dtype=np.intp)
        for cid, first, count in zip(
            arrays["column_ids"].tolist(),
            arrays["column_first_rows"].tolist(),
            arrays["column_counts"].tolist(),
        )
    }
    index._next_column_id = int(manifest["next_column_id"])
    index._n_rows = n_rows
    vectors = arrays["vectors"]
    mapped = arrays["mapped"]
    index._vector_blocks = [vectors]
    index._mapped_blocks = [mapped]
    index._vectors = vectors
    index._mapped = mapped
    index.stats.n_vectors = index._n_rows
    index.stats.n_columns = len(index.column_rows)
    index.stats.n_leaf_cells = inverted.n_cells
    index.stats.n_postings = inverted.n_postings
    ann_meta = manifest.get("ann")
    if ann_meta and "ann_node_columns" in arrays:
        from repro.core.ann import ColumnGraph

        index.ann_graph = ColumnGraph(
            arrays["ann_node_columns"],
            arrays["ann_centroids"],
            arrays["ann_box_min"],
            arrays["ann_box_max"],
            arrays["ann_neighbors"],
            int(ann_meta["entry"]),
        )
    return index


# -- partitioned lakes ------------------------------------------------------------


def mutable_manifest_fields(lake) -> dict:
    """The manifest fields live maintenance can change.

    One serialization shared by :func:`save_partitioned` and the lake's
    in-place manifest refresh after ``add_column`` / ``delete_column``,
    so the two paths can never drift apart.
    """
    return {
        "labels": np.asarray(lake.labels).astype(int).tolist(),
        "partition_columns": [list(map(int, g)) for g in lake.partition_columns],
        "deleted_column_ids": sorted(int(c) for c in lake._deleted_ids),
    }


def save_partitioned(
    lake, directory: str | Path, fmt: int = FORMAT_VERSION
) -> Path:
    """Persist a fitted :class:`~repro.core.out_of_core.PartitionedPexeso`.

    Writes ``partitioned.json`` (labels, per-partition global column
    IDs, build knobs) plus one array-native index directory per
    non-empty partition, each in format ``fmt`` (v3 by default). A lake
    already spilled *into* ``directory`` reuses its partition
    directories; resident partitions are saved fresh; partitions
    spilled elsewhere are loaded and re-saved. The lake-level manifest
    is written atomically, last, so a killed saver leaves either the old
    lake or the new one.

    Raises:
        RuntimeError: when the lake has not been fitted.
        ValueError: when the lake's metric cannot round-trip through its
            registry name (unregistered or not default-constructible
            custom metric) — register it with
            :func:`repro.core.metric.register_metric` and rebuild.
    """
    from repro.core.metric import metric_round_trips

    if lake.labels is None:
        raise RuntimeError("cannot save an unfitted partitioned lake")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    partitions: dict[str, str] = {}
    metric_name = None
    for part, globals_ in enumerate(lake.partition_columns):
        if not globals_:
            continue
        subdir = f"partition_{part}"
        if part in lake._resident:
            index = lake._resident[part]
            if not metric_round_trips(index.metric):
                raise ValueError(
                    f"metric {type(index.metric).__name__} cannot be "
                    "reconstructed from its registry name, so the saved "
                    "lake would be unloadable; register it with "
                    "repro.core.metric.register_metric and rebuild"
                )
            save_index(index, directory / subdir, fmt=fmt)
        else:
            spilled = lake._spilled.get(part)
            if spilled is None:
                raise RuntimeError(f"partition {part} has no index to save")
            if spilled.suffix == ".pkl":
                raise ValueError(
                    f"partition {part} was pickle-spilled (unregistered "
                    "custom metric); register the metric with "
                    "repro.core.metric.register_metric and rebuild to "
                    "persist the lake"
                )
            if spilled.resolve() != (directory / subdir).resolve():
                save_index(load_index(spilled), directory / subdir, fmt=fmt)
        if metric_name is None:
            metric_name = json.loads(
                (directory / subdir / "manifest.json").read_text()
            )["metric"]
        partitions[str(part)] = subdir

    manifest = {
        "format_version": PARTITIONED_FORMAT_VERSION,
        "metric": metric_name,
        "n_pivots": lake.n_pivots,
        "levels": lake.levels,
        "pivot_method": lake.pivot_method,
        "seed": lake.seed,
        "n_partitions": lake.n_partitions,
        "partitioner": lake.partitioner,
        "kmeans_iters": lake.kmeans_iters,
        **mutable_manifest_fields(lake),
        "partitions": partitions,
    }
    atomic_write_text(
        directory / _PARTITIONED_MANIFEST, json.dumps(manifest, indent=2)
    )
    clean_temp_artifacts(directory)
    return directory


def load_partitioned(
    directory: str | Path,
    parts: "Sequence[int] | None" = None,
    mmap: bool = True,
):
    """Load a lake saved by :func:`save_partitioned` (lazy partitions).

    The returned :class:`~repro.core.out_of_core.PartitionedPexeso` is
    in spill mode over ``directory``: partition indexes are loaded on
    demand through the shard LRU, so opening a lake costs one JSON read.

    Args:
        parts: host only this partition subset (a cluster worker's
            assignment). The listed partitions are opened **up front**
            and the lake is restricted to them: searches cover only the
            hosted shards, mutations may only target them, and the
            shared on-disk layout is never written back — the worker
            owns its resident slice, the coordinator owns the metadata.
            Over a v3 lake with ``mmap=True`` the open is zero-copy, so
            worker cold start and failover cost milliseconds, not a
            full-shard read.
        mmap: open v3 partitions memory-mapped (see :func:`load_index`).

    Raises:
        FileNotFoundError: when the directory lacks the manifest.
        ValueError: on a format-version mismatch.
        KeyError: when ``parts`` names a partition the lake does not have.
    """
    from repro.core.metric import get_metric
    from repro.core.out_of_core import PartitionedPexeso

    directory = Path(directory)
    manifest_path = directory / _PARTITIONED_MANIFEST
    if not manifest_path.exists():
        raise FileNotFoundError(f"no partitioned manifest under {directory}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != PARTITIONED_FORMAT_VERSION:
        raise ValueError(
            f"partitioned format {manifest.get('format_version')} != "
            f"{PARTITIONED_FORMAT_VERSION}"
        )

    lake = PartitionedPexeso(
        metric=get_metric(manifest["metric"]),
        n_pivots=manifest["n_pivots"],
        levels=manifest["levels"],
        pivot_method=manifest["pivot_method"],
        seed=manifest["seed"],
        n_partitions=manifest["n_partitions"],
        partitioner=manifest["partitioner"],
        spill_dir=directory,
        kmeans_iters=manifest["kmeans_iters"],
        mmap=mmap,
    )
    lake.labels = np.asarray(manifest["labels"], dtype=np.intp)
    lake.partition_columns = [
        [int(cid) for cid in globals_]
        for globals_ in manifest["partition_columns"]
    ]
    lake._spilled = {
        int(part): directory / subdir
        for part, subdir in manifest["partitions"].items()
    }
    lake._deleted_ids = {
        int(cid) for cid in manifest.get("deleted_column_ids", [])
    }
    if parts is not None:
        wanted = sorted({int(p) for p in parts})
        unknown = [p for p in wanted if str(p) not in manifest["partitions"]]
        if unknown:
            raise KeyError(
                f"partitions {unknown} are not in the saved lake "
                f"(have: {sorted(int(p) for p in manifest['partitions'])})"
            )
        for p in wanted:
            lake._resident[p] = load_index(
                directory / manifest["partitions"][str(p)], mmap=mmap
            )
        # Nothing stays spilled: the hosted shards are resident, the
        # rest are not this lake's to touch (no re-spill, no LRU).
        lake._spilled = {}
        lake.restrict_to_parts(wanted)
    return lake


def load_any(
    directory: str | Path,
    parts: "Sequence[int] | None" = None,
    mmap: bool = True,
) -> Union[PexesoIndex, "object"]:
    """Load whatever index flavour ``directory`` holds.

    Dispatches on the on-disk layout: a ``partitioned.json`` manifest
    loads a :class:`~repro.core.out_of_core.PartitionedPexeso`, a plain
    ``manifest.json`` loads a single :class:`PexesoIndex`. ``parts``
    (a shard-subset restriction) requires the partitioned layout.
    ``mmap`` controls zero-copy opening of v3 layouts.

    Raises:
        FileNotFoundError: when neither manifest is present.
    """
    directory = Path(directory)
    if (directory / _PARTITIONED_MANIFEST).exists():
        return load_partitioned(directory, parts=parts, mmap=mmap)
    if parts is not None:
        raise ValueError(
            f"{directory} holds a single index; a partition subset needs "
            "the partitioned layout"
        )
    return load_index(directory, mmap=mmap)
