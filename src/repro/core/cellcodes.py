"""Linearized grid-cell codes: bit-interleaved (Morton / Z-order) integers.

The hierarchical grid of §III-B addresses a level-``m`` cell by ``|P|``
integer coordinates in ``[0, 2^m)``. Tuple keys make every grid and
inverted-index operation a Python dict lookup; instead each cell is
linearized into one ``int64`` *cell code* by interleaving the coordinate
bits: bit ``b`` of axis ``a`` lands at code bit ``b * n_dims + a``.

Two properties make this the right linearization for PEXESO:

* **ancestors by shifting** — the level-``(l-1)`` parent of a level-``l``
  cell is ``code >> n_dims``, so the whole ancestor chain (and any grid
  level) is derived from the leaf codes with vectorised shifts;
* **subtrees are ranges** — the leaves below a level-``l`` cell are
  exactly the codes in ``[code << s, (code + 1) << s)`` with
  ``s = n_dims * (m - l)``, so subtree traversals over *sorted* code
  arrays become ``np.searchsorted`` range lookups.

Codes use ``n_dims * levels`` bits and must fit a signed int64, which
covers every configuration the paper uses (|P| <= 5, m <= 8) with a wide
margin; :func:`check_code_width` guards the limit explicitly.
"""

from __future__ import annotations

import numpy as np

#: one sign bit and one slack bit below the int64 limit
MAX_CODE_BITS = 62


def check_code_width(n_dims: int, levels: int) -> None:
    """Raise when ``n_dims * levels`` bits do not fit an int64 cell code."""
    bits = n_dims * levels
    if bits > MAX_CODE_BITS:
        raise ValueError(
            f"cell codes need n_dims * levels = {bits} bits, more than the "
            f"{MAX_CODE_BITS} an int64 code can hold; reduce the number of "
            "pivots or grid levels"
        )


def encode_cells(coords: np.ndarray, n_dims: int, bits_per_axis: int) -> np.ndarray:
    """Interleave integer cell coordinates into int64 cell codes.

    Args:
        coords: ``(n, n_dims)`` non-negative integer coordinates, each in
            ``[0, 2^bits_per_axis)``.
        n_dims: number of axes.
        bits_per_axis: grid level of the coordinates (leaf level for leaf
            coordinates).

    Returns:
        ``(n,)`` int64 codes.
    """
    check_code_width(n_dims, bits_per_axis)
    coords = np.asarray(coords, dtype=np.int64)
    if coords.ndim != 2 or coords.shape[1] != n_dims:
        raise ValueError(f"coords must be (n, {n_dims}), got {coords.shape}")
    codes = np.zeros(coords.shape[0], dtype=np.int64)
    for bit in range(bits_per_axis):
        for axis in range(n_dims):
            codes |= ((coords[:, axis] >> bit) & 1) << (bit * n_dims + axis)
    return codes


def decode_cells(codes: np.ndarray, n_dims: int, bits_per_axis: int) -> np.ndarray:
    """Inverse of :func:`encode_cells`: codes back to ``(n, n_dims)`` coords."""
    check_code_width(n_dims, bits_per_axis)
    codes = np.asarray(codes, dtype=np.int64)
    coords = np.zeros((codes.shape[0], n_dims), dtype=np.int64)
    for bit in range(bits_per_axis):
        for axis in range(n_dims):
            coords[:, axis] |= ((codes >> (bit * n_dims + axis)) & 1) << bit
    return coords


def ancestor_codes(codes: np.ndarray, n_dims: int, levels_up: int) -> np.ndarray:
    """Codes of the ancestors ``levels_up`` levels above (vectorised)."""
    if levels_up < 0:
        raise ValueError("levels_up must be non-negative")
    return np.asarray(codes, dtype=np.int64) >> (n_dims * levels_up)


def subtree_bounds(code: int, n_dims: int, levels_down: int) -> tuple[int, int]:
    """Half-open leaf-code range ``[lo, hi)`` of the subtree under ``code``."""
    shift = n_dims * levels_down
    return int(code) << shift, (int(code) + 1) << shift
