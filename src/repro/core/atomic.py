"""Crash-safe file writes for manifests and array files.

Every manifest in the system (``manifest.json``, ``partitioned.json``,
``cluster.json``) is the single source of truth for an on-disk layout,
and live maintenance rewrites them while workers may be killed at any
moment (the oracle's failover lane does exactly that). A bare
``Path.write_text`` truncates the destination before writing, so a kill
mid-write leaves a half-manifest that makes the whole lake unloadable.

The fix is the classic same-directory temp file + ``os.replace`` dance:
the new content is written under a ``*.tmp-*`` name in the destination
directory (same filesystem, so the rename is atomic) and swapped in with
one ``os.replace``. Readers therefore always see either the old complete
file or the new complete file — never a truncation. Leftover temp files
from a crashed writer are ignored by loaders (their names never match
the manifest names) and swept by :func:`clean_temp_artifacts` on the
next successful save.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path

import numpy as np

#: infix marking an in-flight (not yet published) file; loaders must
#: ignore any directory entry containing it
TMP_INFIX = ".tmp-"


def _temp_sibling(path: Path) -> Path:
    """A unique temp name next to ``path`` (same dir -> atomic rename)."""
    return path.with_name(
        f"{path.name}{TMP_INFIX}{os.getpid()}-{uuid.uuid4().hex[:8]}"
    )


def is_temp_artifact(path: str | Path) -> bool:
    """Whether a directory entry is an unpublished temp file to ignore."""
    return TMP_INFIX in Path(path).name


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``)."""
    path = Path(path)
    tmp = _temp_sibling(path)
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def atomic_write_array(path: str | Path, array: np.ndarray) -> Path:
    """``np.save`` to ``path`` atomically (temp file + ``os.replace``).

    ``path`` must already carry the ``.npy`` suffix — ``np.save`` is
    pointed at an open temp file handle so it cannot append one.
    """
    path = Path(path)
    tmp = _temp_sibling(path)
    try:
        with open(tmp, "wb") as fh:
            np.save(fh, np.ascontiguousarray(array))
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def clean_temp_artifacts(directory: str | Path) -> int:
    """Remove leftover ``*.tmp-*`` files of crashed writers; returns count.

    Best-effort: a concurrently completing writer may have already
    renamed its temp file away, so missing entries are not errors.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    removed = 0
    for entry in directory.iterdir():
        if entry.is_file() and is_temp_artifact(entry):
            try:
                entry.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing writer
                pass
    return removed
