"""Batch query engine: vectorised multi-query joinable-column search.

:func:`~repro.core.search.pexeso_search` answers one query column at a
time; real workloads (the all-columns discovery mode of
:mod:`repro.lake.discovery`, the Table 5 ML-enrichment pipeline, CLI
batch mode) issue one search per candidate column and pay the full
pipeline setup for each. :class:`BatchSearch` amortises that work across
a whole batch:

* all query columns are pivot-mapped in **one** vectorised pass over the
  stacked ``(ΣQ_i, dim)`` matrix;
* queries sharing a distance threshold τ share **one** ``HG_Q`` build and
  **one** blocking descent: every blocking predicate (Lemmas 3–6, quick
  browsing) is geometric per query *row*, so a combined grid over all
  rows yields, for each row, exactly the match/candidate cell pairs its
  own per-query descent would — while descending the repository grid
  once instead of once per query;
* verification runs over NumPy row-blocks spanning the whole batch
  (:func:`~repro.core.verifier.verify_row_blocks`) with per-(query,
  column) state arrays instead of per-row Python loops;
* batches mixing several τ values are split into per-τ groups that run
  concurrently on a thread pool.

**Exactness guarantee.** For every query ``i`` in the batch,
``BatchSearch.search_many(queries, tau, joinability).results[i]``
contains the same joinable column IDs, the same match counts (including
the lower-bound clamping produced by early termination) and the same
joinability values as ``pexeso_search(index, queries[i], tau,
joinability)`` — under any metric, thresholds and
:class:`~repro.core.search.AblationFlags` configuration. The only things
allowed to differ are work/time counters: shared blocking work is
counted once for the batch, and a column firing an early-termination
rule mid row-block may have a few more distances computed than the
sequential run (see :func:`~repro.core.verifier.verify_row_blocks`).
This invariant is enforced by ``tests/core/test_engine.py`` and the
randomised property suite ``tests/integration/test_batch_exactness.py``.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.blocker import block
from repro.core.grid import HierarchicalGrid
from repro.core.index import PexesoIndex
from repro.core.search import AblationFlags, JoinableColumn, SearchResult
from repro.core.stats import SearchStats
from repro.core.thresholds import joinability_count
from repro.core.verifier import verify_row_blocks


@dataclass
class BatchResult:
    """Results of one batch search.

    ``results[i]`` is the :class:`~repro.core.search.SearchResult` of the
    i-th query, exactly as the sequential search would have produced it.
    Its ``stats`` hold that query's own verification counters plus its
    share of blocking output (matching/candidate pairs, pivot-mapping
    distances); ``stats`` on the batch aggregates everything, counting
    work shared across queries (grid descent, HG_Q build) once.
    """

    results: list[SearchResult]
    stats: SearchStats = field(default_factory=SearchStats)
    wall_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, i: int) -> SearchResult:
        return self.results[i]

    def __iter__(self):
        return iter(self.results)

    @property
    def column_ids(self) -> list[list[int]]:
        """Joinable column IDs per query."""
        return [r.column_ids for r in self.results]

    @property
    def n_joinable(self) -> int:
        """Total hits over the whole batch."""
        return sum(len(r) for r in self.results)


class BatchSearch:
    """Vectorised multi-query search over one :class:`PexesoIndex`.

    Args:
        index: a built index (shared, read-only across the batch).
        flags: ablation switches applied to every query in the batch.
        exact_counts: disable early termination so all match counts are
            exact (mirrors the ``pexeso_search`` parameter).
        max_workers: thread-pool width for independent work units. A
            value > 1 additionally splits each per-τ group into about
            ``max_workers`` subgroups so even a single-τ batch runs
            concurrently (trading a little shared-blocking reuse for
            parallelism); ``None`` keeps whole τ groups as the units and
            pools only across them; ``1`` forces serial execution.
        row_block_size: query rows per vectorised verification block.
        record_batch_sizes: when set, every :meth:`search_many` call
            appends the number of queries it fused to the batch stats'
            ``coalesced_batch_sizes`` — the serving layer's micro-batcher
            reads this to report how well requests coalesce.
    """

    def __init__(
        self,
        index: PexesoIndex,
        flags: Optional[AblationFlags] = None,
        exact_counts: bool = False,
        max_workers: Optional[int] = None,
        row_block_size: int = 8,
        record_batch_sizes: bool = False,
    ):
        if index.pivot_space is None or index.grid is None:
            raise RuntimeError("index is not built; call fit() first")
        if row_block_size < 1:
            raise ValueError("row_block_size must be >= 1")
        self.index = index
        self.flags = flags if flags is not None else AblationFlags()
        self.exact_counts = exact_counts
        self.max_workers = max_workers
        self.row_block_size = row_block_size
        self.record_batch_sizes = record_batch_sizes

    # -- public API ---------------------------------------------------------------

    def search_many(
        self,
        queries: Sequence[np.ndarray],
        tau: Union[float, Sequence[float]],
        joinability: Union[float, int, Sequence[Union[float, int]]],
        allowed_columns: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> BatchResult:
        """Search every query column and return per-query results.

        Args:
            queries: query columns, each ``(|Q_i|, dim)`` (same embedder
                as the repository).
            tau: one distance threshold for the whole batch, or one per
                query (queries sharing a τ share one blocking pass).
            joinability: T as a fraction of |Q_i| in ``(0, 1]`` or an
                absolute count; scalar or one per query.
            allowed_columns: optional per-query ANN candidate
                restriction (see :mod:`repro.core.ann`): one array of
                allowed column IDs per query, or ``None`` entries /
                ``None`` overall for unrestricted exact search.

        Returns:
            A :class:`BatchResult`; ``results`` aligns with ``queries``.
        """
        started = time.perf_counter()
        n = len(queries)
        batch_stats = SearchStats()
        if n == 0:
            return BatchResult(results=[], stats=batch_stats, wall_seconds=0.0)
        if self.record_batch_sizes:
            batch_stats.coalesced_batch_sizes.append(n)

        arrays = [self._validated(q, position) for position, q in enumerate(queries)]
        taus = self._per_query(tau, n, "tau")
        joins = self._per_query(joinability, n, "joinability")
        if allowed_columns is not None and len(allowed_columns) != n:
            raise ValueError("allowed_columns must have one entry per query")
        for t in taus:
            if t < 0:
                raise ValueError("tau must be non-negative")

        # Group queries by τ: one shared blocking pass per group. With an
        # explicit max_workers > 1 each group is further split into about
        # that many subgroups so single-τ batches parallelise too.
        groups: dict[float, list[int]] = {}
        for i, t in enumerate(taus):
            groups.setdefault(float(t), []).append(i)
        group_items: list[tuple[float, list[int]]] = []
        if self.max_workers is not None and self.max_workers > 1:
            per_group = max(1, self.max_workers // len(groups))
            for t, indices in groups.items():
                n_units = min(len(indices), per_group)
                unit_size = -(-len(indices) // n_units)  # ceil division
                for at in range(0, len(indices), unit_size):
                    group_items.append((t, indices[at : at + unit_size]))
        else:
            group_items = list(groups.items())

        results: list[Optional[SearchResult]] = [None] * n
        if len(group_items) == 1 or self.max_workers == 1:
            outputs = [
                self._search_group(arrays, indices, t, joins, allowed_columns)
                for t, indices in group_items
            ]
        else:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                outputs = list(
                    pool.map(
                        lambda item: self._search_group(
                            arrays, item[1], item[0], joins, allowed_columns
                        ),
                        group_items,
                    )
                )
        for (_, indices), (group_results, group_stats) in zip(group_items, outputs):
            batch_stats.merge(group_stats)
            for position, result in zip(indices, group_results):
                results[position] = result
        return BatchResult(
            results=list(results),  # type: ignore[arg-type]
            stats=batch_stats,
            wall_seconds=time.perf_counter() - started,
        )

    __call__ = search_many

    # -- internals ----------------------------------------------------------------

    def _validated(self, query: np.ndarray, position: int) -> np.ndarray:
        query = np.atleast_2d(np.asarray(query, dtype=np.float64))
        if query.shape[0] == 0:
            raise ValueError(f"query column {position} is empty")
        if query.shape[1] != self.index.dim:
            raise ValueError(
                f"query column {position} dim {query.shape[1]} != index dim "
                f"{self.index.dim}"
            )
        if not np.isfinite(query).all():
            raise ValueError(f"query column {position} contains NaN or infinite values")
        return query

    @staticmethod
    def _per_query(value, n: int, name: str) -> list:
        if np.isscalar(value):
            return [value] * n
        values = list(value)
        if len(values) != n:
            raise ValueError(f"{name} must be a scalar or have one entry per query")
        return values

    def _search_group(
        self,
        arrays: list[np.ndarray],
        indices: list[int],
        tau: float,
        joins: list,
        allowed_columns: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> tuple[list[SearchResult], SearchStats]:
        """One shared pivot-map + HG_Q + blocking pass + batched verify."""
        index = self.index
        flags = self.flags
        group_stats = SearchStats()
        columns = [arrays[i] for i in indices]
        sizes = [c.shape[0] for c in columns]
        t_counts = [joinability_count(joins[i], size) for i, size in zip(indices, sizes)]
        query_of_row = np.repeat(np.arange(len(columns), dtype=np.intp), sizes)

        stage_started = time.perf_counter()
        stacked = columns[0] if len(columns) == 1 else np.concatenate(columns, axis=0)
        mapped = index.pivot_space.map_vectors(stacked)
        group_stats.pivot_mapping_distances += mapped.size
        hg_q = HierarchicalGrid.build(
            mapped,
            levels=index.levels,
            extent=index.pivot_space.extent,
            store_members=True,
        )
        group_stats.stage_seconds.add(
            "pivot_map", time.perf_counter() - stage_started
        )
        stage_started = time.perf_counter()
        block_result = block(
            hg_q,
            index.grid,
            mapped,
            tau,
            stats=group_stats,
            use_lemma34=flags.lemma34,
            use_lemma56=flags.lemma56,
            use_quick_browsing=flags.quick_browsing,
        )
        group_stats.stage_seconds.add(
            "blocking", time.perf_counter() - stage_started
        )

        per_stats = [SearchStats() for _ in columns]
        for r, cells in block_result.match_pairs.items():
            per_stats[query_of_row[r]].matching_pairs += len(cells)
        for r, cells in block_result.candidate_pairs.items():
            per_stats[query_of_row[r]].candidate_pairs += len(cells)
        for local, size in enumerate(sizes):
            per_stats[local].pivot_mapping_distances += size * index.n_pivots

        verdicts = verify_row_blocks(
            block_result,
            index.inverted,
            stacked,
            mapped,
            index.vectors,
            index.mapped,
            index.metric,
            tau,
            t_counts,
            sizes,
            query_of_row,
            stats=group_stats,
            per_query_stats=per_stats,
            use_lemma1=flags.lemma1,
            use_lemma2=flags.lemma2,
            use_lemma7=flags.lemma7,
            early_accept=flags.early_accept,
            exact_counts=self.exact_counts,
            row_block_size=self.row_block_size,
            allowed_columns=(
                [allowed_columns[i] for i in indices]
                if allowed_columns is not None
                else None
            ),
        )

        results = []
        for local, verdict in enumerate(verdicts):
            n_q = sizes[local]
            hits = [
                JoinableColumn(
                    column_id=col,
                    match_count=verdict.match_counts.get(col, 0),
                    joinability=verdict.match_counts.get(col, 0) / n_q,
                    exact_count=verdict.exact,
                )
                for col in sorted(verdict.joinable)
                if col in index.column_rows  # deleted columns never surface
            ]
            results.append(
                SearchResult(
                    joinable=hits,
                    stats=per_stats[local],
                    tau=tau,
                    t_count=t_counts[local],
                    query_size=n_q,
                )
            )
        return results, group_stats


def merge_shard_batches(
    shard_batches: Sequence[BatchResult],
    column_maps: Sequence[Sequence[int]],
) -> BatchResult:
    """Merge per-shard :class:`BatchResult`\\ s into one global-ID batch.

    Every shard must have answered the *same* query list (``results``
    align position by position). ``column_maps[s]`` translates shard
    ``s``'s local column IDs to global ones; hits are remapped, pooled
    per query and re-sorted by global column ID — exactly the order a
    single index over the union of the shards would produce. Per-query
    and batch-level stats are accumulated across shards.

    Raises:
        ValueError: when the shard batches disagree on the query list
            length or no shards are given.
    """
    if not shard_batches:
        raise ValueError("need at least one shard batch to merge")
    if len(shard_batches) != len(column_maps):
        raise ValueError("need exactly one column map per shard batch")
    n = len(shard_batches[0].results)
    for batch in shard_batches:
        if len(batch.results) != n:
            raise ValueError("shard batches answered different query lists")

    merged_stats = SearchStats()
    wall = 0.0
    for batch in shard_batches:
        merged_stats.merge(batch.stats)
        wall = max(wall, batch.wall_seconds)

    results: list[SearchResult] = []
    for i in range(n):
        hits: list[JoinableColumn] = []
        stats = SearchStats()
        for batch, mapping in zip(shard_batches, column_maps):
            shard_result = batch.results[i]
            stats.merge(shard_result.stats)
            for hit in shard_result.joinable:
                hits.append(
                    JoinableColumn(
                        column_id=int(mapping[hit.column_id]),
                        match_count=hit.match_count,
                        joinability=hit.joinability,
                        exact_count=hit.exact_count,
                    )
                )
        hits.sort()
        first = shard_batches[0].results[i]
        results.append(
            SearchResult(
                joinable=hits,
                stats=stats,
                tau=first.tau,
                t_count=first.t_count,
                query_size=first.query_size,
            )
        )
    return BatchResult(results=results, stats=merged_stats, wall_seconds=wall)


def batch_search(
    index: PexesoIndex,
    queries: Sequence[np.ndarray],
    tau: Union[float, Sequence[float]],
    joinability: Union[float, int, Sequence[Union[float, int]]],
    flags: Optional[AblationFlags] = None,
    exact_counts: bool = False,
    max_workers: Optional[int] = None,
    row_block_size: int = 8,
) -> BatchResult:
    """One-shot convenience wrapper around :class:`BatchSearch`."""
    engine = BatchSearch(
        index,
        flags=flags,
        exact_counts=exact_counts,
        max_workers=max_workers,
        row_block_size=row_block_size,
    )
    return engine.search_many(queries, tau, joinability)
