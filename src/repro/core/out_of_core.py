"""Out-of-core joinable table search over partitioned data lakes (§IV).

When the repository does not fit in memory, the columns are partitioned
(by default with the JSD clustering of :mod:`repro.core.partition`), one
:class:`~repro.core.index.PexesoIndex` is built per partition, and each
partition is (optionally) spilled to disk in the array-native
:mod:`~repro.core.persistence` format (raw ``.npy`` files per
partition — no pickling, and loading is a handful of ``mmap`` calls
instead of reconstructing a Python object graph).

The sharded layer is the fast path, not a fallback:

* :meth:`PartitionedPexeso.search_many` answers many query columns over
  many shards in one pass — every shard runs the batch engine
  (:class:`~repro.core.engine.BatchSearch`: one shared pivot mapping,
  one HG_Q build, one blocking descent per τ group) and shards fan out
  over a thread pool (``max_workers``);
* in spill mode, loads stay one-partition-per-worker: a thread-safe LRU
  (:class:`ShardLRU`) keeps at most ``lru_shards`` indexes resident, so
  memory stays bounded while repeated queries skip the disk;
* :meth:`PartitionedPexeso.topk` runs the Lemma-7-bounded top-k across
  partitions with a *shared* running k-th-best ``theta``: shards are
  processed in waves of ``max_workers``, and each wave prunes against
  the k-th best confirmed count of all earlier waves. The output is
  provably identical to single-index
  :func:`~repro.core.topk.pexeso_topk` over the union of the shards
  (the theta floor abandons only columns strictly below the global
  k-th best, so count ties — broken by column ID — survive).

:class:`LakeSearcher` wraps either a single index or a partitioned lake
behind one dispatch surface (``search`` / ``search_many`` / ``topk``),
which is what :mod:`repro.lake.discovery`, :mod:`repro.ml.enrichment`
and the CLI build against.
"""

from __future__ import annotations

import pickle
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.core.ann import candidate_lists
from repro.core.engine import BatchResult, BatchSearch, merge_shard_batches
from repro.core.index import PexesoIndex
from repro.core.metric import Metric, metric_round_trips
from repro.core.persistence import load_index, save_index
from repro.core.partition import PARTITIONERS, partition_labels
from repro.core.search import AblationFlags, SearchResult, pexeso_search
from repro.core.stats import SearchStats
from repro.core.topk import TopKResult, pexeso_topk

#: default shard fan-out width when ``max_workers`` is not given
DEFAULT_SHARD_WORKERS = 4


class ShardLRU:
    """Thread-safe LRU cache of loaded shard indexes (out-of-core mode).

    Bounds spill-mode memory to ``capacity`` resident shards — one per
    worker by default, so a W-wide fan-out never holds more than W
    partitions in memory — while letting repeated searches reuse loads.

    Args:
        loader: ``partition id -> PexesoIndex`` disk loader.
        capacity: maximum number of resident shards (>= 1).
    """

    def __init__(self, loader: Callable[[int], PexesoIndex], capacity: int):
        if capacity < 1:
            raise ValueError("LRU capacity must be at least 1")
        self._loader = loader
        self.capacity = int(capacity)
        self._cache: OrderedDict[int, PexesoIndex] = OrderedDict()
        self._lock = threading.Lock()
        #: per-part version counter, bumped by put()/invalidate(); a
        #: get() that loaded from disk installs its result only if the
        #: token it captured is still current, so a slow disk load can
        #: never clobber a fresher index a concurrent put() installed.
        self._tokens: dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    def get(self, part: int) -> PexesoIndex:
        """Fetch one shard, loading (and possibly evicting) as needed."""
        while True:
            with self._lock:
                index = self._cache.get(part)
                if index is not None:
                    self._cache.move_to_end(part)
                    self.hits += 1
                    return index
                token = self._tokens.get(part, 0)
            # Load outside the lock so concurrent workers load distinct
            # shards in parallel; a rare duplicate load of the same shard
            # is benign.
            index = self._loader(part)
            with self._lock:
                self.misses += 1
                if self._tokens.get(part, 0) != token:
                    # The entry changed mid-load (a mutation put() a
                    # fresher index, or invalidate() dropped it because
                    # the on-disk copy moved on). Our load may predate
                    # that, so it must not be installed; serve the cached
                    # fresh copy if there is one, else re-load.
                    current = self._cache.get(part)
                    if current is not None:
                        self._cache.move_to_end(part)
                        return current
                    continue
                self._cache[part] = index
                self._cache.move_to_end(part)
                while len(self._cache) > self.capacity:
                    self._cache.popitem(last=False)
            return index

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def resident(self) -> list[PexesoIndex]:
        """Snapshot of the currently resident shard indexes."""
        with self._lock:
            return list(self._cache.values())

    def put(self, part: int, index: PexesoIndex) -> None:
        """Install (or replace) one shard's resident index.

        Live maintenance mutates a loaded shard and re-spills it; the
        fresh object replaces any stale cached copy so later reads never
        see the pre-mutation index. Bumps the part's version token so an
        in-flight disk load started before this put can never overwrite
        it.
        """
        with self._lock:
            self._tokens[part] = self._tokens.get(part, 0) + 1
            self._cache[part] = index
            self._cache.move_to_end(part)
            while len(self._cache) > self.capacity:
                self._cache.popitem(last=False)

    def invalidate(self, part: int) -> None:
        """Drop one shard from the cache (no-op when absent)."""
        with self._lock:
            self._tokens[part] = self._tokens.get(part, 0) + 1
            self._cache.pop(part, None)

    def clear(self) -> None:
        with self._lock:
            for part in self._cache:
                self._tokens[part] = self._tokens.get(part, 0) + 1
            self._cache.clear()


class PartitionedPexeso:
    """A data lake split into per-partition PEXESO indexes.

    Args:
        n_partitions: number of partitions (paper uses 10 for LWDC).
        partitioner: ``jsd`` | ``average-kmeans`` | ``random``.
        spill_dir: when given, partition indexes are written here (one
            array-native index directory each) and at most ``lru_shards``
            are resident at a time (the out-of-core mode); when ``None``
            all partitions stay in memory.
        kmeans_iters: the clustering iteration bound ``t``.
        max_workers: default shard fan-out width for ``search_many`` /
            ``topk`` (overridable per call); ``None`` picks
            ``min(4, #shards)``.
        lru_shards: spill-mode resident-shard bound; defaults to the
            resolved worker count (one partition per worker).
        mmap: open spilled v3 partitions memory-mapped (zero-copy; see
            :func:`~repro.core.persistence.load_index`). The LRU then
            bounds address-space mappings rather than heap, so spill
            mode can afford a far larger ``lru_shards``.
        Remaining arguments configure each partition's
        :class:`~repro.core.index.PexesoIndex`.
    """

    def __init__(
        self,
        metric: Optional[Metric] = None,
        n_pivots: int = 5,
        levels: int = 4,
        pivot_method: str = "pca",
        seed: int = 0,
        n_partitions: int = 4,
        partitioner: str = "jsd",
        spill_dir: Optional[str | Path] = None,
        kmeans_iters: int = 10,
        max_workers: Optional[int] = None,
        lru_shards: Optional[int] = None,
        mmap: bool = True,
    ):
        if partitioner not in PARTITIONERS:
            known = ", ".join(sorted(PARTITIONERS))
            raise KeyError(f"unknown partitioner {partitioner!r}; known: {known}")
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if lru_shards is not None and lru_shards < 1:
            raise ValueError("lru_shards must be at least 1")
        self.metric = metric
        self.n_pivots = n_pivots
        self.levels = levels
        self.pivot_method = pivot_method
        self.seed = seed
        self.n_partitions = n_partitions
        self.partitioner = partitioner
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.kmeans_iters = kmeans_iters
        self.max_workers = max_workers
        self.lru_shards = lru_shards
        self.mmap = bool(mmap)

        #: partition label of every fitted or live-added column (positional)
        self.labels: Optional[np.ndarray] = None
        #: per partition: list of global column ids in local-id order
        #: (deleted columns keep their slot as a tombstone so the
        #: positional local-id -> global-id mapping stays valid)
        self.partition_columns: list[list[int]] = []
        self._resident: dict[int, PexesoIndex] = {}
        self._spilled: dict[int, Path] = {}
        self._lru: Optional[ShardLRU] = None
        self._lru_lock = threading.Lock()
        #: lazy reverse map: global column id -> (partition, local id)
        self._column_shard: Optional[dict[int, tuple[int, int]]] = None
        #: global ids removed by delete_column (ids are never reused)
        self._deleted_ids: set[int] = set()
        self._next_gid: Optional[int] = None
        #: when set, this lake hosts only these partitions (a cluster
        #: worker's shard subset); searches, mutations and column lookups
        #: are restricted to them and the shared on-disk manifest is
        #: never rewritten (the cluster coordinator owns that metadata)
        self.hosted_parts: Optional[frozenset[int]] = None

    # -- construction ------------------------------------------------------------

    def fit(
        self,
        columns: Sequence[np.ndarray],
        column_ids: Optional[Sequence[int]] = None,
    ) -> "PartitionedPexeso":
        """Partition ``columns`` and build one index per partition.

        Args:
            columns: the repository's vector columns.
            column_ids: global column ID per column; defaults to the
                positions in ``columns``. Used when repartitioning an
                existing index whose IDs are not contiguous.
        """
        if not columns:
            raise ValueError("cannot build over zero columns")
        if column_ids is None:
            column_ids = list(range(len(columns)))
        elif len(column_ids) != len(columns):
            raise ValueError("need exactly one column id per column")
        rng = np.random.default_rng(self.seed)
        k = min(self.n_partitions, len(columns))
        self.labels = partition_labels(
            columns, k, partitioner=self.partitioner,
            n_iter=self.kmeans_iters, rng=rng,
        )

        self.partition_columns = []
        self._resident.clear()
        self._spilled.clear()
        self._lru = None
        self._column_shard = None
        self._deleted_ids = set()
        self._next_gid = None
        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)

        for part in range(k):
            positions = np.flatnonzero(self.labels == part)
            if positions.size == 0:
                self.partition_columns.append([])
                continue
            index = PexesoIndex.build(
                [columns[p] for p in positions],
                metric=self.metric,
                n_pivots=self.n_pivots,
                levels=self.levels,
                pivot_method=self.pivot_method,
                seed=self.seed + part,
            )
            self.partition_columns.append([int(column_ids[p]) for p in positions])
            if self.spill_dir is not None:
                self._spill(part, index)
            else:
                self._resident[part] = index
        return self

    @classmethod
    def from_index(
        cls,
        index: PexesoIndex,
        n_partitions: int = 4,
        partitioner: str = "jsd",
        spill_dir: Optional[str | Path] = None,
        kmeans_iters: int = 10,
        max_workers: Optional[int] = None,
        lru_shards: Optional[int] = None,
    ) -> "PartitionedPexeso":
        """Repartition a built single index into a sharded lake.

        Column IDs are preserved (including gaps left by deletions), so
        search results remain comparable with the source index.
        """
        if index.pivot_space is None or index.grid is None:
            raise RuntimeError("index is not built; call fit() first")
        column_ids = sorted(index.column_rows)
        if not column_ids:
            raise ValueError("index holds no live columns to repartition")
        columns = [index.vectors[index.column_rows[cid]] for cid in column_ids]
        lake = cls(
            metric=index.metric,
            n_pivots=index.n_pivots,
            levels=index.levels,
            pivot_method=index.pivot_method,
            seed=index.seed,
            n_partitions=n_partitions,
            partitioner=partitioner,
            spill_dir=spill_dir,
            kmeans_iters=kmeans_iters,
            max_workers=max_workers,
            lru_shards=lru_shards,
        )
        return lake.fit(columns, column_ids=column_ids)

    def _spill(self, part: int, index: PexesoIndex) -> None:
        """Write one partition to disk in the array-native format.

        Spills use the current (v3, mmap-able) format and are
        crash-atomic: a killed spill leaves the partition's previous
        complete epoch on disk. The format reconstructs the metric from
        its registry name, so any metric whose name round-trips through
        ``METRIC_REGISTRY`` — built-in or registered via
        :func:`~repro.core.metric.register_metric` — spills without
        pickling. Only a truly unregistered custom
        :class:`~repro.core.metric.Metric` instance falls back to the
        seed's pickle spill (slower to load, but it round-trips
        arbitrary metric objects), and doing so now warns instead of
        degrading silently.
        """
        if metric_round_trips(index.metric):
            self._spilled[part] = save_index(index, self.spill_dir / f"partition_{part}")
        else:
            warnings.warn(
                f"metric {type(index.metric).__name__} is not registered in "
                "METRIC_REGISTRY; spilling partitions via pickle. Register "
                "it with repro.core.metric.register_metric to use the "
                "array-native format.",
                stacklevel=3,
            )
            path = self.spill_dir / f"partition_{part}.pkl"
            with open(path, "wb") as fh:
                pickle.dump(index, fh, protocol=pickle.HIGHEST_PROTOCOL)
            self._spilled[part] = path

    def _load(self, part: int) -> Optional[PexesoIndex]:
        """Load one spilled partition from disk (no caching)."""
        path = self._spilled.get(part)
        if path is None:
            return None
        if path.suffix == ".pkl":
            with open(path, "rb") as fh:
                return pickle.load(fh)
        return load_index(path, mmap=self.mmap)

    def _ensure_lru(self, workers: int) -> None:
        """Create (or widen) the shard LRU for a ``workers``-wide fan-out.

        Called on the coordinating thread before shards fan out, so pool
        workers never race on creation. Without an explicit
        ``lru_shards`` bound the capacity tracks the widest fan-out seen
        (one partition per worker); an explicit bound is never changed.
        """
        if not self._spilled:
            return
        capacity = max(1, self.lru_shards or workers)
        with self._lru_lock:
            if self._lru is None:
                self._lru = ShardLRU(self._load, capacity)
            elif self.lru_shards is None and self._lru.capacity < capacity:
                self._lru.capacity = capacity

    def _get_index(self, part: int) -> tuple[PexesoIndex, float]:
        """Fetch one partition's index plus the disk seconds it cost."""
        if part in self._resident:
            return self._resident[part], 0.0
        if part not in self._spilled:
            raise RuntimeError(
                f"partition {part} has no resident or spilled index"
            )
        if self._lru is None:
            self._ensure_lru(self._resolve_workers(None))
        started = time.perf_counter()
        index = self._lru.get(part)
        return index, time.perf_counter() - started

    # -- search ------------------------------------------------------------------

    def _require_fitted(self) -> None:
        if self.labels is None:
            raise RuntimeError("call fit() before searching")

    def restrict_to_parts(self, parts: Sequence[int]) -> None:
        """Host only the given partitions (a cluster worker's shard subset).

        Every hosted partition must be non-empty. Once restricted,
        searches fan out over the hosted partitions only, mutations may
        only target them, and the on-disk ``partitioned.json`` is never
        refreshed — a worker sees just its slice of the lake, so writing
        the shared manifest from that partial view would clobber the
        other workers' columns.
        """
        self._require_fitted()
        hosted = frozenset(int(p) for p in parts)
        if not hosted:
            raise ValueError("must host at least one partition")
        for part in sorted(hosted):
            if not (0 <= part < len(self.partition_columns)):
                raise KeyError(f"unknown partition {part}")
            if not self.partition_columns[part]:
                raise KeyError(f"partition {part} is empty (never indexed)")
        self.hosted_parts = hosted
        self._column_shard = None

    def _shards(
        self, parts: Optional[Sequence[int]] = None
    ) -> list[tuple[int, list[int]]]:
        """Non-empty (hosted) partitions as ``(partition id, global ids)``.

        ``parts`` further restricts one call to a subset of the hosted
        partitions — the cluster coordinator uses this to ask a worker
        for exactly the partitions routed to it, so replicated shards
        are answered exactly once across the cluster.
        """
        shards = [
            (part, globals_)
            for part, globals_ in enumerate(self.partition_columns)
            if globals_
        ]
        if self.hosted_parts is not None:
            shards = [s for s in shards if s[0] in self.hosted_parts]
        if parts is not None:
            want = {int(p) for p in parts}
            known = {s[0] for s in shards}
            unknown = sorted(want - known)
            if unknown:
                raise KeyError(f"partitions not hosted here: {unknown}")
            shards = [s for s in shards if s[0] in want]
            if not shards:
                raise ValueError("parts selects no partitions")
        return shards

    def _resolve_workers(self, override: Optional[int], n_shards: int = 0) -> int:
        workers = override if override is not None else self.max_workers
        if workers is None:
            workers = DEFAULT_SHARD_WORKERS
        if n_shards:
            workers = min(workers, n_shards)
        return max(1, workers)

    def search_many(
        self,
        queries: Sequence[np.ndarray],
        tau: Union[float, Sequence[float]],
        joinability: Union[float, int, Sequence[Union[float, int]]],
        flags: Optional[AblationFlags] = None,
        exact_counts: bool = False,
        max_workers: Optional[int] = None,
        parts: Optional[Sequence[int]] = None,
        ef_search: Optional[int] = None,
    ) -> BatchResult:
        """Answer many query columns over every shard in one pass.

        Each shard runs the batch engine over the *whole* query list
        (shared pivot mapping / HG_Q / blocking per τ group) and shards
        fan out over a thread pool. Results carry global column IDs and
        are bit-identical to a single index over the union of the shards
        (per-query hits, match counts and joinabilities — the engine's
        exactness guarantee composes with the disjoint-shard merge).

        Loading time of spilled partitions is recorded in the stats'
        ``shard_load_seconds``, matching the paper's protocol ("the
        search time includes the overhead of loading the data from
        disks").

        Args:
            queries: query columns, each ``(|Q_i|, dim)``.
            tau: scalar or per-query distance thresholds.
            joinability: scalar or per-query T (fraction or count).
            flags: ablation switches applied to every query.
            exact_counts: disable early termination.
            max_workers: shard fan-out width for this call; defaults to
                the constructor's ``max_workers``.
            parts: restrict this call to a subset of the (hosted)
                partitions; ``None`` searches them all.
            ef_search: opt-in ANN candidate beam width (see
                :mod:`repro.core.ann`); each shard nominates candidates
                from its own column graph and verifies them exactly.
                ``None`` (default) runs the exact pipeline.

        Returns:
            A :class:`~repro.core.engine.BatchResult` aligned with
            ``queries``; hits carry global column IDs.
        """
        self._require_fitted()
        started = time.perf_counter()
        if len(queries) == 0:
            return BatchResult(results=[], stats=SearchStats(), wall_seconds=0.0)
        shards = self._shards(parts)
        workers = self._resolve_workers(max_workers, len(shards))
        self._ensure_lru(workers)

        def run_shard(part: int) -> BatchResult:
            index, load_seconds = self._get_index(part)
            engine = BatchSearch(index, flags=flags, exact_counts=exact_counts)
            batch = engine.search_many(
                queries, tau, joinability,
                allowed_columns=candidate_lists(index, queries, ef_search),
            )
            batch.stats.shard_load_seconds += load_seconds
            batch.stats.stage_seconds.add("shard_load", load_seconds)
            return batch

        if workers == 1 or len(shards) == 1:
            batches = [run_shard(part) for part, _ in shards]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                batches = list(pool.map(run_shard, [part for part, _ in shards]))
        merge_started = time.perf_counter()
        merged = merge_shard_batches(batches, [globals_ for _, globals_ in shards])
        merged.stats.stage_seconds.add(
            "merge", time.perf_counter() - merge_started
        )
        merged.wall_seconds = time.perf_counter() - started
        return merged

    def search(
        self,
        query_vectors: np.ndarray,
        tau: float,
        joinability: float | int,
        flags: Optional[AblationFlags] = None,
        exact_counts: bool = False,
        max_workers: Optional[int] = None,
        parts: Optional[Sequence[int]] = None,
        ef_search: Optional[int] = None,
    ) -> SearchResult:
        """Single-query convenience wrapper around :meth:`search_many`.

        The returned stats aggregate the whole fan-out (per-shard
        blocking, verification and disk loads).
        """
        batch = self.search_many(
            [query_vectors],
            tau,
            joinability,
            flags=flags,
            exact_counts=exact_counts,
            max_workers=max_workers,
            parts=parts,
            ef_search=ef_search,
        )
        result = batch.results[0]
        return SearchResult(
            joinable=result.joinable,
            stats=batch.stats,
            tau=result.tau,
            t_count=result.t_count,
            query_size=result.query_size,
        )

    def topk(
        self,
        query_vectors: np.ndarray,
        tau: float,
        k: int,
        max_workers: Optional[int] = None,
        parts: Optional[Sequence[int]] = None,
        theta: int = 0,
    ) -> TopKResult:
        """Exact top-k columns by joinability across all shards.

        Shards are processed in waves of ``max_workers``; every wave
        passes the running global k-th-best count into each shard's
        :func:`~repro.core.topk.pexeso_topk` as the ``theta`` floor, so
        later shards abandon columns that provably cannot enter the
        global top-k. Because the floor is strict (ties survive) and
        each shard's local tie-break order equals the global one
        restricted to that shard, the merged result is identical to
        single-index top-k over the union of the shards.

        Args:
            parts: restrict this call to a subset of the (hosted)
                partitions.
            theta: external lower bound on the global k-th best count —
                the cluster coordinator threads its running k-th best
                through here so one worker's shards prune against the
                other workers' earlier waves. ``0`` disables the seed
                floor; the floor stays strict, so ID tie-breaks are
                preserved.
        """
        self._require_fitted()
        if k < 1:
            raise ValueError("k must be at least 1")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        query = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
        if query.shape[0] == 0:
            raise ValueError("query column is empty")
        shards = self._shards(parts)
        workers = self._resolve_workers(max_workers, len(shards))
        self._ensure_lru(workers)

        merged_stats = SearchStats()
        best: list[tuple[int, int, float]] = []  # (global id, count, joinability)
        theta = int(theta)

        def run_shard(item: tuple[int, list[int]]):
            part, globals_ = item
            index, load_seconds = self._get_index(part)
            local = pexeso_topk(index, query, tau, k, theta=theta)
            local.stats.shard_load_seconds += load_seconds
            local.stats.stage_seconds.add("shard_load", load_seconds)
            return local, globals_

        for at in range(0, len(shards), workers):
            wave = shards[at : at + workers]
            if len(wave) == 1 or workers == 1:
                outputs = [run_shard(item) for item in wave]
            else:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    outputs = list(pool.map(run_shard, wave))
            for local, globals_ in outputs:
                merged_stats.merge(local.stats)
                best.extend(
                    (int(globals_[cid]), count, jn) for cid, count, jn in local.hits
                )
            # Global order: count desc, column ID asc; only the k best
            # can ever matter, and the k-th best count is the theta floor
            # the next wave prunes against.
            best.sort(key=lambda row: (-row[1], row[0]))
            del best[k:]
            if len(best) == k:
                # max(): an externally seeded floor may exceed the local
                # k-th best (it reflects other workers' shards too) and
                # must never be lowered — lowering only costs pruning,
                # but the stronger bound is already proven sound.
                theta = max(theta, best[-1][1])
        return TopKResult(
            hits=best, stats=merged_stats, tau=float(tau), k=min(k, self.n_columns)
        )

    # -- incremental maintenance (§III-E over shards) ------------------------------

    def _ensure_column_shard(self) -> dict[int, tuple[int, int]]:
        """Build (or reuse) the live ``global id -> (partition, local id)`` map.

        A parts-restricted lake maps only the columns of its hosted
        partitions — a worker can neither search nor mutate columns it
        does not hold.
        """
        if self._column_shard is None:
            self._column_shard = {
                cid: (part, local)
                for part, globals_ in enumerate(self.partition_columns)
                for local, cid in enumerate(globals_)
                if cid >= 0
                and cid not in self._deleted_ids
                and (self.hosted_parts is None or part in self.hosted_parts)
            }
        return self._column_shard

    def _ensure_next_gid(self) -> None:
        if self._next_gid is None:
            self._next_gid = (
                max(
                    (cid for g in self.partition_columns for cid in g if cid >= 0),
                    default=-1,
                )
                + 1
            )

    def _next_global_id(self) -> int:
        self._ensure_next_gid()
        gid = self._next_gid
        self._next_gid += 1
        return gid

    def _mutable_index(self, part: int) -> PexesoIndex:
        """The shard's index, loaded if spilled (mutations re-spill it)."""
        if part in self._resident:
            return self._resident[part]
        index, _ = self._get_index(part)
        return index

    def _after_mutation(self, part: int, index: PexesoIndex) -> None:
        """Re-spill a mutated shard and refresh caches + manifest."""
        if part in self._spilled:
            self._spill(part, index)
            if self._lru is not None:
                self._lru.put(part, index)
        self._refresh_manifest()

    def _refresh_manifest(self) -> None:
        """Keep an on-disk ``partitioned.json`` consistent after mutations.

        Only the mutable parts (labels, local->global maps, deleted ids)
        are rewritten; a lake that was never saved as a partitioned
        directory has no manifest and nothing to refresh. A
        parts-restricted lake (a cluster worker's subset) never writes
        the manifest: its view of the other partitions is partial and
        possibly stale, and the cluster coordinator owns that metadata
        (``cluster.json``).
        """
        if self.spill_dir is None or self.hosted_parts is not None:
            return
        manifest_path = self.spill_dir / "partitioned.json"
        if not manifest_path.exists():
            return
        import json

        from repro.core.atomic import atomic_write_text
        from repro.core.persistence import mutable_manifest_fields

        manifest = json.loads(manifest_path.read_text())
        manifest.update(mutable_manifest_fields(self))
        atomic_write_text(manifest_path, json.dumps(manifest, indent=2))

    def add_column(
        self,
        vectors: np.ndarray,
        part: Optional[int] = None,
        column_id: Optional[int] = None,
    ) -> int:
        """Append one column to the lake and return its global column ID.

        The column joins the least-loaded non-empty partition (empty
        partitions never got an index at fit time), whose
        :meth:`~repro.core.index.PexesoIndex.add_column` does the §III-E
        incremental insert. A spilled shard is loaded, mutated, written
        back and its LRU slot replaced, so later searches see the new
        column no matter which path fetches the shard. Callers running
        concurrent searches must serialize mutations against them (the
        serving layer's :class:`~repro.serve.service.QueryService` does
        this with a reader-writer lock).

        Args:
            part: place the column in this (hosted, non-empty) partition
                instead of the least-loaded one. The cluster coordinator
                uses this to route the same add to every replica of one
                partition.
            column_id: use this global ID instead of allocating the next
                one — again for the coordinator, which allocates IDs
                cluster-wide so replicas agree. Must be unused.

        Raises:
            KeyError: when ``part`` is not a hosted non-empty partition.
            ValueError: when ``column_id`` is already in use.
        """
        self._require_fitted()
        shards = self._shards()
        if not shards:
            raise RuntimeError("lake has no non-empty partition to extend")
        if part is None:
            live: dict[int, int] = {p: 0 for p, _ in shards}
            for gid, (p, _) in self._ensure_column_shard().items():
                live[p] = live.get(p, 0) + 1
            part = min(shards, key=lambda s: (live.get(s[0], 0), s[0]))[0]
        else:
            part = int(part)
            if part not in {p for p, _ in shards}:
                raise KeyError(f"partition {part} is not hosted by this lake")
        # Resolve the global ID *before* mutating the shard index so a
        # rejected explicit ID leaves the lake untouched.
        if column_id is None:
            gid = self._next_global_id()
        else:
            gid = int(column_id)
            if gid < 0:
                raise ValueError("column_id must be non-negative")
            existing = self._ensure_column_shard().get(gid)
            if existing is not None:
                # Idempotent replay of a replicated write-through: the
                # coordinator (or its client's transport retry after a
                # lost reply) may deliver the same (partition, id,
                # vectors) twice; the second delivery must be a no-op,
                # not an error that poisons the replica.
                if existing[0] == part and np.array_equal(
                    self.column_vectors(gid),
                    np.atleast_2d(np.asarray(vectors, dtype=np.float64)),
                ):
                    return gid
                raise ValueError(f"column id {gid} is already in use")
            if gid in self._deleted_ids or any(
                gid in g for g in self.partition_columns
            ):
                raise ValueError(f"column id {gid} is already in use")
            self._ensure_next_gid()
            self._next_gid = max(self._next_gid, gid + 1)

        index = self._mutable_index(part)
        local = index.add_column(vectors)
        cols = self.partition_columns[part]
        while len(cols) < local:  # keep positional local-id alignment
            cols.append(-1)
        cols.append(gid)
        self.labels = np.append(self.labels, part)
        if self._column_shard is not None:
            self._column_shard[gid] = (part, local)
        self._after_mutation(part, index)
        return gid

    def delete_column(self, column_id: int) -> None:
        """Remove one column (by global ID) from its shard's postings.

        The global ID keeps its tombstoned slot in ``partition_columns``
        so every other column's local->global mapping is untouched; IDs
        are never reused.

        Raises:
            KeyError: when ``column_id`` is unknown or already deleted.
        """
        self._require_fitted()
        mapping = self._ensure_column_shard()
        if column_id not in mapping:
            raise KeyError(f"unknown column id {column_id}")
        part, local = mapping[column_id]
        index = self._mutable_index(part)
        index.delete_column(local)
        self._deleted_ids.add(int(column_id))
        del mapping[column_id]
        self._after_mutation(part, index)

    def has_column(self, column_id: int) -> bool:
        """Whether a global column ID is live (indexed and not deleted)."""
        if self.labels is None:
            return False
        return column_id in self._ensure_column_shard()

    @property
    def n_columns(self) -> int:
        if self.labels is None:
            return 0
        if self.hosted_parts is not None:
            return len(self._ensure_column_shard())
        return int(self.labels.size) - len(self._deleted_ids)

    def lru_info(self) -> dict[str, int]:
        """Shard residency telemetry for the serving layer's ``/metrics``."""
        info = {
            "resident": len(self._resident),
            "spilled": len(self._spilled),
            "lru_size": 0,
            "lru_capacity": 0,
            "lru_hits": 0,
            "lru_misses": 0,
        }
        lru = self._lru
        if lru is not None:
            info.update(
                lru_size=len(lru),
                lru_capacity=lru.capacity,
                lru_hits=lru.hits,
                lru_misses=lru.misses,
            )
        return info

    def column_vectors(self, column_id: int) -> np.ndarray:
        """Original vectors of one column, fetched from its shard.

        Spilled shards come through the LRU, so repeated lookups stay
        disk-cheap without unbounding resident memory.

        Raises:
            KeyError: when no shard holds ``column_id``.
        """
        self._require_fitted()
        mapping = self._ensure_column_shard()
        if column_id not in mapping:
            raise KeyError(f"unknown column id {column_id}")
        part, local = mapping[column_id]
        index, _ = self._get_index(part)
        return index.vectors[index.column_rows[local]]

    def memory_bytes(self) -> int:
        """Footprint of resident indexes (spilled shards count only while
        they sit in the LRU)."""
        total = sum(index.memory_bytes() for index in self._resident.values())
        if self._lru is not None:
            total += sum(index.memory_bytes() for index in self._lru.resident())
        return total


class LakeSearcher:
    """One dispatch surface over a single index or a partitioned lake.

    The production entry point: callers pick a scale (``n_partitions``,
    ``spill_dir``, ``max_workers``) at build time and the search API
    stays the same — ``search`` one query, ``search_many`` a batch,
    ``topk`` a ranked discovery — with identical results on every
    backend (the differential-oracle suite pins this down).

    Args:
        backend: a built :class:`~repro.core.index.PexesoIndex` or
            :class:`PartitionedPexeso`.
        flags: default ablation switches for threshold searches.
        max_workers: default worker-pool width (per-τ engine groups on a
            single index; shard fan-out on a partitioned lake).
        record_batch_sizes: append each ``search_many`` fan-in size to
            the batch stats' ``coalesced_batch_sizes`` (the serving
            layer's coalescing telemetry).
    """

    def __init__(
        self,
        backend: Union[PexesoIndex, PartitionedPexeso],
        flags: Optional[AblationFlags] = None,
        max_workers: Optional[int] = None,
        record_batch_sizes: bool = False,
    ):
        if isinstance(backend, PexesoIndex):
            if backend.pivot_space is None or backend.grid is None:
                raise RuntimeError("index is not built; call fit() first")
        elif isinstance(backend, PartitionedPexeso):
            if backend.labels is None:
                raise RuntimeError("partitioned lake is not fitted")
        else:
            raise TypeError(
                f"backend must be a PexesoIndex or PartitionedPexeso, "
                f"got {type(backend).__name__}"
            )
        self.backend = backend
        self.flags = flags
        self.max_workers = max_workers
        self.record_batch_sizes = record_batch_sizes

    @classmethod
    def build(
        cls,
        columns: Sequence[np.ndarray],
        metric: Optional[Metric] = None,
        n_pivots: int = 5,
        levels: int = 4,
        pivot_method: str = "pca",
        seed: int = 0,
        n_partitions: int = 1,
        partitioner: str = "jsd",
        spill_dir: Optional[str | Path] = None,
        kmeans_iters: int = 10,
        max_workers: Optional[int] = None,
        flags: Optional[AblationFlags] = None,
    ) -> "LakeSearcher":
        """Build the right backend for the requested scale.

        ``n_partitions <= 1`` with no ``spill_dir`` builds one in-memory
        :class:`~repro.core.index.PexesoIndex`; anything else builds a
        :class:`PartitionedPexeso`.
        """
        if n_partitions <= 1 and spill_dir is None:
            backend: Union[PexesoIndex, PartitionedPexeso] = PexesoIndex.build(
                columns,
                metric=metric,
                n_pivots=n_pivots,
                levels=levels,
                pivot_method=pivot_method,
                seed=seed,
            )
        else:
            backend = PartitionedPexeso(
                metric=metric,
                n_pivots=n_pivots,
                levels=levels,
                pivot_method=pivot_method,
                seed=seed,
                n_partitions=max(1, n_partitions),
                partitioner=partitioner,
                spill_dir=spill_dir,
                kmeans_iters=kmeans_iters,
                max_workers=max_workers,
            ).fit(columns)
        return cls(backend, flags=flags, max_workers=max_workers)

    # -- dispatch ----------------------------------------------------------------

    @property
    def is_partitioned(self) -> bool:
        return isinstance(self.backend, PartitionedPexeso)

    @property
    def index(self) -> Optional[PexesoIndex]:
        """The single-index backend, or ``None`` when partitioned."""
        return self.backend if isinstance(self.backend, PexesoIndex) else None

    @property
    def n_columns(self) -> int:
        return self.backend.n_columns

    def search(
        self,
        query_vectors: np.ndarray,
        tau: float,
        joinability: float | int,
        flags: Optional[AblationFlags] = None,
        exact_counts: bool = False,
        max_workers: Optional[int] = None,
        parts: Optional[Sequence[int]] = None,
        ef_search: Optional[int] = None,
    ) -> SearchResult:
        """Threshold search for one query column (global column IDs).

        ``ef_search`` opts into the ANN candidate tier (see
        :mod:`repro.core.ann`): candidates nominated by the column graph
        still pass the exact verifier, so every hit is a true hit —
        only recall is approximate. ``None`` (default) stays exact.
        """
        flags = flags if flags is not None else self.flags
        workers = max_workers if max_workers is not None else self.max_workers
        if isinstance(self.backend, PexesoIndex):
            self._reject_parts(parts)
            allowed = candidate_lists(self.backend, [query_vectors], ef_search)
            return pexeso_search(
                self.backend, query_vectors, tau, joinability,
                flags=flags, exact_counts=exact_counts,
                allowed_columns=(
                    frozenset(allowed[0].tolist()) if allowed is not None else None
                ),
            )
        return self.backend.search(
            query_vectors, tau, joinability,
            flags=flags, exact_counts=exact_counts, max_workers=workers,
            parts=parts, ef_search=ef_search,
        )

    def search_many(
        self,
        queries: Sequence[np.ndarray],
        tau: Union[float, Sequence[float]],
        joinability: Union[float, int, Sequence[Union[float, int]]],
        flags: Optional[AblationFlags] = None,
        exact_counts: bool = False,
        max_workers: Optional[int] = None,
        parts: Optional[Sequence[int]] = None,
        ef_search: Optional[int] = None,
    ) -> BatchResult:
        """Batch threshold search (global column IDs).

        ``ef_search`` applies the ANN candidate tier to every query in
        the batch (``None`` = exact; see :meth:`search`).
        """
        flags = flags if flags is not None else self.flags
        workers = max_workers if max_workers is not None else self.max_workers
        if isinstance(self.backend, PexesoIndex):
            self._reject_parts(parts)
            engine = BatchSearch(
                self.backend, flags=flags, exact_counts=exact_counts,
                max_workers=workers,
                record_batch_sizes=self.record_batch_sizes,
            )
            return engine.search_many(
                queries, tau, joinability,
                allowed_columns=candidate_lists(self.backend, queries, ef_search),
            )
        batch = self.backend.search_many(
            queries, tau, joinability,
            flags=flags, exact_counts=exact_counts, max_workers=workers,
            parts=parts, ef_search=ef_search,
        )
        if self.record_batch_sizes and len(queries):
            batch.stats.coalesced_batch_sizes.append(len(queries))
        return batch

    def topk(
        self,
        query_vectors: np.ndarray,
        tau: float,
        k: int,
        max_workers: Optional[int] = None,
        parts: Optional[Sequence[int]] = None,
        theta: int = 0,
    ) -> TopKResult:
        """Exact top-k discovery (global column IDs).

        ``theta`` seeds the k-th-best pruning floor (see
        :meth:`PartitionedPexeso.topk`); the floor is strict, so results
        never change — only the amount of pruning does.
        """
        workers = max_workers if max_workers is not None else self.max_workers
        if isinstance(self.backend, PexesoIndex):
            self._reject_parts(parts)
            return pexeso_topk(self.backend, query_vectors, tau, k, theta=theta)
        return self.backend.topk(
            query_vectors, tau, k, max_workers=workers, parts=parts, theta=theta
        )

    @staticmethod
    def _reject_parts(parts: Optional[Sequence[int]]) -> None:
        if parts is not None:
            raise ValueError(
                "a partition restriction needs a partitioned backend; "
                "this searcher wraps a single in-memory index"
            )

    def column_vectors(self, column_id: int) -> np.ndarray:
        """Original vectors of one indexed column (any backend)."""
        if isinstance(self.backend, PexesoIndex):
            return self.backend.vectors[self.backend.column_rows[column_id]]
        return self.backend.column_vectors(column_id)

    # -- incremental maintenance ---------------------------------------------------

    def add_column(
        self,
        vectors: np.ndarray,
        part: Optional[int] = None,
        column_id: Optional[int] = None,
    ) -> int:
        """Append one column (§III-E) on either backend; returns its ID.

        ``part`` / ``column_id`` give explicit placement and a
        cluster-allocated global ID on a partitioned backend (see
        :meth:`PartitionedPexeso.add_column`); a single index rejects
        them.

        Not safe to run concurrently with searches — serialize through a
        writer lock (as :class:`~repro.serve.service.QueryService` does).
        """
        if isinstance(self.backend, PexesoIndex):
            if part is not None or column_id is not None:
                raise ValueError(
                    "explicit placement needs a partitioned backend"
                )
            return self.backend.add_column(vectors)
        return self.backend.add_column(vectors, part=part, column_id=column_id)

    def delete_column(self, column_id: int) -> None:
        """Remove one column from the lake (same concurrency caveat)."""
        self.backend.delete_column(column_id)

    def has_column(self, column_id: int) -> bool:
        """Whether ``column_id`` is live on the backend."""
        if isinstance(self.backend, PexesoIndex):
            return column_id in self.backend.column_rows
        return self.backend.has_column(column_id)

    def memory_bytes(self) -> int:
        return self.backend.memory_bytes()
