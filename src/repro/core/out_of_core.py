"""Out-of-core joinable table search over partitioned data lakes (§IV).

When the repository does not fit in memory, the columns are partitioned
(by default with the JSD clustering of :mod:`repro.core.partition`), one
:class:`~repro.core.index.PexesoIndex` is built per partition, and each
partition is (optionally) spilled to disk in the array-native
:mod:`~repro.core.persistence` format (one ``.npz`` per partition — no
pickling, and loading is a handful of array reads instead of
reconstructing a Python object graph). A search loads one partition at a
time, queries it, remaps local column IDs back to global ones and merges
the results — exactly the single-PEXESO-per-partition scheme the paper
describes.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.core.index import PexesoIndex
from repro.core.metric import METRIC_REGISTRY, Metric
from repro.core.persistence import load_index, save_index
from repro.core.partition import (
    average_kmeans_partition,
    jsd_kmeans_partition,
    random_partition,
)
from repro.core.search import AblationFlags, JoinableColumn, SearchResult, pexeso_search
from repro.core.stats import SearchStats

PARTITIONERS = {
    "jsd": "JSD histogram k-means (paper §IV)",
    "average-kmeans": "k-means over column mean vectors (Fig. 7b baseline)",
    "random": "uniform random assignment (Fig. 7b baseline)",
}


class PartitionedPexeso:
    """A data lake split into per-partition PEXESO indexes.

    Args:
        n_partitions: number of partitions (paper uses 10 for LWDC).
        partitioner: ``jsd`` | ``average-kmeans`` | ``random``.
        spill_dir: when given, partition indexes are written here (one
            array-native index directory each) and only one is resident
            in memory at a time (the out-of-core mode); when ``None``
            all partitions stay in memory.
        kmeans_iters: the clustering iteration bound ``t``.
        Remaining arguments configure each partition's
        :class:`~repro.core.index.PexesoIndex`.
    """

    def __init__(
        self,
        metric: Optional[Metric] = None,
        n_pivots: int = 5,
        levels: int = 4,
        pivot_method: str = "pca",
        seed: int = 0,
        n_partitions: int = 4,
        partitioner: str = "jsd",
        spill_dir: Optional[str | Path] = None,
        kmeans_iters: int = 10,
    ):
        if partitioner not in PARTITIONERS:
            known = ", ".join(sorted(PARTITIONERS))
            raise KeyError(f"unknown partitioner {partitioner!r}; known: {known}")
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.metric = metric
        self.n_pivots = n_pivots
        self.levels = levels
        self.pivot_method = pivot_method
        self.seed = seed
        self.n_partitions = n_partitions
        self.partitioner = partitioner
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.kmeans_iters = kmeans_iters

        #: partition label of every global column
        self.labels: Optional[np.ndarray] = None
        #: per partition: list of global column ids in local-id order
        self.partition_columns: list[list[int]] = []
        self._resident: dict[int, PexesoIndex] = {}
        self._spilled: dict[int, Path] = {}

    # -- construction ------------------------------------------------------------

    def fit(self, columns: Sequence[np.ndarray]) -> "PartitionedPexeso":
        """Partition ``columns`` and build one index per partition."""
        if not columns:
            raise ValueError("cannot build over zero columns")
        rng = np.random.default_rng(self.seed)
        k = min(self.n_partitions, len(columns))
        if self.partitioner == "jsd":
            labels = jsd_kmeans_partition(columns, k, n_iter=self.kmeans_iters, rng=rng)
        elif self.partitioner == "average-kmeans":
            labels = average_kmeans_partition(columns, k, n_iter=self.kmeans_iters, rng=rng)
        else:
            labels = random_partition(len(columns), k, rng=rng)
        self.labels = np.asarray(labels, dtype=np.intp)

        self.partition_columns = []
        self._resident.clear()
        self._spilled.clear()
        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)

        for part in range(k):
            globals_ = [i for i in range(len(columns)) if self.labels[i] == part]
            if not globals_:
                self.partition_columns.append([])
                continue
            index = PexesoIndex.build(
                [columns[i] for i in globals_],
                metric=self.metric,
                n_pivots=self.n_pivots,
                levels=self.levels,
                pivot_method=self.pivot_method,
                seed=self.seed + part,
            )
            self.partition_columns.append(globals_)
            if self.spill_dir is not None:
                self._spill(part, index)
            else:
                self._resident[part] = index
        return self

    def _spill(self, part: int, index: PexesoIndex) -> None:
        """Write one partition to disk in the array-native format.

        The ``.npz`` format reconstructs the metric from its registry
        name, so an unregistered custom :class:`~repro.core.metric.Metric`
        instance falls back to the seed's pickle spill (slower to load,
        but it round-trips arbitrary metric objects).
        """
        if type(index.metric) in METRIC_REGISTRY.values():
            self._spilled[part] = save_index(index, self.spill_dir / f"partition_{part}")
        else:
            path = self.spill_dir / f"partition_{part}.pkl"
            with open(path, "wb") as fh:
                pickle.dump(index, fh, protocol=pickle.HIGHEST_PROTOCOL)
            self._spilled[part] = path

    def _load(self, part: int) -> Optional[PexesoIndex]:
        """Fetch one partition's index (from memory or disk)."""
        if part in self._resident:
            return self._resident[part]
        path = self._spilled.get(part)
        if path is None:
            return None
        if path.suffix == ".pkl":
            with open(path, "rb") as fh:
                return pickle.load(fh)
        return load_index(path)

    # -- search ------------------------------------------------------------------

    def search(
        self,
        query_vectors: np.ndarray,
        tau: float,
        joinability: float | int,
        flags: Optional[AblationFlags] = None,
        exact_counts: bool = False,
    ) -> SearchResult:
        """Search every partition in turn and merge the results.

        Loading time of spilled partitions is included in the reported
        stats' verification time budget, matching the paper's protocol
        ("the search time includes the overhead of loading the data from
        disks").
        """
        if self.labels is None:
            raise RuntimeError("call fit() before search()")
        merged_stats = SearchStats()
        hits: list[JoinableColumn] = []
        tau_val = float(tau)
        t_count = 0
        query_size = int(np.atleast_2d(query_vectors).shape[0])
        for part, globals_ in enumerate(self.partition_columns):
            if not globals_:
                continue
            index = self._load(part)
            if index is None:
                continue
            result = pexeso_search(
                index,
                query_vectors,
                tau_val,
                joinability,
                flags=flags,
                exact_counts=exact_counts,
            )
            t_count = result.t_count
            merged_stats.merge(result.stats)
            for hit in result.joinable:
                hits.append(
                    JoinableColumn(
                        column_id=globals_[hit.column_id],
                        match_count=hit.match_count,
                        joinability=hit.joinability,
                        exact_count=hit.exact_count,
                    )
                )
        hits.sort()
        return SearchResult(
            joinable=hits,
            stats=merged_stats,
            tau=tau_val,
            t_count=t_count,
            query_size=query_size,
        )

    @property
    def n_columns(self) -> int:
        return 0 if self.labels is None else int(self.labels.size)

    def memory_bytes(self) -> int:
        """Footprint of resident indexes only (spilled partitions cost disk)."""
        return sum(index.memory_bytes() for index in self._resident.values())
