"""Joinable-column search — Algorithm 3 (paper §III-E).

:func:`pexeso_search` assembles the pipeline: map the query column into
the pivot space, build ``HG_Q``, quick-browse aligned leaf cells, run
Algorithm 1 (blocking) and Algorithm 2 (verification), and return the
joinable columns. The :class:`AblationFlags` switches reproduce the
paper's Fig. 9 ablation (each lemma group can be disabled without
affecting exactness — only performance).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.core.blocker import block
from repro.core.grid import HierarchicalGrid
from repro.core.index import PexesoIndex
from repro.core.stats import SearchStats
from repro.core.thresholds import joinability_count
from repro.core.verifier import verify


@dataclass(frozen=True)
class AblationFlags:
    """Feature switches for the Fig. 9 ablation study.

    All default to on (full PEXESO). Disabling a lemma never changes the
    result set — only how much work is needed to compute it.
    """

    lemma1: bool = True  #: point-level pivot filtering in verification
    lemma2: bool = True  #: point-level pivot matching in verification
    lemma34: bool = True  #: vector-cell and cell-cell filtering in blocking
    lemma56: bool = True  #: vector-cell and cell-cell matching in blocking
    lemma7: bool = True  #: mismatch-bound early termination
    quick_browsing: bool = True
    early_accept: bool = True

    @classmethod
    def none(cls) -> "AblationFlags":
        """Everything off — degenerates to a near-exhaustive scan."""
        return cls(False, False, False, False, False, False, False)


#: named ablation configurations matching Fig. 9's series
ABLATIONS = {
    "ALL": AblationFlags(),
    "No-Lem1": AblationFlags(lemma1=False),
    "No-Lem2": AblationFlags(lemma2=False),
    "No-Lem3&4": AblationFlags(lemma34=False),
    "No-Lem5&6": AblationFlags(lemma56=False),
}


@dataclass
class JoinableColumn:
    """One search hit.

    ``match_count`` is the joinability numerator; under early termination
    it is a lower bound that is guaranteed to be >= the threshold count.
    """

    column_id: int
    match_count: int
    joinability: float
    exact_count: bool

    def __lt__(self, other: "JoinableColumn") -> bool:
        return self.column_id < other.column_id


@dataclass
class SearchResult:
    """Joinable columns plus the instrumentation of the run."""

    joinable: list[JoinableColumn]
    stats: SearchStats
    tau: float
    t_count: int
    query_size: int

    @property
    def column_ids(self) -> list[int]:
        return [hit.column_id for hit in self.joinable]

    def __len__(self) -> int:
        return len(self.joinable)


def pexeso_search(
    index: PexesoIndex,
    query_vectors: np.ndarray,
    tau: float,
    joinability: float | int,
    flags: Optional[AblationFlags] = None,
    exact_counts: bool = False,
    stats: Optional[SearchStats] = None,
    allowed_columns: Optional[frozenset] = None,
) -> SearchResult:
    """Find every indexed column joinable to the query column (Alg. 3).

    Args:
        index: a built :class:`~repro.core.index.PexesoIndex`.
        query_vectors: ``(|Q|, dim)`` query column embeddings (unit
            normalised, same embedder as the repository).
        tau: distance threshold in original-space units (use
            :func:`repro.core.thresholds.distance_threshold` to convert a
            ratio).
        joinability: T as a fraction of |Q| in ``(0, 1]`` or an absolute
            match count.
        flags: ablation switches; defaults to full PEXESO.
        exact_counts: disable early termination so reported match counts
            are exact (slower; used by tests and the effectiveness study).
        stats: optional counter object to accumulate into.
        allowed_columns: optional ANN candidate restriction (see
            :mod:`repro.core.ann`) — only these columns are verified and
            eligible as hits; their results are bit-identical to the
            unrestricted search.

    Returns:
        A :class:`SearchResult` with hits sorted by column ID.
    """
    if index.pivot_space is None or index.grid is None:
        raise RuntimeError("index is not built; call fit() first")
    flags = flags if flags is not None else AblationFlags()
    stats = stats if stats is not None else SearchStats()

    query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
    if query_vectors.shape[0] == 0:
        raise ValueError("query column is empty")
    if query_vectors.shape[1] != index.dim:
        raise ValueError(
            f"query dim {query_vectors.shape[1]} != index dim {index.dim}"
        )
    if not np.isfinite(query_vectors).all():
        raise ValueError("query contains NaN or infinite values")
    if tau < 0:
        raise ValueError("tau must be non-negative")
    t_count = joinability_count(joinability, query_vectors.shape[0])

    # Algorithm 3 line 1: pivot-map the query and build HG_Q.
    query_mapped = index.pivot_space.map_vectors(query_vectors)
    stats.pivot_mapping_distances += query_mapped.size
    hg_q = HierarchicalGrid.build(
        query_mapped,
        levels=index.levels,
        extent=index.pivot_space.extent,
        store_members=True,
    )

    # Lines 2-4: quick browsing + blocking.
    block_result = block(
        hg_q,
        index.grid,
        query_mapped,
        tau,
        stats=stats,
        use_lemma34=flags.lemma34,
        use_lemma56=flags.lemma56,
        use_quick_browsing=flags.quick_browsing,
    )

    # Line 5: verification.
    verdict = verify(
        block_result,
        index.inverted,
        query_vectors,
        query_mapped,
        index.vectors,
        index.mapped,
        index.metric,
        tau,
        t_count,
        stats=stats,
        use_lemma1=flags.lemma1,
        use_lemma2=flags.lemma2,
        use_lemma7=flags.lemma7,
        early_accept=flags.early_accept,
        exact_counts=exact_counts,
        allowed_columns=allowed_columns,
    )

    n_q = query_vectors.shape[0]
    hits = [
        JoinableColumn(
            column_id=col,
            match_count=verdict.match_counts.get(col, 0),
            joinability=verdict.match_counts.get(col, 0) / n_q,
            exact_count=verdict.exact,
        )
        for col in sorted(verdict.joinable)
        if col in index.column_rows  # deleted columns never surface
    ]
    return SearchResult(
        joinable=hits, stats=stats, tau=tau, t_count=t_count, query_size=n_q
    )
