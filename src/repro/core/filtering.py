"""Geometric predicates of Lemmas 1–6 in the pivot space (paper §III-A/B).

All functions operate on *mapped* coordinates (distances to pivots). Cells
are axis-aligned boxes ``[lo, hi]``. The query regions are:

* ``SQR(q', τ)`` — the square region ``[q' - τ, q' + τ]``; any mapped
  vector outside it cannot match (Lemma 1).
* ``RQR(q', p_i, τ)`` — the per-pivot rectangle ``[0, τ - d(q, p_i)]`` in
  dimension i, unbounded elsewhere; any mapped vector inside it must match
  (Lemma 2). It exists only when ``τ - d(q, p_i) >= 0``.

Cell-level forms (Lemmas 3–6) reduce to interval arithmetic on cell boxes:

* Lemma 3 (vector-cell filter): ``c ∩ SQR(q', τ) = ∅``.
* Lemma 4 (cell-cell filter): ``c ∩ SQR(c_q.center, τ + c_q.len/2) = ∅``,
  equivalent to the boxes being farther than τ apart in some dimension.
* Lemma 5 (vector-cell match): ∃ pivot i with ``c.hi[i] + q'[i] <= τ``.
* Lemma 6 (cell-cell match): ∃ pivot i with ``c.hi[i] + c_q.hi[i] <= τ``,
  because the minimum RQR over the query cell has extent
  ``τ - max_q d(q, p_i) = τ - c_q.hi[i]``.

Functions are vectorised over batches of query vectors where it matters
for performance (the leaf level of Algorithm 1 and verification).
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels


# --------------------------------------------------------------------------
# Point-level predicates (Lemmas 1 and 2)
# --------------------------------------------------------------------------

def lemma1_filter_mask(
    x_mapped: np.ndarray, q_mapped: np.ndarray, tau: float
) -> np.ndarray:
    """Boolean mask over rows of ``x_mapped`` that Lemma 1 *prunes*.

    A target vector is pruned when any pivot coordinate lies outside
    ``[q'_i - τ, q'_i + τ]``. ``q_mapped`` is one mapped query vector, or
    a row-aligned batch of them (one query row per target row — the batch
    engine's pair form). Dispatches to the active kernel backend
    (:mod:`repro.core.kernels`); all backends are bit-identical.
    """
    x_mapped = np.atleast_2d(x_mapped)
    q_mapped = np.asarray(q_mapped)
    if q_mapped.ndim == 1:
        q_mapped = q_mapped[None, :]
    return kernels.lemma1_pair_mask(x_mapped, q_mapped, tau)


def lemma2_match_mask(
    x_mapped: np.ndarray, q_mapped: np.ndarray, tau: float
) -> np.ndarray:
    """Boolean mask over rows of ``x_mapped`` that Lemma 2 *accepts*.

    A target vector surely matches when some pivot i satisfies
    ``d(x, p_i) + d(q, p_i) <= τ``. ``q_mapped`` is one mapped query
    vector or a row-aligned batch (see :func:`lemma1_filter_mask`).
    """
    x_mapped = np.atleast_2d(x_mapped)
    q_mapped = np.asarray(q_mapped)
    if q_mapped.ndim == 1:
        q_mapped = q_mapped[None, :]
    return kernels.lemma2_pair_mask(x_mapped, q_mapped, tau)


# --------------------------------------------------------------------------
# Vector-vs-cell predicates (Lemmas 3 and 5)
# --------------------------------------------------------------------------

def lemma3_filter_vectors_vs_cell(
    q_mapped: np.ndarray, cell_lo: np.ndarray, cell_hi: np.ndarray, tau: float
) -> np.ndarray:
    """Mask over rows of ``q_mapped`` whose SQR misses the cell box entirely.

    ``True`` means the (query vector, cell) pair is pruned: no vector in
    the cell can match that query vector.
    """
    q_mapped = np.atleast_2d(q_mapped)
    misses = (cell_lo[None, :] > q_mapped + tau) | (cell_hi[None, :] < q_mapped - tau)
    return misses.any(axis=1)


def lemma5_match_vectors_vs_cell(
    q_mapped: np.ndarray, cell_hi: np.ndarray, tau: float
) -> np.ndarray:
    """Mask over rows of ``q_mapped`` for which the whole cell matches.

    The cell is inside ``RQR(q', p_i, τ)`` iff its upper corner satisfies
    ``cell_hi[i] <= τ - q'[i]`` for some pivot i (RQRs start at the origin,
    so the lower corner is always inside when the upper corner is).
    """
    q_mapped = np.atleast_2d(q_mapped)
    return ((cell_hi[None, :] + q_mapped) <= tau).any(axis=1)


# --------------------------------------------------------------------------
# Cell-vs-cell predicates (Lemmas 4 and 6)
# --------------------------------------------------------------------------

def lemma4_filter_cell_vs_cell(
    qcell_lo: np.ndarray,
    qcell_hi: np.ndarray,
    tcell_lo: np.ndarray,
    tcell_hi: np.ndarray,
    tau: float,
) -> bool:
    """True when the target cell can be pruned against the query cell.

    The dilated query region ``SQR(center, τ + len/2)`` is exactly the
    query cell box expanded by τ on every side, so the test is a box
    separation test with margin τ.
    """
    return bool(
        ((tcell_lo > qcell_hi + tau) | (tcell_hi < qcell_lo - tau)).any()
    )


def lemma6_match_cell_vs_cell(
    qcell_hi: np.ndarray, tcell_hi: np.ndarray, tau: float
) -> bool:
    """True when every vector pair across the two cells surely matches.

    The minimum rectangle query region over the query cell has, for pivot
    i, the extent ``τ - max_{q ∈ c_q} d(q, p_i) >= τ - qcell_hi[i]``; the
    target cell is fully inside it iff ``tcell_hi[i] + qcell_hi[i] <= τ``.
    """
    return bool(((tcell_hi + qcell_hi) <= tau).any())


# --------------------------------------------------------------------------
# Query-region helpers (used by the cost model and tests)
# --------------------------------------------------------------------------

def square_query_region(q_mapped: np.ndarray, tau: float) -> tuple[np.ndarray, np.ndarray]:
    """Bounds ``(lo, hi)`` of SQR(q', τ)."""
    q_mapped = np.asarray(q_mapped, dtype=np.float64)
    return q_mapped - tau, q_mapped + tau


def rectangle_query_regions(q_mapped: np.ndarray, tau: float) -> list[tuple[int, float]]:
    """Existing RQRs as ``(pivot index, extent)`` pairs.

    An RQR exists for pivot i only when ``τ - q'[i] >= 0``; its box is
    ``[0, τ - q'[i]]`` in dimension i and ``[0, ∞)`` elsewhere.
    """
    q_mapped = np.asarray(q_mapped, dtype=np.float64)
    extents = tau - q_mapped
    return [(int(i), float(extents[i])) for i in np.nonzero(extents >= 0.0)[0]]
