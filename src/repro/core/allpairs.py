"""All-pairs joinable-column discovery within one repository.

Data-lake curation needs the full joinability graph, not one query's
neighbourhood: for *every* indexed column, which other columns is it
joinable to? This runs Algorithm 3 with each column as the query
(§II-A's option 3 taken to the repository level) and assembles a
directed joinability graph — directed because ``jn`` is asymmetric
(§II-B).

The repository index is built once and reused across all |R| searches,
which is exactly the "index once, search many times" regime PEXESO's
related-work section argues indexing methods should support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.core.index import PexesoIndex
from repro.core.search import AblationFlags, pexeso_search
from repro.core.stats import SearchStats


@dataclass(frozen=True)
class JoinableEdge:
    """One directed edge of the joinability graph."""

    query_column: int
    target_column: int
    match_count: int
    joinability: float


@dataclass
class JoinabilityGraph:
    """All joinable (query, target) pairs at fixed thresholds."""

    edges: list[JoinableEdge]
    tau: float
    joinability: float
    stats: SearchStats

    def neighbours(self, column_id: int) -> list[JoinableEdge]:
        """Outgoing edges of one column."""
        return [e for e in self.edges if e.query_column == column_id]

    def undirected_pairs(self) -> set[tuple[int, int]]:
        """Unordered pairs joinable in at least one direction."""
        return {
            (min(e.query_column, e.target_column), max(e.query_column, e.target_column))
            for e in self.edges
        }

    def mutual_pairs(self) -> set[tuple[int, int]]:
        """Unordered pairs joinable in *both* directions."""
        directed = {(e.query_column, e.target_column) for e in self.edges}
        return {
            (a, b)
            for a, b in directed
            if a < b and (b, a) in directed
        }

    def __len__(self) -> int:
        return len(self.edges)

    def to_networkx(self, directed: bool = True):
        """Export as a networkx graph for curation analytics.

        Edges carry ``joinability`` and ``match_count`` attributes, so
        standard tooling applies directly: connected components group
        tables about the same entities, in-degree finds hub tables, etc.
        """
        import networkx as nx

        graph = nx.DiGraph() if directed else nx.Graph()
        for edge in self.edges:
            graph.add_edge(
                edge.query_column,
                edge.target_column,
                joinability=edge.joinability,
                match_count=edge.match_count,
            )
        return graph

    def table_clusters(self) -> list[set[int]]:
        """Groups of transitively joinable columns (weakly connected
        components), largest first — the 'datasets about the same thing'
        view a lake curator wants."""
        import networkx as nx

        graph = self.to_networkx(directed=True)
        components = nx.weakly_connected_components(graph)
        return sorted((set(c) for c in components), key=len, reverse=True)


def discover_joinable_pairs(
    index: PexesoIndex,
    tau: float,
    joinability: float | int,
    include_self: bool = False,
    flags: Optional[AblationFlags] = None,
    column_ids: Optional[list[int]] = None,
) -> JoinabilityGraph:
    """Compute the joinability graph of an indexed repository.

    Args:
        index: a built :class:`~repro.core.index.PexesoIndex`.
        tau: distance threshold.
        joinability: T as a fraction of each query column's size or an
            absolute count.
        include_self: keep the trivial self-edges (every column is fully
            joinable to itself at any τ >= 0).
        flags: ablation switches forwarded to each search.
        column_ids: restrict the *query* side to these columns (targets
            are always the whole repository).

    Returns:
        A :class:`JoinabilityGraph` with one edge per joinable pair and
        merged search statistics.
    """
    if index.pivot_space is None:
        raise RuntimeError("index is not built; call fit() first")
    stats = SearchStats()
    edges: list[JoinableEdge] = []
    queries = column_ids if column_ids is not None else sorted(index.column_rows)
    for query_column in queries:
        rows = index.column_rows.get(query_column)
        if rows is None:
            raise KeyError(f"unknown column id {query_column}")
        query_vectors = index.vectors[rows]
        result = pexeso_search(
            index, query_vectors, tau, joinability, flags=flags, stats=stats
        )
        for hit in result.joinable:
            if hit.column_id == query_column and not include_self:
                continue
            edges.append(
                JoinableEdge(
                    query_column=query_column,
                    target_column=hit.column_id,
                    match_count=hit.match_count,
                    joinability=hit.joinability,
                )
            )
    return JoinabilityGraph(
        edges=edges, tau=float(tau), joinability=float(joinability), stats=stats
    )
