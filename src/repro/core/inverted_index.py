"""Inverted index from grid leaf cells to column postings (paper §III-C).

Keys are leaf-cell coordinates of ``HG_RV``; each key maps to a postings
list of columns having at least one vector in that cell, in increasing
column-ID order (the DaaT traversal of Algorithm 2 relies on that order).
Each posting also carries the global row indices of that column's vectors
inside the cell, so verification can fetch exactly the vectors it needs.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterable, Iterator, Optional

import numpy as np

Coords = tuple[int, ...]


class Posting:
    """One (column, rows-in-cell) entry of a postings list."""

    __slots__ = ("column_id", "rows")

    def __init__(self, column_id: int, rows: list[int]):
        self.column_id = column_id
        self.rows = rows

    def __lt__(self, other: "Posting") -> bool:
        return self.column_id < other.column_id

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Posting(column={self.column_id}, rows={self.rows})"


class InvertedIndex:
    """Leaf cell -> sorted postings list of columns."""

    def __init__(self) -> None:
        self._lists: dict[Coords, list[Posting]] = {}
        self.n_postings = 0

    # -- construction ------------------------------------------------------------

    def add_vector(self, cell: Coords, column_id: int, row: int) -> None:
        """Register a single vector (global row index) of ``column_id``."""
        postings = self._lists.setdefault(cell, [])
        pos = bisect_left(postings, Posting(column_id, []))
        if pos < len(postings) and postings[pos].column_id == column_id:
            postings[pos].rows.append(row)
        else:
            postings.insert(pos, Posting(column_id, [row]))
            self.n_postings += 1

    def add_column(self, column_id: int, cells: Iterable[Coords], first_row: int) -> None:
        """Register a whole column whose vectors occupy ``cells`` in order.

        ``cells[i]`` is the leaf cell of the column's i-th vector; global
        row indices are ``first_row + i``. This is the O(1)-amortised
        append path of §III-E.
        """
        grouped: dict[Coords, list[int]] = {}
        for offset, cell in enumerate(cells):
            grouped.setdefault(cell, []).append(first_row + offset)
        for cell, rows in grouped.items():
            postings = self._lists.setdefault(cell, [])
            insort(postings, Posting(column_id, rows))
            self.n_postings += 1

    def delete_column(self, column_id: int) -> int:
        """Remove every posting of ``column_id``; returns how many were removed.

        Cells left empty are dropped so blocking stops producing candidates
        for them.
        """
        removed = 0
        empty: list[Coords] = []
        for cell, postings in self._lists.items():
            pos = bisect_left(postings, Posting(column_id, []))
            if pos < len(postings) and postings[pos].column_id == column_id:
                postings.pop(pos)
                removed += 1
                if not postings:
                    empty.append(cell)
        for cell in empty:
            del self._lists[cell]
        self.n_postings -= removed
        return removed

    # -- lookup ------------------------------------------------------------------

    def postings(self, cell: Coords) -> list[Posting]:
        """Postings list of a cell (empty list when the cell is unknown)."""
        return self._lists.get(cell, [])

    def __contains__(self, cell: Coords) -> bool:
        return cell in self._lists

    def cells(self) -> Iterator[Coords]:
        """Iterate all indexed leaf cells."""
        return iter(self._lists)

    @property
    def n_cells(self) -> int:
        return len(self._lists)

    def columns_in_cells(self, cells: Iterable[Coords]) -> dict[int, list[int]]:
        """Merge postings of several cells into ``{column_id: [rows...]}``.

        The result's keys iterate in increasing column order, which is the
        document-at-a-time order of Algorithm 2 (each column plays the role
        of a document; merging the per-cell pointers up front is equivalent
        to the paper's priority queue over postings cursors).
        """
        merged: dict[int, list[int]] = {}
        for cell in cells:
            for posting in self._lists.get(cell, ()):
                merged.setdefault(posting.column_id, []).extend(posting.rows)
        return dict(sorted(merged.items()))

    def memory_bytes(self) -> int:
        """Rough memory footprint (for Fig. 6b)."""
        total = 0
        for cell, postings in self._lists.items():
            total += 8 * len(cell) + 48
            for posting in postings:
                total += 8 * len(posting.rows) + 32
        return total
