"""Inverted index from grid leaf cells to column postings (paper §III-C).

Keys are the linearized leaf cell codes of ``HG_RV``
(:mod:`repro.core.cellcodes`); each key maps to a postings list of
columns having at least one vector in that cell, in increasing column-ID
order (the DaaT traversal of Algorithm 2 relies on that order). Each
posting also carries the global row indices of that column's vectors
inside the cell, so verification can fetch exactly the vectors it needs.

The layout is CSR over flat arrays instead of dict-of-lists:

* ``_codes`` / ``_cols`` — one entry per (cell, column) posting, lexsorted
  by ``(cell code, column id)``; a cell's postings are a contiguous range
  found by ``np.searchsorted``, already in DaaT order;
* ``_rows`` / ``_starts`` — the global row indices of every posting,
  concatenated, with CSR offsets per entry.

``build_bulk`` constructs the whole index from the per-row (code, column)
pairs of a lake in one ``np.lexsort`` pass; :meth:`add_column` is a
sorted-merge append and :meth:`delete_column` a boolean-mask compaction,
preserving the §III-E maintenance semantics. Lookups
(:meth:`columns_in_cells` and the array-returning
:meth:`columns_in_cells_arrays`) are vectorised range gathers.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

CellCode = int

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_IP = np.empty(0, dtype=np.intp)


class Posting:
    """One (column, rows-in-cell) entry of a postings list (lookup view)."""

    __slots__ = ("column_id", "rows")

    def __init__(self, column_id: int, rows: list[int]):
        self.column_id = column_id
        self.rows = rows

    def __lt__(self, other: "Posting") -> bool:
        return self.column_id < other.column_id

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Posting(column={self.column_id}, rows={self.rows})"


class InvertedIndex:
    """Leaf cell code -> postings, stored as lexsorted CSR arrays."""

    def __init__(self) -> None:
        #: per posting entry: cell code, lexsorted by (code, column)
        self._codes = _EMPTY_I64
        #: per posting entry: column id
        self._cols = _EMPTY_I64
        #: CSR offsets of each entry's rows inside ``_rows``
        self._starts = np.zeros(1, dtype=np.intp)
        #: global row indices, concatenated per entry
        self._rows = _EMPTY_IP

    # -- construction ------------------------------------------------------------

    def build_bulk(
        self,
        cell_of_row: np.ndarray,
        column_of_row: np.ndarray,
        rows: np.ndarray | None = None,
    ) -> None:
        """Build the whole index from per-row arrays in one lexsort pass.

        Args:
            cell_of_row: leaf cell code of every repository vector.
            column_of_row: column ID of every repository vector.
            rows: global row index of every vector (defaults to
                ``arange``, the layout :meth:`~repro.core.index.PexesoIndex.fit`
                produces).
        """
        codes = np.asarray(cell_of_row, dtype=np.int64)
        cols = np.asarray(column_of_row, dtype=np.int64)
        if rows is None:
            rows = np.arange(codes.size, dtype=np.intp)
        else:
            rows = np.asarray(rows, dtype=np.intp)
        if not (codes.size == cols.size == rows.size):
            raise ValueError("cell, column and row arrays must align")
        if codes.size == 0:
            self.__init__()
            return
        order = np.lexsort((rows, cols, codes))
        sorted_codes = codes[order]
        sorted_cols = cols[order]
        boundary = np.empty(sorted_codes.size, dtype=bool)
        boundary[0] = True
        np.logical_or(
            sorted_codes[1:] != sorted_codes[:-1],
            sorted_cols[1:] != sorted_cols[:-1],
            out=boundary[1:],
        )
        firsts = np.nonzero(boundary)[0]
        self._codes = sorted_codes[firsts]
        self._cols = sorted_cols[firsts]
        self._starts = np.concatenate([firsts, [sorted_codes.size]]).astype(np.intp)
        self._rows = rows[order]

    def add_vector(self, cell: CellCode, column_id: int, row: int) -> None:
        """Register a single vector (global row index) of ``column_id``."""
        pos = self._entry_position(int(cell), int(column_id))
        if (
            pos < self._codes.size
            and self._codes[pos] == cell
            and self._cols[pos] == column_id
        ):
            self._rows = np.insert(self._rows, self._starts[pos + 1], row)
            self._starts[pos + 1 :] += 1
        else:
            self._insert_entries(
                np.asarray([cell], dtype=np.int64),
                np.asarray([column_id], dtype=np.int64),
                np.asarray([row], dtype=np.intp),
                np.asarray([1], dtype=np.intp),
            )

    def add_column(
        self, column_id: int, cells: Sequence[CellCode] | np.ndarray, first_row: int
    ) -> None:
        """Register a whole column whose vectors occupy ``cells`` in order.

        ``cells[i]`` is the leaf cell code of the column's i-th vector;
        global row indices are ``first_row + i``. This is the sorted-merge
        append path of §III-E: the column's new entries are grouped with
        one stable argsort and spliced into the CSR arrays at their
        ``searchsorted`` positions.
        """
        codes = np.asarray(cells, dtype=np.int64)
        if codes.ndim != 1:
            raise ValueError("cells must be a flat sequence of cell codes")
        n = codes.size
        if n == 0:
            return
        rows = np.arange(first_row, first_row + n, dtype=np.intp)
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        sorted_rows = rows[order]
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=boundary[1:])
        firsts = np.nonzero(boundary)[0]
        lens = np.diff(np.concatenate([firsts, [n]])).astype(np.intp)
        new_codes = sorted_codes[firsts]
        new_cols = np.full(new_codes.size, column_id, dtype=np.int64)
        self._insert_entries(new_codes, new_cols, sorted_rows, lens)

    def _entry_position(self, code: int, column_id: int) -> int:
        """Lexicographic (code, column) insertion position into the entries."""
        lo = int(np.searchsorted(self._codes, code, side="left"))
        hi = int(np.searchsorted(self._codes, code, side="right"))
        return lo + int(np.searchsorted(self._cols[lo:hi], column_id, side="left"))

    def _insert_entries(
        self,
        new_codes: np.ndarray,
        new_cols: np.ndarray,
        new_rows: np.ndarray,
        new_lens: np.ndarray,
    ) -> None:
        """Splice (code, column)-sorted new entries into the CSR arrays."""
        if self._codes.size == 0:
            self._codes = new_codes.copy()
            self._cols = new_cols.copy()
            self._rows = new_rows.astype(np.intp, copy=True)
            self._starts = np.concatenate(
                [[0], np.cumsum(new_lens)]
            ).astype(np.intp)
            return
        positions = np.fromiter(
            (
                self._entry_position(int(code), int(col))
                for code, col in zip(new_codes.tolist(), new_cols.tolist())
            ),
            dtype=np.intp,
            count=new_codes.size,
        )
        old_lens = np.diff(self._starts)
        self._codes = np.insert(self._codes, positions, new_codes)
        self._cols = np.insert(self._cols, positions, new_cols)
        self._rows = np.insert(
            self._rows, np.repeat(self._starts[positions], new_lens), new_rows
        )
        lens = np.insert(old_lens, positions, new_lens)
        self._starts = np.concatenate([[0], np.cumsum(lens)]).astype(np.intp)

    def delete_column(self, column_id: int) -> int:
        """Remove every posting of ``column_id``; returns how many were removed.

        One boolean mask over the entry arrays; cells left empty vanish
        with their entries, so blocking stops producing candidates for
        them.
        """
        kill = self._cols == column_id
        removed = int(np.count_nonzero(kill))
        if not removed:
            return 0
        keep = ~kill
        lens = np.diff(self._starts)
        self._rows = self._rows[np.repeat(keep, lens)]
        self._codes = self._codes[keep]
        self._cols = self._cols[keep]
        self._starts = np.concatenate([[0], np.cumsum(lens[keep])]).astype(np.intp)
        return removed

    # -- lookup ------------------------------------------------------------------

    @property
    def n_postings(self) -> int:
        """Total number of (cell, column) posting entries."""
        return int(self._codes.size)

    def _cell_range(self, cell: CellCode) -> tuple[int, int]:
        lo = int(np.searchsorted(self._codes, int(cell), side="left"))
        hi = int(np.searchsorted(self._codes, int(cell), side="right"))
        return lo, hi

    def postings(self, cell: CellCode) -> list[Posting]:
        """Postings list of a cell (empty list when the cell is unknown)."""
        lo, hi = self._cell_range(cell)
        return [
            Posting(int(self._cols[e]), self._rows[self._starts[e] : self._starts[e + 1]].tolist())
            for e in range(lo, hi)
        ]

    def __contains__(self, cell: CellCode) -> bool:
        lo, hi = self._cell_range(cell)
        return lo < hi

    def cells(self) -> Iterator[CellCode]:
        """Iterate all indexed leaf cell codes (ascending)."""
        return iter(np.unique(self._codes).tolist())

    @property
    def n_cells(self) -> int:
        if self._codes.size == 0:
            return 0
        return int(np.count_nonzero(np.diff(self._codes)) + 1)

    def columns_in_cells_arrays(
        self, cells: Iterable[CellCode] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised postings merge over several cells.

        Returns ``(columns, rows, lens)``: ascending column IDs, their
        member row indices concatenated (per column, cells contribute in
        input order), and the per-column row counts. This is the DaaT
        merge of Algorithm 2 as three ``searchsorted`` range gathers.
        """
        codes = np.asarray(
            cells if isinstance(cells, np.ndarray) else list(cells), dtype=np.int64
        )
        if codes.size == 0 or self._codes.size == 0:
            return _EMPTY_I64, _EMPTY_IP, _EMPTY_IP
        lo = np.searchsorted(self._codes, codes, side="left")
        hi = np.searchsorted(self._codes, codes, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return _EMPTY_I64, _EMPTY_IP, _EMPTY_IP
        # entry index of every (input cell, posting) occurrence, cell order
        offsets = np.cumsum(counts) - counts
        occ = np.arange(total, dtype=np.intp) - np.repeat(offsets, counts)
        occ += np.repeat(lo, counts)
        order = np.argsort(self._cols[occ], kind="stable")
        occ = occ[order]
        # ragged gather of each occurrence's rows, in (column, cell) order
        entry_lens = (self._starts[occ + 1] - self._starts[occ]).astype(np.intp)
        n_rows = int(entry_lens.sum())
        out_offsets = np.cumsum(entry_lens) - entry_lens
        idx = np.arange(n_rows, dtype=np.intp) - np.repeat(out_offsets, entry_lens)
        idx += np.repeat(self._starts[occ], entry_lens)
        rows = self._rows[idx]
        cols_sorted = self._cols[occ]
        uniq_cols, first = np.unique(cols_sorted, return_index=True)
        col_lens = np.add.reduceat(entry_lens, first).astype(np.intp)
        return uniq_cols, rows, col_lens

    def columns_in_cells(
        self, cells: Iterable[CellCode] | np.ndarray
    ) -> dict[int, list[int]]:
        """Merge postings of several cells into ``{column_id: [rows...]}``.

        The result's keys iterate in increasing column order, which is the
        document-at-a-time order of Algorithm 2 (each column plays the role
        of a document; merging the per-cell pointers up front is equivalent
        to the paper's priority queue over postings cursors).
        """
        cols, rows, lens = self.columns_in_cells_arrays(cells)
        merged: dict[int, list[int]] = {}
        offset = 0
        rows_list = rows.tolist()
        for col, length in zip(cols.tolist(), lens.tolist()):
            merged[col] = rows_list[offset : offset + length]
            offset += length
        return merged

    def memory_bytes(self) -> int:
        """Memory footprint of the CSR arrays (for Fig. 6b)."""
        return (
            self._codes.nbytes
            + self._cols.nbytes
            + self._starts.nbytes
            + self._rows.nbytes
        )
