"""Optional compiled kernels for the search hot path (Numba-accelerated).

The verifier and the blocking descent are NumPy-vectorised but still pay
Python orchestration per block and allocate boolean intermediates for
every predicate. This module provides drop-in kernels for the inner
predicates — the row-aligned Lemma 1/2 masks of verification, the leaf
and cell masks of the blocking descent, and the verifier's sequential
replay of a "firing" column — compiled with Numba when it is installed,
with pure-NumPy fallbacks that stay the default otherwise.

**Bit-identity contract.** Every kernel is an elementwise float
comparison (no floating-point reductions, whose summation order could
differ between backends) or pure integer bookkeeping, so the numba and
numpy backends produce *identical* outputs on identical inputs — not
merely close ones. Exact distances are deliberately **not** compiled:
they keep going through :meth:`repro.core.metric.Metric.distances_to`
on both backends, so the arithmetic (including NumPy's pairwise
summation order) is shared and the 24-seed differential oracle can pin
all backends to the same bits.

Backend selection:

* default — ``numba`` when importable, else ``numpy``;
* ``REPRO_KERNELS=numpy`` (or ``numba``) in the environment overrides
  the default at import time;
* :func:`set_backend` / :func:`use_backend` switch at runtime (tests
  cross-check the two backends against each other this way).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

try:  # optional dependency: never required, never auto-installed
    import numba  # type: ignore

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - exercised on numba-less CI
    numba = None
    HAVE_NUMBA = False

BACKENDS = ("numpy", "numba")


def _initial_backend() -> str:
    wanted = os.environ.get("REPRO_KERNELS", "").strip().lower()
    if wanted in BACKENDS:
        if wanted == "numba" and not HAVE_NUMBA:
            return "numpy"
        return wanted
    return "numba" if HAVE_NUMBA else "numpy"


_active_backend = _initial_backend()


def get_backend() -> str:
    """The active kernel backend (``"numpy"`` or ``"numba"``)."""
    return _active_backend


def set_backend(name: str) -> str:
    """Select the kernel backend; returns the previously active one.

    Raises:
        ValueError: for an unknown backend name.
        RuntimeError: when ``"numba"`` is requested but not installed.
    """
    global _active_backend
    if name not in BACKENDS:
        raise ValueError(f"unknown kernel backend {name!r}; known: {BACKENDS}")
    if name == "numba" and not HAVE_NUMBA:
        raise RuntimeError(
            "the numba backend was requested but numba is not installed; "
            "pip install numba (optional) or use the numpy backend"
        )
    previous = _active_backend
    _active_backend = name
    return previous


@contextmanager
def use_backend(name: str):
    """Context manager form of :func:`set_backend`."""
    previous = set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def _use_numba() -> bool:
    return _active_backend == "numba" and HAVE_NUMBA


# --------------------------------------------------------------------------
# NumPy reference implementations (always available, always the fallback)
# --------------------------------------------------------------------------


def _lemma1_pair_np(x_mapped: np.ndarray, q_mapped: np.ndarray, tau: float) -> np.ndarray:
    return (np.abs(x_mapped - q_mapped) > tau).any(axis=1)


def _lemma2_pair_np(x_mapped: np.ndarray, q_mapped: np.ndarray, tau: float) -> np.ndarray:
    return ((x_mapped + q_mapped) <= tau).any(axis=1)


def _leaf_masks_np(batch, t_lo, t_hi, tau, use56, use34):
    if use56:
        matched = ((batch[:, None, :] + t_hi[None, :, :]) <= tau).any(axis=2)
    else:
        matched = np.zeros((batch.shape[0], t_hi.shape[0]), dtype=bool)
    if use34:
        filtered = (
            (t_lo[None, :, :] > batch[:, None, :] + tau)
            | (t_hi[None, :, :] < batch[:, None, :] - tau)
        ).any(axis=2)
        filtered &= ~matched
    else:
        filtered = np.zeros_like(matched)
    return matched, filtered


def _cell_masks_np(r_lo, r_hi, q_lo, q_hi, tau, use56, use34):
    n_r = r_lo.shape[0]
    if use56:
        matched = ((r_hi + q_hi[None, :]) <= tau).any(axis=1)
    else:
        matched = np.zeros(n_r, dtype=bool)
    if use34:
        filtered = (
            (r_lo > q_hi[None, :] + tau) | (r_hi < q_lo[None, :] - tau)
        ).any(axis=1)
        filtered &= ~matched
    else:
        filtered = np.zeros(n_r, dtype=bool)
    return matched, filtered


def _replay_column_py(
    ep_cand,
    ep_match,
    cnt,
    mis,
    joi,
    t_need,
    miss_bound,
    use_lemma7,
    early_accept,
):
    dead = False
    lemma7_skips = 0
    early_accepts = 0
    columns_verified = 0
    for i in range(ep_cand.shape[0]):
        is_cand = bool(ep_cand[i])
        if use_lemma7 and dead:
            if is_cand:
                lemma7_skips += 1
            continue
        if early_accept and joi:
            if is_cand:
                early_accepts += 1
            continue
        if is_cand:
            columns_verified += 1
        if ep_match[i]:
            cnt += 1
            if cnt >= t_need:
                joi = True
        else:
            mis += 1
            if use_lemma7 and mis > miss_bound:
                dead = True
    return cnt, mis, joi, dead, lemma7_skips, early_accepts, columns_verified


# --------------------------------------------------------------------------
# Numba-compiled implementations (defined only when numba is importable)
# --------------------------------------------------------------------------

if HAVE_NUMBA:  # pragma: no cover - requires the optional dependency

    @numba.njit(cache=True)
    def _lemma1_pair_nb(x_mapped, q_mapped, tau):
        n, d = x_mapped.shape
        broadcast_q = q_mapped.shape[0] == 1
        out = np.zeros(n, dtype=np.bool_)
        for i in range(n):
            qi = 0 if broadcast_q else i
            for j in range(d):
                delta = x_mapped[i, j] - q_mapped[qi, j]
                if delta > tau or -delta > tau:
                    out[i] = True
                    break
        return out

    @numba.njit(cache=True)
    def _lemma2_pair_nb(x_mapped, q_mapped, tau):
        n, d = x_mapped.shape
        broadcast_q = q_mapped.shape[0] == 1
        out = np.zeros(n, dtype=np.bool_)
        for i in range(n):
            qi = 0 if broadcast_q else i
            for j in range(d):
                if x_mapped[i, j] + q_mapped[qi, j] <= tau:
                    out[i] = True
                    break
        return out

    @numba.njit(cache=True)
    def _leaf_masks_nb(batch, t_lo, t_hi, tau, use56, use34):
        mq, d = batch.shape
        kt = t_hi.shape[0]
        matched = np.zeros((mq, kt), dtype=np.bool_)
        filtered = np.zeros((mq, kt), dtype=np.bool_)
        for i in range(mq):
            for j in range(kt):
                hit = False
                if use56:
                    for c in range(d):
                        if batch[i, c] + t_hi[j, c] <= tau:
                            hit = True
                            break
                matched[i, j] = hit
                if use34 and not hit:
                    for c in range(d):
                        if (
                            t_lo[j, c] > batch[i, c] + tau
                            or t_hi[j, c] < batch[i, c] - tau
                        ):
                            filtered[i, j] = True
                            break
        return matched, filtered

    @numba.njit(cache=True)
    def _cell_masks_nb(r_lo, r_hi, q_lo, q_hi, tau, use56, use34):
        n_r, d = r_lo.shape
        matched = np.zeros(n_r, dtype=np.bool_)
        filtered = np.zeros(n_r, dtype=np.bool_)
        for j in range(n_r):
            hit = False
            if use56:
                for c in range(d):
                    if r_hi[j, c] + q_hi[c] <= tau:
                        hit = True
                        break
            matched[j] = hit
            if use34 and not hit:
                for c in range(d):
                    if r_lo[j, c] > q_hi[c] + tau or r_hi[j, c] < q_lo[c] - tau:
                        filtered[j] = True
                        break
        return matched, filtered

    _replay_column_nb = numba.njit(cache=True)(_replay_column_py)


# --------------------------------------------------------------------------
# Dispatching entry points (what the verifier and blocker call)
# --------------------------------------------------------------------------


def lemma1_pair_mask(
    x_mapped: np.ndarray, q_mapped: np.ndarray, tau: float
) -> np.ndarray:
    """Row-aligned Lemma 1 pruning mask (see ``filtering.lemma1_filter_mask``).

    ``x_mapped`` is ``(n, d)``; ``q_mapped`` is ``(n, d)`` or ``(1, d)``
    (broadcast). Returns a boolean ``(n,)`` mask of pruned rows.
    """
    if _use_numba() and x_mapped.size:
        return _lemma1_pair_nb(
            np.ascontiguousarray(x_mapped, dtype=np.float64),
            np.ascontiguousarray(q_mapped, dtype=np.float64),
            float(tau),
        )
    return _lemma1_pair_np(x_mapped, q_mapped, tau)


def lemma2_pair_mask(
    x_mapped: np.ndarray, q_mapped: np.ndarray, tau: float
) -> np.ndarray:
    """Row-aligned Lemma 2 acceptance mask (same shapes as Lemma 1)."""
    if _use_numba() and x_mapped.size:
        return _lemma2_pair_nb(
            np.ascontiguousarray(x_mapped, dtype=np.float64),
            np.ascontiguousarray(q_mapped, dtype=np.float64),
            float(tau),
        )
    return _lemma2_pair_np(x_mapped, q_mapped, tau)


def leaf_masks(
    batch: np.ndarray,
    t_lo: np.ndarray,
    t_hi: np.ndarray,
    tau: float,
    use56: bool,
    use34: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Leaf-stage Lemma 5 (match) and Lemma 3 (filter) masks, batched.

    ``batch`` is the ``(mq, d)`` mapped query members of one query leaf;
    ``t_lo`` / ``t_hi`` are the ``(kt, d)`` target leaf boxes. Returns
    ``(matched, filtered)`` boolean ``(mq, kt)`` masks with
    ``filtered & matched == False``.
    """
    if _use_numba() and batch.size and t_hi.size:
        return _leaf_masks_nb(
            np.ascontiguousarray(batch, dtype=np.float64),
            np.ascontiguousarray(t_lo, dtype=np.float64),
            np.ascontiguousarray(t_hi, dtype=np.float64),
            float(tau),
            bool(use56),
            bool(use34),
        )
    return _leaf_masks_np(batch, t_lo, t_hi, tau, use56, use34)


def cell_masks(
    r_lo: np.ndarray,
    r_hi: np.ndarray,
    q_lo: np.ndarray,
    q_hi: np.ndarray,
    tau: float,
    use56: bool,
    use34: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Descent-level Lemma 6 (match) and Lemma 4 (filter) masks.

    One query cell box ``(q_lo, q_hi)`` against its ``(n_r, d)`` sibling
    target boxes. Returns ``(matched, filtered)`` boolean ``(n_r,)``
    masks with ``filtered & matched == False``.
    """
    if _use_numba() and r_lo.size:
        return _cell_masks_nb(
            np.ascontiguousarray(r_lo, dtype=np.float64),
            np.ascontiguousarray(r_hi, dtype=np.float64),
            np.ascontiguousarray(q_lo, dtype=np.float64),
            np.ascontiguousarray(q_hi, dtype=np.float64),
            float(tau),
            bool(use56),
            bool(use34),
        )
    return _cell_masks_np(r_lo, r_hi, q_lo, q_hi, tau, use56, use34)


def replay_column(
    ep_cand: np.ndarray,
    ep_match: np.ndarray,
    cnt: int,
    mis: int,
    joi: bool,
    t_need: int,
    miss_bound: int,
    use_lemma7: bool,
    early_accept: bool,
) -> tuple[int, int, bool, bool, int, int, int]:
    """Sequential replay of one firing column's episodes (verifier).

    Pure integer bookkeeping mirroring Algorithm 2's per-episode gating;
    returns ``(count, misses, joinable, dead, lemma7_skips,
    early_accepts, columns_verified)``.
    """
    if _use_numba() and ep_cand.size:
        return _replay_column_nb(
            np.ascontiguousarray(ep_cand, dtype=np.bool_),
            np.ascontiguousarray(ep_match, dtype=np.bool_),
            int(cnt),
            int(mis),
            bool(joi),
            int(t_need),
            int(miss_bound),
            bool(use_lemma7),
            bool(early_accept),
        )
    return _replay_column_py(
        ep_cand, ep_match, cnt, mis, joi, t_need, miss_bound,
        use_lemma7, early_accept,
    )
