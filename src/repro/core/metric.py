"""Metric-space distance functions.

PEXESO supports "any similarity function in a metric space" (paper §I).
The experiments use Euclidean distance over unit-normalised embeddings, for
which the maximum possible distance is 2 (paper §V); the ratio-based
threshold specification relies on that bound.

Every metric exposes three entry points:

* :meth:`Metric.distance` — one pair,
* :meth:`Metric.distances_to` — one query against a batch (vectorised),
* :meth:`Metric.pairwise` — full batch-against-batch matrix.

All three optionally count evaluations into a :class:`~repro.core.stats.CounterBox`
so that experiments can report exact distance-computation counts (Fig. 6a).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.stats import CounterBox


class Metric:
    """Base class for metric distances on real vectors.

    Subclasses implement :meth:`_pairwise` and :meth:`max_distance`. The
    base class handles instrumentation and input validation.
    """

    #: short name used by :func:`get_metric`
    name: str = "abstract"
    #: whether the triangle inequality holds (pivot filtering requires it)
    is_metric: bool = True

    def __init__(self, counter: Optional[CounterBox] = None):
        self.counter = counter

    # -- instrumented public API -------------------------------------------------

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Distance between two vectors."""
        if self.counter is not None:
            self.counter.add(1)
        return float(self._pairwise(np.atleast_2d(a), np.atleast_2d(b))[0, 0])

    def distances_to(self, q: np.ndarray, batch: np.ndarray) -> np.ndarray:
        """Distances from vector ``q`` to every row of ``batch``."""
        if batch.size == 0:
            return np.zeros(0)
        if self.counter is not None:
            self.counter.add(batch.shape[0])
        return self._pairwise(np.atleast_2d(q), batch)[0]

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix of distances between the rows of ``a`` and the rows of ``b``."""
        a = np.atleast_2d(a)
        b = np.atleast_2d(b)
        if self.counter is not None:
            self.counter.add(a.shape[0] * b.shape[0])
        return self._pairwise(a, b)

    # -- to be provided by subclasses ---------------------------------------------

    def _pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def max_distance(self, dim: int) -> float:
        """Upper bound on the distance between two *unit-normalised* vectors.

        Used to express the distance threshold τ as a percentage (paper §V).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class EuclideanMetric(Metric):
    """L2 distance. Maximum distance between unit vectors is 2."""

    name = "euclidean"

    def _pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b  (clamped for float error)
        aa = np.einsum("ij,ij->i", a, a)[:, None]
        bb = np.einsum("ij,ij->i", b, b)[None, :]
        sq = aa + bb - 2.0 * (a @ b.T)
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq)

    def max_distance(self, dim: int) -> float:
        return 2.0


class ManhattanMetric(Metric):
    """L1 distance. For unit vectors the bound ``2 * sqrt(dim)`` holds."""

    name = "manhattan"

    def _pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)

    def max_distance(self, dim: int) -> float:
        # |x - y|_1 <= sqrt(dim) * |x - y|_2 <= 2 sqrt(dim) for unit vectors.
        return 2.0 * math.sqrt(dim)


class ChebyshevMetric(Metric):
    """L-infinity distance. For unit vectors the bound 2 holds."""

    name = "chebyshev"

    def _pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.abs(a[:, None, :] - b[None, :, :]).max(axis=2)

    def max_distance(self, dim: int) -> float:
        return 2.0


class CosineDistance(Metric):
    """Cosine *distance* ``1 - cos(a, b)``.

    Note: cosine distance violates the triangle inequality, so it must not
    be used with pivot filtering. It is provided for the string-similarity
    baselines (TF-IDF join) and for analysis. On unit vectors it relates to
    Euclidean distance by ``d_e^2 = 2 * d_cos``, which is how the paper's
    framework covers "cosine similarity" use cases: normalise and use
    :class:`EuclideanMetric`.
    """

    name = "cosine"
    is_metric = False

    def _pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        na = np.linalg.norm(a, axis=1)
        nb = np.linalg.norm(b, axis=1)
        na = np.where(na == 0.0, 1.0, na)
        nb = np.where(nb == 0.0, 1.0, nb)
        cos = (a @ b.T) / na[:, None] / nb[None, :]
        np.clip(cos, -1.0, 1.0, out=cos)
        return 1.0 - cos

    def max_distance(self, dim: int) -> float:
        return 2.0


#: metrics that satisfy the triangle inequality and may drive pivot filtering
METRIC_REGISTRY = {
    "euclidean": EuclideanMetric,
    "manhattan": ManhattanMetric,
    "chebyshev": ChebyshevMetric,
    "cosine": CosineDistance,
}


def register_metric(cls: type) -> type:
    """Register a custom :class:`Metric` subclass under its ``name``.

    Registered metrics round-trip through the array-native persistence
    format (the manifest stores only the name), so spilled partitions and
    saved indexes built with them never fall back to pickling. The class
    must therefore be reconstructible from its name alone:
    ``cls(counter=None)`` — the call :func:`get_metric` makes on load —
    has to produce an equivalent metric. A class whose instances carry
    extra constructor state would reload with the defaults — keep such
    metrics unregistered so they take the pickle path instead. Usable as
    a class decorator::

        @register_metric
        class HammingMetric(Metric):
            name = "hamming"
            ...

    Raises:
        ValueError: when ``cls`` lacks a usable ``name`` or the name is
            already bound to a *different* class.
    """
    name = getattr(cls, "name", None)
    if not name or name == Metric.name:
        raise ValueError("metric class needs a distinctive `name` attribute")
    bound = METRIC_REGISTRY.get(name)
    if bound is not None and bound is not cls:
        raise ValueError(f"metric name {name!r} already registered to {bound.__name__}")
    METRIC_REGISTRY[name] = cls
    return cls


def metric_round_trips(metric: Metric) -> bool:
    """True when ``metric`` can be reconstructed from its registry name.

    This is the persistence-format gate: ``save_index`` stores
    ``metric.name`` and ``load_index`` resolves it via :func:`get_metric`,
    so the name must map back to exactly the instance's class *and* the
    class must be default-constructible (that is how :func:`get_metric`
    rebuilds it). Anything else falls back to the pickle spill.
    """
    if METRIC_REGISTRY.get(getattr(metric, "name", "")) is not type(metric):
        return False
    try:
        # Probe the exact constructor call get_metric will make on load.
        type(metric)(counter=None)
    except Exception:
        return False
    return True


def get_metric(name: str, counter: Optional[CounterBox] = None) -> Metric:
    """Instantiate a metric by name.

    Args:
        name: one of ``euclidean``, ``manhattan``, ``chebyshev``, ``cosine``.
        counter: optional distance-computation counter.

    Raises:
        KeyError: for unknown names.
    """
    # Exact match first so registered custom names round-trip verbatim;
    # the built-in names stay reachable case-insensitively.
    cls = METRIC_REGISTRY.get(name) or METRIC_REGISTRY.get(name.lower())
    if cls is None:
        known = ", ".join(sorted(METRIC_REGISTRY))
        raise KeyError(f"unknown metric {name!r}; known metrics: {known}")
    return cls(counter=counter)


def normalize_rows(vectors: np.ndarray) -> np.ndarray:
    """L2-normalise each row; zero rows are left untouched.

    The paper normalises all embeddings to unit length so τ can be given as
    a fraction of the maximum distance (§V).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    safe = np.where(norms == 0.0, 1.0, norms)
    return vectors / safe
