"""Data partitioning for large-scale data lakes (paper §IV).

Columns with similar vector distributions should share a partition — the
pivots selected within a partition then filter well for *all* its columns
(Fig. 5's observation). Each column is summarised as a probability
histogram over a fixed low-dimensional projection of the embedding space,
and the histograms are clustered by k-means under the (symmetrised)
Jensen–Shannon divergence.

Two baselines from Fig. 7b are included: random partitioning and "average
k-means" (each column reduced to its mean vector, Euclidean k-means).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.clustering import lloyd_kmeans

#: additive smoothing so KL terms never divide by zero
_SMOOTH = 1e-9


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Kullback–Leibler divergence KL(p || q) of two histograms (nats)."""
    p = np.asarray(p, dtype=np.float64) + _SMOOTH
    q = np.asarray(q, dtype=np.float64) + _SMOOTH
    p = p / p.sum()
    q = q / q.sum()
    return float(np.sum(p * np.log(p / q)))


def jensen_shannon_divergence(a: np.ndarray, b: np.ndarray) -> float:
    """The paper's symmetric divergence ``(KL(a||b) + KL(b||a)) / 2``.

    Note: §IV defines "JSD" as the symmetrised KL (Jeffreys) divergence
    rather than the mixture-based Jensen–Shannon formula; we implement the
    paper's definition. With smoothed histograms it is finite, symmetric
    and zero iff the histograms coincide — all the clustering needs.
    """
    return 0.5 * (kl_divergence(a, b) + kl_divergence(b, a))


class HistogramSpace:
    """Fixed projection + binning shared by all column histograms (§IV step 1).

    Vectors are projected onto ``n_dims`` fixed random orthonormal
    directions (seeded, so histograms are comparable across partitions and
    processes) and binned over the global projection range.
    """

    def __init__(
        self,
        sample_vectors: np.ndarray,
        n_dims: int = 2,
        bins_per_dim: int = 8,
        seed: int = 0,
    ):
        sample_vectors = np.atleast_2d(np.asarray(sample_vectors, dtype=np.float64))
        dim = sample_vectors.shape[1]
        rng = np.random.default_rng(seed)
        raw = rng.standard_normal((dim, max(n_dims, 1)))
        q, _ = np.linalg.qr(raw)
        self.projection = q[:, :n_dims]
        self.bins_per_dim = int(bins_per_dim)
        projected = sample_vectors @ self.projection
        lo = projected.min(axis=0)
        hi = projected.max(axis=0)
        pad = np.maximum(1e-6, 0.01 * (hi - lo))
        self.lo = lo - pad
        self.hi = hi + pad

    @property
    def n_bins(self) -> int:
        return self.bins_per_dim ** self.projection.shape[1]

    def histogram(self, vectors: np.ndarray) -> np.ndarray:
        """Normalised occupancy histogram of a column's vectors."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        projected = vectors @ self.projection
        span = self.hi - self.lo
        coords = np.floor(
            (projected - self.lo) / span * self.bins_per_dim
        ).astype(np.int64)
        np.clip(coords, 0, self.bins_per_dim - 1, out=coords)
        flat = np.zeros(self.n_bins)
        multipliers = self.bins_per_dim ** np.arange(self.projection.shape[1])
        keys = coords @ multipliers
        np.add.at(flat, keys, 1.0)
        return flat / flat.sum()


def column_histogram(
    vectors: np.ndarray, space: HistogramSpace
) -> np.ndarray:
    """Summarise one column as a probability histogram (§IV step 1)."""
    return space.histogram(vectors)


def jsd_kmeans_partition(
    columns: Sequence[np.ndarray],
    k: int,
    n_iter: int = 10,
    rng: Optional[np.random.Generator] = None,
    space: Optional[HistogramSpace] = None,
) -> np.ndarray:
    """Cluster columns by JSD over their histograms (§IV steps 2–5).

    Args:
        columns: the repository's vector columns.
        k: number of partitions.
        n_iter: the user-defined iteration bound ``t``.
        rng: randomness for seeding centers.
        space: shared histogram space (built from all vectors when omitted).

    Returns:
        Partition label per column, shape ``(len(columns),)``.
    """
    rng = rng or np.random.default_rng(0)
    if not columns:
        raise ValueError("cannot partition zero columns")
    if space is None:
        sample = np.concatenate([np.atleast_2d(c) for c in columns], axis=0)
        space = HistogramSpace(sample)
    histograms = np.vstack([space.histogram(c) for c in columns])

    def jsd_matrix(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
        p = points + _SMOOTH
        p = p / p.sum(axis=1, keepdims=True)
        c = centers + _SMOOTH
        c = c / c.sum(axis=1, keepdims=True)
        logp = np.log(p)
        logc = np.log(c)
        # KL(p||c)[i,j] = sum_b p[i,b] (logp[i,b] - logc[j,b])
        kl_pc = (p * logp).sum(axis=1)[:, None] - p @ logc.T
        kl_cp = (c * logc).sum(axis=1)[None, :] - logp @ c.T
        return 0.5 * (kl_pc + kl_cp)

    labels, _ = lloyd_kmeans(
        histograms, k, n_iter=n_iter, rng=rng, distance=jsd_matrix
    )
    return labels


#: partitioning strategies selectable by name (paper §IV + Fig. 7b baselines)
PARTITIONERS = {
    "jsd": "JSD histogram k-means (paper §IV)",
    "average-kmeans": "k-means over column mean vectors (Fig. 7b baseline)",
    "random": "uniform random assignment (Fig. 7b baseline)",
}


def partition_labels(
    columns: Sequence[np.ndarray],
    k: int,
    partitioner: str = "jsd",
    n_iter: int = 10,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Assign every column to one of ``k`` partitions by strategy name.

    Args:
        columns: the repository's vector columns.
        k: number of partitions.
        partitioner: one of :data:`PARTITIONERS`.
        n_iter: k-means iteration bound ``t`` (ignored by ``random``).
        rng: randomness source.

    Returns:
        Partition label per column, shape ``(len(columns),)``.

    Raises:
        KeyError: for unknown partitioner names.
    """
    if partitioner not in PARTITIONERS:
        known = ", ".join(sorted(PARTITIONERS))
        raise KeyError(f"unknown partitioner {partitioner!r}; known: {known}")
    rng = rng or np.random.default_rng(0)
    if partitioner == "jsd":
        labels = jsd_kmeans_partition(columns, k, n_iter=n_iter, rng=rng)
    elif partitioner == "average-kmeans":
        labels = average_kmeans_partition(columns, k, n_iter=n_iter, rng=rng)
    else:
        labels = random_partition(len(columns), k, rng=rng)
    return np.asarray(labels, dtype=np.intp)


def random_partition(
    n_columns: int, k: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Uniform random partition assignment (Fig. 7b baseline)."""
    rng = rng or np.random.default_rng(0)
    return rng.integers(0, max(1, k), size=n_columns).astype(np.intp)


def average_kmeans_partition(
    columns: Sequence[np.ndarray],
    k: int,
    n_iter: int = 10,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Fig. 7b baseline: k-means over per-column mean vectors."""
    rng = rng or np.random.default_rng(0)
    means = np.vstack([np.atleast_2d(c).mean(axis=0) for c in columns])
    labels, _ = lloyd_kmeans(means, k, n_iter=n_iter, rng=rng)
    return labels
