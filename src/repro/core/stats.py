"""Instrumentation counters for index construction and search.

The paper's Figure 6a and Figure 9 report the *number of distance
computations* and the effect of removing individual lemmata. Rather than
inferring those quantities from wall-clock noise, every search records them
in a :class:`SearchStats` instance that the benchmarks read directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import BoundedHistogram


class StageTimings(dict):
    """Per-stage wall-time breakdown of one search (``stage -> seconds``).

    A plain ``dict[str, float]`` (JSON-safe as-is for the ``timings``
    field of ``/search`` responses) that additionally supports ``+`` so
    the generic field-wise :meth:`SearchStats.merge` accumulates it:
    merging sums per stage.

    Canonical stage names, chosen disjoint so a sequential request's
    stages sum to at most its wall time: ``pivot_map`` (query pivot
    mapping + HG_Q build), ``blocking`` (grid descent), ``lemma_filter``
    (Lemma 1/2 mask evaluation inside verification), ``verify``
    (verification minus the lemma masks), ``merge`` (cross-shard /
    cross-worker result merge), ``shard_load`` (spilled-partition
    loads), ``queue_wait`` (micro-batcher latency before dispatch),
    ``scatter`` (coordinator-side worker fan-out). Parallel fan-outs
    (shards, τ-groups, workers) accumulate CPU-style — like
    ``verification_seconds`` always has — so only sequential layers
    compare stage sums against wall clocks.
    """

    def add(self, stage: str, seconds: float) -> None:
        self[stage] = self.get(stage, 0.0) + float(seconds)

    def total(self) -> float:
        return float(sum(self.values()))

    def copy(self) -> "StageTimings":
        return StageTimings(self)

    def __add__(self, other) -> "StageTimings":
        if not isinstance(other, dict):
            return NotImplemented
        merged = StageTimings(self)
        for stage, seconds in other.items():
            merged.add(stage, seconds)
        return merged

    def __radd__(self, other) -> "StageTimings":
        if not isinstance(other, dict):
            return NotImplemented
        return StageTimings(other) + self


@dataclass
class SearchStats:
    """Counters collected during one joinable-column search.

    Attributes:
        distance_computations: exact metric distance evaluations performed
            during verification (the quantity plotted in Fig. 6a).
        pivot_mapping_distances: distances computed to map the query column
            into the pivot space (|Q| x |P|); reported separately because the
            paper's cost analysis only counts verification distances.
        candidate_pairs: number of (query vector, leaf cell) candidate pairs
            produced by blocking.
        matching_pairs: number of (query vector, leaf cell) pairs proven to
            match by Lemma 5/6 during blocking.
        lemma1_filtered: vectors pruned by point-level pivot filtering
            (Lemma 1) inside verification.
        lemma2_matched: vectors accepted by point-level pivot matching
            (Lemma 2) inside verification without distance computation.
        lemma3_filtered: (query vector, leaf cell) pairs pruned by
            vector-cell filtering (Lemma 3).
        lemma4_filtered: cell-cell pairs pruned during the grid descent
            (Lemma 4).
        lemma5_matched: (query vector, leaf cell) pairs matched by
            vector-cell matching (Lemma 5).
        lemma6_matched: cell-cell pairs matched during the grid descent
            (Lemma 6).
        lemma7_skips: columns skipped by the mismatch bound (Lemma 7).
        early_accepts: columns confirmed joinable before all their
            candidates were verified.
        cells_visited: grid cell pairs examined by Algorithm 1.
        quick_browse_cells: leaf cells handled by quick browsing.
        columns_verified: distinct (query vector, column) verification
            episodes.
        blocking_seconds: wall-clock time spent in Algorithm 1.
        verification_seconds: wall-clock time spent in Algorithm 2.
        shard_load_seconds: wall-clock time spent loading spilled
            partitions from disk (the paper's protocol includes this in
            the reported out-of-core search time).
        cache_hits: requests answered from the serving layer's
            generation-stamped result cache.
        cache_misses: requests that had to run a real search (a stale
            cache entry from an earlier index generation also counts as
            a miss).
        coalesced_batch_sizes: a
            :class:`~repro.obs.metrics.BoundedHistogram` recording one
            sample per fused engine dispatch — the number of requests
            the serving layer's micro-batcher merged into that
            :meth:`~repro.core.engine.BatchSearch.search_many` call.
            The retained sample window is bounded (a resident server
            used to grow a plain list forever) while lifetime
            count/total stay exact; merging two stats objects merges
            the histograms. A plain list still coerces on construction.
        stage_seconds: per-stage wall-time breakdown (see
            :class:`StageTimings`); merging sums per stage.
    """

    distance_computations: int = 0
    pivot_mapping_distances: int = 0
    candidate_pairs: int = 0
    matching_pairs: int = 0
    lemma1_filtered: int = 0
    lemma2_matched: int = 0
    lemma3_filtered: int = 0
    lemma4_filtered: int = 0
    lemma5_matched: int = 0
    lemma6_matched: int = 0
    lemma7_skips: int = 0
    early_accepts: int = 0
    cells_visited: int = 0
    quick_browse_cells: int = 0
    columns_verified: int = 0
    blocking_seconds: float = 0.0
    verification_seconds: float = 0.0
    shard_load_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    coalesced_batch_sizes: BoundedHistogram = field(
        default_factory=BoundedHistogram
    )
    stage_seconds: StageTimings = field(default_factory=StageTimings)

    def __post_init__(self) -> None:
        # accept plain containers at the call sites that construct stats
        # with literals (tests, callers predating the histogram swap)
        if not isinstance(self.coalesced_batch_sizes, BoundedHistogram):
            self.coalesced_batch_sizes = BoundedHistogram(
                self.coalesced_batch_sizes
            )
        if not isinstance(self.stage_seconds, StageTimings):
            self.stage_seconds = StageTimings(self.stage_seconds)

    def merge(self, other: "SearchStats") -> None:
        """Accumulate counters from ``other`` (used by partitioned search).

        Numeric fields add; ``coalesced_batch_sizes`` merges histograms;
        ``stage_seconds`` sums per stage.
        """
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    @property
    def coalesced_requests(self) -> int:
        """Total requests answered through fused micro-batches (exact
        lifetime total, unaffected by the bounded sample window)."""
        return int(self.coalesced_batch_sizes.total)

    @property
    def total_seconds(self) -> float:
        """Combined blocking + verification + shard-loading time."""
        return self.blocking_seconds + self.verification_seconds + self.shard_load_seconds


@dataclass
class IndexStats:
    """Counters collected while building a :class:`~repro.core.index.PexesoIndex`."""

    pivot_selection_seconds: float = 0.0
    pivot_mapping_seconds: float = 0.0
    grid_build_seconds: float = 0.0
    inverted_index_seconds: float = 0.0
    n_vectors: int = 0
    n_columns: int = 0
    n_leaf_cells: int = 0
    n_postings: int = 0

    @property
    def total_seconds(self) -> float:
        """Total index construction time."""
        return (
            self.pivot_selection_seconds
            + self.pivot_mapping_seconds
            + self.grid_build_seconds
            + self.inverted_index_seconds
        )


@dataclass
class CounterBox:
    """A mutable integer shared between a metric and its instrumentation."""

    count: int = 0

    def add(self, n: int) -> None:
        self.count += int(n)

    def reset(self) -> None:
        self.count = 0
