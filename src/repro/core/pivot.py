"""Pivot selection and pivot-space mapping (paper §III-A, §III-D).

A vector ``x`` is mapped to the pivot space of ``P = {p1..pk}`` as
``x' = [d(p1, x), ..., d(pk, x)]``. Matching vectors are then confined to
a square query region around ``q'`` (Lemma 1) and per-pivot rectangle
query regions (Lemma 2); see :mod:`repro.core.filtering`.

The paper adopts the PCA-based selection of Mao et al. [22]: good pivots
are outliers, but not all outliers are good pivots, so candidates are drawn
from the extremes of the principal components and the most scattering
subset is kept. A random selector and a farthest-first traversal selector
are included as baselines (Fig. 7a compares PCA against random).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.metric import Metric


def _unique_rows(candidates: np.ndarray) -> np.ndarray:
    """Deduplicate candidate pivot rows, preserving first-occurrence order.

    Rows are compared bytewise (a void view over each row), so the
    semantics match hashing ``row.tobytes()``, but the dedup is one
    ``np.unique`` instead of an O(n^2)-ish Python loop: ``return_index``
    yields each distinct row's first occurrence, and sorting those
    indices restores input order.
    """
    candidates = np.ascontiguousarray(candidates)
    if candidates.shape[0] == 0:
        return candidates
    rowbytes = candidates.view(
        np.dtype((np.void, candidates.dtype.itemsize * candidates.shape[1]))
    ).ravel()
    _, first = np.unique(rowbytes, return_index=True)
    return candidates[np.sort(first)]


def select_pivots_random(
    vectors: np.ndarray, n_pivots: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Pick ``n_pivots`` distinct rows uniformly at random (Fig. 7a baseline)."""
    rng = rng or np.random.default_rng(0)
    n = vectors.shape[0]
    if n_pivots >= n:
        return _unique_rows(np.asarray(vectors, dtype=np.float64))[:n_pivots].copy()
    idx = rng.choice(n, size=n_pivots, replace=False)
    return np.asarray(vectors[idx], dtype=np.float64).copy()


def select_pivots_pca(
    vectors: np.ndarray,
    n_pivots: int,
    rng: Optional[np.random.Generator] = None,
    sample_size: int = 4096,
) -> np.ndarray:
    """PCA-based pivot selection in O(|RV|) time (paper §III-D, [22]).

    The data (or a sample of it, to honour the linear-time bound) is
    centred; for each leading principal component the points with the
    maximal and minimal projections are taken as pivot candidates. These
    are outliers along the directions of greatest variance, which is
    exactly the "outliers make good pivots, picked judiciously" recipe of
    Mao et al. Duplicates are dropped and the first ``n_pivots`` survivors
    returned; if components run out, farthest-first traversal fills the rest.
    """
    rng = rng or np.random.default_rng(0)
    vectors = np.asarray(vectors, dtype=np.float64)
    n = vectors.shape[0]
    if n == 0:
        raise ValueError("cannot select pivots from an empty vector set")
    if n <= n_pivots:
        pivots = _unique_rows(vectors)
        return pivots[:n_pivots].copy()

    sample = vectors
    if n > sample_size:
        sample = vectors[rng.choice(n, size=sample_size, replace=False)]
    centred = sample - sample.mean(axis=0, keepdims=True)
    # SVD of the (sampled) data gives principal directions without forming
    # the covariance matrix.
    _, _, vt = np.linalg.svd(centred, full_matrices=False)

    candidates: list[np.ndarray] = []
    for component in vt:
        proj = centred @ component
        candidates.append(sample[int(np.argmax(proj))])
        candidates.append(sample[int(np.argmin(proj))])
        if len(candidates) >= 4 * n_pivots:
            break
    pool = _unique_rows(np.asarray(candidates))

    if pool.shape[0] >= n_pivots:
        return pool[:n_pivots].copy()

    # Not enough distinct extremes (e.g. tiny or degenerate data): top up by
    # farthest-first traversal from the current pool.
    extra = select_pivots_fft(sample, n_pivots, seeds=pool)
    return extra[:n_pivots].copy()


def select_pivots_fft(
    vectors: np.ndarray,
    n_pivots: int,
    seeds: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Farthest-first traversal: greedily pick points far from chosen pivots."""
    rng = rng or np.random.default_rng(0)
    vectors = np.asarray(vectors, dtype=np.float64)
    n = vectors.shape[0]
    if n == 0:
        raise ValueError("cannot select pivots from an empty vector set")
    chosen: list[np.ndarray] = [] if seeds is None else [row for row in seeds]
    if not chosen:
        chosen.append(vectors[int(rng.integers(n))])
    # Maintain the distance from every point to the nearest chosen pivot.
    diff = vectors - chosen[0]
    min_dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    for pivot in chosen[1:]:
        diff = vectors - pivot
        np.minimum(min_dist, np.sqrt(np.einsum("ij,ij->i", diff, diff)), out=min_dist)
    while len(chosen) < n_pivots:
        far = int(np.argmax(min_dist))
        if min_dist[far] == 0.0:
            # All remaining points coincide with chosen pivots; pad randomly.
            chosen.append(vectors[int(rng.integers(n))])
        else:
            chosen.append(vectors[far])
        diff = vectors - chosen[-1]
        np.minimum(min_dist, np.sqrt(np.einsum("ij,ij->i", diff, diff)), out=min_dist)
    return _unique_pad(np.asarray(chosen[:n_pivots]))


def _unique_pad(pivots: np.ndarray) -> np.ndarray:
    """Ensure no two pivots are identical by nudging duplicates slightly."""
    uniq = _unique_rows(pivots)
    if uniq.shape[0] == pivots.shape[0]:
        return pivots
    rng = np.random.default_rng(12345)
    out = [row for row in uniq]
    while len(out) < pivots.shape[0]:
        out.append(uniq[0] + rng.normal(scale=1e-9, size=uniq.shape[1]))
    return np.asarray(out)


PIVOT_SELECTORS = {
    "pca": select_pivots_pca,
    "random": select_pivots_random,
    "fft": select_pivots_fft,
}


class PivotSpace:
    """Holds a pivot set and maps vectors into the pivot space.

    Args:
        pivots: ``(k, dim)`` array of pivot vectors.
        metric: the metric of the *original* space. Must satisfy the
            triangle inequality for the filtering lemmata to be sound.
        extent: upper bound of every pivot-space coordinate — i.e. the
            maximum distance between any vector and any pivot. For
            unit-normalised embeddings this is ``metric.max_distance(dim)``.
    """

    def __init__(self, pivots: np.ndarray, metric: Metric, extent: Optional[float] = None):
        self.pivots = np.asarray(pivots, dtype=np.float64)
        if self.pivots.ndim != 2 or self.pivots.shape[0] == 0:
            raise ValueError("pivots must be a non-empty (k, dim) array")
        self.metric = metric
        self.extent = float(
            extent if extent is not None else metric.max_distance(self.pivots.shape[1])
        )
        if self.extent <= 0:
            raise ValueError("pivot-space extent must be positive")

    @property
    def n_pivots(self) -> int:
        """Dimensionality of the pivot space, |P|."""
        return self.pivots.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality of the original metric space."""
        return self.pivots.shape[1]

    def map_vectors(self, vectors: np.ndarray) -> np.ndarray:
        """Pivot-map ``vectors``: row i becomes ``[d(v_i, p_1) .. d(v_i, p_k)]``.

        Coordinates are clipped to ``[0, extent]`` to guard against float
        drift past the theoretical bound (which would otherwise place a
        vector outside the grid).
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[1] != self.dim:
            raise ValueError(
                f"vector dim {vectors.shape[1]} != pivot dim {self.dim}"
            )
        mapped = self.metric.pairwise(vectors, self.pivots)
        return np.clip(mapped, 0.0, self.extent)


def build_pivot_space(
    vectors: np.ndarray,
    n_pivots: int,
    metric: Metric,
    method: str = "pca",
    rng: Optional[np.random.Generator] = None,
) -> PivotSpace:
    """Select pivots from ``vectors`` with ``method`` and wrap in a PivotSpace."""
    try:
        selector = PIVOT_SELECTORS[method]
    except KeyError:
        known = ", ".join(sorted(PIVOT_SELECTORS))
        raise KeyError(f"unknown pivot selector {method!r}; known: {known}") from None
    pivots = selector(vectors, n_pivots, rng=rng)
    return PivotSpace(pivots, metric)
