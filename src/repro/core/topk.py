"""Top-k joinable column search (extension).

The paper's related work ([1], Bogatu et al.) studies *top-k* dataset
discovery; PEXESO's threshold search extends to exact top-k naturally:
find the k columns with the highest joinability ``jn(Q, S)``, breaking
ties by column ID.

Strategy: run blocking once, then verify with *exact counts* while
maintaining a running k-th-best lower bound ``theta``. The Lemma 7
mismatch bound generalises — a column whose possible match count falls
below ``theta`` can be abandoned. The result provably equals sorting all
exact joinabilities.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.blocker import block
from repro.core.filtering import lemma1_filter_mask, lemma2_match_mask
from repro.core.grid import HierarchicalGrid
from repro.core.index import PexesoIndex
from repro.core.stats import SearchStats


@dataclass
class TopKResult:
    """Top-k hits as ``(column_id, match_count, joinability)`` rows."""

    hits: list[tuple[int, int, float]]
    stats: SearchStats
    tau: float
    k: int

    @property
    def column_ids(self) -> list[int]:
        return [cid for cid, _, _ in self.hits]


def pexeso_topk(
    index: PexesoIndex,
    query_vectors: np.ndarray,
    tau: float,
    k: int,
    stats: Optional[SearchStats] = None,
    theta: int = 0,
) -> TopKResult:
    """Exact top-k columns by joinability.

    Args:
        index: a built :class:`~repro.core.index.PexesoIndex`.
        query_vectors: ``(|Q|, dim)`` query column.
        tau: distance threshold.
        k: number of columns to return (clamped to the repository size).
        theta: external lower bound on the k-th best match count. Columns
            whose possible match count is *strictly* below it are
            abandoned unverified (ties survive, so ID tie-breaking across
            shards stays exact). The partitioned search threads the
            running global k-th best through here so later shards prune
            against earlier shards' results; ``0`` disables the floor.

    Returns:
        Hits sorted by decreasing joinability, ties by ascending column ID.
    """
    if index.pivot_space is None or index.grid is None:
        raise RuntimeError("index is not built; call fit() first")
    if k < 1:
        raise ValueError("k must be at least 1")
    if theta < 0:
        raise ValueError("theta must be non-negative")
    stats = stats if stats is not None else SearchStats()
    query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
    if query_vectors.shape[0] == 0:
        raise ValueError("query column is empty")
    n_q = query_vectors.shape[0]
    k = min(k, index.n_columns)

    query_mapped = index.pivot_space.map_vectors(query_vectors)
    stats.pivot_mapping_distances += query_mapped.size
    hg_q = HierarchicalGrid.build(
        query_mapped, levels=index.levels, extent=index.pivot_space.extent
    )
    pairs = block(hg_q, index.grid, query_mapped, tau, stats=stats)

    started = time.perf_counter()
    # Per column: how many query vectors can still match it. A query vector
    # contributes to a column's potential only if blocking produced a pair
    # touching that column.
    potential: dict[int, int] = {}
    candidate_queries: dict[int, list[int]] = {}
    match_cells_by_q = pairs.match_pairs
    cand_cells_by_q = pairs.candidate_pairs
    proven: dict[int, set[int]] = {}  # column -> query rows proven to match
    pending: dict[int, list[int]] = {}  # column -> query rows needing checks

    for q in set(match_cells_by_q) | set(cand_cells_by_q):
        proven_cols = set()
        if q in match_cells_by_q:
            proven_cols = set(
                index.inverted.columns_in_cells(match_cells_by_q[q])
            )
            for col in proven_cols:
                proven.setdefault(col, set()).add(q)
        if q in cand_cells_by_q:
            for col in index.inverted.columns_in_cells(cand_cells_by_q[q]):
                if col not in proven_cols:
                    pending.setdefault(col, []).append(q)

    counts: dict[int, int] = {col: len(rows) for col, rows in proven.items()}
    upper: dict[int, int] = {}
    for col in set(counts) | set(pending):
        upper[col] = counts.get(col, 0) + len(pending.get(col, []))

    # Process columns in decreasing upper-bound order; stop once the k-th
    # best confirmed count meets the best remaining upper bound.
    heap = [(-bound, col) for col, bound in upper.items()]
    heapq.heapify(heap)
    confirmed: list[tuple[int, int]] = []  # (count, col) exact
    best_k: list[int] = []  # min-heap of top-k counts

    while heap:
        neg_bound, col = heapq.heappop(heap)
        bound = -neg_bound
        floor = max(theta, best_k[0]) if len(best_k) == k else theta
        if bound < floor:
            stats.lemma7_skips += 1 + len(heap)
            break  # nothing left can enter the (global) top-k
        count = counts.get(col, 0)
        for q in pending.get(col, []):
            # Threshold pruning: even if all remaining pending rows match,
            # can this column still beat the current k-th best?
            rows = _column_rows_in_cells(index, cand_cells_by_q[q], col)
            if rows.size == 0:
                continue
            mapped_batch = index.mapped[rows]
            matched = False
            hits2 = lemma2_match_mask(mapped_batch, query_mapped[q], tau)
            if hits2.any():
                stats.lemma2_matched += int(hits2.sum())
                matched = True
            else:
                pruned = lemma1_filter_mask(mapped_batch, query_mapped[q], tau)
                stats.lemma1_filtered += int(pruned.sum())
                survivors = rows[~pruned]
                if survivors.size:
                    distances = index.metric.distances_to(
                        query_vectors[q], index.vectors[survivors]
                    )
                    stats.distance_computations += int(survivors.size)
                    matched = bool((distances <= tau).any())
            if matched:
                count += 1
        confirmed.append((count, col))
        heapq.heappush(best_k, count)
        if len(best_k) > k:
            heapq.heappop(best_k)

    # Only columns with at least one matching query vector participate —
    # a zero-joinability column is not "joinable" in any useful sense, and
    # blocking never surfaces columns with no potential matches anyway.
    confirmed.sort(key=lambda pair: (-pair[0], pair[1]))
    hits = [
        (col, count, count / n_q)
        for count, col in confirmed
        if count > 0 and col in index.column_rows
    ][:k]
    stats.verification_seconds += time.perf_counter() - started
    return TopKResult(hits=hits, stats=stats, tau=float(tau), k=k)


def _column_rows_in_cells(index: PexesoIndex, cells, column_id: int) -> np.ndarray:
    """Global row indices of ``column_id`` inside the given leaf cells."""
    rows: list[int] = []
    for cell in cells:
        for posting in index.inverted.postings(cell):
            if posting.column_id == column_id:
                rows.extend(posting.rows)
                break
    return np.asarray(rows, dtype=np.intp)


def naive_topk(
    columns, query_vectors: np.ndarray, tau: float, k: int, metric=None
) -> list[tuple[int, int, float]]:
    """Exhaustive top-k oracle for tests (zero-match columns excluded)."""
    from repro.core.metric import EuclideanMetric

    metric = metric if metric is not None else EuclideanMetric()
    query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
    n_q = query_vectors.shape[0]
    scored = []
    for cid, column in enumerate(columns):
        pairwise = metric.pairwise(query_vectors, np.atleast_2d(column))
        count = int((pairwise <= tau).any(axis=1).sum())
        if count > 0:
            scored.append((cid, count, count / n_q))
    scored.sort(key=lambda row: (-row[1], row[0]))
    return scored[: min(k, len(columns))]
