"""Threshold recommendation (extension of the paper's §V).

§V tells users to express τ as a fraction of the maximum distance, but
picking the *right* fraction still requires feeling for the embedding
geometry. These helpers recommend thresholds from data:

* :func:`suggest_tau` — smallest τ at which a target fraction of query
  vectors has at least one match (estimated on a sample, using nearest-
  neighbour distances).
* :func:`match_rate_profile` — the τ -> expected-match-rate curve, useful
  for plotting/inspection before committing to an index-wide setting.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.metric import EuclideanMetric, Metric


def _nearest_distances(
    query_vectors: np.ndarray,
    repository_sample: np.ndarray,
    metric: Metric,
    batch: int = 256,
) -> np.ndarray:
    """Distance from each query vector to its nearest sampled neighbour."""
    out = np.empty(query_vectors.shape[0])
    for start in range(0, query_vectors.shape[0], batch):
        chunk = query_vectors[start : start + batch]
        out[start : start + batch] = metric.pairwise(
            chunk, repository_sample
        ).min(axis=1)
    return out


def sample_repository(
    columns: Sequence[np.ndarray],
    max_vectors: int = 4096,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Uniform row sample across the repository's vectors."""
    rng = rng or np.random.default_rng(0)
    stacked = np.concatenate([np.atleast_2d(c) for c in columns], axis=0)
    if stacked.shape[0] <= max_vectors:
        return stacked
    picks = rng.choice(stacked.shape[0], size=max_vectors, replace=False)
    return stacked[picks]


def suggest_tau(
    query_vectors: np.ndarray,
    repository_sample: np.ndarray,
    target_match_rate: float = 0.6,
    metric: Optional[Metric] = None,
) -> float:
    """Smallest τ giving the target per-vector match rate on the sample.

    The match rate at τ is the fraction of query vectors whose nearest
    sampled repository vector lies within τ, so the answer is simply the
    ``target_match_rate`` quantile of the nearest-neighbour distances.

    Args:
        query_vectors: the (embedded) query column.
        repository_sample: sampled repository vectors
            (:func:`sample_repository`).
        target_match_rate: desired fraction of matching query vectors,
            in ``(0, 1]``.
        metric: defaults to Euclidean.
    """
    if not 0.0 < target_match_rate <= 1.0:
        raise ValueError("target match rate must be in (0, 1]")
    metric = metric if metric is not None else EuclideanMetric()
    query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
    nearest = _nearest_distances(query_vectors, repository_sample, metric)
    return float(np.quantile(nearest, target_match_rate))


def match_rate_profile(
    query_vectors: np.ndarray,
    repository_sample: np.ndarray,
    tau_values: Sequence[float],
    metric: Optional[Metric] = None,
) -> dict[float, float]:
    """Expected per-vector match rate for each τ in ``tau_values``."""
    metric = metric if metric is not None else EuclideanMetric()
    query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
    nearest = _nearest_distances(query_vectors, repository_sample, metric)
    return {
        float(tau): float((nearest <= tau).mean()) for tau in tau_values
    }
