"""Verification with the inverted index — Algorithm 2 (paper §III-C).

For every query vector the candidate leaf cells are resolved to columns
through the inverted index and traversed document-at-a-time (columns in
increasing ID order). Within a column the surviving vectors are checked
with point-level pivot filtering (Lemma 1), pivot matching (Lemma 2) and,
only when both are inconclusive, an exact distance computation.

Two early-termination rules from the paper:

* **early accept** — once a column's match count reaches the joinability
  count ``T`` it is marked joinable and skipped from then on;
* **Lemma 7** — once a column has accumulated more than ``|Q| - T``
  provably non-matching query vectors it can never become joinable and is
  skipped from then on.

Mismatch accounting: a query vector ``q`` is counted as a mismatch for
column ``S`` only after *every* candidate vector of ``S`` for ``q`` has
been refuted — blocking guarantees the vectors of ``S`` outside ``q``'s
candidate cells cannot match, so this matches Lemma 7's set ``U`` exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.blocker import BlockResult
from repro.core.filtering import lemma1_filter_mask, lemma2_match_mask
from repro.core.inverted_index import InvertedIndex
from repro.core.metric import Metric
from repro.core.stats import SearchStats


@dataclass
class VerifyResult:
    """Per-column tallies produced by Algorithm 2.

    ``match_counts[c]`` is the number of query vectors with at least one
    matching vector in column ``c``. Under early termination the count of
    a joinable column is a lower bound (it stopped at ``t_count``); with
    ``exact_counts=True`` all counts are exact.
    """

    match_counts: dict[int, int] = field(default_factory=dict)
    mismatch_counts: dict[int, int] = field(default_factory=dict)
    joinable: set[int] = field(default_factory=set)
    exact: bool = False


def verify(
    block_result: BlockResult,
    inverted_index: InvertedIndex,
    query_vectors: np.ndarray,
    query_mapped: np.ndarray,
    target_vectors: np.ndarray,
    target_mapped: np.ndarray,
    metric: Metric,
    tau: float,
    t_count: int,
    stats: Optional[SearchStats] = None,
    use_lemma1: bool = True,
    use_lemma2: bool = True,
    use_lemma7: bool = True,
    early_accept: bool = True,
    exact_counts: bool = False,
) -> VerifyResult:
    """Run Algorithm 2 over the blocking output.

    Args:
        block_result: matching/candidate pairs from Algorithm 1.
        inverted_index: leaf cell -> column postings of the repository.
        query_vectors / query_mapped: original and pivot-mapped query rows.
        target_vectors / target_mapped: the repository's global vector
            store and its pivot mapping (rows addressed by postings).
        metric: original-space metric.
        tau: distance threshold.
        t_count: joinability threshold as an absolute match count.
        stats: counters to update.
        use_lemma1 / use_lemma2 / use_lemma7: ablation switches (Fig. 9).
        early_accept: stop verifying a column once it is joinable.
        exact_counts: disable both early-termination rules so the returned
            match counts are exact joinability numerators (used by tests
            and by callers that need exact ``jn`` values).
    """
    stats = stats if stats is not None else SearchStats()
    started = time.perf_counter()
    result = VerifyResult(exact=exact_counts)
    if exact_counts:
        early_accept = False
        use_lemma7 = False

    n_q = query_vectors.shape[0]
    max_mismatch = n_q - t_count  # mismatches beyond this kill the column
    match_counts = result.match_counts
    mismatch_counts = result.mismatch_counts
    joinable = result.joinable
    dead: set[int] = set()

    query_rows = set(block_result.match_pairs) | set(block_result.candidate_pairs)
    for q in sorted(query_rows):
        q_vec = query_vectors[q]
        q_map = query_mapped[q]
        matched_cols: set[int] = set()

        # -- matching pairs: Lemma 5/6 already proved the match (Alg. 2 l.1–3)
        match_cells = block_result.match_pairs.get(q)
        if match_cells:
            for col in inverted_index.columns_in_cells(match_cells):
                if col in matched_cols:
                    continue
                matched_cols.add(col)
                if col in dead:
                    continue
                if col in joinable and early_accept:
                    continue
                count = match_counts.get(col, 0) + 1
                match_counts[col] = count
                if count >= t_count:
                    joinable.add(col)

        # -- candidate pairs: DaaT over columns (Alg. 2 l.4–20).
        # Columns that can be skipped (already matched by this q, dead by
        # Lemma 7, or early-accepted) are dropped first; the surviving
        # columns' candidate vectors are then checked in ONE batched
        # Lemma 1/2 + distance evaluation and the verdict segmented back
        # per column. The distances computed are exactly those of the
        # per-column loop, only evaluated together.
        cand_cells = block_result.candidate_pairs.get(q)
        if not cand_cells:
            continue
        active_cols: list[int] = []
        row_blocks: list[list[int]] = []
        for col, rows in inverted_index.columns_in_cells(cand_cells).items():
            if col in matched_cols:
                continue
            if col in dead:
                stats.lemma7_skips += 1
                continue
            if col in joinable and early_accept:
                stats.early_accepts += 1
                continue
            active_cols.append(col)
            row_blocks.append(rows)
        if not active_cols:
            continue
        stats.columns_verified += len(active_cols)

        row_idx = np.asarray(
            [r for rows in row_blocks for r in rows], dtype=np.intp
        )
        col_of = np.repeat(
            np.arange(len(active_cols)),
            [len(rows) for rows in row_blocks],
        )
        mapped_batch = target_mapped[row_idx]

        row_matched = np.zeros(row_idx.size, dtype=bool)
        if use_lemma2:
            lemma2_hits = lemma2_match_mask(mapped_batch, q_map, tau)
            stats.lemma2_matched += int(lemma2_hits.sum())
            row_matched |= lemma2_hits
        # A column proven matched by Lemma 2 needs no distance work.
        col_done = np.zeros(len(active_cols), dtype=bool)
        np.logical_or.at(col_done, col_of[row_matched], True)

        undecided = ~row_matched & ~col_done[col_of]
        if use_lemma1 and undecided.any():
            pruned = np.zeros(row_idx.size, dtype=bool)
            pruned[undecided] = lemma1_filter_mask(
                mapped_batch[undecided], q_map, tau
            )
            stats.lemma1_filtered += int(pruned.sum())
            undecided &= ~pruned
        if undecided.any():
            survivors = np.nonzero(undecided)[0]
            distances = metric.distances_to(q_vec, target_vectors[row_idx[survivors]])
            stats.distance_computations += int(survivors.size)
            row_matched[survivors[distances <= tau]] = True
            np.logical_or.at(col_done, col_of[survivors[distances <= tau]], True)

        matched_mask = col_done
        for local, col in enumerate(active_cols):
            if matched_mask[local]:
                matched_cols.add(col)
                count = match_counts.get(col, 0) + 1
                match_counts[col] = count
                if count >= t_count:
                    joinable.add(col)
            else:
                miss = mismatch_counts.get(col, 0) + 1
                mismatch_counts[col] = miss
                if use_lemma7 and miss > max_mismatch:
                    dead.add(col)

    stats.verification_seconds += time.perf_counter() - started
    return result
