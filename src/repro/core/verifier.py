"""Verification with the inverted index — Algorithm 2 (paper §III-C).

For every query vector the candidate leaf cells are resolved to columns
through the inverted index and traversed document-at-a-time (columns in
increasing ID order). Within a column the surviving vectors are checked
with point-level pivot filtering (Lemma 1), pivot matching (Lemma 2) and,
only when both are inconclusive, an exact distance computation.

Two implementations are provided:

* :func:`verify` — the reference implementation, one Python iteration per
  query row (the paper's Algorithm 2 verbatim);
* :func:`verify_row_blocks` — the batch engine's implementation: query
  rows (possibly spanning *many* query columns) are processed in NumPy
  row-blocks, with per-(query, column) state arrays replacing the Python
  dict/set bookkeeping. It reproduces :func:`verify`'s results exactly,
  including the early-termination match counts (see its docstring).

Two early-termination rules from the paper:

* **early accept** — once a column's match count reaches the joinability
  count ``T`` it is marked joinable and skipped from then on;
* **Lemma 7** — once a column has accumulated more than ``|Q| - T``
  provably non-matching query vectors it can never become joinable and is
  skipped from then on.

Mismatch accounting: a query vector ``q`` is counted as a mismatch for
column ``S`` only after *every* candidate vector of ``S`` for ``q`` has
been refuted — blocking guarantees the vectors of ``S`` outside ``q``'s
candidate cells cannot match, so this matches Lemma 7's set ``U`` exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core import kernels
from repro.core.blocker import BlockResult
from repro.core.filtering import lemma1_filter_mask, lemma2_match_mask
from repro.core.inverted_index import InvertedIndex
from repro.core.metric import Metric
from repro.core.stats import SearchStats


@dataclass
class VerifyResult:
    """Per-column tallies produced by Algorithm 2.

    ``match_counts[c]`` is the number of query vectors with at least one
    matching vector in column ``c``. Under early termination the count of
    a joinable column is a lower bound (it stopped at ``t_count``); with
    ``exact_counts=True`` all counts are exact.
    """

    match_counts: dict[int, int] = field(default_factory=dict)
    mismatch_counts: dict[int, int] = field(default_factory=dict)
    joinable: set[int] = field(default_factory=set)
    exact: bool = False


def verify(
    block_result: BlockResult,
    inverted_index: InvertedIndex,
    query_vectors: np.ndarray,
    query_mapped: np.ndarray,
    target_vectors: np.ndarray,
    target_mapped: np.ndarray,
    metric: Metric,
    tau: float,
    t_count: int,
    stats: Optional[SearchStats] = None,
    use_lemma1: bool = True,
    use_lemma2: bool = True,
    use_lemma7: bool = True,
    early_accept: bool = True,
    exact_counts: bool = False,
    allowed_columns: Optional[frozenset] = None,
) -> VerifyResult:
    """Run Algorithm 2 over the blocking output.

    Args:
        block_result: matching/candidate pairs from Algorithm 1.
        inverted_index: leaf cell -> column postings of the repository.
        query_vectors / query_mapped: original and pivot-mapped query rows.
        target_vectors / target_mapped: the repository's global vector
            store and its pivot mapping (rows addressed by postings).
        metric: original-space metric.
        tau: distance threshold.
        t_count: joinability threshold as an absolute match count.
        stats: counters to update.
        use_lemma1 / use_lemma2 / use_lemma7: ablation switches (Fig. 9).
        early_accept: stop verifying a column once it is joinable.
        exact_counts: disable both early-termination rules so the returned
            match counts are exact joinability numerators (used by tests
            and by callers that need exact ``jn`` values).
        allowed_columns: optional ANN candidate restriction — columns
            outside the set are dropped before any bookkeeping, as if the
            blocking output never mentioned them. Verification of the
            allowed columns is untouched (per-column state is
            independent), so restricted results are bit-identical to the
            unrestricted run filtered to the allowed set.
    """
    stats = stats if stats is not None else SearchStats()
    started = time.perf_counter()
    result = VerifyResult(exact=exact_counts)
    if exact_counts:
        early_accept = False
        use_lemma7 = False

    n_q = query_vectors.shape[0]
    max_mismatch = n_q - t_count  # mismatches beyond this kill the column
    match_counts = result.match_counts
    mismatch_counts = result.mismatch_counts
    joinable = result.joinable
    dead: set[int] = set()

    query_rows = set(block_result.match_pairs) | set(block_result.candidate_pairs)
    for q in sorted(query_rows):
        q_vec = query_vectors[q]
        q_map = query_mapped[q]
        matched_cols: set[int] = set()

        # -- matching pairs: Lemma 5/6 already proved the match (Alg. 2 l.1–3)
        match_cells = block_result.match_pairs.get(q)
        if match_cells:
            for col in inverted_index.columns_in_cells(match_cells):
                if allowed_columns is not None and col not in allowed_columns:
                    continue
                if col in matched_cols:
                    continue
                matched_cols.add(col)
                if col in dead:
                    continue
                if col in joinable and early_accept:
                    continue
                count = match_counts.get(col, 0) + 1
                match_counts[col] = count
                if count >= t_count:
                    joinable.add(col)

        # -- candidate pairs: DaaT over columns (Alg. 2 l.4–20).
        # Columns that can be skipped (already matched by this q, dead by
        # Lemma 7, or early-accepted) are dropped first; the surviving
        # columns' candidate vectors are then checked in ONE batched
        # Lemma 1/2 + distance evaluation and the verdict segmented back
        # per column. The distances computed are exactly those of the
        # per-column loop, only evaluated together.
        cand_cells = block_result.candidate_pairs.get(q)
        if not cand_cells:
            continue
        active_cols: list[int] = []
        row_blocks: list[list[int]] = []
        for col, rows in inverted_index.columns_in_cells(cand_cells).items():
            if allowed_columns is not None and col not in allowed_columns:
                continue
            if col in matched_cols:
                continue
            if col in dead:
                stats.lemma7_skips += 1
                continue
            if col in joinable and early_accept:
                stats.early_accepts += 1
                continue
            active_cols.append(col)
            row_blocks.append(rows)
        if not active_cols:
            continue
        stats.columns_verified += len(active_cols)

        row_idx = np.asarray(
            [r for rows in row_blocks for r in rows], dtype=np.intp
        )
        col_of = np.repeat(
            np.arange(len(active_cols)),
            [len(rows) for rows in row_blocks],
        )
        mapped_batch = target_mapped[row_idx]

        row_matched = np.zeros(row_idx.size, dtype=bool)
        if use_lemma2:
            lemma2_hits = lemma2_match_mask(mapped_batch, q_map, tau)
            stats.lemma2_matched += int(lemma2_hits.sum())
            row_matched |= lemma2_hits
        # A column proven matched by Lemma 2 needs no distance work.
        col_done = np.zeros(len(active_cols), dtype=bool)
        np.logical_or.at(col_done, col_of[row_matched], True)

        undecided = ~row_matched & ~col_done[col_of]
        if use_lemma1 and undecided.any():
            pruned = np.zeros(row_idx.size, dtype=bool)
            pruned[undecided] = lemma1_filter_mask(
                mapped_batch[undecided], q_map, tau
            )
            stats.lemma1_filtered += int(pruned.sum())
            undecided &= ~pruned
        if undecided.any():
            survivors = np.nonzero(undecided)[0]
            distances = metric.distances_to(q_vec, target_vectors[row_idx[survivors]])
            stats.distance_computations += int(survivors.size)
            row_matched[survivors[distances <= tau]] = True
            np.logical_or.at(col_done, col_of[survivors[distances <= tau]], True)

        matched_mask = col_done
        for local, col in enumerate(active_cols):
            if matched_mask[local]:
                matched_cols.add(col)
                count = match_counts.get(col, 0) + 1
                match_counts[col] = count
                if count >= t_count:
                    joinable.add(col)
            else:
                miss = mismatch_counts.get(col, 0) + 1
                mismatch_counts[col] = miss
                if use_lemma7 and miss > max_mismatch:
                    dead.add(col)

    stats.verification_seconds += time.perf_counter() - started
    return result


def verify_row_blocks(
    block_result: BlockResult,
    inverted_index: InvertedIndex,
    query_vectors: np.ndarray,
    query_mapped: np.ndarray,
    target_vectors: np.ndarray,
    target_mapped: np.ndarray,
    metric: Metric,
    tau: float,
    t_counts: Sequence[int],
    query_sizes: Sequence[int],
    query_of_row: np.ndarray,
    stats: Optional[SearchStats] = None,
    per_query_stats: Optional[list[SearchStats]] = None,
    use_lemma1: bool = True,
    use_lemma2: bool = True,
    use_lemma7: bool = True,
    early_accept: bool = True,
    exact_counts: bool = False,
    row_block_size: int = 64,
    allowed_columns: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> list[VerifyResult]:
    """Vectorised Algorithm 2 over the stacked rows of a *batch* of queries.

    The per-row Python loop of :func:`verify` is replaced by three layers
    of NumPy batching:

    * rows are consumed ``row_block_size`` at a time, turning one
      Lemma 1/2 + distance evaluation per (row, column) episode into one
      evaluation per block over *all* episodes of all queries in it;
    * per-(query, column) verification state (match count, mismatch count,
      joinable, dead) lives in flat arrays over the *touched* columns —
      the column IDs reachable from this batch's blocking output are
      compacted to a dense range first, so memory scales with what the
      batch can actually see, not with every column ID ever assigned;
    * early termination is decided per block: columns that cannot cross
      the joinability threshold T or the Lemma 7 mismatch bound inside the
      block take a pure array update, and only the rare "firing" columns
      are replayed episode-by-episode with the sequential rules.

    Exactness: the returned joinable sets, match counts and mismatch
    counts are **identical** to running :func:`verify` on each query
    separately (same gating order, same count clamping under early
    termination; exact distances go through the same
    :meth:`~repro.core.metric.Metric.distances_to` per query row as the
    sequential path). The work counters may differ slightly: episodes of
    a column that fires *mid-block* were already pushed through the
    batched Lemma 2 / Lemma 1 / distance evaluation before the replay
    discovers that the sequential algorithm would have skipped them, so
    ``distance_computations``, ``lemma1_filtered`` and ``lemma2_matched``
    can exceed the sequential counts by at most one block's worth per
    firing column (the skip counters ``lemma7_skips`` /
    ``early_accepts`` still mirror the sequential decisions).

    Args:
        block_result: blocking output keyed by *global* (stacked) row.
        query_vectors / query_mapped: all queries' rows stacked
            ``(R, dim)`` / ``(R, |P|)``.
        t_counts: per-query joinability threshold as absolute counts.
        query_sizes: per-query |Q| (rows per query column).
        query_of_row: ``(R,)`` map from global row to query index;
            rows of one query must be contiguous and ascending.
        stats: aggregate counters for the whole batch.
        per_query_stats: optional per-query counter objects (parallel to
            ``query_sizes``); each receives only its query's share.
        row_block_size: rows per processing block.
        allowed_columns: optional per-query ANN candidate restriction —
            one array of allowed column IDs per query (or ``None`` for
            "all columns" on that query). A query's episodes touching a
            column outside its set are dropped before skip accounting,
            evaluation and state updates, exactly as if blocking had
            never surfaced them; allowed columns verify bit-identically
            to the unrestricted run.

    Returns:
        One :class:`VerifyResult` per query, in query order.
    """
    stats = stats if stats is not None else SearchStats()
    started = time.perf_counter()
    lemma_seconds = 0.0  # time inside the Lemma 1/2 mask kernels
    if row_block_size < 1:
        raise ValueError("row_block_size must be >= 1")
    n_queries = len(query_sizes)
    if per_query_stats is not None and len(per_query_stats) != n_queries:
        raise ValueError("per_query_stats must have one entry per query")
    if exact_counts:
        early_accept = False
        use_lemma7 = False

    t_arr = np.asarray(t_counts, dtype=np.int64)
    sizes_arr = np.asarray(query_sizes, dtype=np.int64)
    max_miss = sizes_arr - t_arr  # mismatches beyond this kill the column
    query_of_row = np.asarray(query_of_row, dtype=np.intp)

    # per-query counter accumulators, flushed into the stats objects once
    acc = {
        name: np.zeros(n_queries, dtype=np.int64)
        for name in (
            "distance_computations",
            "lemma1_filtered",
            "lemma2_matched",
            "lemma7_skips",
            "early_accepts",
            "columns_verified",
        )
    }

    rows = sorted(set(block_result.match_pairs) | set(block_result.candidate_pairs))
    n_rows_total = int(query_of_row.size)

    # Rows sharing a grid cell resolve identical cell lists; resolve each
    # distinct list once into flat arrays (column IDs, their target rows
    # concatenated, and per-column segment lengths) — one searchsorted
    # range gather each over the CSR inverted index.
    resolve_cache: dict[tuple, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    col_arrays: list[np.ndarray] = []
    for pairs in (block_result.match_pairs, block_result.candidate_pairs):
        for cells in pairs.values():
            key = tuple(cells)
            if key in resolve_cache:
                continue
            cols, flat, lens = inverted_index.columns_in_cells_arrays(cells)
            resolve_cache[key] = (cols, flat, lens)
            col_arrays.append(cols)

    # Compact the touched column IDs to a dense range so the state arrays
    # are O(batch x touched columns), not O(batch x all columns ever).
    touched = (
        np.unique(np.concatenate(col_arrays))
        if col_arrays
        else np.zeros(0, dtype=np.int64)
    )
    for key, (cols, flat, lens) in resolve_cache.items():
        resolve_cache[key] = (np.searchsorted(touched, cols), flat, lens)
    resolve = resolve_cache.__getitem__

    # Per-(query, touched column) admission mask for the ANN candidate
    # restriction; None means every episode is admitted.
    allowed_flat: Optional[np.ndarray] = None
    if allowed_columns is not None:
        if len(allowed_columns) != n_queries:
            raise ValueError("allowed_columns must have one entry per query")
        allowed_flat = np.ones(n_queries * max(1, int(touched.size)), dtype=bool)
        for q_idx, allowed in enumerate(allowed_columns):
            if allowed is None:
                continue
            mask = np.isin(touched, np.asarray(allowed, dtype=np.int64))
            allowed_flat[q_idx * touched.size : (q_idx + 1) * touched.size] = mask

    C = max(1, int(touched.size))
    counts = np.zeros(n_queries * C, dtype=np.int64)
    misses = np.zeros(n_queries * C, dtype=np.int64)
    joinable = np.zeros(n_queries * C, dtype=bool)
    dead = np.zeros(n_queries * C, dtype=bool)

    for start in range(0, len(rows), row_block_size):
        block_rows = rows[start : start + row_block_size]

        # -- episode assembly: one episode per (row, column) pair, in the
        # sequential processing order (rows ascending; within a row the
        # blocking-proven matches come first, as in Alg. 2 l.1–3). All
        # per-episode structures are cached arrays, no per-episode Python.
        seg_cols: list[np.ndarray] = []  # column IDs of one (row, kind) segment
        seg_row: list[int] = []
        seg_size: list[int] = []
        seg_kind: list[bool] = []
        pair_rows_parts: list[np.ndarray] = []
        cand_lens_parts: list[np.ndarray] = []
        match_pairs_get = block_result.match_pairs.get
        candidate_pairs_get = block_result.candidate_pairs.get
        for r in block_rows:
            mcells = match_pairs_get(r)
            if mcells:
                mcols, _, _ = resolve(tuple(mcells))
                if mcols.size:
                    seg_cols.append(mcols)
                    seg_row.append(r)
                    seg_size.append(mcols.size)
                    seg_kind.append(True)
            ccells = candidate_pairs_get(r)
            if ccells:
                ccols, flat, lens = resolve(tuple(ccells))
                if ccols.size:
                    seg_cols.append(ccols)
                    seg_row.append(r)
                    seg_size.append(ccols.size)
                    seg_kind.append(False)
                    pair_rows_parts.append(flat)
                    cand_lens_parts.append(lens)
        if not seg_cols:
            continue
        sizes_seg = np.asarray(seg_size, dtype=np.intp)
        qrow_a = np.repeat(np.asarray(seg_row, dtype=np.intp), sizes_seg)
        kind_a = np.repeat(np.asarray(seg_kind, dtype=bool), sizes_seg)
        q_of_ep = query_of_row[qrow_a]
        key_a = np.concatenate(seg_cols) + q_of_ep.astype(np.int64) * C
        cand_mask = ~kind_a
        cand_idx = np.nonzero(cand_mask)[0]
        cand_lens = (
            np.concatenate(cand_lens_parts)
            if cand_lens_parts
            else np.zeros(0, dtype=np.intp)
        )
        pair_rows_all = (
            np.concatenate(pair_rows_parts)
            if pair_rows_parts
            else np.zeros(0, dtype=np.intp)
        )

        # A column appearing in both lists of one row is counted once, via
        # the match path (the sequential ``matched_cols`` dedup).
        removed = np.zeros(key_a.size, dtype=bool)
        if cand_idx.size and kind_a.any():
            combo = key_a * n_rows_total + qrow_a
            dup = np.isin(combo[cand_idx], combo[kind_a])
            removed[cand_idx[dup]] = True
        # Episodes outside a query's ANN candidate set are dropped before
        # skip accounting and evaluation — the sequential path never saw
        # them either, so no counter or state may move.
        if allowed_flat is not None:
            removed |= ~allowed_flat[key_a]

        # -- block-start skips: columns already dead (Lemma 7) or already
        # accepted are exactly what the sequential loop would skip.
        dead_skip = dead[key_a] & ~removed
        acc_skip = (
            joinable[key_a] & ~dead_skip & ~removed
            if early_accept
            else np.zeros_like(dead_skip)
        )
        skip = dead_skip | acc_skip
        if dead_skip.any():
            np.add.at(acc["lemma7_skips"], q_of_ep[dead_skip & cand_mask], 1)
        if acc_skip.any():
            np.add.at(acc["early_accepts"], q_of_ep[acc_skip & cand_mask], 1)
        active = ~removed & ~skip

        # -- one batched Lemma 2 / Lemma 1 / distance evaluation for every
        # candidate episode of the block (Alg. 2 l.4–20, all rows at once).
        ep_done = np.zeros(key_a.size, dtype=bool)
        eval_ep = active & cand_mask
        pair_ep_all = np.repeat(cand_idx, cand_lens)
        pair_keep = eval_ep[pair_ep_all]
        if pair_keep.any():
            pair_ep = pair_ep_all[pair_keep]
            pair_t = pair_rows_all[pair_keep]
            pair_qrow = qrow_a[pair_ep]
            q_of_pair = q_of_ep[pair_ep]
            t_map = target_mapped[pair_t]
            q_map = query_mapped[pair_qrow]
            pair_hit = np.zeros(pair_t.size, dtype=bool)
            if use_lemma2:
                lemma_started = time.perf_counter()
                pair_hit = lemma2_match_mask(t_map, q_map, tau)
                lemma_seconds += time.perf_counter() - lemma_started
                np.add.at(acc["lemma2_matched"], q_of_pair[pair_hit], 1)
                np.logical_or.at(ep_done, pair_ep[pair_hit], True)
            undecided = ~pair_hit & ~ep_done[pair_ep]
            if use_lemma1 and undecided.any():
                u = np.nonzero(undecided)[0]
                lemma_started = time.perf_counter()
                pruned = lemma1_filter_mask(t_map[u], q_map[u], tau)
                lemma_seconds += time.perf_counter() - lemma_started
                np.add.at(acc["lemma1_filtered"], q_of_pair[u[pruned]], 1)
                undecided[u[pruned]] = False
            if undecided.any():
                sv = np.nonzero(undecided)[0]
                # One distances_to call per query row — the identical code
                # path (and arithmetic) the sequential verifier uses.
                # pair_qrow is non-decreasing, so rows form contiguous runs.
                sv_qrow = pair_qrow[sv]
                distances = np.empty(sv.size)
                starts = np.nonzero(np.diff(sv_qrow) != 0)[0] + 1
                bounds = np.concatenate(([0], starts, [sv.size]))
                for lo_b, hi_b in zip(bounds[:-1], bounds[1:]):
                    distances[lo_b:hi_b] = metric.distances_to(
                        query_vectors[sv_qrow[lo_b]],
                        target_vectors[pair_t[sv[lo_b:hi_b]]],
                    )
                np.add.at(acc["distance_computations"], q_of_pair[sv], 1)
                ok = sv[distances <= tau]
                np.logical_or.at(ep_done, pair_ep[ok], True)
        ep_matched = kind_a | ep_done

        # -- state update. Columns that cannot fire (cross T or the
        # Lemma 7 bound) inside this block take the pure array path;
        # firing columns are replayed with the exact sequential gating.
        sim_idx = np.nonzero(active)[0]
        if sim_idx.size == 0:
            continue
        keys = key_a[sim_idx]
        matched = ep_matched[sim_idx]
        kinds = kind_a[sim_idx]
        q_sim = q_of_ep[sim_idx]
        uniq, inv = np.unique(keys, return_inverse=True)
        tot = np.bincount(inv)
        tot_m = np.bincount(inv, weights=matched).astype(np.int64)
        tot_x = tot - tot_m
        qk = (uniq // C).astype(np.intp)
        fire = np.zeros(uniq.size, dtype=bool)
        if early_accept:
            fire |= (counts[uniq] + tot_m) >= t_arr[qk]
        if use_lemma7:
            fire |= (misses[uniq] + tot_x) > max_miss[qk]
        safe = ~fire
        safe_keys = uniq[safe]
        counts[safe_keys] += tot_m[safe]
        misses[safe_keys] += tot_x[safe]
        joinable[safe_keys] |= counts[safe_keys] >= t_arr[qk[safe]]
        fired_ep = fire[inv]
        np.add.at(acc["columns_verified"], q_sim[~kinds & ~fired_ep], 1)

        if fire.any():
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            fired_keys = uniq[fire]
            lows = np.searchsorted(sorted_keys, fired_keys, side="left")
            highs = np.searchsorted(sorted_keys, fired_keys, side="right")
            for k, lo, hi in zip(fired_keys.tolist(), lows.tolist(), highs.tolist()):
                eps = order[lo:hi]  # episode positions, original order
                q_idx = k // C
                # The per-episode gating (dead keys were skipped at block
                # start, so the replay starts live) runs through the
                # active kernel backend — pure integer bookkeeping,
                # bit-identical on every backend.
                cnt, mis, joi, dd, l7, ea, cv = kernels.replay_column(
                    ~kinds[eps],
                    matched[eps],
                    int(counts[k]),
                    int(misses[k]),
                    bool(joinable[k]),
                    int(t_arr[q_idx]),
                    int(max_miss[q_idx]),
                    use_lemma7,
                    early_accept,
                )
                acc["lemma7_skips"][q_idx] += l7
                acc["early_accepts"][q_idx] += ea
                acc["columns_verified"][q_idx] += cv
                counts[k] = cnt
                misses[k] = mis
                joinable[k] = joi
                if dd:
                    dead[k] = True

    results: list[VerifyResult] = []
    for q_idx in range(n_queries):
        seg = slice(q_idx * C, (q_idx + 1) * C)
        seg_counts = counts[seg]
        seg_miss = misses[seg]
        verdict = VerifyResult(exact=exact_counts)
        verdict.match_counts = {
            int(touched[c]): int(seg_counts[c]) for c in np.nonzero(seg_counts)[0]
        }
        verdict.mismatch_counts = {
            int(touched[c]): int(seg_miss[c]) for c in np.nonzero(seg_miss)[0]
        }
        verdict.joinable = {int(touched[c]) for c in np.nonzero(joinable[seg])[0]}
        results.append(verdict)

    elapsed = time.perf_counter() - started
    stats.verification_seconds += elapsed
    # disjoint stage split: lemma-mask kernels vs. the rest of verify,
    # so per-stage timings sum to (at most) the wall clock
    stats.stage_seconds.add("lemma_filter", lemma_seconds)
    stats.stage_seconds.add("verify", max(0.0, elapsed - lemma_seconds))
    for name, arr in acc.items():
        setattr(stats, name, getattr(stats, name) + int(arr.sum()))
    if per_query_stats is not None:
        for q_idx, query_stats in enumerate(per_query_stats):
            for name, arr in acc.items():
                setattr(query_stats, name, getattr(query_stats, name) + int(arr[q_idx]))
    return results
