"""EPT baseline: pivot-table range search with extreme pivots (§VI-A, [29]).

Ruiz et al.'s Extreme Pivot Table stores, for every object, precomputed
distances to a set of pivots chosen to be *extreme* — pivots whose
distance distribution puts objects far from the mean ``μ_p``, which
maximises the per-pivot pruning probability. A range query computes the
query-to-pivot distances once, prunes every object with
``|d(q, p) - d(x, p)| > τ`` for some pivot (Lemma 1, point-wise), and
verifies the survivors exactly.

Implementation note: we keep the full ``n x L`` distance table and filter
with *all* pivots (LAESA-style), selecting the pivot set by the extremeness
criterion ``argmax E|d(x, p) - μ_p|`` over a candidate sample. This is at
least as strong a filter as assigning each object a single extreme pivot
and is the variant recommended in [4] for its robustness.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.core.metric import EuclideanMetric, Metric
from repro.core.search import JoinableColumn, SearchResult
from repro.core.stats import SearchStats
from repro.core.thresholds import joinability_count


class ExtremePivotTable:
    """Pivot table with extremeness-driven pivot selection.

    Args:
        vectors: ``(n, dim)`` points to index.
        n_pivots: table width L.
        metric: metric satisfying the triangle inequality.
        n_candidates: sample size for the extremeness search.
        seed: candidate sampling randomness.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        n_pivots: int = 5,
        metric: Optional[Metric] = None,
        n_candidates: int = 32,
        seed: int = 0,
        stats: Optional[SearchStats] = None,
    ):
        self.metric = metric if metric is not None else EuclideanMetric()
        self.stats = stats if stats is not None else SearchStats()
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        self.vectors = vectors
        rng = np.random.default_rng(seed)
        n = vectors.shape[0]
        n_pivots = max(1, min(n_pivots, n))
        candidates = vectors[
            rng.choice(n, size=min(n_candidates, n), replace=False)
        ]
        cand_dists = self.metric.pairwise(candidates, vectors)
        self.stats.distance_computations += cand_dists.size
        # Extremeness score: mean absolute deviation of the pivot's
        # distance distribution (large -> strong pruning power).
        mu = cand_dists.mean(axis=1, keepdims=True)
        scores = np.abs(cand_dists - mu).mean(axis=1)
        order = np.argsort(scores)[::-1]
        picked = order[:n_pivots]
        self.pivots = candidates[picked].copy()
        self.table = cand_dists[picked].T.copy()  # (n, L) distances

    def range_query(self, query: np.ndarray, radius: float) -> np.ndarray:
        """Row indices of all points within ``radius`` of ``query`` (exact)."""
        q_dists = self.metric.distances_to(query, self.pivots)
        self.stats.distance_computations += self.pivots.shape[0]
        keep = (np.abs(self.table - q_dists[None, :]) <= radius).all(axis=1)
        survivors = np.nonzero(keep)[0]
        if survivors.size == 0:
            return survivors
        exact = self.metric.distances_to(query, self.vectors[survivors])
        self.stats.distance_computations += int(survivors.size)
        return survivors[exact <= radius]

    def memory_bytes(self) -> int:
        """Pivot table footprint excluding raw vectors (Fig. 6b)."""
        return int(self.table.nbytes + self.pivots.nbytes)


def build_ept_index(
    columns: Sequence[np.ndarray],
    n_pivots: int = 5,
    metric: Optional[Metric] = None,
    seed: int = 0,
    stats: Optional[SearchStats] = None,
) -> tuple[ExtremePivotTable, np.ndarray]:
    """Build one EPT over all columns plus the row->column map."""
    arrays = [np.atleast_2d(np.asarray(c, dtype=np.float64)) for c in columns]
    all_vectors = np.concatenate(arrays, axis=0)
    column_of_row = np.concatenate(
        [np.full(arr.shape[0], cid, dtype=np.intp) for cid, arr in enumerate(arrays)]
    )
    table = ExtremePivotTable(
        all_vectors, n_pivots=n_pivots, metric=metric, seed=seed, stats=stats
    )
    return table, column_of_row


def ept_search(
    columns: Sequence[np.ndarray],
    query_vectors: np.ndarray,
    tau: float,
    joinability: float | int,
    n_pivots: int = 5,
    metric: Optional[Metric] = None,
    table: Optional[ExtremePivotTable] = None,
    column_of_row: Optional[np.ndarray] = None,
    stats: Optional[SearchStats] = None,
) -> SearchResult:
    """Joinable-column search via EPT range queries (Table VII).

    A prebuilt ``table`` (and its row->column map) can be supplied so
    benchmarks exclude construction from the measured search time.
    """
    stats = stats if stats is not None else SearchStats()
    query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
    n_q = query_vectors.shape[0]
    t_count = joinability_count(joinability, n_q)

    if table is None or column_of_row is None:
        table, column_of_row = build_ept_index(
            columns, n_pivots=n_pivots, metric=metric, stats=stats
        )
    table.stats = stats

    started = time.perf_counter()
    match_counts: dict[int, int] = {}
    joinable: set[int] = set()
    for q in range(n_q):
        rows = table.range_query(query_vectors[q], tau)
        for col in {int(column_of_row[row]) for row in rows}:
            if col in joinable:
                continue
            match_counts[col] = match_counts.get(col, 0) + 1
            if match_counts[col] >= t_count:
                joinable.add(col)
    stats.verification_seconds += time.perf_counter() - started

    hits = [
        JoinableColumn(
            column_id=col,
            match_count=match_counts[col],
            joinability=match_counts[col] / n_q,
            exact_count=False,
        )
        for col in sorted(joinable)
    ]
    return SearchResult(
        joinable=hits, stats=stats, tau=float(tau), t_count=t_count, query_size=n_q
    )
