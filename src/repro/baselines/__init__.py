"""Baselines the paper compares against.

Efficiency baselines (Table VII, Figs. 6/8/10): naive exhaustive scan,
PEXESO-H (grid blocking + naive verification), CTREE (cover tree), EPT
(extreme pivot table) and PQ (product quantization, approximate).

Effectiveness baselines (Tables IV/V): equi-join, Jaccard-join, edit-join,
fuzzy-join and TF-IDF-join over the raw strings.
"""

from repro.baselines.exact_naive import naive_search
from repro.baselines.pexeso_h import pexeso_h_search
from repro.baselines.cover_tree import CoverTree, ctree_search
from repro.baselines.ept import ExtremePivotTable, ept_search
from repro.baselines.pq import ProductQuantizer, PQRangeIndex, pq_search
from repro.baselines.string_joins import (
    edit_join_search,
    equi_join_search,
    fuzzy_join_search,
    jaccard_join_search,
    tfidf_join_search,
)

__all__ = [
    "CoverTree",
    "ExtremePivotTable",
    "PQRangeIndex",
    "ProductQuantizer",
    "ctree_search",
    "edit_join_search",
    "ept_search",
    "equi_join_search",
    "fuzzy_join_search",
    "jaccard_join_search",
    "naive_search",
    "pexeso_h_search",
    "pq_search",
    "tfidf_join_search",
]
