"""String-similarity join baselines over raw (pre-embedding) columns.

These implement the competitors of Tables IV and V, which match records
by string predicates instead of embedding distance:

* **equi-join** [37] — exact string equality;
* **Jaccard-join** — word-token Jaccard >= θ;
* **edit-join** — normalised edit similarity >= θ;
* **fuzzy-join** [32] — fuzzy token matching >= θ;
* **TF-IDF-join** [6] — TF-IDF cosine >= θ.

Each search uses the paper's joinability semantics (count query records
with at least one matching record in the target column, normalised by
|Q|) and the shared early-accept rule.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from repro.core.search import JoinableColumn, SearchResult
from repro.core.stats import SearchStats
from repro.core.thresholds import joinability_count
from repro.text.similarity import (
    TfidfVectorizer,
    cosine_similarity,
    fuzzy_token_similarity,
    jaccard_similarity,
)
from repro.text.edit_distance import edit_similarity

StringColumns = Sequence[Sequence[str]]


def _similarity_join_search(
    columns: StringColumns,
    query_strings: Sequence[str],
    match_fn: Callable[[str, str], bool],
    joinability: float | int,
    stats: Optional[SearchStats] = None,
) -> SearchResult:
    """Generic thresholded-similarity joinable-column search."""
    stats = stats if stats is not None else SearchStats()
    n_q = len(query_strings)
    t_count = joinability_count(joinability, n_q)

    started = time.perf_counter()
    hits: list[JoinableColumn] = []
    for column_id, column in enumerate(columns):
        count = 0
        remaining = n_q
        for q_value in query_strings:
            if any(match_fn(q_value, value) for value in column):
                count += 1
                if count >= t_count:
                    break
            remaining -= 1
            if count + remaining < t_count:
                break
        if count >= t_count:
            hits.append(
                JoinableColumn(
                    column_id=column_id,
                    match_count=count,
                    joinability=count / n_q,
                    exact_count=False,
                )
            )
    stats.verification_seconds += time.perf_counter() - started
    return SearchResult(
        joinable=hits, stats=stats, tau=0.0, t_count=t_count, query_size=n_q
    )


def equi_join_search(
    columns: StringColumns,
    query_strings: Sequence[str],
    joinability: float | int,
    stats: Optional[SearchStats] = None,
) -> SearchResult:
    """Equi-join: exact string equality, set-accelerated [37]."""
    stats = stats if stats is not None else SearchStats()
    n_q = len(query_strings)
    t_count = joinability_count(joinability, n_q)
    started = time.perf_counter()
    hits: list[JoinableColumn] = []
    for column_id, column in enumerate(columns):
        values = set(column)
        count = sum(1 for q_value in query_strings if q_value in values)
        if count >= t_count:
            hits.append(
                JoinableColumn(
                    column_id=column_id,
                    match_count=count,
                    joinability=count / n_q,
                    exact_count=True,
                )
            )
    stats.verification_seconds += time.perf_counter() - started
    return SearchResult(
        joinable=hits, stats=stats, tau=0.0, t_count=t_count, query_size=n_q
    )


def jaccard_join_search(
    columns: StringColumns,
    query_strings: Sequence[str],
    joinability: float | int,
    theta: float = 0.7,
    stats: Optional[SearchStats] = None,
) -> SearchResult:
    """Jaccard-join: word-token Jaccard similarity >= ``theta``."""
    return _similarity_join_search(
        columns,
        query_strings,
        lambda a, b: jaccard_similarity(a, b) >= theta,
        joinability,
        stats=stats,
    )


def edit_join_search(
    columns: StringColumns,
    query_strings: Sequence[str],
    joinability: float | int,
    theta: float = 0.8,
    stats: Optional[SearchStats] = None,
) -> SearchResult:
    """Edit-join: normalised edit similarity >= ``theta``."""
    return _similarity_join_search(
        columns,
        query_strings,
        lambda a, b: edit_similarity(a, b) >= theta,
        joinability,
        stats=stats,
    )


def fuzzy_join_search(
    columns: StringColumns,
    query_strings: Sequence[str],
    joinability: float | int,
    theta: float = 0.6,
    delta: float = 0.8,
    stats: Optional[SearchStats] = None,
) -> SearchResult:
    """Fuzzy-join: token-and-character fuzzy similarity >= ``theta`` [32]."""
    return _similarity_join_search(
        columns,
        query_strings,
        lambda a, b: fuzzy_token_similarity(a, b, delta=delta) >= theta,
        joinability,
        stats=stats,
    )


def tfidf_join_search(
    columns: StringColumns,
    query_strings: Sequence[str],
    joinability: float | int,
    theta: float = 0.7,
    stats: Optional[SearchStats] = None,
) -> SearchResult:
    """TF-IDF-join: cosine of TF-IDF vectors >= ``theta`` [6].

    The vectoriser is fitted on the union of the repository and the query
    strings, then column records are matched by sparse cosine.
    """
    stats = stats if stats is not None else SearchStats()
    corpus = [value for column in columns for value in column]
    corpus.extend(query_strings)
    vectorizer = TfidfVectorizer().fit(corpus)
    query_vectors = [vectorizer.vector(q_value) for q_value in query_strings]
    n_q = len(query_strings)
    t_count = joinability_count(joinability, n_q)

    started = time.perf_counter()
    hits: list[JoinableColumn] = []
    for column_id, column in enumerate(columns):
        column_vectors = [vectorizer.vector(value) for value in column]
        count = 0
        remaining = n_q
        for q_vec in query_vectors:
            if any(
                cosine_similarity(q_vec, c_vec) >= theta for c_vec in column_vectors
            ):
                count += 1
                if count >= t_count:
                    break
            remaining -= 1
            if count + remaining < t_count:
                break
        if count >= t_count:
            hits.append(
                JoinableColumn(
                    column_id=column_id,
                    match_count=count,
                    joinability=count / n_q,
                    exact_count=False,
                )
            )
    stats.verification_seconds += time.perf_counter() - started
    return SearchResult(
        joinable=hits, stats=stats, tau=0.0, t_count=t_count, query_size=n_q
    )
