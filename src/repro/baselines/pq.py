"""PQ baseline: approximate range search with product quantization ([16], §VI-A).

The vector space is split into ``M`` subspaces; each subspace is quantised
with a ``ks``-centroid codebook (k-means); a vector's code is the tuple of
its nearest centroids. A query's *asymmetric distance* (ADC) to a coded
vector is the root of the summed squared subspace distances between the
query's subvectors and the vector's centroids.

Range queries return every vector whose ADC estimate is within
``radius_scale * τ``. Because ADC is only an estimate, the result is
approximate; :func:`calibrate_radius_scale` tunes ``radius_scale`` until a
target range-query recall (the paper's PQ-75 / PQ-85 variants) is met on a
held-out sample. The paper uses this baseline to show that approximate
matching collapses joinable-table precision/recall (Table IV, Fig. 8).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.core.clustering import lloyd_kmeans
from repro.core.metric import EuclideanMetric, Metric
from repro.core.search import JoinableColumn, SearchResult
from repro.core.stats import SearchStats
from repro.core.thresholds import joinability_count


class ProductQuantizer:
    """Codebook learner / encoder for one vector population.

    Args:
        n_subspaces: M, the number of subvector blocks.
        n_centroids: ks, codebook size per subspace (<= 256).
        n_iter: k-means iterations per codebook.
        seed: randomness for codebook initialisation.
    """

    def __init__(
        self,
        n_subspaces: int = 4,
        n_centroids: int = 32,
        n_iter: int = 15,
        seed: int = 0,
    ):
        if n_subspaces < 1:
            raise ValueError("need at least one subspace")
        if not 1 <= n_centroids <= 256:
            raise ValueError("n_centroids must be in [1, 256]")
        self.n_subspaces = n_subspaces
        self.n_centroids = n_centroids
        self.n_iter = n_iter
        self.seed = seed
        self.codebooks: list[np.ndarray] = []
        self._bounds: list[tuple[int, int]] = []

    def fit(self, vectors: np.ndarray) -> "ProductQuantizer":
        """Learn one codebook per subspace from ``vectors``."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        dim = vectors.shape[1]
        if self.n_subspaces > dim:
            raise ValueError("more subspaces than dimensions")
        edges = np.linspace(0, dim, self.n_subspaces + 1).astype(int)
        self._bounds = [(int(edges[i]), int(edges[i + 1])) for i in range(self.n_subspaces)]
        rng = np.random.default_rng(self.seed)
        self.codebooks = []
        for lo, hi in self._bounds:
            k = min(self.n_centroids, vectors.shape[0])
            _, centers = lloyd_kmeans(vectors[:, lo:hi], k, n_iter=self.n_iter, rng=rng)
            self.codebooks.append(centers)
        return self

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Quantise rows into ``(n, M)`` centroid indices."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        codes = np.empty((vectors.shape[0], self.n_subspaces), dtype=np.uint8)
        for m, (lo, hi) in enumerate(self._bounds):
            sub = vectors[:, lo:hi]
            centers = self.codebooks[m]
            aa = np.einsum("ij,ij->i", sub, sub)[:, None]
            bb = np.einsum("ij,ij->i", centers, centers)[None, :]
            dist = aa + bb - 2.0 * sub @ centers.T
            codes[:, m] = np.argmin(dist, axis=1)
        return codes

    def adc_table(self, query: np.ndarray) -> np.ndarray:
        """Squared-distance lookup table ``(M, ks)`` for one query (ADC)."""
        query = np.asarray(query, dtype=np.float64)
        table = np.zeros((self.n_subspaces, max(len(c) for c in self.codebooks)))
        for m, (lo, hi) in enumerate(self._bounds):
            diff = self.codebooks[m] - query[lo:hi][None, :]
            table[m, : len(self.codebooks[m])] = np.einsum("ij,ij->i", diff, diff)
        return table

    def approximate_distances(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """ADC distance estimates from ``query`` to every coded row."""
        table = self.adc_table(query)
        sq = np.zeros(codes.shape[0])
        for m in range(self.n_subspaces):
            sq += table[m, codes[:, m]]
        return np.sqrt(np.maximum(sq, 0.0))


class PQRangeIndex:
    """PQ-coded repository supporting approximate range queries."""

    def __init__(
        self,
        vectors: np.ndarray,
        quantizer: Optional[ProductQuantizer] = None,
        radius_scale: float = 1.0,
    ):
        self.vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        self.quantizer = quantizer if quantizer is not None else ProductQuantizer()
        if not self.quantizer.codebooks:
            self.quantizer.fit(self.vectors)
        self.codes = self.quantizer.encode(self.vectors)
        self.radius_scale = float(radius_scale)

    def range_query(self, query: np.ndarray, radius: float) -> np.ndarray:
        """Rows whose *estimated* distance is within ``radius_scale * radius``."""
        approx = self.quantizer.approximate_distances(query, self.codes)
        return np.nonzero(approx <= radius * self.radius_scale)[0]

    def memory_bytes(self) -> int:
        """Codes + codebooks footprint (Fig. 6b)."""
        total = self.codes.nbytes
        total += sum(c.nbytes for c in self.quantizer.codebooks)
        return int(total)


def calibrate_radius_scale(
    index: PQRangeIndex,
    sample_queries: np.ndarray,
    tau: float,
    target_recall: float,
    metric: Optional[Metric] = None,
    max_scale: float = 8.0,
) -> float:
    """Smallest radius scale achieving ``target_recall`` on sample queries.

    Reproduces the paper's "adjust PQ to make the recall of range query at
    least 75% / 85%" protocol: ground truth is computed exactly for the
    sample, then the ADC radius multiplier is grown until recall reaches
    the target (binary search to 1e-2 resolution).
    """
    if not 0.0 < target_recall <= 1.0:
        raise ValueError("target recall must be in (0, 1]")
    metric = metric if metric is not None else EuclideanMetric()
    sample_queries = np.atleast_2d(np.asarray(sample_queries, dtype=np.float64))

    truths = []
    for q in sample_queries:
        exact = metric.distances_to(q, index.vectors)
        truths.append(set(np.nonzero(exact <= tau)[0].tolist()))
    total_truth = sum(len(t) for t in truths)
    if total_truth == 0:
        return 1.0

    def recall_at(scale: float) -> float:
        found = 0
        for q, truth in zip(sample_queries, truths):
            approx = index.quantizer.approximate_distances(q, index.codes)
            hits = set(np.nonzero(approx <= tau * scale)[0].tolist())
            found += len(hits & truth)
        return found / total_truth

    lo, hi = 0.0, 1.0
    while recall_at(hi) < target_recall and hi < max_scale:
        lo, hi = hi, hi * 2.0
    for _ in range(10):
        mid = (lo + hi) / 2.0
        if recall_at(mid) >= target_recall:
            hi = mid
        else:
            lo = mid
    return hi


def build_pq_index(
    columns: Sequence[np.ndarray],
    n_subspaces: int = 4,
    n_centroids: int = 32,
    radius_scale: float = 1.0,
    seed: int = 0,
) -> tuple[PQRangeIndex, np.ndarray]:
    """Build one PQ index over all columns plus the row->column map."""
    arrays = [np.atleast_2d(np.asarray(c, dtype=np.float64)) for c in columns]
    all_vectors = np.concatenate(arrays, axis=0)
    column_of_row = np.concatenate(
        [np.full(arr.shape[0], cid, dtype=np.intp) for cid, arr in enumerate(arrays)]
    )
    quantizer = ProductQuantizer(
        n_subspaces=n_subspaces, n_centroids=n_centroids, seed=seed
    ).fit(all_vectors)
    index = PQRangeIndex(all_vectors, quantizer, radius_scale=radius_scale)
    return index, column_of_row


def pq_search(
    columns: Sequence[np.ndarray],
    query_vectors: np.ndarray,
    tau: float,
    joinability: float | int,
    index: Optional[PQRangeIndex] = None,
    column_of_row: Optional[np.ndarray] = None,
    n_subspaces: int = 4,
    n_centroids: int = 32,
    radius_scale: float = 1.0,
    seed: int = 0,
    stats: Optional[SearchStats] = None,
) -> SearchResult:
    """Approximate joinable-column search with PQ range queries.

    The match decisions come straight from the ADC estimates — no exact
    verification — which is what makes this baseline fast but unreliable
    for the joinable-table problem (Table IV's "our join with PQ-85").
    """
    stats = stats if stats is not None else SearchStats()
    query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
    n_q = query_vectors.shape[0]
    t_count = joinability_count(joinability, n_q)
    if index is None or column_of_row is None:
        index, column_of_row = build_pq_index(
            columns,
            n_subspaces=n_subspaces,
            n_centroids=n_centroids,
            radius_scale=radius_scale,
            seed=seed,
        )

    started = time.perf_counter()
    match_counts: dict[int, int] = {}
    joinable: set[int] = set()
    for q in range(n_q):
        rows = index.range_query(query_vectors[q], tau)
        for col in {int(column_of_row[row]) for row in rows}:
            if col in joinable:
                continue
            match_counts[col] = match_counts.get(col, 0) + 1
            if match_counts[col] >= t_count:
                joinable.add(col)
    stats.verification_seconds += time.perf_counter() - started

    hits = [
        JoinableColumn(
            column_id=col,
            match_count=match_counts[col],
            joinability=match_counts[col] / n_q,
            exact_count=False,
        )
        for col in sorted(joinable)
    ]
    return SearchResult(
        joinable=hits, stats=stats, tau=float(tau), t_count=t_count, query_size=n_q
    )
