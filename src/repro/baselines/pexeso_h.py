"""PEXESO-H: grid blocking + naive per-cell verification (paper §VI-A).

PEXESO-H shares Algorithm 1 (hierarchical-grid blocking) with PEXESO but
replaces the inverted-index verification: for each candidate pair it
computes the exact distance between the query vector and *every* vector in
the candidate cell — no Lemma 1/2 point filtering, no DaaT traversal, no
Lemma 7 mismatch bound. Only the early-accept rule (stop once a column
reaches T) is kept, since the paper equips every method with it.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.blocker import block
from repro.core.grid import HierarchicalGrid
from repro.core.index import PexesoIndex
from repro.core.search import JoinableColumn, SearchResult
from repro.core.stats import SearchStats
from repro.core.thresholds import joinability_count


def pexeso_h_search(
    index: PexesoIndex,
    query_vectors: np.ndarray,
    tau: float,
    joinability: float | int,
    early_accept: bool = True,
    stats: Optional[SearchStats] = None,
) -> SearchResult:
    """Search with grid blocking but naive verification.

    Args and result match :func:`repro.core.search.pexeso_search`; the
    same blocking guarantees the same exact answer, only with more
    distance computations during verification (Fig. 6a).
    """
    if index.pivot_space is None or index.grid is None:
        raise RuntimeError("index is not built; call fit() first")
    stats = stats if stats is not None else SearchStats()
    query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
    n_q = query_vectors.shape[0]
    t_count = joinability_count(joinability, n_q)

    query_mapped = index.pivot_space.map_vectors(query_vectors)
    stats.pivot_mapping_distances += query_mapped.size
    hg_q = HierarchicalGrid.build(
        query_mapped,
        levels=index.levels,
        extent=index.pivot_space.extent,
        store_members=True,
    )
    pairs = block(hg_q, index.grid, query_mapped, tau, stats=stats)

    started = time.perf_counter()
    match_counts: dict[int, int] = {}
    joinable: set[int] = set()
    target_vectors = index.vectors
    metric = index.metric

    query_rows = set(pairs.match_pairs) | set(pairs.candidate_pairs)
    for q in sorted(query_rows):
        q_vec = query_vectors[q]
        matched_cols: set[int] = set()

        match_cells = pairs.match_pairs.get(q)
        if match_cells:
            for col in index.inverted.columns_in_cells(match_cells):
                if col in matched_cols:
                    continue
                matched_cols.add(col)
                if col in joinable and early_accept:
                    continue
                match_counts[col] = match_counts.get(col, 0) + 1
                if match_counts[col] >= t_count:
                    joinable.add(col)

        cand_cells = pairs.candidate_pairs.get(q)
        if not cand_cells:
            continue
        for col, rows in index.inverted.columns_in_cells(cand_cells).items():
            if col in matched_cols:
                continue
            if col in joinable and early_accept:
                continue
            rows_arr = np.asarray(rows, dtype=np.intp)
            distances = metric.distances_to(q_vec, target_vectors[rows_arr])
            stats.distance_computations += int(rows_arr.size)
            if (distances <= tau).any():
                matched_cols.add(col)
                match_counts[col] = match_counts.get(col, 0) + 1
                if match_counts[col] >= t_count:
                    joinable.add(col)

    stats.verification_seconds += time.perf_counter() - started
    hits = [
        JoinableColumn(
            column_id=col,
            match_count=match_counts.get(col, 0),
            joinability=match_counts.get(col, 0) / n_q,
            exact_count=not early_accept,
        )
        for col in sorted(joinable)
        if col in index.column_rows
    ]
    return SearchResult(
        joinable=hits, stats=stats, tau=float(tau), t_count=t_count, query_size=n_q
    )
