"""CTREE baseline: cover-tree range search (paper §VI-A, [14], [31]).

A (simplified) cover tree in the style of Izbicki & Shelton's "Faster
cover trees": every node carries a point, a level ``l`` (its covering
radius is ``2^l``), children within that radius, and the exact maximum
distance to any descendant (``maxdist``) for tight pruning.

The joinable-column workflow follows the paper: one tree over all
repository vectors; for each query vector a range query with radius τ;
every returned vector counts toward its column's joinability, with the
shared early-accept rule.
"""

from __future__ import annotations

import math
import time
from typing import Optional, Sequence

import numpy as np

from repro.core.metric import EuclideanMetric, Metric
from repro.core.search import JoinableColumn, SearchResult
from repro.core.stats import SearchStats
from repro.core.thresholds import joinability_count


class _Node:
    __slots__ = ("point", "row", "level", "children", "maxdist")

    def __init__(self, point: np.ndarray, row: int, level: int):
        self.point = point
        self.row = row
        self.level = level
        self.children: list["_Node"] = []
        self.maxdist = 0.0

    def covdist(self) -> float:
        return 2.0 ** self.level


class CoverTree:
    """Cover tree over a fixed set of vectors with exact range queries.

    Args:
        vectors: ``(n, dim)`` points to index.
        metric: metric satisfying the triangle inequality.
        stats: optional counters; distance evaluations during construction
            and queries are tallied into ``distance_computations``.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        metric: Optional[Metric] = None,
        stats: Optional[SearchStats] = None,
    ):
        self.metric = metric if metric is not None else EuclideanMetric()
        self.stats = stats if stats is not None else SearchStats()
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        self.vectors = vectors
        self.root: Optional[_Node] = None
        for row in range(vectors.shape[0]):
            self._insert(vectors[row], row)

    # -- construction ------------------------------------------------------------

    def _distance(self, a: np.ndarray, b: np.ndarray) -> float:
        self.stats.distance_computations += 1
        return self.metric.distance(a, b)

    def _insert(self, point: np.ndarray, row: int) -> None:
        if self.root is None:
            self.root = _Node(point, row, level=0)
            return
        d_root = self._distance(point, self.root.point)
        # Raise the root level until it covers the new point.
        while d_root > self.root.covdist():
            self.root.level += 1
        self._insert_rec(self.root, point, row, d_root)

    def _insert_rec(self, node: _Node, point: np.ndarray, row: int, d_node: float) -> None:
        node.maxdist = max(node.maxdist, d_node)
        # Try to hand the point to a child that already covers it.
        best_child = None
        best_d = math.inf
        for child in node.children:
            d_child = self._distance(point, child.point)
            if d_child <= child.covdist() and d_child < best_d:
                best_child = child
                best_d = d_child
        if best_child is not None:
            self._insert_rec(best_child, point, row, best_d)
            return
        node.children.append(_Node(point, row, level=node.level - 1))

    # -- queries -----------------------------------------------------------------

    def range_query(self, query: np.ndarray, radius: float) -> list[int]:
        """Row indices of all points within ``radius`` of ``query`` (exact)."""
        if self.root is None:
            return []
        out: list[int] = []
        query = np.asarray(query, dtype=np.float64)
        stack = [(self.root, self._distance(query, self.root.point))]
        while stack:
            node, d_node = stack.pop()
            if d_node <= radius:
                out.append(node.row)
            # A descendant can be within radius only if the node is within
            # radius + maxdist (triangle inequality).
            if node.children and d_node <= radius + node.maxdist:
                for child in node.children:
                    d_child = self._distance(query, child.point)
                    if d_child <= radius + max(child.maxdist, 0.0) or d_child <= radius:
                        stack.append((child, d_child))
        return out

    def memory_bytes(self) -> int:
        """Rough structure footprint excluding raw vectors (Fig. 6b)."""
        count = 0
        if self.root is not None:
            stack = [self.root]
            while stack:
                node = stack.pop()
                count += 1
                stack.extend(node.children)
        return count * 64


def ctree_search(
    columns: Sequence[np.ndarray],
    query_vectors: np.ndarray,
    tau: float,
    joinability: float | int,
    metric: Optional[Metric] = None,
    tree: Optional[CoverTree] = None,
    column_of_row: Optional[np.ndarray] = None,
    stats: Optional[SearchStats] = None,
) -> SearchResult:
    """Joinable-column search via cover-tree range queries (Table VII).

    A prebuilt ``tree`` (and its row->column map) can be supplied so
    benchmarks exclude construction from the measured search time.
    """
    metric = metric if metric is not None else EuclideanMetric()
    stats = stats if stats is not None else SearchStats()
    query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
    n_q = query_vectors.shape[0]
    t_count = joinability_count(joinability, n_q)

    if tree is None or column_of_row is None:
        tree, column_of_row = build_ctree_index(columns, metric, stats)

    started = time.perf_counter()
    match_counts: dict[int, int] = {}
    joinable: set[int] = set()
    tree.stats = stats
    for q in range(n_q):
        rows = tree.range_query(query_vectors[q], tau)
        hit_cols = {int(column_of_row[row]) for row in rows}
        for col in hit_cols:
            if col in joinable:
                continue
            match_counts[col] = match_counts.get(col, 0) + 1
            if match_counts[col] >= t_count:
                joinable.add(col)
    stats.verification_seconds += time.perf_counter() - started

    hits = [
        JoinableColumn(
            column_id=col,
            match_count=match_counts[col],
            joinability=match_counts[col] / n_q,
            exact_count=False,
        )
        for col in sorted(joinable)
    ]
    return SearchResult(
        joinable=hits, stats=stats, tau=float(tau), t_count=t_count, query_size=n_q
    )


def build_ctree_index(
    columns: Sequence[np.ndarray],
    metric: Optional[Metric] = None,
    stats: Optional[SearchStats] = None,
) -> tuple[CoverTree, np.ndarray]:
    """Build one cover tree over all columns plus the row->column map."""
    arrays = [np.atleast_2d(np.asarray(c, dtype=np.float64)) for c in columns]
    all_vectors = np.concatenate(arrays, axis=0)
    column_of_row = np.concatenate(
        [np.full(arr.shape[0], cid, dtype=np.intp) for cid, arr in enumerate(arrays)]
    )
    tree = CoverTree(all_vectors, metric=metric, stats=stats)
    return tree, column_of_row
