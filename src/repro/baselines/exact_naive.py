"""Naive exhaustive joinable-column search (paper §III, first paragraph).

For each query vector the distance to *every* repository vector is
computed — ``|Q| * sum(|S|)`` distance evaluations. This is the ground
truth oracle for all exactness tests and the "no blocking at all"
reference point.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.core.metric import EuclideanMetric, Metric
from repro.core.search import JoinableColumn, SearchResult
from repro.core.stats import SearchStats
from repro.core.thresholds import joinability_count


def naive_search(
    columns: Sequence[np.ndarray],
    query_vectors: np.ndarray,
    tau: float,
    joinability: float | int,
    metric: Optional[Metric] = None,
    early_accept: bool = False,
    stats: Optional[SearchStats] = None,
) -> SearchResult:
    """Exhaustively compute every joinability and return joinable columns.

    Args:
        columns: repository columns, each ``(n_i, dim)``; column IDs are
            their positions in this sequence.
        query_vectors: ``(|Q|, dim)`` query column.
        tau: distance threshold.
        joinability: T as a fraction of |Q| or an absolute count.
        metric: distance; Euclidean by default.
        early_accept: stop scanning a column's vectors once its match
            count reaches T (the paper equips all baselines with this).
        stats: counters to accumulate into.
    """
    metric = metric if metric is not None else EuclideanMetric()
    stats = stats if stats is not None else SearchStats()
    query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
    n_q = query_vectors.shape[0]
    t_count = joinability_count(joinability, n_q)

    started = time.perf_counter()
    hits: list[JoinableColumn] = []
    for column_id, column in enumerate(columns):
        column = np.atleast_2d(np.asarray(column, dtype=np.float64))
        if early_accept:
            count = 0
            remaining = n_q
            for q in range(n_q):
                distances = metric.distances_to(query_vectors[q], column)
                stats.distance_computations += column.shape[0]
                if (distances <= tau).any():
                    count += 1
                    if count >= t_count:
                        break
                remaining -= 1
                if count + remaining < t_count:
                    break  # cannot reach T any more
        else:
            pairwise = metric.pairwise(query_vectors, column)
            stats.distance_computations += pairwise.size
            count = int((pairwise <= tau).any(axis=1).sum())
        if count >= t_count:
            hits.append(
                JoinableColumn(
                    column_id=column_id,
                    match_count=count,
                    joinability=count / n_q,
                    exact_count=not early_accept,
                )
            )
    stats.verification_seconds += time.perf_counter() - started
    return SearchResult(
        joinable=hits, stats=stats, tau=float(tau), t_count=t_count, query_size=n_q
    )
